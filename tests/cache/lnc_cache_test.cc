// Tests of LNC-R / LNC-A / LNC-RA (paper Figure 1 semantics).

#include "cache/lnc_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace watchman {
namespace {

QueryDescriptor Desc(const std::string& id, uint64_t bytes, uint64_t cost) {
  return QueryDescriptor::Make(id, bytes, cost);
}

LncOptions Opts(uint64_t capacity, size_t k = 4, bool admission = true,
                bool retain = true) {
  LncOptions o;
  o.capacity_bytes = capacity;
  o.k = k;
  o.admission = admission;
  o.retain_reference_info = retain;
  return o;
}

TEST(LncCacheTest, NamesReflectConfiguration) {
  EXPECT_EQ(LncCache(Opts(100, 4, true)).name(), "lnc-ra(k=4)");
  EXPECT_EQ(LncCache(Opts(100, 2, false)).name(), "lnc-r(k=2)");
}

TEST(LncCacheTest, CachesFreelyWhileSpaceAvailable) {
  // Figure 1: a set that fits into free space is cached without an
  // admission test -- even a terrible one.
  LncCache cache(Opts(1000));
  EXPECT_FALSE(cache.Reference(Desc("cheap_big", 900, 1), 1));
  EXPECT_TRUE(cache.Contains("cheap_big"));
}

TEST(LncCacheTest, EvictsLowestProfitFirst) {
  LncCache cache(Opts(300, /*k=*/1, /*admission=*/false));
  // Same sizes and reference patterns; profit ordering reduces to cost.
  cache.Reference(Desc("low", 100, 10), 1 * kSecond);
  cache.Reference(Desc("high", 100, 10000), 2 * kSecond);
  cache.Reference(Desc("mid", 100, 1000), 3 * kSecond);
  cache.Reference(Desc("new", 100, 500), 10 * kSecond);
  EXPECT_FALSE(cache.Contains("low"));
  EXPECT_TRUE(cache.Contains("high"));
  EXPECT_TRUE(cache.Contains("mid"));
  EXPECT_TRUE(cache.Contains("new"));
}

TEST(LncCacheTest, ProfitConsidersSize) {
  // Equal cost and rate: the larger set has lower profit = lambda*c/s
  // and is evicted first.
  LncCache cache(Opts(400, 1, false));
  cache.Reference(Desc("big", 300, 1000), 1 * kSecond);
  cache.Reference(Desc("small", 100, 1000), 2 * kSecond);
  cache.Reference(Desc("new", 250, 1000), 10 * kSecond);
  EXPECT_FALSE(cache.Contains("big"));
  EXPECT_TRUE(cache.Contains("small"));
}

TEST(LncCacheTest, ProfitConsidersReferenceRate) {
  LncCache cache(Opts(200, 4, false));
  // "hot" referenced 4 times, "cold" once; equal cost/size.
  cache.Reference(Desc("hot", 100, 100), 1 * kSecond);
  cache.Reference(Desc("cold", 100, 100), 2 * kSecond);
  cache.Reference(Desc("hot", 100, 100), 3 * kSecond);
  cache.Reference(Desc("hot", 100, 100), 5 * kSecond);
  cache.Reference(Desc("hot", 100, 100), 7 * kSecond);
  cache.Reference(Desc("new", 100, 100), 8 * kSecond);
  EXPECT_TRUE(cache.Contains("hot"));
  EXPECT_FALSE(cache.Contains("cold"));
}

TEST(LncCacheTest, FewerReferencesEvictedFirstDespiteProfit) {
  // Paper: R_1 < R_2 < ... < R_K -- a set with a single recorded
  // reference is evicted before sets with more references even when its
  // profit is higher.
  LncCache cache(Opts(200, 4, false, /*retain=*/false));
  cache.Reference(Desc("seen_twice", 100, 10), 1 * kSecond);
  cache.Reference(Desc("seen_twice", 100, 10), 2 * kSecond);
  // Enormous profit but only one reference.
  cache.Reference(Desc("one_shot", 100, 1000000), 3 * kSecond);
  cache.Reference(Desc("new", 100, 10), 4 * kSecond);
  EXPECT_TRUE(cache.Contains("seen_twice"));
  EXPECT_FALSE(cache.Contains("one_shot"));
}

TEST(LncCacheTest, AdmissionRejectsLowEstimatedProfit) {
  LncCache cache(Opts(300, 4, /*admission=*/true));
  // Fill with high cost-per-byte sets.
  cache.Reference(Desc("a", 100, 10000), 1 * kSecond);
  cache.Reference(Desc("b", 100, 10000), 2 * kSecond);
  cache.Reference(Desc("c", 100, 10000), 3 * kSecond);
  // First-seen set with terrible e-profit: rejected.
  cache.Reference(Desc("junk", 150, 10), 4 * kSecond);
  EXPECT_FALSE(cache.Contains("junk"));
  EXPECT_EQ(cache.stats().admission_rejections, 1u);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
}

TEST(LncCacheTest, AdmissionAcceptsHighEstimatedProfit) {
  LncCache cache(Opts(300, 4, true));
  cache.Reference(Desc("a", 100, 10), 1 * kSecond);
  cache.Reference(Desc("b", 100, 10), 2 * kSecond);
  cache.Reference(Desc("c", 100, 10), 3 * kSecond);
  // e-profit far above the candidates': admitted.
  cache.Reference(Desc("gem", 150, 100000), 4 * kSecond);
  EXPECT_TRUE(cache.Contains("gem"));
}

TEST(LncCacheTest, LncRWithoutAdmissionAlwaysCaches) {
  LncCache cache(Opts(300, 4, /*admission=*/false));
  cache.Reference(Desc("a", 100, 10000), 1 * kSecond);
  cache.Reference(Desc("b", 100, 10000), 2 * kSecond);
  cache.Reference(Desc("c", 100, 10000), 3 * kSecond);
  cache.Reference(Desc("junk", 150, 10), 4 * kSecond);
  EXPECT_TRUE(cache.Contains("junk"));
  EXPECT_EQ(cache.stats().admission_rejections, 0u);
}

TEST(LncCacheTest, RejectedSetAdmittedOnceReferencesAccumulate) {
  // Section 2.4 (last paragraph): an initially rejected set retains its
  // reference information and can be admitted later, once its measured
  // rate proves it profitable.
  LncCache cache(Opts(300, 4, true, true));
  // Residents: high e-profit but *stale* -- their measured rate decays.
  cache.Reference(Desc("a", 100, 5000), 1 * kSecond);
  cache.Reference(Desc("b", 100, 5000), 2 * kSecond);
  cache.Reference(Desc("c", 100, 5000), 3 * kSecond);
  // "riser" has modest e-profit -> rejected at first sight.
  cache.Reference(Desc("riser", 120, 600), 4 * kSecond);
  EXPECT_FALSE(cache.Contains("riser"));
  // It keeps being referenced frequently; residents are never touched
  // again. Eventually profit(riser) exceeds the candidates' profit.
  bool admitted = false;
  Timestamp t = 5 * kSecond;
  for (int i = 0; i < 50 && !admitted; ++i) {
    t += kSecond;
    cache.Reference(Desc("riser", 120, 600), t);
    admitted = cache.Contains("riser");
  }
  EXPECT_TRUE(admitted);
}

TEST(LncCacheTest, EvictedSetReentersWithHistory) {
  LncCache cache(Opts(200, 4, false, /*retain=*/true));
  cache.Reference(Desc("x", 100, 100), 1 * kSecond);
  cache.Reference(Desc("x", 100, 100), 2 * kSecond);
  cache.Reference(Desc("x", 100, 100), 3 * kSecond);
  cache.Reference(Desc("y", 100, 100), 4 * kSecond);
  cache.Reference(Desc("z", 100, 100), 5 * kSecond);  // evicts someone
  EXPECT_GT(cache.retained_count(), 0u);
  // When x is re-referenced it returns with >= 3 recorded references,
  // placing it in a later eviction bucket than 1-reference sets.
  cache.Reference(Desc("x", 100, 100), 6 * kSecond);
  cache.Reference(Desc("w", 100, 100), 7 * kSecond);
  EXPECT_TRUE(cache.Contains("x"));
}

TEST(LncCacheTest, TooLargeAndZeroSizeRejected) {
  LncCache cache(Opts(100));
  EXPECT_FALSE(cache.Reference(Desc("huge", 500, 10), 1));
  EXPECT_FALSE(cache.Reference(Desc("empty", 0, 10), 2));
  EXPECT_EQ(cache.stats().too_large_rejections, 2u);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(LncCacheTest, NeverExceedsCapacityUnderChurn) {
  LncCache cache(Opts(1000, 4, true, true));
  Timestamp t = 0;
  for (int i = 0; i < 500; ++i) {
    t += kSecond;
    cache.Reference(
        Desc("q" + std::to_string(i % 37), 50 + (i % 13) * 30,
             10 + (i % 7) * 300),
        t);
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
    ASSERT_TRUE(cache.CheckInvariants().ok());
  }
}

TEST(LncCacheTest, MinCachedProfitInfinityWhenEmpty) {
  LncCache cache(Opts(100));
  EXPECT_TRUE(std::isinf(cache.MinCachedProfit(10)));
}

TEST(LncCacheTest, EntryProfitMatchesFormula) {
  LncCache cache(Opts(1000, 4, false));
  cache.Reference(Desc("q", 200, 1000), 1 * kSecond);
  cache.Reference(Desc("q", 200, 1000), 3 * kSecond);
  // lambda at t=5s: 2 refs / (5s - 1s) = 0.5 per second; profit =
  // lambda * c / s with lambda in per-microsecond units.
  const double lambda = 2.0 / double(4 * kSecond);
  const double expected = lambda * 1000.0 / 200.0;
  EXPECT_NEAR(cache.MinCachedProfit(5 * kSecond), expected, 1e-12);
}

TEST(LncCacheTest, RetainedInfoSweptWhenProfitBelowCached) {
  LncOptions o = Opts(200, 4, false, true);
  o.sweep_interval = 1;  // sweep on every reference
  LncCache cache(o);
  // Two very hot, expensive residents.
  for (int i = 0; i < 4; ++i) {
    cache.Reference(Desc("hot1", 100, 100000), (2 * i + 1) * kSecond);
    cache.Reference(Desc("hot2", 100, 100000), (2 * i + 2) * kSecond);
  }
  // A worthless set cycles through: retained info is created on
  // eviction but must be dropped by the profit rule soon after.
  cache.Reference(Desc("junk", 100, 1), 20 * kSecond);
  // Referencing hot sets triggers sweeps; junk's profit (tiny cost,
  // aging rate) is far below the hot residents' minimum.
  cache.Reference(Desc("hot1", 100, 100000), 21 * kSecond);
  cache.Reference(Desc("hot2", 100, 100000), 22 * kSecond);
  EXPECT_EQ(cache.retained_count(), 0u);
}

TEST(LncCacheTest, AgingModeStillCorrectlyBounded) {
  LncOptions o = Opts(500, 4, true, true);
  o.aging_period = 30 * kSecond;
  LncCache cache(o);
  Timestamp t = 0;
  for (int i = 0; i < 300; ++i) {
    t += kSecond;
    cache.Reference(Desc("q" + std::to_string(i % 23), 60, 100 + i % 900),
                    t);
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
  }
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

class LncCacheKParamTest : public testing::TestWithParam<size_t> {};

TEST_P(LncCacheKParamTest, ChurnInvariantsAcrossK) {
  LncCache cache(Opts(2000, GetParam(), true, true));
  Timestamp t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += 500 * kMillisecond;
    cache.Reference(
        Desc("k" + std::to_string((i * 7) % 71), 40 + (i % 29) * 11,
             5 + (i % 11) * 120),
        t);
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
  }
  EXPECT_TRUE(cache.CheckInvariants().ok());
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.lookups, 1000u);
  EXPECT_GT(s.hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(KValues, LncCacheKParamTest,
                         testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace watchman
