// SignatureTable unit + differential tests: the open-addressing index
// must behave exactly like the map-of-buckets it replaced
// (unordered_multimap semantics over (signature, node) pairs) across
// random insert/erase/lookup traces, including heavy signature
// collisions that exercise probe clusters and backward-shift deletion.

#include "cache/open_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace watchman {
namespace {

struct Node {
  uint64_t sig = 0;
  int id = 0;
};

TEST(SignatureTableTest, InsertFindErase) {
  SignatureTable<Node> table;
  Node a{42, 1}, b{42, 2}, c{7, 3};
  table.Insert(a.sig, &a);
  table.Insert(b.sig, &b);  // duplicate signature, distinct node
  table.Insert(c.sig, &c);
  EXPECT_EQ(table.size(), 3u);

  EXPECT_EQ(table.Find(42, [](const Node* n) { return n->id == 1; }), &a);
  EXPECT_EQ(table.Find(42, [](const Node* n) { return n->id == 2; }), &b);
  EXPECT_EQ(table.Find(42, [](const Node* n) { return n->id == 9; }),
            nullptr);
  EXPECT_EQ(table.Find(7, [](const Node*) { return true; }), &c);
  EXPECT_EQ(table.Find(8, [](const Node*) { return true; }), nullptr);

  EXPECT_TRUE(table.Erase(42, &a));
  EXPECT_FALSE(table.Erase(42, &a));  // already gone
  EXPECT_EQ(table.Find(42, [](const Node* n) { return n->id == 2; }), &b);
  EXPECT_TRUE(table.CheckStructure().ok());
}

TEST(SignatureTableTest, EmptyTableFindsNothing) {
  SignatureTable<Node> table;
  EXPECT_EQ(table.Find(1, [](const Node*) { return true; }), nullptr);
  EXPECT_FALSE(table.Erase(1, nullptr));
  EXPECT_TRUE(table.CheckStructure().ok());
}

TEST(SignatureTableTest, GrowsKeepingEveryEntryReachable) {
  SignatureTable<Node> table;
  std::vector<Node> nodes(1000);
  for (int i = 0; i < 1000; ++i) {
    nodes[i] = Node{static_cast<uint64_t>(i * 2654435761u), i};
    table.Insert(nodes[i].sig, &nodes[i]);
  }
  EXPECT_EQ(table.size(), 1000u);
  EXPECT_TRUE(table.CheckStructure().ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Find(nodes[i].sig,
                         [&](const Node* n) { return n->id == i; }),
              &nodes[i]);
  }
}

/// Differential vs the old map-of-buckets semantics: a random trace of
/// insert/erase/find, with signatures drawn from a tiny pool so probe
/// clusters and duplicate-signature buckets are the common case rather
/// than the exception.
TEST(SignatureTableDifferentialTest, MatchesBucketMapSemantics) {
  SignatureTable<Node> table;
  // The pre-change index shape: signature -> bucket of entries.
  std::unordered_map<uint64_t, std::vector<Node*>> model;

  std::vector<Node> pool(512);
  std::vector<bool> present(pool.size(), false);
  Rng rng(20260730);
  for (size_t i = 0; i < pool.size(); ++i) {
    // ~32 distinct signatures over 512 nodes: dense collision clusters.
    pool[i] = Node{0xABCD000 + rng.NextBounded(32), static_cast<int>(i)};
  }

  size_t model_size = 0;
  for (int op = 0; op < 20000; ++op) {
    const size_t pick = rng.NextBounded(pool.size());
    Node* node = &pool[pick];
    const uint64_t roll = rng.NextBounded(100);
    if (roll < 45) {  // insert if absent
      if (!present[pick]) {
        table.Insert(node->sig, node);
        model[node->sig].push_back(node);
        present[pick] = true;
        ++model_size;
      }
    } else if (roll < 80) {  // erase
      auto& bucket = model[node->sig];
      const auto it = std::find(bucket.begin(), bucket.end(), node);
      const bool in_model = it != bucket.end();
      EXPECT_EQ(table.Erase(node->sig, node), in_model);
      if (in_model) {
        bucket.erase(it);
        present[pick] = false;
        --model_size;
      }
    } else {  // find
      auto& bucket = model[node->sig];
      const bool in_model =
          std::find(bucket.begin(), bucket.end(), node) != bucket.end();
      Node* found =
          table.Find(node->sig, [&](const Node* n) { return n == node; });
      EXPECT_EQ(found != nullptr, in_model);
      if (found != nullptr) EXPECT_EQ(found, node);
    }
    EXPECT_EQ(table.size(), model_size);
    if (op % 500 == 0) {
      ASSERT_TRUE(table.CheckStructure().ok());
      // Full sweep: every model entry findable, nothing extra.
      size_t walked = 0;
      table.ForEach([&](uint64_t sig, Node* n) {
        ++walked;
        auto& bucket = model[sig];
        EXPECT_NE(std::find(bucket.begin(), bucket.end(), n), bucket.end());
      });
      EXPECT_EQ(walked, model_size);
    }
  }
}

}  // namespace
}  // namespace watchman
