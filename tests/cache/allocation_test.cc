// Zero-allocation guarantee of the sharded hit path.
//
// Arms the binary-wide counting allocator (tests/support/
// counting_alloc.cc) around the measured sections and asserts that
// once a working set is cached, references that hit perform no heap
// allocation -- across every policy, through the ShardedQueryCache
// front-end, including the per-reference invariant checks the
// assert-enabled build runs.
//
// This is the acceptance guard for the allocation-lean hot path: the
// open-addressing index probes flat slots, QueryKey compares inline
// bytes, ReferenceHistory records into its preallocated ring, and the
// ordered victim indexes re-key via node-handle reuse.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/query_descriptor.h"
#include "cache/sharded_query_cache.h"
#include "sim/policy_config.h"
#include "support/counting_alloc.h"

namespace watchman {
namespace {

using testsupport::CountingScope;
using testsupport::t_counting;

std::vector<QueryDescriptor> MakeWorkingSet(size_t n) {
  std::vector<QueryDescriptor> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(QueryDescriptor::Make(
        "select agg from rel where param\x1f" + std::to_string(i),
        64 + (i % 64) * 8, 100 + i));
  }
  return out;
}

class AllocationFreeHitTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AllocationFreeHitTest, ShardedHitPathDoesNotAllocate) {
  constexpr size_t kWorkingSet = 256;
  auto descriptors = MakeWorkingSet(kWorkingSet);
  uint64_t total = 0;
  for (const auto& d : descriptors) total += d.result_bytes;

  PolicyConfig config;
  config.kind = GetParam();
  config.k = 4;
  auto cache = MakeShardedCache(config, total * 2, /*num_shards=*/8);

  Timestamp now = 0;
  for (const auto& d : descriptors) cache->Reference(d, now += 1000);
  ASSERT_EQ(cache->entry_count(), kWorkingSet);

  // Warm k+1 full passes of hits: arena/index steady state, ordered
  // node handles in place, and every LRU-K entry graduated from the
  // partial list into the full index (a one-time tree insert on the
  // k-th reference).
  for (int pass = 0; pass < 5; ++pass) {
    for (const auto& d : descriptors) {
      ASSERT_TRUE(cache->Reference(d, now += 1000));
    }
  }

  CountingScope scope;
  for (int round = 0; round < 20; ++round) {
    for (const auto& d : descriptors) {
      // Reference() and the hit-only probe must both be allocation-free.
      if (!cache->TryReferenceCached(d, now += 1000)) {
        t_counting = false;
        FAIL() << "unexpected miss on the hit path";
      }
    }
  }
  const uint64_t allocations = scope.count();
  t_counting = false;
  EXPECT_EQ(allocations, 0u)
      << "sharded hit path allocated " << allocations << " times over "
      << 20 * kWorkingSet << " hits";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AllocationFreeHitTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kLruK,
                                           PolicyKind::kLfu, PolicyKind::kLcs,
                                           PolicyKind::kGds, PolicyKind::kLncR,
                                           PolicyKind::kLncRA));

// The LNC admission path must not allocate per candidate: candidate
// selection reuses a scratch vector and the admission comparison reads
// running aggregates folded in during the selection walk, so a miss
// whose candidate list covers hundreds of cached sets costs the same
// small constant number of allocations (the reconstructed reference
// history ring plus the retained-info record) as one with two
// candidates.
TEST(AllocationBoundedMissTest, AdmissionPathAllocationsIndependentOfCandidates) {
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  config.k = 4;

  auto measure = [&](uint64_t resident_count,
                     uint64_t junk_bytes) -> double {
    // Residents: small, hot, expensive sets filling the cache.
    const uint64_t capacity = resident_count * 64;
    auto cache = MakeCache(config, capacity);
    Timestamp now = 0;
    std::vector<QueryDescriptor> residents;
    for (uint64_t i = 0; i < resident_count; ++i) {
      residents.push_back(QueryDescriptor::Make(
          "hot\x1f" + std::to_string(i), 64, 1000000));
    }
    for (int pass = 0; pass < 5; ++pass) {
      for (const auto& d : residents) cache->Reference(d, now += 1000);
    }
    // Warmup junk so scratch vectors, retained-store buckets and arena
    // reach steady state before counting.
    constexpr int kMisses = 200;
    for (int i = 0; i < kMisses; ++i) {
      cache->Reference(QueryDescriptor::Make(
                           "warm\x1f" + std::to_string(i), junk_bytes, 1),
                       now += 1000);
    }
    CountingScope scope;
    for (int i = 0; i < kMisses; ++i) {
      // Junk spans a candidate list of ~junk_bytes/64 residents and is
      // always rejected by admission (e-profit 1/junk_bytes is tiny).
      if (cache->Reference(QueryDescriptor::Make(
                               "junk\x1f" + std::to_string(i), junk_bytes, 1),
                           now += 1000)) {
        t_counting = false;
        ADD_FAILURE() << "junk unexpectedly hit";
      }
    }
    const uint64_t allocations = scope.count();
    t_counting = false;
    EXPECT_EQ(cache->stats().admission_rejections,
              static_cast<uint64_t>(2 * kMisses));
    return static_cast<double>(allocations) / kMisses;
  };

  // ~8 candidates per miss vs ~256 candidates per miss: the per-miss
  // allocation count must stay a small constant, not scale with the
  // candidate list (the pre-change implementation grew a fresh victims
  // vector per miss and re-walked it for the profit sums).
  const double small_list = measure(/*resident_count=*/512, /*junk_bytes=*/512);
  const double large_list =
      measure(/*resident_count=*/512, /*junk_bytes=*/16384);
  EXPECT_LE(small_list, 8.0);
  EXPECT_LE(large_list, 8.0);
  EXPECT_NEAR(small_list, large_list, 2.0)
      << "per-miss allocations scale with candidate count: " << small_list
      << " vs " << large_list;
}

}  // namespace
}  // namespace watchman
