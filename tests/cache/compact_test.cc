// Tests of the quiescent metadata shrink pass: SlabArena::Compact()
// releases fully-free slabs, SignatureTable::Compact() rehashes down to
// the live entry count, and QueryCache::Compact() wires both together
// (plus the policy's OnCompact hook) so long-lived daemons whose
// working set shrank stop pinning peak-size metadata.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/entry_arena.h"
#include "cache/lnc_cache.h"
#include "cache/open_table.h"
#include "cache/query_descriptor.h"
#include "sim/policy_config.h"
#include "util/random.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

QueryDescriptor Desc(const std::string& id, uint64_t bytes, uint64_t cost) {
  return QueryDescriptor::Make(id, bytes, cost);
}

// ----------------------------------------------------------- SlabArena

struct Payload {
  uint64_t value = 0;
  char pad[48];
};

TEST(SlabArenaCompactTest, LoadThenReleaseReturnsSlabs) {
  SlabArena<Payload> arena;
  std::vector<Payload*> objs;
  constexpr size_t kCount = 1000;
  for (size_t i = 0; i < kCount; ++i) {
    objs.push_back(arena.New());
    objs.back()->value = i;
  }
  const size_t peak_slabs = arena.slab_count();
  EXPECT_GE(peak_slabs, kCount / SlabArena<Payload>::kSlabNodes);

  // Release everything except a few survivors scattered across slabs.
  std::vector<Payload*> survivors;
  for (size_t i = 0; i < kCount; ++i) {
    if (i % 300 == 0) {
      survivors.push_back(objs[i]);
    } else {
      arena.Release(objs[i]);
    }
  }
  const size_t released = arena.Compact();
  EXPECT_GT(released, 0u);
  EXPECT_LT(arena.slab_count(), peak_slabs);
  EXPECT_EQ(arena.live(), survivors.size());
  // Survivors never move: their contents are intact.
  for (Payload* p : survivors) {
    EXPECT_EQ(p->value % 300, 0u);
  }
  // The arena keeps working after compaction: allocate again (recycled
  // slots first, then fresh slabs) and release everything cleanly.
  std::vector<Payload*> fresh;
  for (size_t i = 0; i < 200; ++i) fresh.push_back(arena.New());
  EXPECT_EQ(arena.live(), survivors.size() + fresh.size());
  for (Payload* p : fresh) arena.Release(p);
  for (Payload* p : survivors) arena.Release(p);
  EXPECT_EQ(arena.live(), 0u);
  // Fully empty arena compacts to nothing.
  EXPECT_GT(arena.Compact(), 0u);
  EXPECT_EQ(arena.slab_count(), 0u);
}

TEST(SlabArenaCompactTest, CompactWithNoFreeSlabsIsNoop) {
  SlabArena<Payload> arena;
  std::vector<Payload*> objs;
  for (size_t i = 0; i < SlabArena<Payload>::kSlabNodes * 2; ++i) {
    objs.push_back(arena.New());
  }
  EXPECT_EQ(arena.Compact(), 0u);  // every slot live
  for (Payload* p : objs) arena.Release(p);
  for (size_t i = 0; i < objs.size(); ++i) objs[i] = arena.New();
  EXPECT_EQ(arena.Compact(), 0u);  // recycled: still every slot live
  for (Payload* p : objs) arena.Release(p);
}

// ------------------------------------------------------ SignatureTable

struct TableNode {
  uint64_t sig = 0;
};

TEST(SignatureTableCompactTest, ShrinksAfterErase) {
  SignatureTable<TableNode> table;
  std::vector<TableNode> nodes(4000);
  Rng rng(9);
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].sig = rng.Next();
    table.Insert(nodes[i].sig, &nodes[i]);
  }
  const size_t peak_capacity = table.capacity();
  for (size_t i = 100; i < nodes.size(); ++i) {
    ASSERT_TRUE(table.Erase(nodes[i].sig, &nodes[i]));
  }
  EXPECT_TRUE(table.Compact());
  EXPECT_LT(table.capacity(), peak_capacity);
  EXPECT_TRUE(table.CheckStructure().ok());
  // The survivors are still findable after the rehash.
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Find(nodes[i].sig,
                         [&](const TableNode* n) { return n == &nodes[i]; }),
              &nodes[i]);
  }
  // Emptying the table releases the slot array entirely.
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Erase(nodes[i].sig, &nodes[i]));
  }
  EXPECT_TRUE(table.Compact());
  EXPECT_EQ(table.capacity(), 0u);
  // And it grows back on demand.
  table.Insert(nodes[0].sig, &nodes[0]);
  EXPECT_EQ(table.Find(nodes[0].sig,
                       [&](const TableNode* n) { return n == &nodes[0]; }),
            &nodes[0]);
}

// ------------------------------------------------- QueryCache::Compact

TEST(CacheCompactTest, LoadThenEraseReleasesSlabsAndSlots) {
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  config.k = 4;
  auto cache = MakeCache(config, 64ull << 20);
  std::vector<std::string> ids;
  Timestamp now = 0;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back("q" + std::to_string(i));
    cache->Reference(Desc(ids.back(), 256, 1000), now += 1000);
  }
  ASSERT_EQ(cache->entry_count(), 5000u);
  const size_t peak_slabs = cache->arena_slab_count();
  const size_t peak_slots = cache->index_capacity();

  // Shrink the working set to 1% (coherence-style invalidation).
  for (int i = 50; i < 5000; ++i) cache->Erase(ids[static_cast<size_t>(i)]);
  ASSERT_EQ(cache->entry_count(), 50u);
  // Metadata still pinned at peak before the explicit pass.
  EXPECT_EQ(cache->arena_slab_count(), peak_slabs);
  EXPECT_EQ(cache->index_capacity(), peak_slots);

  cache->Compact();
  EXPECT_LT(cache->arena_slab_count(), peak_slabs);
  EXPECT_LT(cache->index_capacity(), peak_slots);
  EXPECT_TRUE(cache->CheckInvariants().ok());

  // The survivors still hit, and the cache keeps serving after the
  // shrink (re-grows on demand).
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(cache->Reference(Desc(ids[static_cast<size_t>(i)], 256, 1000),
                                 now += 1000));
  }
  for (int i = 5000; i < 5200; ++i) {
    cache->Reference(Desc("q" + std::to_string(i), 256, 1000), now += 1000);
  }
  EXPECT_TRUE(cache->CheckInvariants().ok());
}

TEST(CacheCompactTest, ShardedAndFacadeCompactAreSafe) {
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  auto sharded = MakeShardedCache(config, 64ull << 20, 8);
  Timestamp now = 0;
  std::vector<std::string> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back("q" + std::to_string(i));
    sharded->Reference(Desc(ids.back(), 128, 100), now += 1000);
  }
  size_t peak_slabs = 0;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    peak_slabs += sharded->shard(s).arena_slab_count();
  }
  for (int i = 20; i < 2000; ++i) sharded->Erase(ids[static_cast<size_t>(i)]);
  sharded->Compact();
  size_t after_slabs = 0;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    after_slabs += sharded->shard(s).arena_slab_count();
  }
  EXPECT_LT(after_slabs, peak_slabs);
  EXPECT_TRUE(sharded->CheckInvariants().ok());

  // Facade pass-through: compaction under the shard locks, usable while
  // serving.
  Watchman::Options options;
  options.capacity_bytes = 1 << 20;
  options.num_shards = 4;
  Watchman watchman(std::move(options),
                    [](const std::string&)
                        -> StatusOr<Watchman::ExecutionResult> {
                      return Watchman::ExecutionResult{"payload", 10, {}};
                    });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(watchman.Execute("select " + std::to_string(i)).ok());
  }
  for (int i = 0; i < 190; ++i) {
    watchman.Invalidate("select " + std::to_string(i));
  }
  watchman.CompactMetadata();
  EXPECT_TRUE(watchman.Execute("select 5").ok());  // re-executes and caches
  EXPECT_EQ(watchman.cache().CheckInvariants().ok(), true);
}

}  // namespace
}  // namespace watchman
