#include "cache/retained_info.h"

#include <gtest/gtest.h>

namespace watchman {
namespace {

RetainedInfo Info(std::initializer_list<Timestamp> refs, uint64_t bytes,
                  uint64_t cost, size_t k = 4) {
  RetainedInfo info;
  info.history = ReferenceHistory(k);
  for (Timestamp t : refs) info.history.Record(t);
  info.result_bytes = bytes;
  info.cost = cost;
  return info;
}

TEST(RetainedInfoStoreTest, PutFindRemove) {
  ProfitRetainedStore store;
  EXPECT_EQ(store.Find(QueryKey("a")), nullptr);
  store.Put(QueryKey("a"), Info({10}, 100, 50));
  ASSERT_NE(store.Find(QueryKey("a")), nullptr);
  EXPECT_EQ(store.Find(QueryKey("a"))->cost, 50u);
  EXPECT_EQ(store.size(), 1u);
  store.Remove(QueryKey("a"));
  EXPECT_EQ(store.Find(QueryKey("a")), nullptr);
  EXPECT_TRUE(store.empty());
}

TEST(RetainedInfoStoreTest, PutReplaces) {
  ProfitRetainedStore store;
  store.Put(QueryKey("a"), Info({10}, 100, 50));
  store.Put(QueryKey("a"), Info({10, 20}, 100, 70));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Find(QueryKey("a"))->cost, 70u);
  EXPECT_EQ(store.Find(QueryKey("a"))->history.size(), 2u);
}

TEST(RetainedInfoStoreTest, MetadataBytesGrowWithEntries) {
  ProfitRetainedStore store;
  const uint64_t empty = store.ApproxMetadataBytes();
  store.Put(QueryKey("some-query-id"), Info({1, 2, 3}, 100, 50));
  EXPECT_GT(store.ApproxMetadataBytes(), empty);
}

TEST(RetainedProfitTest, UsesRateWhenAvailable) {
  // 2 refs, oldest 100; at now=300: lambda = 2/200, c/s = 2
  // -> profit 0.02.
  const RetainedInfo info = Info({100, 200}, 50, 100);
  EXPECT_DOUBLE_EQ(RetainedProfit(info, 300), (2.0 / 200.0) * 2.0);
}

TEST(RetainedProfitTest, FallsBackToEProfit) {
  // A single reference at exactly `now` has no rate: e-profit = c/s.
  const RetainedInfo info = Info({300}, 50, 100);
  EXPECT_DOUBLE_EQ(RetainedProfit(info, 300), 2.0);
}

TEST(RetainedProfitTest, AgesOverTime) {
  const RetainedInfo info = Info({100, 200}, 50, 100);
  EXPECT_GT(RetainedProfit(info, 300), RetainedProfit(info, 3000));
}

TEST(ProfitRetainedStoreTest, SweepDropsOnlyBelowThreshold) {
  ProfitRetainedStore store;
  store.Put(QueryKey("low"), Info({100}, 1000, 10));    // profit ~ 1e-5-ish
  store.Put(QueryKey("high"), Info({100, 900}, 10, 10000));
  const double threshold =
      (RetainedProfit(*store.Find(QueryKey("low")), 1000) +
       RetainedProfit(*store.Find(QueryKey("high")), 1000)) / 2.0;
  const size_t dropped = store.SweepBelowProfit(threshold, 1000);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(store.Find(QueryKey("low")), nullptr);
  ASSERT_NE(store.Find(QueryKey("high")), nullptr);
}

TEST(ProfitRetainedStoreTest, SweepKeepsEqualProfit) {
  ProfitRetainedStore store;
  store.Put(QueryKey("x"), Info({100}, 100, 100));
  const double profit = RetainedProfit(*store.Find(QueryKey("x")), 500);
  // Strictly-below semantics: equal profit survives.
  EXPECT_EQ(store.SweepBelowProfit(profit, 500), 0u);
  ASSERT_NE(store.Find(QueryKey("x")), nullptr);
}

TEST(TimeoutRetainedStoreTest, SweepExpiresOldRecords) {
  TimeoutRetainedStore store(5 * kMinute);
  store.Put(QueryKey("old"), Info({1 * kMinute}, 10, 10));
  store.Put(QueryKey("fresh"), Info({9 * kMinute}, 10, 10));
  const size_t dropped = store.SweepExpired(10 * kMinute);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(store.Find(QueryKey("old")), nullptr);
  EXPECT_NE(store.Find(QueryKey("fresh")), nullptr);
}

TEST(TimeoutRetainedStoreTest, BoundaryExactTimeoutSurvives) {
  TimeoutRetainedStore store(5 * kMinute);
  store.Put(QueryKey("edge"), Info({5 * kMinute}, 10, 10));
  // last + timeout == now -> not strictly older -> kept.
  EXPECT_EQ(store.SweepExpired(10 * kMinute), 0u);
  EXPECT_NE(store.Find(QueryKey("edge")), nullptr);
  // One microsecond later it expires.
  EXPECT_EQ(store.SweepExpired(10 * kMinute + 1), 1u);
}

}  // namespace
}  // namespace watchman
