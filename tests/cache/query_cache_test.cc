// Tests of the shared QueryCache machinery (index, accounting, stats,
// signatures, eviction listener), exercised through LruCache.

#include "cache/query_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/lru_cache.h"

namespace watchman {
namespace {

QueryDescriptor Desc(const std::string& id, uint64_t bytes, uint64_t cost) {
  return QueryDescriptor::Make(id, bytes, cost);
}

TEST(QueryCacheTest, MissThenHit) {
  LruCache cache(1000);
  EXPECT_FALSE(cache.Reference(Desc("a", 100, 10), 1));
  EXPECT_TRUE(cache.Reference(Desc("a", 100, 10), 2));
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
}

TEST(QueryCacheTest, ByteAccounting) {
  LruCache cache(1000);
  cache.Reference(Desc("a", 300, 1), 1);
  cache.Reference(Desc("b", 200, 1), 2);
  EXPECT_EQ(cache.used_bytes(), 500u);
  EXPECT_EQ(cache.available_bytes(), 500u);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

TEST(QueryCacheTest, CostAccountingUsesStoredCostOnHits) {
  LruCache cache(1000);
  cache.Reference(Desc("a", 100, 50), 1);
  // Hit with a descriptor that does not carry the cost (e.g. the
  // library facade's hit path): the stored cost is credited.
  QueryDescriptor d = Desc("a", 100, 0);
  EXPECT_TRUE(cache.Reference(d, 2));
  EXPECT_EQ(cache.stats().cost_total, 100u);  // 50 miss + 50 hit
  EXPECT_EQ(cache.stats().cost_saved, 50u);
  EXPECT_DOUBLE_EQ(cache.stats().cost_savings_ratio(), 0.5);
}

TEST(QueryCacheTest, TooLargeSetRejected) {
  LruCache cache(100);
  EXPECT_FALSE(cache.Reference(Desc("big", 500, 10), 1));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().too_large_rejections, 1u);
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

TEST(QueryCacheTest, NeverExceedsCapacity) {
  LruCache cache(1000);
  Timestamp t = 0;
  for (int i = 0; i < 200; ++i) {
    cache.Reference(Desc("q" + std::to_string(i), 90 + (i % 40), 5), ++t);
    EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  }
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

TEST(QueryCacheTest, SignatureCollisionsResolvedByExactMatch) {
  // Force two distinct query IDs into the same signature bucket by
  // constructing descriptors with identical signatures.
  LruCache cache(1000);
  QueryDescriptor a = Desc("query one", 100, 1);
  QueryDescriptor b = Desc("query two", 100, 1);
  b.key = QueryKey(b.query_id(), a.signature());  // simulate a collision
  EXPECT_FALSE(cache.Reference(a, 1));
  EXPECT_FALSE(cache.Reference(b, 2));  // not a false hit
  EXPECT_TRUE(cache.Reference(a, 3));
  EXPECT_TRUE(cache.Reference(b, 4));
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

TEST(QueryCacheTest, EvictionListenerFires) {
  LruCache cache(250);
  std::vector<std::string> evicted;
  cache.SetEvictionListener([&evicted](const QueryDescriptor& d) {
    evicted.emplace_back(d.query_id());
  });
  cache.Reference(Desc("a", 100, 1), 1);
  cache.Reference(Desc("b", 100, 1), 2);
  cache.Reference(Desc("c", 100, 1), 3);  // evicts "a" (LRU)
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "a");
}

TEST(QueryCacheTest, StatsBytesFlows) {
  LruCache cache(250);
  cache.Reference(Desc("a", 100, 1), 1);
  cache.Reference(Desc("b", 100, 1), 2);
  cache.Reference(Desc("c", 100, 1), 3);
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.bytes_inserted, 300u);
  EXPECT_EQ(s.bytes_evicted, 100u);
  EXPECT_EQ(cache.used_bytes(), 200u);
}

TEST(QueryCacheTest, HitRatioAndCsrEmptyCache) {
  LruCache cache(100);
  EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(cache.stats().cost_savings_ratio(), 0.0);
}

TEST(QueryCacheTest, EraseRemovesEntryAndFiresListener) {
  LruCache cache(1000);
  std::vector<std::string> evicted;
  cache.SetEvictionListener([&evicted](const QueryDescriptor& d) {
    evicted.emplace_back(d.query_id());
  });
  cache.Reference(Desc("a", 100, 10), 1);
  cache.Reference(Desc("b", 100, 10), 2);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));      // already gone
  EXPECT_FALSE(cache.Erase("nope"));   // never cached
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
  EXPECT_EQ(cache.used_bytes(), 100u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "a");
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

TEST(QueryCacheTest, ErasedEntryCanBeReinserted) {
  LruCache cache(1000);
  cache.Reference(Desc("a", 100, 10), 1);
  cache.Erase("a");
  EXPECT_FALSE(cache.Reference(Desc("a", 100, 10), 2));  // miss again
  EXPECT_TRUE(cache.Contains("a"));
}

}  // namespace
}  // namespace watchman
