// Tests of lazy profit maintenance: the LazyOrderedVictimIndex
// quantization machinery, the staleness invariants, the bounded
// min-profit read that replaced the O(n) sweep walk, and differential
// runs of the lazy implementation against the eager reference
// implementation (LncOptions::eager_profits).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cache/lnc_cache.h"
#include "cache/query_descriptor.h"
#include "util/hash.h"
#include "util/random.h"

namespace watchman {
namespace {

QueryDescriptor Desc(const std::string& id, uint64_t bytes, uint64_t cost) {
  return QueryDescriptor::Make(id, bytes, cost);
}

LncOptions Opts(uint64_t capacity, size_t k = 4, bool admission = true,
                bool retain = true) {
  LncOptions o;
  o.capacity_bytes = capacity;
  o.k = k;
  o.admission = admission;
  o.retain_reference_info = retain;
  return o;
}

// ------------------------------------------------- quantization basics

struct FakeNode {
  QueryDescriptor desc;
  VictimKey vkey;
  Timestamp vkey_eval = 0;
};

TEST(LazyIndexTest, QuantizeKeyIsMonotoneAndLevelled) {
  LazyOrderedVictimIndex<FakeNode> index(/*quant_steps=*/16);
  // Levels per doubling: quantized keys of p and 2p differ by exactly 16.
  EXPECT_DOUBLE_EQ(index.QuantizeKey(2.0) - index.QuantizeKey(1.0), 16.0);
  EXPECT_DOUBLE_EQ(index.QuantizeKey(8.0) - index.QuantizeKey(1.0), 48.0);
  // Within one level ratio (2^(1/16) ~ 1.044), values may share a level;
  // beyond it they must not.
  EXPECT_NEAR(index.quantization_ratio(), std::exp2(1.0 / 16.0), 1e-12);
  EXPECT_LT(index.QuantizeKey(1.0),
            index.QuantizeKey(1.0 * index.quantization_ratio() * 1.01));
  // Monotone: larger profits never get smaller keys.
  Rng rng(7);
  double prev_value = 1e-9;
  for (int i = 0; i < 1000; ++i) {
    const double value = prev_value * (1.0 + rng.NextDouble());
    EXPECT_GE(index.QuantizeKey(value), index.QuantizeKey(prev_value));
    prev_value = value;
  }
  // Zero and negative values collapse to the floor level (sort first).
  EXPECT_DOUBLE_EQ(index.QuantizeKey(0.0),
                   LazyOrderedVictimIndex<FakeNode>::kFloorLevel);
  EXPECT_LT(index.QuantizeKey(0.0), index.QuantizeKey(1e-300));
}

TEST(LazyIndexTest, ExactModeStoresValuesVerbatim) {
  LazyOrderedVictimIndex<FakeNode> index(/*quant_steps=*/0);
  EXPECT_DOUBLE_EQ(index.QuantizeKey(0.12345), 0.12345);
  EXPECT_DOUBLE_EQ(index.quantization_ratio(), 1.0);
}

TEST(LazyIndexTest, RefreshSkipsTreeRekeyWithinLevel) {
  LazyOrderedVictimIndex<FakeNode> index(/*quant_steps=*/16);
  FakeNode a;
  index.Add(&a, /*bucket=*/1, /*value=*/100.0, /*eval_time=*/10);
  EXPECT_EQ(a.vkey_eval, 10u);

  // 1% drift: same level, no tree re-key, stamp advances.
  EXPECT_FALSE(index.Refresh(&a, 1, 99.0, 20));
  EXPECT_EQ(index.rekeys(), 0u);
  EXPECT_EQ(index.refreshes_skipped(), 1u);
  EXPECT_EQ(a.vkey_eval, 20u);

  // Halving crosses levels: re-key.
  EXPECT_TRUE(index.Refresh(&a, 1, 50.0, 30));
  EXPECT_EQ(index.rekeys(), 1u);

  // Bucket change always re-keys, even with an unchanged value.
  EXPECT_TRUE(index.Refresh(&a, 2, 50.0, 40));
  EXPECT_EQ(index.rekeys(), 2u);
  index.Remove(&a);
}

TEST(LazyIndexTest, OrdersByBucketThenQuantizedLevel) {
  LazyOrderedVictimIndex<FakeNode> index(/*quant_steps=*/16);
  FakeNode low_bucket, cheap, rich;
  index.Add(&rich, 2, 1000.0, 1);
  index.Add(&cheap, 2, 1.0, 1);
  index.Add(&low_bucket, 1, 1e9, 1);  // huge profit, but bucket 1 first
  std::vector<FakeNode*> order;
  for (const auto& item : index) order.push_back(item.node);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], &low_bucket);
  EXPECT_EQ(order[1], &cheap);
  EXPECT_EQ(order[2], &rich);
  for (FakeNode* n : order) index.Remove(n);
}

// ---------------------------------------------- hit-path lazy skipping

TEST(LazyLncTest, SteadyHitsMostlySkipTreeRekeys) {
  // A steadily re-referenced working set keeps near-constant rates, so
  // quantized levels rarely move: the hit path should skip the tree
  // re-key for the overwhelming majority of references.
  LncCache cache(Opts(1 << 20));
  std::vector<QueryDescriptor> descs;
  for (int i = 0; i < 64; ++i) {
    descs.push_back(Desc("q" + std::to_string(i), 100, 1000));
  }
  Timestamp now = 0;
  for (const auto& d : descs) cache.Reference(d, now += 1000);
  for (int round = 0; round < 100; ++round) {
    for (const auto& d : descs) cache.Reference(d, now += 1000);
  }
  EXPECT_TRUE(cache.CheckInvariants().ok());
  const uint64_t rekeys = cache.profit_rekeys();
  const uint64_t skipped = cache.profit_refreshes_skipped();
  // At least 90% of re-evaluations after warmup were skips.
  EXPECT_GT(skipped, 9 * rekeys) << "rekeys " << rekeys << " skipped "
                                 << skipped;
}

// ------------------------------------------- staleness invariant guard

TEST(LazyLncTest, ChurnHoldsStalenessInvariants) {
  // CheckInvariants() (run per reference in assert builds, and here
  // explicitly) verifies the lazy staleness bounds: every stored key
  // equals the entry's quantized profit at its evaluation stamp, the
  // stamp lies within [entry's last reference, cache's last reference],
  // and stored keys upper-bound current profits (monotone decay).
  for (uint32_t quant_steps : {0u, 4u, 16u, 64u}) {
    LncOptions o = Opts(4000, 4, true, true);
    o.profit_quant_steps = quant_steps;
    LncCache cache(o);
    Rng rng(0xA11CE + quant_steps);
    Timestamp t = 0;
    for (int i = 0; i < 4000; ++i) {
      t += 1 + rng.NextBounded(2 * kSecond);
      cache.Reference(Desc("q" + std::to_string(rng.NextBounded(149)),
                           40 + rng.NextBounded(400),
                           1 + rng.NextBounded(100000)),
                      t);
      ASSERT_TRUE(cache.CheckInvariants().ok()) << "step " << i;
    }
    EXPECT_GT(cache.stats().evictions, 0u);
  }
}

// --------------------------------- bounded min-profit read (the sweep)

TEST(LazyLncTest, ApproxMinProfitExactWhenCacheFitsProbe) {
  // With at most kMinProfitProbe cached sets the bounded read covers
  // the whole index: it must equal the full walk exactly.
  LncCache cache(Opts(LncCache::kMinProfitProbe * 100, 4, false));
  Rng rng(42);
  Timestamp t = 0;
  for (int i = 0; i < 200; ++i) {
    t += kSecond;
    cache.Reference(Desc("q" + std::to_string(rng.NextBounded(32)), 100,
                         1 + rng.NextBounded(10000)),
                    t);
    ASSERT_LE(cache.entry_count(), LncCache::kMinProfitProbe);
    const double approx = cache.ApproxMinCachedProfit(t);
    const double exact = cache.MinCachedProfit(t);
    ASSERT_DOUBLE_EQ(approx, exact) << "step " << i;
  }
}

TEST(LazyLncTest, ApproxMinProfitUpperBoundsTrueMinimum) {
  // On a cache larger than the probe the bounded read returns the
  // minimum over the re-evaluated prefix: always >= the true minimum
  // (so SweepBelowProfit drops a superset of the paper's rule -- the
  // retained store still self-scales), and it is an actual profit of
  // some cached set, not an arbitrary stale key.
  LncCache cache(Opts(1 << 16, 4, true, true));
  Rng rng(0xBEE);
  Timestamp t = 0;
  for (int i = 0; i < 6000; ++i) {
    t += 1 + rng.NextBounded(kSecond);
    cache.Reference(Desc("q" + std::to_string(rng.NextBounded(999)),
                         40 + rng.NextBounded(200),
                         1 + rng.NextBounded(100000)),
                    t);
    if (i % 97 == 0 && cache.entry_count() > LncCache::kMinProfitProbe) {
      const double exact = cache.MinCachedProfit(t);
      const double approx = cache.ApproxMinCachedProfit(t);
      ASSERT_GE(approx, exact * (1.0 - 1e-12)) << "step " << i;
    }
  }
  EXPECT_GT(cache.entry_count(), LncCache::kMinProfitProbe);
}

TEST(LazyLncTest, SweepSeesSameMinProfitAsFullWalkAfterEvictionWalks) {
  // Regression test for the sweep threshold: misses keep revalidating
  // the front of the index, so at sweep time the least-profit entry
  // sits in the probed prefix and the bounded read agrees with the
  // full O(n) walk. Constructed workload: a once-hot resident block
  // that stops being referenced (its stale keys decay toward the
  // front) under steady miss pressure.
  LncCache cache(Opts(20000, 2, false, true));
  Timestamp t = 0;
  for (int i = 0; i < 150; ++i) {
    t += kSecond;
    cache.Reference(Desc("hot" + std::to_string(i % 50), 100,
                         10000 + 100 * (i % 50)),
                    t);
  }
  // Miss pressure: distinct one-shot queries forcing eviction walks.
  for (int i = 0; i < 400; ++i) {
    t += kSecond;
    cache.Reference(Desc("cold" + std::to_string(i), 150, 500), t);
    if (i % 10 == 0) {
      const double exact = cache.MinCachedProfit(t);
      const double approx = cache.ApproxMinCachedProfit(t);
      ASSERT_GE(approx, exact * (1.0 - 1e-12));
      // The eviction walks keep the front fresh: the bounded read must
      // agree with the full walk (same minimum, not merely a bound).
      ASSERT_LE(approx, exact * (1.0 + 1e-12)) << "step " << i;
    }
  }
}

// ------------------------- differential: lazy vs brute-force model

// The lazy implementation is verified two ways:
//  * exactly, against LazyLncModel below -- a brute-force executable
//    spec of the lazy semantics (sorted-snapshot victim selection,
//    explicit Figure-1 admission, quantized stale keys with seq
//    tie-breaks, the bounded front probe) that shares no code with the
//    incremental tree index or the revalidating walk it checks;
//  * in aggregate, against the eager reference implementation: lazy
//    aging deliberately ranks un-walked entries by their last-evaluated
//    profit, so *individual* victim choices can differ from eager's
//    sweep-horizon ranking (both approximate the paper's decision-time
//    ideal); the paper-level metrics must still agree tightly (here and
//    in tests/sim/lazy_eager_sim_test.cc).

/// Brute-force model of lazy LNC-R/RA. Keeps every cached set in a
/// plain vector and sorts a snapshot on demand for victim selection;
/// stale keys, evaluation stamps, quantization levels, seq tie-breaks
/// and the sweep cadence mirror the documented semantics directly.
class LazyLncModel {
 public:
  explicit LazyLncModel(const LncOptions& opts) : opts_(opts) {}

  bool Reference(const QueryDescriptor& d, Timestamp now) {
    now = std::max(now, last_t_);
    last_t_ = now;
    ++stats_.lookups;
    Rec* rec = FindCached(d.query_id());
    if (rec != nullptr) {
      ++stats_.hits;
      stats_.cost_total += rec->cost;
      stats_.cost_saved += rec->cost;
      RecordRef(&rec->refs, now);
      // Hit path: re-evaluate only the touched entry.
      RefreshKey(rec, now);
      QueueToBack(rec->id);
      MaybeSweep(now);
      return true;
    }
    stats_.cost_total += d.cost;
    if (d.result_bytes == 0 || d.result_bytes > opts_.capacity_bytes) {
      if (d.result_bytes != 0) MaybeSweep(now);  // OnMiss runs the sweep
      return false;
    }
    MaybeSweep(now);
    OnMiss(d, now);
    return false;
  }

  bool Contains(const std::string& id) const {
    for (const Rec& r : cached_) {
      if (r.id == id) return true;
    }
    return false;
  }

  const CacheStats& stats() const { return stats_; }
  size_t retained_count() const { return retained_.size(); }
  uint64_t used_bytes() const { return used_; }

 private:
  struct Rec {
    std::string id;
    uint64_t bytes = 0;
    uint64_t cost = 0;
    std::vector<Timestamp> refs;  // most recent last, size <= k
    uint32_t bucket = 0;          // recorded-reference bucket R_i
    double key = 0.0;             // stored (possibly stale) quantized key
    uint64_t seq = 0;
    Timestamp eval = 0;
  };
  struct Retained {
    std::string id;
    uint64_t bytes = 0;
    uint64_t cost = 0;
    std::vector<Timestamp> refs;
  };

  double Quantize(double profit) const {
    if (opts_.profit_quant_steps == 0) return profit;
    if (!(profit > 0.0)) return -1.0e9;
    const double level = std::floor(
        std::log2(profit) * static_cast<double>(opts_.profit_quant_steps));
    return level < -1.0e9 ? -1.0e9 : level;
  }

  void RecordRef(std::vector<Timestamp>* refs, Timestamp now) {
    refs->push_back(now);
    if (refs->size() > opts_.k) refs->erase(refs->begin());
  }

  static std::optional<double> RateOf(const std::vector<Timestamp>& refs,
                                      Timestamp now) {
    if (refs.empty()) return std::nullopt;
    const Timestamp oldest = refs.front();
    if (now <= oldest) {
      if (refs.size() == 1) return std::nullopt;
      return static_cast<double>(refs.size());
    }
    return static_cast<double>(refs.size()) /
           static_cast<double>(now - oldest);
  }

  static double ProfitOf(const std::vector<Timestamp>& refs, uint64_t cost,
                         uint64_t bytes, Timestamp now) {
    const double cpb =
        static_cast<double>(cost) / static_cast<double>(bytes);
    const auto rate = RateOf(refs, now);
    return rate.has_value() ? *rate * cpb : cpb;
  }

  void RefreshKey(Rec* rec, Timestamp now) {
    const double key =
        Quantize(ProfitOf(rec->refs, rec->cost, rec->bytes, now));
    const uint32_t bucket = static_cast<uint32_t>(rec->refs.size());
    rec->eval = now;
    if (rec->bucket == bucket && rec->key == key) return;  // skip
    rec->bucket = bucket;
    rec->key = key;
    rec->seq = ++seq_;  // a tree re-key reassigns the tie-break seq
  }

  /// Indices of cached_ in ascending stored-key order (the index walk
  /// visits entries in the pre-walk stored order; refreshes only move
  /// already-visited entries earlier).
  std::vector<size_t> StoredOrder() const {
    std::vector<size_t> order(cached_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      const Rec& x = cached_[a];
      const Rec& y = cached_[b];
      if (x.bucket != y.bucket) return x.bucket < y.bucket;
      if (x.key != y.key) return x.key < y.key;
      return x.seq < y.seq;
    });
    return order;
  }

  void MaybeSweep(Timestamp now) {
    if (++refs_since_sweep_ < opts_.sweep_interval) return;
    refs_since_sweep_ = 0;
    if (!opts_.retain_reference_info || retained_.empty()) return;
    // Bounded front probe: re-evaluate the first kMinProfitProbe
    // entries of the stored order, re-keying them in walk order.
    double min_profit = std::numeric_limits<double>::infinity();
    std::vector<size_t> order = StoredOrder();
    for (size_t i = 0; i < order.size() && i < LncCache::kMinProfitProbe;
         ++i) {
      Rec* rec = &cached_[order[i]];
      min_profit = std::min(
          min_profit, ProfitOf(rec->refs, rec->cost, rec->bytes, now));
      RefreshKey(rec, now);
    }
    if (std::isinf(min_profit)) return;
    for (auto it = retained_.begin(); it != retained_.end();) {
      if (ProfitOf(it->refs, it->cost, it->bytes, now) < min_profit) {
        it = retained_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void OnMiss(const QueryDescriptor& d, Timestamp now) {
    // Miss-time amortized aging: re-evaluate the longest-unevaluated
    // entries round-robin, exactly as RefreshSomeLazy does.
    for (uint32_t i = 0;
         i < opts_.lazy_refresh_per_miss && !queue_.empty(); ++i) {
      Rec* aged = FindCached(queue_.front());
      RefreshKey(aged, now);
      QueueToBack(aged->id);
    }
    const std::string id(d.query_id());
    std::vector<Timestamp> refs;
    for (auto it = retained_.begin(); it != retained_.end(); ++it) {
      if (it->id == id) {
        refs = it->refs;
        break;
      }
    }
    RecordRef(&refs, now);

    const uint64_t avail =
        used_ >= opts_.capacity_bytes ? 0 : opts_.capacity_bytes - used_;
    if (d.result_bytes <= avail) {
      Insert(d, refs, now);
      return;
    }

    const uint64_t bytes_needed = d.result_bytes - avail;
    std::vector<size_t> order = StoredOrder();
    std::vector<size_t> victims;
    double rate_cost_sum = 0.0, cost_sum = 0.0, size_sum = 0.0;
    uint64_t freed = 0;
    for (size_t i = 0; i < order.size() && freed < bytes_needed; ++i) {
      Rec* rec = &cached_[order[i]];
      const auto rate = RateOf(rec->refs, now);
      rate_cost_sum +=
          (rate.has_value() ? *rate
                            : 1.0 / static_cast<double>(rec->bytes)) *
          static_cast<double>(rec->cost);
      cost_sum += static_cast<double>(rec->cost);
      size_sum += static_cast<double>(rec->bytes);
      RefreshKey(rec, now);
      victims.push_back(order[i]);
      freed += rec->bytes;
    }

    bool admit = true;
    if (opts_.admission) {
      const auto rate = RateOf(refs, now);
      if (rate.has_value()) {
        admit = *rate * static_cast<double>(d.cost) /
                    static_cast<double>(d.result_bytes) >
                rate_cost_sum / size_sum;
      } else {
        admit = static_cast<double>(d.cost) /
                    static_cast<double>(d.result_bytes) >
                cost_sum / size_sum;
      }
    }

    if (admit) {
      // Evict victims (largest index first so erasing is stable).
      std::sort(victims.begin(), victims.end());
      for (size_t v = victims.size(); v-- > 0;) {
        Rec rec = std::move(cached_[victims[v]]);
        cached_.erase(cached_.begin() +
                      static_cast<std::ptrdiff_t>(victims[v]));
        used_ -= rec.bytes;
        ++stats_.evictions;
        QueueRemove(rec.id);
        if (opts_.retain_reference_info) {
          Retain(rec.id, rec.bytes, rec.cost, rec.refs);
        }
      }
      Insert(d, refs, now);
    } else {
      ++stats_.admission_rejections;
      if (opts_.retain_reference_info) {
        Retain(id, d.result_bytes, d.cost, refs);
      }
    }
  }

  void Insert(const QueryDescriptor& d, const std::vector<Timestamp>& refs,
              Timestamp now) {
    Rec rec;
    rec.id = std::string(d.query_id());
    rec.bytes = d.result_bytes;
    rec.cost = d.cost;
    rec.refs = refs;
    rec.key = Quantize(ProfitOf(refs, rec.cost, rec.bytes, now));
    rec.bucket = static_cast<uint32_t>(refs.size());
    rec.seq = ++seq_;
    rec.eval = now;
    used_ += rec.bytes;
    ++stats_.insertions;
    queue_.push_back(rec.id);
    cached_.push_back(std::move(rec));
    if (opts_.retain_reference_info) {
      for (auto it = retained_.begin(); it != retained_.end(); ++it) {
        if (it->id == d.query_id()) {
          retained_.erase(it);
          break;
        }
      }
    }
  }

  void Retain(const std::string& id, uint64_t bytes, uint64_t cost,
              const std::vector<Timestamp>& refs) {
    for (Retained& r : retained_) {
      if (r.id == id) {
        r = Retained{id, bytes, cost, refs};
        return;
      }
    }
    retained_.push_back(Retained{id, bytes, cost, refs});
  }

  Rec* FindCached(std::string_view id) {
    for (Rec& r : cached_) {
      if (r.id == id) return &r;
    }
    return nullptr;
  }

  void QueueToBack(const std::string& id) {
    QueueRemove(id);
    queue_.push_back(id);
  }

  void QueueRemove(const std::string& id) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == id) {
        queue_.erase(it);
        return;
      }
    }
  }

  LncOptions opts_;
  std::vector<Rec> cached_;
  std::vector<std::string> queue_;  // aging order, front = oldest eval
  std::vector<Retained> retained_;
  CacheStats stats_;
  uint64_t used_ = 0;
  uint64_t seq_ = 0;
  uint64_t refs_since_sweep_ = 0;
  Timestamp last_t_ = 0;
};

struct ModelCase {
  uint64_t seed;
  uint32_t quant_steps;
  bool admission;
  uint32_t refresh_per_miss = 0;
};

class LazyModelDifferentialTest
    : public testing::TestWithParam<ModelCase> {};

TEST_P(LazyModelDifferentialTest, MatchesBruteForceModelExactly) {
  const ModelCase param = GetParam();
  LncOptions opts = Opts(30000, 4, param.admission, true);
  opts.profit_quant_steps = param.quant_steps;
  opts.lazy_refresh_per_miss = param.refresh_per_miss;
  LncCache cache(opts);
  LazyLncModel model(opts);

  Rng rng(param.seed);
  Timestamp now = 0;
  for (int i = 0; i < 6000; ++i) {
    now += 1 + rng.NextBounded(kSecond);
    const uint64_t q = rng.NextBounded(211);
    const uint64_t bytes = 60 + (Fnv1a64("s" + std::to_string(q)) % 300);
    const uint64_t cost =
        uint64_t{1} << (Fnv1a64("c" + std::to_string(q)) % 20);
    const QueryDescriptor d = Desc("q" + std::to_string(q), bytes, cost);
    const bool hit_cache = cache.Reference(d, now);
    const bool hit_model = model.Reference(d, now);
    ASSERT_EQ(hit_cache, hit_model)
        << "step " << i << " query " << d.query_id();
    const CacheStats& a = cache.stats();
    const CacheStats& b = model.stats();
    ASSERT_EQ(a.insertions, b.insertions) << "step " << i;
    ASSERT_EQ(a.evictions, b.evictions) << "step " << i;
    ASSERT_EQ(a.admission_rejections, b.admission_rejections)
        << "step " << i;
    ASSERT_EQ(cache.used_bytes(), model.used_bytes()) << "step " << i;
    ASSERT_EQ(cache.retained_count(), model.retained_count())
        << "step " << i;
  }
  // Final membership identical.
  for (int q = 0; q < 211; ++q) {
    const std::string id = "q" + std::to_string(q);
    ASSERT_EQ(cache.Contains(id), model.Contains(id)) << id;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LazyModelDifferentialTest,
    testing::Values(ModelCase{1, 16, true}, ModelCase{2, 16, true},
                    ModelCase{3, 16, false}, ModelCase{5, 0, true},
                    ModelCase{8, 0, false}, ModelCase{13, 4, true},
                    ModelCase{21, 64, true}, ModelCase{34, 16, true},
                    // Miss-time amortized aging on (queue round-robin).
                    ModelCase{55, 16, true, 2},
                    ModelCase{89, 16, false, 1},
                    ModelCase{144, 0, true, 4}));

TEST(LazyEagerAggregateTest, AdversarialWorkloadStaysWithinTolerance) {
  // Near-equal profits are where quantization and staleness can flip
  // individual victim choices; the aggregate paper metrics must still
  // agree tightly. Workload: narrow cost range, sizes alike, heavy
  // churn.
  for (uint64_t seed : {11u, 22u, 33u}) {
    LncOptions lazy_opts = Opts(20000, 4, true, true);
    LncOptions eager_opts = lazy_opts;
    eager_opts.eager_profits = true;
    LncCache lazy(lazy_opts);
    LncCache eager(eager_opts);
    Rng rng(seed);
    Timestamp now = 0;
    for (int i = 0; i < 30000; ++i) {
      now += 1 + rng.NextBounded(kSecond / 4);
      const uint64_t q = rng.NextBounded(500);
      const uint64_t bytes = 80 + (Fnv1a64("s" + std::to_string(q)) % 80);
      const uint64_t cost = 900 + (Fnv1a64("c" + std::to_string(q)) % 200);
      const QueryDescriptor d = Desc("q" + std::to_string(q), bytes, cost);
      lazy.Reference(d, now);
      eager.Reference(d, now);
    }
    EXPECT_TRUE(lazy.CheckInvariants().ok());
    EXPECT_NEAR(lazy.stats().cost_savings_ratio(),
                eager.stats().cost_savings_ratio(), 0.02)
        << "seed " << seed;
    EXPECT_NEAR(lazy.stats().hit_ratio(), eager.stats().hit_ratio(), 0.02)
        << "seed " << seed;
  }
}

TEST(LazyEagerTest, EagerModeMatchesItselfUnderQuantKnob) {
  // The quantization knob is ignored in eager mode (eager is always
  // exact): two eager caches with different quant settings agree.
  LncOptions a = Opts(10000);
  a.eager_profits = true;
  a.profit_quant_steps = 4;
  LncOptions b = a;
  b.profit_quant_steps = 64;
  LncCache ca(a), cb(b);
  Rng rng(5);
  Timestamp now = 0;
  for (int i = 0; i < 3000; ++i) {
    now += 1 + rng.NextBounded(kSecond);
    const uint64_t q = rng.NextBounded(97);
    const QueryDescriptor d =
        Desc("q" + std::to_string(q), 60 + q % 100, 10 + (q * q) % 5000);
    ASSERT_EQ(ca.Reference(d, now), cb.Reference(d, now)) << i;
  }
  EXPECT_EQ(ca.stats().evictions, cb.stats().evictions);
}

}  // namespace
}  // namespace watchman
