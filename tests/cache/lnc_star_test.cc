// Tests of the static LNC* selection and the Theorem 1 property: when
// retrieved sets are small relative to the cache, the greedy density
// ordering is (near-)optimal.

#include "cache/lnc_star.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace watchman {
namespace {

TEST(LncStarTest, EmptyInput) {
  StaticSelection sel = LncStarSelect({}, 100);
  EXPECT_TRUE(sel.chosen.empty());
  EXPECT_DOUBLE_EQ(sel.expected_saving, 0.0);
}

TEST(LncStarTest, PicksByDensity) {
  // Densities p*c/s: a: 0.02, b: 0.06, c: 0.01.
  std::vector<StaticSet> sets{
      {0.2, 10.0, 100},
      {0.3, 20.0, 100},
      {0.1, 10.0, 100},
  };
  StaticSelection sel = LncStarSelect(sets, 200);
  ASSERT_EQ(sel.chosen.size(), 2u);
  EXPECT_EQ(sel.chosen[0], 0u);
  EXPECT_EQ(sel.chosen[1], 1u);
  EXPECT_DOUBLE_EQ(sel.expected_saving, 0.2 * 10.0 + 0.3 * 20.0);
  EXPECT_EQ(sel.used_bytes, 200u);
}

TEST(LncStarTest, StopsAtFirstViolation) {
  // The paper's construction assigns items from the density-sorted list
  // until the capacity would be violated -- it does not skip past the
  // violating item even when a later, smaller item would still fit.
  std::vector<StaticSet> sets{
      {0.9, 100.0, 80},   // density 1.125: taken (80/100 used)
      {0.4, 100.0, 40},   // density 1.0: would overflow -> stop
      {0.05, 100.0, 10},  // density 0.5: would fit, but never reached
  };
  StaticSelection sel = LncStarSelect(sets, 100);
  ASSERT_EQ(sel.chosen.size(), 1u);
  EXPECT_EQ(sel.chosen[0], 0u);
}

TEST(OptimalSelectTest, SolvesSmallKnapsackExactly) {
  std::vector<StaticSet> sets{
      {1.0, 60.0, 10},
      {1.0, 100.0, 20},
      {1.0, 120.0, 30},
  };
  // Classic knapsack: capacity 50 -> items 2 and 3 (220).
  StaticSelection sel = OptimalSelect(sets, 50);
  EXPECT_DOUBLE_EQ(sel.expected_saving, 220.0);
  ASSERT_EQ(sel.chosen.size(), 2u);
  EXPECT_EQ(sel.chosen[0], 1u);
  EXPECT_EQ(sel.chosen[1], 2u);
}

TEST(ExpectedMissCostTest, ComplementOfSavings) {
  std::vector<StaticSet> sets{
      {0.5, 10.0, 10},
      {0.5, 30.0, 10},
  };
  StaticSelection sel = LncStarSelect(sets, 10);  // takes index 1
  EXPECT_DOUBLE_EQ(ExpectedMissCost(sets, sel), 0.5 * 10.0);
}

TEST(LncStarTest, GreedyEqualsOptimalWhenSizesUniform) {
  // With equal sizes, density order is exactly optimal.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<StaticSet> sets;
    for (int i = 0; i < 12; ++i) {
      sets.push_back({rng.NextDouble(), 1.0 + rng.NextDouble() * 99.0, 10});
    }
    const uint64_t capacity = 10 * (1 + rng.NextBounded(11));
    StaticSelection greedy = LncStarSelect(sets, capacity);
    StaticSelection optimal = OptimalSelect(sets, capacity);
    EXPECT_NEAR(greedy.expected_saving, optimal.expected_saving, 1e-9)
        << "trial " << trial;
  }
}

// Theorem 1 (property sweep): when item sizes are small relative to the
// cache, the greedy solution's expected saving is within a vanishing
// factor of the exact optimum -- the paper's near-full-cache argument.
class LncStarApproxTest : public testing::TestWithParam<uint64_t> {};

TEST_P(LncStarApproxTest, GreedyNearOptimalForSmallItems) {
  const uint64_t max_size = GetParam();
  Rng rng(1000 + max_size);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<StaticSet> sets;
    for (int i = 0; i < 16; ++i) {
      sets.push_back({rng.NextDouble(),
                      1.0 + rng.NextDouble() * 999.0,
                      1 + rng.NextBounded(max_size)});
    }
    // Selective capacity: the 16 items total ~8*max_size on average.
    const uint64_t capacity = 6 * max_size;
    StaticSelection greedy = LncStarSelect(sets, capacity);
    StaticSelection optimal = OptimalSelect(sets, capacity);
    ASSERT_GT(optimal.expected_saving, 0.0);
    // Greedy loses at most one item's worth of density near the
    // boundary; with small items that is a small relative loss.
    EXPECT_GE(greedy.expected_saving, 0.8 * optimal.expected_saving)
        << "trial " << trial << " max_size " << max_size;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, LncStarApproxTest,
                         testing::Values(4, 8, 16, 32));

TEST(LncStarTest, GreedyFillsNearlyAllSpaceWithSmallItems) {
  Rng rng(77);
  std::vector<StaticSet> sets;
  for (int i = 0; i < 200; ++i) {
    sets.push_back({rng.NextDouble(), 1.0 + rng.NextDouble() * 99.0,
                    1 + rng.NextBounded(16)});
  }
  const uint64_t capacity = 400;
  StaticSelection sel = LncStarSelect(sets, capacity);
  // The assumption behind eq. (11): nearly all cache space is usable.
  EXPECT_GE(sel.used_bytes, capacity - 16);
}

}  // namespace
}  // namespace watchman
