// Tests of the thread-safe sharded cache front-end: routing,
// aggregation, coherence across shards, and races between concurrent
// references, probes and invalidations.

#include "cache/sharded_query_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/lru_cache.h"
#include "sim/policy_config.h"
#include "util/hash.h"
#include "util/random.h"

namespace watchman {
namespace {

QueryDescriptor Desc(const std::string& id, uint64_t bytes, uint64_t cost) {
  return QueryDescriptor::Make(id, bytes, cost);
}

std::unique_ptr<ShardedQueryCache> MakeLru(uint64_t capacity,
                                           size_t shards) {
  ShardedQueryCache::Options options;
  options.capacity_bytes = capacity;
  options.num_shards = shards;
  return std::make_unique<ShardedQueryCache>(
      options, [](uint64_t shard_capacity) {
        return std::make_unique<LruCache>(shard_capacity);
      });
}

TEST(ShardedQueryCacheTest, NormalizesShardCountAndSplitsCapacity) {
  auto cache = MakeLru(1000, 3);  // rounds up to 4 shards
  EXPECT_EQ(cache->num_shards(), 4u);
  EXPECT_EQ(cache->capacity_bytes(), 1000u);
  uint64_t sum = 0;
  for (size_t i = 0; i < cache->num_shards(); ++i) {
    sum += cache->shard(i).capacity_bytes();
  }
  EXPECT_EQ(sum, 1000u);
  EXPECT_EQ(cache->name(), "lrux4");
}

TEST(ShardedQueryCacheTest, TinyCapacityCapsTheShardFanOut) {
  // 100 bytes cannot feed 128 one-byte-plus shards; the shard count
  // shrinks until every shard owns capacity.
  auto cache = MakeLru(100, 128);
  EXPECT_LE(cache->num_shards(), 64u);
  for (size_t i = 0; i < cache->num_shards(); ++i) {
    EXPECT_GE(cache->shard(i).capacity_bytes(), 1u);
  }
  cache->Reference(Desc("q", 1, 1), 1);
  EXPECT_TRUE(cache->Contains("q"));
}

TEST(ShardedQueryCacheTest, ReferenceRoutesAndAggregates) {
  auto cache = MakeLru(1 << 20, 8);
  for (int i = 0; i < 200; ++i) {
    const std::string id = "q" + std::to_string(i);
    EXPECT_FALSE(cache->Reference(Desc(id, 100, 10), i + 1));
    EXPECT_TRUE(cache->Contains(id));
  }
  EXPECT_TRUE(cache->Reference(Desc("q7", 100, 10), 300));
  const CacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, 201u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 200u);
  EXPECT_EQ(cache->entry_count(), 200u);
  EXPECT_EQ(cache->used_bytes(), 200u * 100u);
  // Entries actually spread across shards.
  size_t populated = 0;
  for (size_t i = 0; i < cache->num_shards(); ++i) {
    if (cache->shard(i).entry_count() > 0) ++populated;
  }
  EXPECT_GT(populated, 1u);
  EXPECT_TRUE(cache->CheckInvariants().ok());
}

TEST(ShardedQueryCacheTest, EraseReachesTheOwningShard) {
  auto cache = MakeLru(1 << 20, 8);
  for (int i = 0; i < 64; ++i) {
    cache->Reference(Desc("q" + std::to_string(i), 50, 5), i + 1);
  }
  for (int i = 0; i < 64; ++i) {
    const std::string id = "q" + std::to_string(i);
    EXPECT_TRUE(cache->Erase(id)) << id;
    EXPECT_FALSE(cache->Contains(id)) << id;
  }
  EXPECT_FALSE(cache->Erase("q0"));
  EXPECT_EQ(cache->entry_count(), 0u);
  EXPECT_EQ(cache->used_bytes(), 0u);
}

TEST(ShardedQueryCacheTest, TryReferenceCachedProbesWithoutCounting) {
  auto cache = MakeLru(1 << 20, 4);
  EXPECT_FALSE(cache->TryReferenceCached(Desc("a", 100, 10), 1));
  EXPECT_EQ(cache->stats().lookups, 0u);  // miss probes are free
  cache->Reference(Desc("a", 100, 10), 2);
  EXPECT_TRUE(cache->TryReferenceCached(Desc("a", 100, 10), 3));
  const CacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ShardedQueryCacheTest, EvictionListenerFiresAcrossShards) {
  auto cache = MakeLru(1 << 20, 8);
  std::vector<std::string> evicted;
  cache->SetEvictionListener(
      [&evicted](const QueryDescriptor& d) { evicted.emplace_back(d.query_id()); });
  cache->Reference(Desc("a", 100, 10), 1);
  cache->Reference(Desc("b", 100, 10), 2);
  cache->Erase("a");
  cache->Erase("b");
  EXPECT_EQ(evicted.size(), 2u);
}

TEST(ShardedQueryCacheTest, LncShardsKeepPolicyMachinery) {
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  config.k = 4;
  auto cache = MakeShardedCache(config, 64 << 10, 8);
  EXPECT_EQ(cache->name(), "lnc-ra(k=4)x8");
  Rng rng(7);
  Timestamp t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += 1000;
    const std::string id = "q" + std::to_string(rng.NextBounded(300));
    const uint64_t bytes = 64 + (Fnv1a64(id) % 2048);
    cache->Reference(Desc(id, bytes, 100 + bytes), t);
  }
  EXPECT_TRUE(cache->CheckInvariants().ok());
  EXPECT_LE(cache->used_bytes(), cache->capacity_bytes());
  EXPECT_GT(cache->stats().hits, 0u);
  EXPECT_GT(cache->retained_count(), 0u);
}

// Concurrency stress: references, probes and invalidations race from
// several threads; afterwards the aggregate accounting must balance and
// every shard's invariants (index vs. bytes) must hold. Run under TSan
// in CI.
TEST(ShardedQueryCacheStressTest, ConcurrentReferenceEraseContains) {
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  config.k = 4;
  auto cache = MakeShardedCache(config, 256 << 10, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kIdSpace = 512;
  std::atomic<Timestamp> clock{0};
  std::atomic<uint64_t> lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string id =
            "q" + std::to_string(rng.NextBounded(kIdSpace));
        const uint64_t bytes = 64 + (Fnv1a64(id) % 1024);
        const Timestamp now = clock.fetch_add(1) + 1;
        const uint32_t op = static_cast<uint32_t>(rng.NextBounded(100));
        if (op < 80) {
          cache->Reference(Desc(id, bytes, 10 + bytes / 8), now);
          lookups.fetch_add(1);
        } else if (op < 90) {
          cache->TryReferenceCached(Desc(id, bytes, 10 + bytes / 8), now);
        } else if (op < 95) {
          cache->Contains(id);
        } else {
          cache->Erase(id);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(cache->CheckInvariants().ok());
  const CacheStats stats = cache->stats();
  EXPECT_GE(stats.lookups, lookups.load());  // probes may add hits
  EXPECT_LE(stats.hits, stats.lookups);
  EXPECT_LE(cache->used_bytes(), cache->capacity_bytes());
  EXPECT_EQ(stats.bytes_inserted - stats.bytes_evicted,
            cache->used_bytes());
}

TEST(ShardedLockStatsTest, SingleThreadedOpsAreCountedAndUncontended) {
  PolicyConfig config;
  config.kind = PolicyKind::kLru;
  auto cache = MakeShardedCache(config, 1 << 20, 8);
  Timestamp now = 0;
  uint64_t ops = 0;
  for (int i = 0; i < 500; ++i) {
    cache->Reference(Desc("q" + std::to_string(i % 64), 100, 10), ++now);
    ++ops;
  }
  for (int i = 0; i < 64; ++i) {
    cache->Contains("q" + std::to_string(i));
    ++ops;
  }
  cache->Erase("q1");
  ++ops;
  const auto total = cache->total_lock_stats();
  // Every routed operation takes exactly one shard-lock acquisition;
  // a single thread can never contend.
  EXPECT_EQ(total.acquisitions, ops);
  EXPECT_EQ(total.contended, 0u);
  EXPECT_EQ(total.uncontended(), ops);
  EXPECT_DOUBLE_EQ(total.contention_ratio(), 0.0);
  // Per-shard counters sum to the total and only touched shards count.
  uint64_t sum = 0;
  for (size_t s = 0; s < cache->num_shards(); ++s) {
    sum += cache->lock_stats(s).acquisitions;
  }
  EXPECT_EQ(sum, ops);
}

TEST(ShardedLockStatsTest, ConcurrentCountersStayConsistent) {
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  auto cache = MakeShardedCache(config, 1 << 20, 4);
  constexpr int kThreads = 4;
  constexpr int kOps = 3000;
  std::atomic<Timestamp> clock{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(77 + t);
      for (int i = 0; i < kOps; ++i) {
        const std::string id = "q" + std::to_string(rng.NextBounded(256));
        cache->Reference(Desc(id, 64 + (Fnv1a64(id) % 256), 10),
                         clock.fetch_add(1) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto total = cache->total_lock_stats();
  EXPECT_EQ(total.acquisitions,
            static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_LE(total.contended, total.acquisitions);
  EXPECT_EQ(total.uncontended() + total.contended, total.acquisitions);
}

}  // namespace
}  // namespace watchman
