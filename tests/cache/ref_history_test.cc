#include "cache/ref_history.h"

#include <gtest/gtest.h>

namespace watchman {
namespace {

TEST(ReferenceHistoryTest, StartsEmpty) {
  ReferenceHistory h(4);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.k(), 4u);
  EXPECT_FALSE(h.EstimateRate(100).has_value());
}

TEST(ReferenceHistoryTest, RecordsUpToK) {
  ReferenceHistory h(3);
  h.Record(10);
  h.Record(20);
  EXPECT_EQ(h.size(), 2u);
  h.Record(30);
  h.Record(40);
  EXPECT_EQ(h.size(), 3u);  // capped at K
  EXPECT_EQ(h.last(), 40u);
  EXPECT_EQ(h.oldest(), 20u);  // 10 rolled out of the window
}

TEST(ReferenceHistoryTest, RecentAccessor) {
  ReferenceHistory h(4);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  EXPECT_EQ(h.recent(0), 3u);
  EXPECT_EQ(h.recent(1), 2u);
  EXPECT_EQ(h.recent(2), 1u);
}

TEST(ReferenceHistoryTest, RateMatchesPaperFormula) {
  // lambda = K / (t - t_K): 3 references, oldest at 100, now = 400
  // -> 3 / 300 references per microsecond.
  ReferenceHistory h(4);
  h.Record(100);
  h.Record(200);
  h.Record(250);
  auto rate = h.EstimateRate(400);
  ASSERT_TRUE(rate.has_value());
  EXPECT_DOUBLE_EQ(*rate, 3.0 / 300.0);
}

TEST(ReferenceHistoryTest, RateUsesWindowOldestWhenFull) {
  ReferenceHistory h(2);
  h.Record(100);
  h.Record(200);
  h.Record(300);  // 100 rolls out: window = {200, 300}
  auto rate = h.EstimateRate(400);
  ASSERT_TRUE(rate.has_value());
  EXPECT_DOUBLE_EQ(*rate, 2.0 / 200.0);
}

TEST(ReferenceHistoryTest, AgingReducesRate) {
  // Without new references the estimate decays as time passes --
  // eq. 3 includes the current time precisely for this aging effect.
  ReferenceHistory h(4);
  h.Record(100);
  h.Record(200);
  const double early = *h.EstimateRate(300);
  const double late = *h.EstimateRate(3000);
  EXPECT_GT(early, late);
}

TEST(ReferenceHistoryTest, SingleReferenceAtNowHasNoRate) {
  // The "first retrieval" case: the only information is the reference
  // happening right now -> no rate, the caller must use e-profit.
  ReferenceHistory h(4);
  h.Record(500);
  EXPECT_FALSE(h.EstimateRate(500).has_value());
  // But a strictly later evaluation time yields a rate.
  EXPECT_TRUE(h.EstimateRate(501).has_value());
}

TEST(ReferenceHistoryTest, SimultaneousReferencesGuarded) {
  ReferenceHistory h(4);
  h.Record(500);
  h.Record(500);
  auto rate = h.EstimateRate(500);
  ASSERT_TRUE(rate.has_value());
  EXPECT_DOUBLE_EQ(*rate, 2.0);  // treated as a 1-microsecond window
}

TEST(ReferenceHistoryTest, ClearResets) {
  ReferenceHistory h(4);
  h.Record(1);
  h.Record(2);
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.EstimateRate(10).has_value());
}

TEST(ReferenceHistoryTest, KOneBehavesLikeLastReference) {
  ReferenceHistory h(1);
  h.Record(100);
  h.Record(900);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.last(), 900u);
  EXPECT_EQ(h.oldest(), 900u);
  EXPECT_DOUBLE_EQ(*h.EstimateRate(1000), 1.0 / 100.0);
}

TEST(ReferenceHistoryTest, CopySemantics) {
  ReferenceHistory a(3);
  a.Record(10);
  a.Record(20);
  ReferenceHistory b = a;
  b.Record(30);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(a.last(), 20u);
  EXPECT_EQ(b.last(), 30u);
}

class ReferenceHistoryKSweepTest : public testing::TestWithParam<size_t> {};

TEST_P(ReferenceHistoryKSweepTest, WindowInvariants) {
  const size_t k = GetParam();
  ReferenceHistory h(k);
  Timestamp t = 0;
  for (int i = 0; i < 100; ++i) {
    t += 7;
    h.Record(t);
    EXPECT_LE(h.size(), k);
    EXPECT_EQ(h.size(), std::min<size_t>(k, static_cast<size_t>(i + 1)));
    EXPECT_EQ(h.last(), t);
    EXPECT_LE(h.oldest(), h.last());
    // recent() is strictly non-increasing going back in time.
    for (size_t j = 1; j < h.size(); ++j) {
      EXPECT_GE(h.recent(j - 1), h.recent(j));
    }
    auto rate = h.EstimateRate(t + 1);
    ASSERT_TRUE(rate.has_value());
    // size/(t+1-oldest) by definition.
    EXPECT_DOUBLE_EQ(*rate, static_cast<double>(h.size()) /
                                static_cast<double>(t + 1 - h.oldest()));
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, ReferenceHistoryKSweepTest,
                         testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace watchman
