// Behavioural tests of the baseline replacement policies: LRU, LRU-K,
// LFU, LCS and GreedyDual-Size.

#include <gtest/gtest.h>

#include <string>

#include "cache/gds_cache.h"
#include "cache/lcs_cache.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "cache/lru_k_cache.h"

namespace watchman {
namespace {

QueryDescriptor Desc(const std::string& id, uint64_t bytes, uint64_t cost) {
  return QueryDescriptor::Make(id, bytes, cost);
}

// ---------------------------------------------------------------- LRU

TEST(LruTest, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.Reference(Desc("a", 100, 1), 1);
  cache.Reference(Desc("b", 100, 1), 2);
  cache.Reference(Desc("c", 100, 1), 3);
  cache.Reference(Desc("a", 100, 1), 4);  // touch a -> b is LRU
  cache.Reference(Desc("d", 100, 1), 5);  // evicts b
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_TRUE(cache.Contains("d"));
}

TEST(LruTest, EvictsMultipleForLargeInsert) {
  LruCache cache(300);
  cache.Reference(Desc("a", 100, 1), 1);
  cache.Reference(Desc("b", 100, 1), 2);
  cache.Reference(Desc("c", 100, 1), 3);
  cache.Reference(Desc("big", 200, 1), 4);  // evicts a and b, keeps c
  EXPECT_TRUE(cache.Contains("big"));
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_LE(cache.used_bytes(), 300u);
}

TEST(LruTest, NameIsLru) {
  LruCache cache(100);
  EXPECT_EQ(cache.name(), "lru");
}

// -------------------------------------------------------------- LRU-K

LruKCache MakeLruK(uint64_t capacity, size_t k) {
  LruKCache::LruKOptions opts;
  opts.capacity_bytes = capacity;
  opts.k = k;
  return LruKCache(opts);
}

TEST(LruKTest, PrefersEvictingSetsWithoutKReferences) {
  LruKCache cache = MakeLruK(300, 2);
  // "hot" has two references, "cold1"/"cold2" only one each.
  cache.Reference(Desc("hot", 100, 1), 1);
  cache.Reference(Desc("hot", 100, 1), 2);
  cache.Reference(Desc("cold1", 100, 1), 3);
  cache.Reference(Desc("cold2", 100, 1), 4);
  // Inserting another set must evict a cold one, not hot -- even though
  // hot's last reference is the oldest.
  cache.Reference(Desc("new", 100, 1), 5);
  EXPECT_TRUE(cache.Contains("hot"));
  EXPECT_FALSE(cache.Contains("cold1"));  // LRU among the <K bucket
}

TEST(LruKTest, EvictsByOldestKthReference) {
  LruKCache cache = MakeLruK(200, 2);
  cache.Reference(Desc("x", 100, 1), 1);
  cache.Reference(Desc("x", 100, 1), 10);   // x: 2nd ref at 10, K-dist base 1
  cache.Reference(Desc("y", 100, 1), 2);
  cache.Reference(Desc("y", 100, 1), 20);   // y: K-th recent = 2
  // Both have K refs; x's K-th most recent (1) < y's (2) -> evict x.
  cache.Reference(Desc("z", 100, 1), 30);
  EXPECT_FALSE(cache.Contains("x"));
  EXPECT_TRUE(cache.Contains("y"));
}

TEST(LruKTest, RetainedHistorySurvivesEviction) {
  LruKCache cache = MakeLruK(200, 2);
  cache.Reference(Desc("a", 100, 1), 1 * kSecond);
  cache.Reference(Desc("a", 100, 1), 2 * kSecond);
  cache.Reference(Desc("b", 100, 1), 3 * kSecond);
  cache.Reference(Desc("c", 100, 1), 4 * kSecond);  // evicts someone
  EXPECT_GT(cache.retained_count(), 0u);
  // Re-referencing a restores its history: with 2 prior references it
  // should instantly outrank the 1-reference entries.
  cache.Reference(Desc("a", 100, 1), 5 * kSecond);
  cache.Reference(Desc("d", 100, 1), 6 * kSecond);
  EXPECT_TRUE(cache.Contains("a"));
}

TEST(LruKTest, RetainedHistoryExpiresAfterTimeout) {
  LruKCache::LruKOptions opts;
  opts.capacity_bytes = 200;
  opts.k = 2;
  opts.retained_timeout = 5 * kMinute;
  opts.sweep_interval = 1;
  LruKCache cache(opts);
  cache.Reference(Desc("a", 100, 1), 1 * kMinute);
  cache.Reference(Desc("b", 100, 1), 2 * kMinute);
  cache.Reference(Desc("c", 100, 1), 3 * kMinute);  // evicts a, retains
  EXPECT_GT(cache.retained_count(), 0u);
  // 10+ minutes later every old record has expired; at most the record
  // retained by the very last eviction (which happens after the sweep)
  // can remain.
  cache.Reference(Desc("d", 100, 1), 13 * kMinute);
  cache.Reference(Desc("e", 100, 1), 14 * kMinute);
  EXPECT_LE(cache.retained_count(), 1u);
}

TEST(LruKTest, NameIncludesK) {
  LruKCache cache = MakeLruK(100, 3);
  EXPECT_EQ(cache.name(), "lru-3");
}

// ---------------------------------------------------------------- LFU

TEST(LfuTest, EvictsLeastFrequentlyUsed) {
  LfuCache cache(300);
  cache.Reference(Desc("popular", 100, 1), 1);
  cache.Reference(Desc("popular", 100, 1), 2);
  cache.Reference(Desc("popular", 100, 1), 3);
  cache.Reference(Desc("rare", 100, 1), 4);
  cache.Reference(Desc("other", 100, 1), 5);
  cache.Reference(Desc("new", 100, 1), 6);  // evicts rare (ties: LRU)
  EXPECT_TRUE(cache.Contains("popular"));
  EXPECT_FALSE(cache.Contains("rare"));
}

TEST(LfuTest, TiesBrokenByRecency) {
  LfuCache cache(200);
  cache.Reference(Desc("a", 100, 1), 1);
  cache.Reference(Desc("b", 100, 1), 2);
  cache.Reference(Desc("c", 100, 1), 3);  // a and b tie at 1 ref; a older
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
}

// ---------------------------------------------------------------- LCS

TEST(LcsTest, EvictsLargestFirst) {
  LcsCache cache(1000);
  cache.Reference(Desc("small", 100, 1), 1);
  cache.Reference(Desc("large", 600, 1), 2);
  cache.Reference(Desc("mid", 250, 1), 3);
  cache.Reference(Desc("new", 300, 1), 4);  // must evict "large" only
  EXPECT_FALSE(cache.Contains("large"));
  EXPECT_TRUE(cache.Contains("small"));
  EXPECT_TRUE(cache.Contains("mid"));
  EXPECT_TRUE(cache.Contains("new"));
}

TEST(LcsTest, RecencyBreaksSizeTies) {
  LcsCache cache(300);
  cache.Reference(Desc("a", 150, 1), 1);
  cache.Reference(Desc("b", 150, 1), 2);
  cache.Reference(Desc("c", 100, 1), 3);  // evicts a (same size, older)
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
}

// ---------------------------------------------------------------- GDS

TEST(GdsTest, PrefersKeepingHighValueSmallSets) {
  GdsCache cache(300);
  // H = L + cost/size: "gem" has much higher H than "dud".
  cache.Reference(Desc("gem", 100, 10000), 1);
  cache.Reference(Desc("dud", 100, 10), 2);
  cache.Reference(Desc("mid", 100, 1000), 3);
  cache.Reference(Desc("new", 100, 500), 4);  // evicts dud (min H)
  EXPECT_TRUE(cache.Contains("gem"));
  EXPECT_FALSE(cache.Contains("dud"));
}

TEST(GdsTest, InflationRises) {
  GdsCache cache(200);
  cache.Reference(Desc("a", 100, 100), 1);
  cache.Reference(Desc("b", 100, 200), 2);
  EXPECT_DOUBLE_EQ(cache.inflation(), 0.0);
  cache.Reference(Desc("c", 100, 300), 3);  // eviction inflates L
  EXPECT_GT(cache.inflation(), 0.0);
  const double l1 = cache.inflation();
  cache.Reference(Desc("d", 100, 400), 4);
  EXPECT_GE(cache.inflation(), l1);  // monotone non-decreasing
}

TEST(GdsTest, AgingEventuallyEvictsFormerlyValuableSets) {
  GdsCache cache(200);
  cache.Reference(Desc("old_gem", 100, 5000), 1);
  // A stream of moderately valuable sets keeps inflating L; without
  // further references old_gem's H stays fixed and is eventually lowest.
  Timestamp t = 1;
  for (int i = 0; i < 100 && cache.Contains("old_gem"); ++i) {
    cache.Reference(Desc("s" + std::to_string(i), 100, 2000), ++t);
    cache.Reference(Desc("s" + std::to_string(i), 100, 2000), ++t);
  }
  EXPECT_FALSE(cache.Contains("old_gem"));
}

}  // namespace
}  // namespace watchman
