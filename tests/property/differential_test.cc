// Differential tests: the production cache implementations against
// small, obviously correct reference models on randomized workloads.

#include <gtest/gtest.h>

#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/lnc_cache.h"
#include "cache/lru_cache.h"
#include "cache/query_descriptor.h"
#include "util/random.h"

namespace watchman {
namespace {

QueryDescriptor Desc(const std::string& id, uint64_t bytes, uint64_t cost) {
  return QueryDescriptor::Make(id, bytes, cost);
}

/// Textbook LRU over variable-size items: ordered list, most recent at
/// the front; evict from the back until the new item fits.
class ReferenceLru {
 public:
  explicit ReferenceLru(uint64_t capacity) : capacity_(capacity) {}

  bool Reference(const std::string& id, uint64_t bytes) {
    auto it = index_.find(id);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    if (bytes > capacity_) return false;  // too large: not cached
    while (used_ + bytes > capacity_) {
      const auto& [victim_id, victim_bytes] = order_.back();
      used_ -= victim_bytes;
      index_.erase(victim_id);
      order_.pop_back();
    }
    order_.emplace_front(id, bytes);
    index_[id] = order_.begin();
    used_ += bytes;
    return false;
  }

  bool Contains(const std::string& id) const { return index_.contains(id); }
  uint64_t used() const { return used_; }

 private:
  uint64_t capacity_;
  uint64_t used_ = 0;
  std::list<std::pair<std::string, uint64_t>> order_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, uint64_t>>::iterator>
      index_;
};

class LruDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(LruDifferentialTest, MatchesReferenceModelExactly) {
  const uint64_t capacity = 2000;
  Rng rng(GetParam());
  LruCache cache(capacity);
  ReferenceLru model(capacity);

  Timestamp now = 0;
  for (int i = 0; i < 20000; ++i) {
    ++now;
    const std::string id = "q" + std::to_string(rng.NextBounded(300));
    // Sizes must be a deterministic function of the id (a retrieved
    // set's size never changes between references).
    const uint64_t bytes = 50 + (Fnv1a64(id) % 400);
    const bool hit_model = model.Reference(id, bytes);
    const bool hit_cache = cache.Reference(Desc(id, bytes, 10), now);
    ASSERT_EQ(hit_cache, hit_model) << "step " << i << " id " << id;
    ASSERT_EQ(cache.used_bytes(), model.used()) << "step " << i;
  }
  // Final content identical.
  for (int q = 0; q < 300; ++q) {
    const std::string id = "q" + std::to_string(q);
    ASSERT_EQ(cache.Contains(id), model.Contains(id)) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruDifferentialTest,
                         testing::Values(1, 2, 3, 5, 8, 13));

/// A hand-checkable micro-trace through every policy knob of LNC-RA,
/// asserting the externally visible decisions step by step.
TEST(LncScriptedTest, FigureOneWalkthrough) {
  LncOptions opts;
  opts.capacity_bytes = 250;
  opts.k = 2;
  opts.admission = true;
  opts.retain_reference_info = true;
  opts.sweep_interval = 1000000;  // no sweeps during the script
  LncCache cache(opts);

  auto ref = [&](const char* id, uint64_t bytes, uint64_t cost,
                 Timestamp sec) {
    return cache.Reference(Desc(id, bytes, cost), sec * kSecond);
  };

  // t=1..2: two sets fill the cache via the free-space rule (no
  // admission test, Figure 1 middle case).
  EXPECT_FALSE(ref("a", 100, 1000, 1));
  EXPECT_FALSE(ref("b", 100, 1000, 2));
  EXPECT_EQ(cache.entry_count(), 2u);

  // t=3: 60% of space left is 50 bytes; "c" (100 B) does not fit; its
  // e-profit 2000/100=20 beats the candidate list (profit of "a", the
  // lowest-profit victim) -> admitted, "a" evicted and retained.
  EXPECT_FALSE(ref("c", 100, 2000, 3));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_EQ(cache.retained_count(), 1u);

  // t=4: "junk" with e-profit 1/100 = 0.01 loses against any candidate
  // -> rejected, reference info retained.
  EXPECT_FALSE(ref("junk", 100, 1, 4));
  EXPECT_FALSE(cache.Contains("junk"));
  EXPECT_EQ(cache.stats().admission_rejections, 1u);
  EXPECT_EQ(cache.retained_count(), 2u);

  // t=5: "a" returns. Its retained info (1 ref at t=1) plus this
  // reference gives lambda = 2/(4s); profit = lambda*1000/100 vs the
  // candidates -- "b" has 1 old ref (t=2), lambda_b = 1/(3s), profit_b
  // = lambda_b * 10. profit_a (5) > profit_b (3.33) -> admitted.
  EXPECT_FALSE(ref("a", 100, 1000, 5));
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));

  // t=6: hits update histories only.
  EXPECT_TRUE(ref("a", 100, 1000, 6));
  EXPECT_TRUE(ref("c", 100, 2000, 6));
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

}  // namespace
}  // namespace watchman
