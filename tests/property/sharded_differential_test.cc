// Differential test: a 1-shard ShardedQueryCache must match the
// unsharded policy decision for decision -- same hit sequence, same
// evictions, same byte accounting, bit-identical CSR and HR -- on the
// canonical figure workloads (the fig2/fig5 trace generators and
// seeds). The sharded front-end may only add routing and locking, never
// change policy behaviour.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "cache/query_descriptor.h"
#include "cache/sharded_query_cache.h"
#include "sim/policy_config.h"
#include "storage/schemas.h"
#include "workload/setquery_workload.h"
#include "workload/tpcd_workload.h"

namespace watchman {
namespace {

enum class WorkloadKind { kTpcd, kSetQuery };

// The canonical figure-bench seeds (bench_common.h) on a shortened
// trace: same generators, same reference mix.
const Trace& GetTrace(WorkloadKind kind) {
  static const Trace tpcd = [] {
    Database db = MakeTpcdDatabase();
    TraceGenOptions opts;
    opts.num_queries = 6000;
    opts.seed = 9601;
    return MakeTpcdWorkload(db).GenerateTrace(opts);
  }();
  static const Trace sq = [] {
    Database db = MakeSetQueryDatabase();
    TraceGenOptions opts;
    opts.num_queries = 6000;
    opts.seed = 9602;
    return MakeSetQueryWorkload(db).GenerateTrace(opts);
  }();
  return kind == WorkloadKind::kTpcd ? tpcd : sq;
}

using Param = std::tuple<PolicyKind, WorkloadKind>;

class ShardedDifferentialTest : public testing::TestWithParam<Param> {};

TEST_P(ShardedDifferentialTest, OneShardMatchesUnshardedExactly) {
  const auto [kind, workload] = GetParam();
  const Trace& trace = GetTrace(workload);
  const uint64_t db_bytes =
      workload == WorkloadKind::kTpcd ? (30ull << 20) : (100ull << 20);
  const uint64_t capacity = db_bytes / 100;  // 1% cache

  PolicyConfig config;
  config.kind = kind;
  config.k = 4;
  std::unique_ptr<QueryCache> unsharded = MakeCache(config, capacity);
  std::unique_ptr<ShardedQueryCache> sharded =
      MakeShardedCache(config, capacity, 1);
  ASSERT_EQ(sharded->num_shards(), 1u);

  for (size_t i = 0; i < trace.size(); ++i) {
    const QueryDescriptor d = QueryDescriptor::FromEvent(trace[i]);
    const bool hit_unsharded = unsharded->Reference(d, trace[i].timestamp);
    const bool hit_sharded = sharded->Reference(d, trace[i].timestamp);
    ASSERT_EQ(hit_sharded, hit_unsharded) << "event " << i;
    ASSERT_EQ(sharded->used_bytes(), unsharded->used_bytes())
        << "event " << i;
    ASSERT_EQ(sharded->entry_count(), unsharded->entry_count())
        << "event " << i;
  }

  const CacheStats& a = unsharded->stats();
  const CacheStats b = sharded->stats();
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.insertions, b.insertions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.admission_rejections, b.admission_rejections);
  EXPECT_EQ(a.too_large_rejections, b.too_large_rejections);
  EXPECT_EQ(a.cost_total, b.cost_total);
  EXPECT_EQ(a.cost_saved, b.cost_saved);
  EXPECT_EQ(a.bytes_inserted, b.bytes_inserted);
  EXPECT_EQ(a.bytes_evicted, b.bytes_evicted);
  // CSR and HR bit-identical.
  EXPECT_EQ(a.cost_savings_ratio(), b.cost_savings_ratio());
  EXPECT_EQ(a.hit_ratio(), b.hit_ratio());
  EXPECT_EQ(sharded->retained_count(), unsharded->retained_count());
  EXPECT_TRUE(unsharded->CheckInvariants().ok());
  EXPECT_TRUE(sharded->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ShardedDifferentialTest,
    testing::Combine(
        testing::Values(PolicyKind::kLru, PolicyKind::kLruK,
                        PolicyKind::kLfu, PolicyKind::kLcs, PolicyKind::kGds,
                        PolicyKind::kLncR, PolicyKind::kLncRA,
                        PolicyKind::kInfinite),
        testing::Values(WorkloadKind::kTpcd, WorkloadKind::kSetQuery)),
    [](const testing::TestParamInfo<Param>& info) {
      PolicyConfig config;
      config.kind = std::get<0>(info.param);
      std::string name = PolicyName(config);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      name += std::get<1>(info.param) == WorkloadKind::kTpcd ? "_tpcd"
                                                             : "_sq";
      return name;
    });

// Sanity on the multi-shard path with the paper policy: the aggregate
// accounting balances and the per-shard invariants hold on a real
// workload (decisions legitimately differ from the unsharded cache
// because each shard manages a slice of the capacity).
TEST(ShardedDifferentialTest, EightShardAggregateStaysConsistent) {
  const Trace& trace = GetTrace(WorkloadKind::kTpcd);
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  config.k = 4;
  auto cache = MakeShardedCache(config, (30ull << 20) / 100, 8);
  uint64_t manual_hits = 0;
  for (const QueryEvent& e : trace) {
    if (cache->Reference(QueryDescriptor::FromEvent(e), e.timestamp)) {
      ++manual_hits;
    }
  }
  const CacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, trace.size());
  EXPECT_EQ(stats.hits, manual_hits);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.bytes_inserted - stats.bytes_evicted,
            cache->used_bytes());
  EXPECT_TRUE(cache->CheckInvariants().ok());
}

}  // namespace
}  // namespace watchman
