// Differential test of the open-addressing base index against the old
// map semantics, at the policy level: random insert/erase/lookup traces
// across all six replacement policies must produce exactly the
// hit/eviction sequence implied by cache membership, and the CacheStats
// identities of the old implementation must hold at every step.
//
// The model mirrors the pre-change index shape -- query membership keyed
// by (signature, exact ID) -- and is maintained from the cache's own
// observable events (return values, the eviction listener), so any
// divergence between the flat open table and bucket-map semantics
// (lost entries, false hits under signature collisions, broken
// backward-shift compaction) shows up as a membership or stats
// mismatch. Signatures are deliberately degraded to a tiny pool so
// collisions and long probe clusters are the common case.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "sim/policy_config.h"
#include "util/random.h"

namespace watchman {
namespace {

struct TracedStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t listener_evictions = 0;
};

class IndexDifferentialTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(IndexDifferentialTest, RandomTraceMatchesMembershipModel) {
  PolicyConfig config;
  config.kind = GetParam();
  config.k = 2;
  // Small capacity relative to the pool: constant eviction pressure.
  std::unique_ptr<QueryCache> cache = MakeCache(config, 64 * 1024);

  constexpr size_t kPool = 384;
  std::vector<QueryDescriptor> pool;
  pool.reserve(kPool);
  Rng rng(0x5EED + static_cast<uint64_t>(GetParam()));
  for (size_t i = 0; i < kPool; ++i) {
    QueryDescriptor d;
    const std::string id = "q\x1f" + std::to_string(i);
    // Degraded signatures: only 24 distinct values over 384 queries, so
    // the index lives under permanent collision pressure. Exact-ID
    // matching must still keep every query distinct.
    d.key = QueryKey(id, Signature{0xC011 + rng.NextBounded(24)});
    d.result_bytes = 256 + rng.NextBounded(2048);
    d.cost = 1 + rng.NextBounded(1000);
    pool.push_back(std::move(d));
  }

  // Model of the old index semantics: the set of cached query IDs.
  std::set<std::string> model;
  TracedStats traced;
  cache->SetEvictionListener([&](const QueryDescriptor& d) {
    ++traced.listener_evictions;
    ASSERT_EQ(model.erase(std::string(d.query_id())), 1u)
        << "evicted a query the model does not hold: " << d.query_id();
  });

  Timestamp now = 0;
  for (int op = 0; op < 30000; ++op) {
    const QueryDescriptor& d = pool[rng.NextBounded(kPool)];
    const std::string id(d.query_id());
    const uint64_t roll = rng.NextBounded(100);
    if (roll < 80) {
      // Reference: must hit exactly when the model holds the query.
      const bool expect_hit = model.contains(id);
      const bool hit = cache->Reference(d, ++now);
      ASSERT_EQ(hit, expect_hit) << "op " << op << " query " << id;
      ++traced.lookups;
      if (hit) ++traced.hits;
      if (!hit && cache->Contains(d.key)) model.insert(id);
    } else if (roll < 90) {
      // Erase (coherence path): agrees with membership, fires the
      // listener which updates the model.
      const bool expect_present = model.contains(id);
      ASSERT_EQ(cache->Erase(d.key), expect_present);
    } else {
      // Lookup-only probe. (The by-ID convenience overload is not
      // usable here: it would recompute the true signature, while this
      // trace runs under deliberately degraded ones.)
      ASSERT_EQ(cache->Contains(d.key), model.contains(id));
    }
    ASSERT_EQ(cache->entry_count(), model.size());
  }

  // Stats identities of the old implementation.
  const CacheStats& stats = cache->stats();
  EXPECT_EQ(stats.lookups, traced.lookups);
  EXPECT_EQ(stats.hits, traced.hits);
  EXPECT_EQ(stats.evictions, traced.listener_evictions);
  EXPECT_EQ(stats.insertions - stats.evictions, cache->entry_count());
  EXPECT_LE(stats.hits, stats.lookups);
  EXPECT_LE(stats.cost_saved, stats.cost_total);
  EXPECT_GT(stats.evictions, 0u) << "trace never exercised eviction";
  EXPECT_TRUE(cache->CheckInvariants().ok());

  // Final full-membership sweep.
  for (const QueryDescriptor& d : pool) {
    EXPECT_EQ(cache->Contains(d.key),
              model.contains(std::string(d.query_id())));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, IndexDifferentialTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kLruK,
                                           PolicyKind::kLfu, PolicyKind::kLcs,
                                           PolicyKind::kGds, PolicyKind::kLncR,
                                           PolicyKind::kLncRA));

}  // namespace
}  // namespace watchman
