// Parameterized property sweep: every cache policy must satisfy the
// structural invariants on every workload, at several cache sizes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "cache/query_descriptor.h"
#include "sim/policy_config.h"
#include "storage/schemas.h"
#include "workload/setquery_workload.h"
#include "workload/tpcd_workload.h"

namespace watchman {
namespace {

enum class WorkloadKind { kTpcd, kSetQuery };

const Trace& GetTrace(WorkloadKind kind) {
  static const Trace tpcd = [] {
    Database db = MakeTpcdDatabase();
    TraceGenOptions opts;
    opts.num_queries = 2500;
    opts.seed = 31;
    return MakeTpcdWorkload(db).GenerateTrace(opts);
  }();
  static const Trace sq = [] {
    Database db = MakeSetQueryDatabase();
    TraceGenOptions opts;
    opts.num_queries = 2500;
    opts.seed = 32;
    return MakeSetQueryWorkload(db).GenerateTrace(opts);
  }();
  return kind == WorkloadKind::kTpcd ? tpcd : sq;
}

using Param = std::tuple<PolicyKind, WorkloadKind, double /*cache pct*/>;

class PolicyPropertyTest : public testing::TestWithParam<Param> {};

TEST_P(PolicyPropertyTest, StructuralInvariantsHoldThroughout) {
  const auto [kind, workload, pct] = GetParam();
  const Trace& trace = GetTrace(workload);
  const uint64_t db_bytes =
      workload == WorkloadKind::kTpcd ? (30ull << 20) : (100ull << 20);
  const uint64_t capacity =
      std::max<uint64_t>(1024, static_cast<uint64_t>(db_bytes * pct / 100));

  PolicyConfig config;
  config.kind = kind;
  config.k = 4;
  std::unique_ptr<QueryCache> cache = MakeCache(config, capacity);

  uint64_t manual_hits = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const QueryEvent& e = trace[i];
    const QueryDescriptor d = QueryDescriptor::FromEvent(e);
    const bool was_cached = cache->Contains(e.query_id);
    const bool hit = cache->Reference(d, e.timestamp);
    // A hit is reported exactly when the set was cached beforehand.
    ASSERT_EQ(hit, was_cached) << "event " << i;
    if (hit) ++manual_hits;
    ASSERT_LE(cache->used_bytes(), cache->capacity_bytes());
    if (i % 500 == 0) {
      ASSERT_TRUE(cache->CheckInvariants().ok()) << "event " << i;
    }
  }
  EXPECT_TRUE(cache->CheckInvariants().ok());

  const CacheStats& s = cache->stats();
  EXPECT_EQ(s.lookups, trace.size());
  EXPECT_EQ(s.hits, manual_hits);
  EXPECT_LE(s.cost_saved, s.cost_total);
  EXPECT_EQ(s.bytes_inserted - s.bytes_evicted, cache->used_bytes());
  EXPECT_LE(s.hits + s.insertions + s.admission_rejections +
                s.too_large_rejections,
            s.lookups);
}

TEST_P(PolicyPropertyTest, RunsAreDeterministic) {
  const auto [kind, workload, pct] = GetParam();
  const Trace& trace = GetTrace(workload);
  const uint64_t capacity = static_cast<uint64_t>(1e6 * pct);

  PolicyConfig config;
  config.kind = kind;
  auto run = [&]() {
    std::unique_ptr<QueryCache> cache = MakeCache(config, capacity);
    for (const QueryEvent& e : trace) {
      cache->Reference(QueryDescriptor::FromEvent(e), e.timestamp);
    }
    return cache->stats();
  };
  const CacheStats a = run();
  const CacheStats b = run();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.cost_saved, b.cost_saved);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyPropertyTest,
    testing::Combine(
        testing::Values(PolicyKind::kLru, PolicyKind::kLruK,
                        PolicyKind::kLfu, PolicyKind::kLcs, PolicyKind::kGds,
                        PolicyKind::kLncR, PolicyKind::kLncRA),
        testing::Values(WorkloadKind::kTpcd, WorkloadKind::kSetQuery),
        testing::Values(0.2, 1.0, 5.0)),
    [](const testing::TestParamInfo<Param>& info) {
      PolicyConfig config;
      config.kind = std::get<0>(info.param);
      std::string name = PolicyName(config);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      name += std::get<1>(info.param) == WorkloadKind::kTpcd ? "_tpcd"
                                                             : "_sq";
      name += "_pct" + std::to_string(static_cast<int>(
                           std::get<2>(info.param) * 10));
      return name;
    });

// LNC-specific cross-policy property: admission never makes the cache
// exceed capacity and rejections only happen under pressure.
class LncPressureTest : public testing::TestWithParam<double> {};

TEST_P(LncPressureTest, RejectionsOnlyUnderPressure) {
  const Trace& trace = GetTrace(WorkloadKind::kTpcd);
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  const uint64_t capacity =
      static_cast<uint64_t>((30ull << 20) * GetParam() / 100);
  std::unique_ptr<QueryCache> cache = MakeCache(config, capacity);
  for (const QueryEvent& e : trace) {
    const uint64_t avail_before = cache->available_bytes();
    const uint64_t rejections_before =
        cache->stats().admission_rejections;
    cache->Reference(QueryDescriptor::FromEvent(e), e.timestamp);
    if (cache->stats().admission_rejections > rejections_before) {
      // Figure 1: admission is only consulted when the set does not fit
      // into the available space.
      ASSERT_LT(avail_before, e.result_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Pressure, LncPressureTest,
                         testing::Values(0.1, 0.5, 2.0));

}  // namespace
}  // namespace watchman
