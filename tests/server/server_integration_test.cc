// Client/server integration tests over a loopback socket: the server
// binds an ephemeral port (port 0) so parallel CI runs never collide,
// and the "Server...Concurrent..." tests run under TSan in CI.
//
// The whole suite is parameterized over the event backend (epoll and
// io_uring) so both IO loops face the same protocol-violation,
// half-close, timeout and concurrency scenarios. The io_uring
// instantiation skips itself on kernels that cannot run the backend.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/uring.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

/// A raw blocking loopback connection for protocol-violation tests the
/// client library cannot produce (it only encodes well-formed frames).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  void Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  /// Reads one response frame; empty StatusOr error on EOF.
  StatusOr<WireResponse> ReadResponse() {
    char chunk[8192];
    while (true) {
      std::string_view body;
      size_t frame_size = 0;
      auto extracted =
          ExtractFrame(buf_, kDefaultMaxFrameBytes, &body, &frame_size);
      if (!extracted.ok()) return extracted.status();
      if (*extracted) {
        auto response = DecodeResponse(body);
        buf_.erase(0, frame_size);
        return response;
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return Status::IOError("connection closed");
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

std::string PayloadFor(const std::string& text) {
  return "payload(" + text + ")";
}

/// A local executor standing in for the client-side warehouse.
Watchman::Executor CountingExecutor(std::atomic<int>* executions,
                                    std::vector<std::string> relations = {}) {
  return [executions, relations](const std::string& text)
             -> StatusOr<Watchman::ExecutionResult> {
    executions->fetch_add(1);
    return Watchman::ExecutionResult{PayloadFor(text), 5000, relations};
  };
}

class ServerIntegrationTest : public testing::TestWithParam<ServerBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == ServerBackend::kIoUring && !Uring::KernelSupported()) {
      GTEST_SKIP() << "kernel cannot run the io_uring backend";
    }
  }

  /// Server options with the suite's backend applied; every server this
  /// suite starts -- fixture-owned or test-local -- goes through here
  /// so no scenario silently tests only epoll.
  WatchmanServer::Options BackendOptions() const {
    WatchmanServer::Options server_options;
    server_options.port = 0;  // ephemeral: parallel-safe in CI
    server_options.backend = GetParam();
    return server_options;
  }

  void StartServer(size_t num_shards = 8, size_t num_workers = 8) {
    Watchman::Options options;
    options.capacity_bytes = 8 << 20;
    options.num_shards = num_shards;
    cache_ = std::make_unique<Watchman>(std::move(options),
                                        WatchmanServer::MissFillExecutor());
    WatchmanServer::Options server_options = BackendOptions();
    server_options.num_workers = num_workers;
    server_ = std::make_unique<WatchmanServer>(cache_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
    // KernelSupported() passed, so a requested io_uring backend must
    // actually serve (a silent fallback here would shadow coverage).
    ASSERT_EQ(server_->effective_backend(), GetParam());
  }

  WatchmanClient::Options ClientOptions() const {
    WatchmanClient::Options options;
    options.port = server_->port();
    return options;
  }

  std::unique_ptr<WatchmanClient> MakeClient() {
    auto client = WatchmanClient::Connect(ClientOptions());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  /// Polls `fn` until true or ~2s pass (timer-driven server behavior).
  static bool Eventually(const std::function<bool()>& fn) {
    for (int i = 0; i < 200; ++i) {
      if (fn()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return fn();
  }

  std::unique_ptr<Watchman> cache_;
  std::unique_ptr<WatchmanServer> server_;
};

TEST_P(ServerIntegrationTest, PingOnEphemeralPort) {
  StartServer();
  auto client = MakeClient();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Ping().ok());  // connection is reusable
  EXPECT_EQ(server_->connections_accepted(), 1u);
}

TEST_P(ServerIntegrationTest, RemoteHitServedFromCache) {
  StartServer();
  std::atomic<int> executions{0};
  auto remote = RemoteWatchman::Connect(ClientOptions(),
                                        CountingExecutor(&executions));
  ASSERT_TRUE(remote.ok());

  const std::string query = "select sum(profit) from orders, lineitem";
  for (int i = 0; i < 5; ++i) {
    auto result = (*remote)->Execute(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, PayloadFor(query));
  }
  // One client-side execution; the four repeats were remote cache hits.
  EXPECT_EQ(executions.load(), 1);
  EXPECT_TRUE(cache_->IsCached(query));
  const CacheStats stats = cache_->stats();
  EXPECT_EQ(stats.lookups, 5u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST_P(ServerIntegrationTest, MissWithoutFillReportsNotFound) {
  StartServer();
  auto client = MakeClient();
  auto probe = client->Get("select 1 from dual");
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kNotFound);
  // EXECUTE without a fill against a miss-fill daemon is also a miss.
  auto executed = client->Execute("select 1 from dual");
  ASSERT_FALSE(executed.ok());
  EXPECT_EQ(executed.status().code(), StatusCode::kNotFound);
}

TEST_P(ServerIntegrationTest, MissFillPopulatesAndHitFlagFlips) {
  StartServer();
  auto client = MakeClient();
  const std::string query = "select o_orderkey from orders";
  auto filled = client->Execute(query, "the retrieved set", 9000,
                                {"orders"});
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  EXPECT_FALSE(filled->cache_hit);
  EXPECT_EQ(filled->payload, "the retrieved set");
  EXPECT_TRUE(cache_->IsCached(query));

  auto again = client->Execute(query, "ignored stale fill", 1, {});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  // The cached set wins over the second request's fill.
  EXPECT_EQ(again->payload, "the retrieved set");

  auto got = client->Get(query);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->cache_hit);
  EXPECT_EQ(got->payload, "the retrieved set");
}

TEST_P(ServerIntegrationTest, InvalidateRelationEvictsDependentSet) {
  StartServer();
  auto client = MakeClient();
  ASSERT_TRUE(client
                  ->Execute("select a from orders, lineitem", "set-a", 100,
                            {"orders", "lineitem"})
                  .ok());
  ASSERT_TRUE(client
                  ->Execute("select b from lineitem", "set-b", 100,
                            {"lineitem"})
                  .ok());
  ASSERT_TRUE(
      client->Execute("select c from region", "set-c", 100, {"region"}).ok());

  // The warehouse updated lineitem: both dependent sets must go.
  auto dropped = client->InvalidateRelation("lineitem");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 2u);
  EXPECT_EQ(cache_->invalidations(), 2u);

  EXPECT_EQ(client->Get("select a from orders, lineitem").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client->Get("select b from lineitem").status().code(),
            StatusCode::kNotFound);
  auto untouched = client->Get("select c from region");
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(untouched->payload, "set-c");

  // Per-query invalidation over the wire.
  auto one = client->Invalidate("select c from region");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 1u);
  EXPECT_FALSE(cache_->IsCached("select c from region"));
}

TEST_P(ServerIntegrationTest, StatsMatchTheLocalFacade) {
  StartServer();
  std::atomic<int> executions{0};
  auto remote = RemoteWatchman::Connect(ClientOptions(),
                                        CountingExecutor(&executions));
  ASSERT_TRUE(remote.ok());
  for (int i = 0; i < 3; ++i) {
    for (int q = 0; q < 4; ++q) {
      ASSERT_TRUE(
          (*remote)->Execute("select " + std::to_string(q) + " from nation")
              .ok());
    }
  }

  auto stats = (*remote)->Stats();
  ASSERT_TRUE(stats.ok());
  const CacheStats local = cache_->stats();
  EXPECT_EQ(stats->lookups, local.lookups);
  EXPECT_EQ(stats->lookups, 12u);  // one reference per remote Execute
  EXPECT_EQ(stats->hits, local.hits);
  EXPECT_EQ(stats->hits, 8u);
  EXPECT_EQ(stats->insertions, local.insertions);
  EXPECT_EQ(stats->cost_total, local.cost_total);
  EXPECT_EQ(stats->cost_saved, local.cost_saved);
  EXPECT_EQ(stats->used_bytes, cache_->used_bytes());
  EXPECT_EQ(stats->capacity_bytes, cache_->capacity_bytes());
  EXPECT_EQ(stats->entry_count, cache_->cached_set_count());
  EXPECT_EQ(stats->num_shards, cache_->num_shards());
  EXPECT_EQ(stats->policy_name, cache_->policy_name());
  EXPECT_DOUBLE_EQ(stats->hit_ratio(), local.hit_ratio());
  // v4 transport fields: the wire names the serving backend, and a
  // fresh server has no compaction yet.
  EXPECT_EQ(stats->backend, ServerBackendName(GetParam()));
  EXPECT_EQ(stats->compactions, 0u);
  EXPECT_EQ(stats->last_compaction_age_ms, WireStats::kNeverCompacted);

  // Per-op counters: 4 misses probe+fill, 8 hits probe only.
  bool saw_get = false;
  bool saw_execute = false;
  for (const WireOpMetrics& op : stats->per_op) {
    if (op.op == static_cast<uint8_t>(OpCode::kGet)) {
      saw_get = true;
      EXPECT_EQ(op.requests, 12u);
      EXPECT_EQ(op.errors, 0u);  // NotFound probes are not errors
      EXPECT_EQ(op.latency_count, 12u);
      EXPECT_GE(op.latency_max_us, op.latency_min_us);
    } else if (op.op == static_cast<uint8_t>(OpCode::kExecute)) {
      saw_execute = true;
      EXPECT_EQ(op.requests, 4u);
    }
  }
  EXPECT_TRUE(saw_get);
  EXPECT_TRUE(saw_execute);
}

TEST_P(ServerIntegrationTest, BatchedRequestsOnOneConnection) {
  StartServer();
  auto client = MakeClient();
  // Many round trips on a single connection interleaving every op.
  for (int i = 0; i < 50; ++i) {
    const std::string query = "select " + std::to_string(i % 7);
    ASSERT_TRUE(client->Ping().ok());
    ASSERT_TRUE(client->Execute(query, PayloadFor(query), 100, {"r"}).ok());
    auto got = client->Get(query);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->payload, PayloadFor(query));
  }
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  // 50 x (ping + execute + get); the stats request itself snapshots
  // before it is counted.
  EXPECT_EQ(stats->requests_served, 150u);
  EXPECT_EQ(stats->frames_rejected, 0u);
  EXPECT_EQ(stats->connections_accepted, 1u);
}

TEST_P(ServerIntegrationTest, BlockingCheapOpsTakeTheInlinePath) {
  // A blocking client on an otherwise idle server: every PING/GET/STATS
  // frame arrives alone with nothing in flight and an empty
  // ready-queue, so each one must be answered inline on the IO thread.
  // EXECUTE is never inlined.
  StartServer();
  auto client = MakeClient();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(client->Ping().ok());
  EXPECT_EQ(server_->inline_dispatched(), 10u);
  ASSERT_EQ(client->Get("select 1").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(client->Stats().ok());
  EXPECT_EQ(server_->inline_dispatched(), 12u);
  ASSERT_TRUE(client->Execute("select 1", "fill", 10, {}).ok());
  EXPECT_EQ(server_->inline_dispatched(), 12u);  // worker path
  EXPECT_EQ(server_->StatsSnapshot().requests_served, 13u);
}

TEST_P(ServerIntegrationTest, InlineDispatchDisabledByOption) {
  Watchman::Options options;
  options.capacity_bytes = 8 << 20;
  Watchman cache(std::move(options), WatchmanServer::MissFillExecutor());
  WatchmanServer::Options server_options = BackendOptions();
  server_options.inline_dispatch = false;
  WatchmanServer server(&cache, server_options);
  ASSERT_TRUE(server.Start().ok());

  WatchmanClient::Options client_options;
  client_options.port = server.port();
  auto client = WatchmanClient::Connect(client_options);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE((*client)->Ping().ok());
  EXPECT_EQ(server.inline_dispatched(), 0u);
  EXPECT_EQ(server.StatsSnapshot().requests_served, 5u);
  server.Stop();
}

TEST_P(ServerIntegrationTest, InlineFloodCannotStarveQueuedWork) {
  // A pipelined burst of cheap frames around an EXECUTE, against one
  // worker and a tiny inline burst budget: the budget forces most
  // pings onto the worker path, and every frame -- the EXECUTE
  // included -- must still be answered. This is the starvation guard:
  // inline dispatch may only serve frames while the ready-queue is
  // empty, and only max_inline_burst of them per tick.
  Watchman::Options options;
  options.capacity_bytes = 8 << 20;
  Watchman cache(std::move(options), WatchmanServer::MissFillExecutor());
  WatchmanServer::Options server_options = BackendOptions();
  server_options.num_workers = 1;
  server_options.max_inline_burst = 2;
  WatchmanServer server(&cache, server_options);
  ASSERT_TRUE(server.Start().ok());

  constexpr uint64_t kPingsBefore = 40;
  constexpr uint64_t kPingsAfter = 40;
  const uint64_t execute_id = kPingsBefore + 1;
  std::string stream;
  uint64_t next_id = 1;
  for (uint64_t i = 0; i < kPingsBefore; ++i) {
    WireRequest ping;
    ping.op = OpCode::kPing;
    ping.request_id = next_id++;
    AppendRequest(ping, &stream);
  }
  WireRequest execute;
  execute.op = OpCode::kExecute;
  execute.request_id = next_id++;
  execute.query_text = "select starved from floods";
  execute.has_fill = true;
  execute.fill_payload = "answered anyway";
  execute.fill_cost = 100;
  AppendRequest(execute, &stream);
  for (uint64_t i = 0; i < kPingsAfter; ++i) {
    WireRequest ping;
    ping.op = OpCode::kPing;
    ping.request_id = next_id++;
    AppendRequest(ping, &stream);
  }

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.Send(stream);
  const uint64_t total = next_id - 1;
  std::vector<bool> answered(total + 1, false);
  for (uint64_t i = 0; i < total; ++i) {
    auto response = conn.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_GE(response->request_id, 1u);
    ASSERT_LE(response->request_id, total);
    EXPECT_FALSE(answered[response->request_id]) << response->request_id;
    answered[response->request_id] = true;
    EXPECT_EQ(response->code, StatusCode::kOk);
    if (response->request_id == execute_id) {
      EXPECT_EQ(response->op, OpCode::kExecute);
      EXPECT_EQ(response->payload, "answered anyway");
    }
  }
  for (uint64_t id = 1; id <= total; ++id) {
    EXPECT_TRUE(answered[id]) << "request " << id << " never answered";
  }
  EXPECT_TRUE(cache.IsCached("select starved from floods"));
  server.Stop();
}

TEST_P(ServerIntegrationTest, CompactOverTheWire) {
  StartServer();
  auto client = MakeClient();
  ASSERT_TRUE(client->Execute("select a from t", "set-a", 100, {"t"}).ok());
  ASSERT_TRUE(client->Compact().ok());
  EXPECT_EQ(server_->compactions(), 1u);
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->compactions, 1u);
  EXPECT_NE(stats->last_compaction_age_ms, WireStats::kNeverCompacted);
  EXPECT_LT(stats->last_compaction_age_ms, 60000u);
}

TEST_P(ServerIntegrationTest, IdleCompactionRunsOncePerIdlePeriod) {
  Watchman::Options options;
  options.capacity_bytes = 8 << 20;
  Watchman cache(std::move(options), WatchmanServer::MissFillExecutor());
  WatchmanServer::Options server_options = BackendOptions();
  server_options.poll_interval_ms = 10;
  server_options.compact_idle_ms = 50;
  WatchmanServer server(&cache, server_options);
  ASSERT_TRUE(server.Start().ok());

  // The idle timer fires once after startup quiesces...
  ASSERT_TRUE(Eventually([&] { return server.compactions() >= 1; }));
  const uint64_t after_start = server.compactions();
  // ...and does NOT free-run while the daemon stays idle.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(server.compactions(), after_start);

  // New traffic re-arms it: one more pass once idle again.
  WatchmanClient::Options client_options;
  client_options.port = server.port();
  auto client = WatchmanClient::Connect(client_options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Ping().ok());
  ASSERT_TRUE(
      Eventually([&] { return server.compactions() == after_start + 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(server.compactions(), after_start + 1);
  server.Stop();
}

TEST_P(ServerIntegrationTest, ConcurrentClientsShareTheCache) {
  StartServer(/*num_shards=*/8, /*num_workers=*/8);
  constexpr int kThreads = 6;
  constexpr int kIterations = 40;
  constexpr int kQueries = 10;
  std::atomic<int> errors{0};
  std::atomic<int> wrong_payloads{0};
  std::atomic<int> executions{0};
  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto remote = RemoteWatchman::Connect(ClientOptions(),
                                            CountingExecutor(&executions));
      if (!remote.ok()) {
        errors.fetch_add(1);
        start.arrive_and_wait();
        return;
      }
      start.arrive_and_wait();
      for (int i = 0; i < kIterations; ++i) {
        const std::string query =
            "select x from t where k = " +
            std::to_string((i + t) % kQueries);
        auto result = (*remote)->Execute(query);
        if (!result.ok()) {
          errors.fetch_add(1);
        } else if (*result != PayloadFor(query)) {
          wrong_payloads.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(wrong_payloads.load(), 0);
  // Every remote Execute recorded exactly one reference, like a local
  // facade call (no invalidations ran to disturb the accounting).
  const CacheStats stats = cache_->stats();
  EXPECT_EQ(stats.lookups, static_cast<uint64_t>(kThreads * kIterations));
  EXPECT_GE(static_cast<int64_t>(stats.hits),
            static_cast<int64_t>(kThreads * kIterations) - executions.load());
  EXPECT_TRUE(cache_->cache().CheckInvariants().ok());
}

TEST_P(ServerIntegrationTest, ConcurrentClientsWithInvalidationChaos) {
  StartServer(/*num_shards=*/8, /*num_workers=*/8);
  constexpr int kThreads = 4;
  constexpr int kIterations = 30;
  std::atomic<int> transport_errors{0};
  std::atomic<int> executions{0};
  std::barrier start(kThreads + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto remote = RemoteWatchman::Connect(
          ClientOptions(),
          CountingExecutor(&executions, {"lineitem", "orders"}));
      if (!remote.ok()) {
        transport_errors.fetch_add(1);
        start.arrive_and_wait();
        return;
      }
      start.arrive_and_wait();
      for (int i = 0; i < kIterations; ++i) {
        const std::string query =
            "select agg from lineitem where k = " + std::to_string(i % 5);
        auto result = (*remote)->Execute(query);
        if (!result.ok()) transport_errors.fetch_add(1);
      }
    });
  }
  std::thread invalidator([&] {
    auto client = WatchmanClient::Connect(ClientOptions());
    if (!client.ok()) {
      transport_errors.fetch_add(1);
      start.arrive_and_wait();
      return;
    }
    start.arrive_and_wait();
    for (int i = 0; i < 20; ++i) {
      if (!(*client)->InvalidateRelation("lineitem").ok()) {
        transport_errors.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  for (auto& thread : threads) thread.join();
  invalidator.join();

  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_TRUE(cache_->cache().CheckInvariants().ok());
}

TEST_P(ServerIntegrationTest, OversizedFillRejectedAsCorruption) {
  StartServer();
  // Re-start a second server with a tiny frame limit.
  WatchmanServer::Options tiny = BackendOptions();
  tiny.num_workers = 1;
  tiny.max_frame_bytes = 1024;
  WatchmanServer small_server(cache_.get(), tiny);
  ASSERT_TRUE(small_server.Start().ok());

  WatchmanClient::Options options;
  options.port = small_server.port();
  options.connect_attempts = 1;
  auto client = WatchmanClient::Connect(options);
  ASSERT_TRUE(client.ok());
  auto result = (*client)->Execute("q", std::string(100000, 'x'), 1, {});
  // The daemon answers with a corruption error (and drops the
  // connection) or the write fails outright -- either way, no success.
  EXPECT_FALSE(result.ok());
  small_server.Stop();
}

TEST_P(ServerIntegrationTest, DecodeErrorEchoesRequestOpcodeAndId) {
  // Regression: a request whose body fails to decode used to be
  // answered with a default-constructed response whose op was kPing,
  // so the client reported "response op mismatch: sent get, got ping"
  // (Internal) and the daemon's real Corruption message was masked.
  // The error response must echo the request's (op, id) whenever the
  // prologue decoded.
  StartServer();
  WireRequest request;
  request.op = OpCode::kGet;
  request.request_id = 4242;
  request.query_text = "select * from nation";
  std::string frame = EncodeRequest(request);
  // Truncate the body mid-string and patch the length prefix so the
  // FRAME is well-formed but the REQUEST is not.
  frame.resize(frame.size() - 5);
  const uint32_t body_len = static_cast<uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<size_t>(i)] =
        static_cast<char>((body_len >> (8 * i)) & 0xff);
  }

  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send(frame);
  auto response = conn.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->op, OpCode::kGet);
  EXPECT_EQ(response->request_id, 4242u);
  EXPECT_EQ(response->code, StatusCode::kCorruption);
  EXPECT_EQ(server_->StatsSnapshot().frames_rejected, 1u);
}

TEST_P(ServerIntegrationTest, CorruptFrameMidStreamAnswersEarlierFrames) {
  // A valid PING pipelined ahead of a garbage length prefix: the ping
  // must be answered AND the framing error reported with the daemon's
  // Corruption status before the connection closes. Responses may
  // arrive in either order (v3 ids disambiguate).
  StartServer();
  WireRequest ping;
  ping.op = OpCode::kPing;
  ping.request_id = 7;
  std::string stream = EncodeRequest(ping);
  stream += std::string("\xff\xff\xff\xff garbage", 12);  // 4 GiB "frame"

  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send(stream);
  bool saw_ping = false;
  bool saw_corruption = false;
  for (int i = 0; i < 2; ++i) {
    auto response = conn.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->request_id == 7) {
      EXPECT_EQ(response->op, OpCode::kPing);
      EXPECT_EQ(response->code, StatusCode::kOk);
      saw_ping = true;
    } else {
      EXPECT_EQ(response->code, StatusCode::kCorruption);
      saw_corruption = true;
    }
  }
  EXPECT_TRUE(saw_ping);
  EXPECT_TRUE(saw_corruption);
  // After both responses the daemon closes cleanly (no reset: it
  // half-closes and drains first, so the error always arrives).
  auto eof = conn.ReadResponse();
  EXPECT_FALSE(eof.ok());
}

TEST_P(ServerIntegrationTest, OversizedFrameSurfacesCorruptionAtTheClient) {
  // Acceptance: through the real client, a frame the daemon rejects
  // must surface the daemon's Corruption message -- NOT an
  // "op mismatch" Internal error, and not a bare connection reset.
  WatchmanServer::Options tiny = BackendOptions();
  tiny.num_workers = 1;
  tiny.max_frame_bytes = 1024;
  Watchman::Options cache_options;
  cache_options.capacity_bytes = 8 << 20;
  Watchman small_cache(std::move(cache_options),
                       WatchmanServer::MissFillExecutor());
  WatchmanServer small_server(&small_cache, tiny);
  ASSERT_TRUE(small_server.Start().ok());

  WatchmanClient::Options options;
  options.port = small_server.port();
  options.connect_attempts = 1;
  auto client = WatchmanClient::Connect(options);
  ASSERT_TRUE(client.ok());
  auto result = (*client)->Execute("q", std::string(100000, 'x'), 1, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("exceeds"), std::string::npos)
      << result.status().ToString();
  small_server.Stop();
}

TEST_P(ServerIntegrationTest, HalfClosePipelinedRequestsAllAnswered) {
  // A peer that pipelines N requests and immediately shuts down its
  // write side must still receive all N responses (the event loop
  // parses buffered frames after EOF and closes only once the output
  // drains).
  StartServer();
  std::string stream;
  constexpr uint64_t kPings = 17;
  for (uint64_t i = 1; i <= kPings; ++i) {
    WireRequest ping;
    ping.op = OpCode::kPing;
    ping.request_id = i;
    AppendRequest(ping, &stream);
  }
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send(stream);
  conn.ShutdownWrite();
  uint64_t answered = 0;
  for (uint64_t i = 0; i < kPings; ++i) {
    auto response = conn.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->code, StatusCode::kOk);
    ++answered;
  }
  EXPECT_EQ(answered, kPings);
  auto eof = conn.ReadResponse();
  EXPECT_FALSE(eof.ok());
}

TEST_P(ServerIntegrationTest, IoTimeoutReapsStalledConnection) {
  // A connection stuck mid-frame (length prefix promises more bytes
  // that never come) is closed once io_timeout_ms passes without
  // progress; a healthy idle connection on the same server is NOT.
  WatchmanServer::Options server_options = BackendOptions();
  server_options.io_timeout_ms = 200;
  server_options.poll_interval_ms = 20;
  Watchman::Options cache_options;
  cache_options.capacity_bytes = 8 << 20;
  Watchman cache(std::move(cache_options),
                 WatchmanServer::MissFillExecutor());
  WatchmanServer server(&cache, server_options);
  ASSERT_TRUE(server.Start().ok());

  RawConn idle(server.port());
  RawConn stuck(server.port());
  ASSERT_TRUE(idle.connected());
  ASSERT_TRUE(stuck.connected());
  // Half a frame: 4-byte prefix promising 100 bytes, only 3 sent.
  std::string half_frame("\x64", 1);
  half_frame.append(3, '\0');
  half_frame += "abc";
  stuck.Send(half_frame);
  // The stalled connection must be reaped...
  auto reaped = stuck.ReadResponse();
  EXPECT_FALSE(reaped.ok());
  // ...while the idle one still works.
  WireRequest ping;
  ping.op = OpCode::kPing;
  ping.request_id = 1;
  idle.Send(EncodeRequest(ping));
  auto pong = idle.ReadResponse();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->code, StatusCode::kOk);
  server.Stop();
}

TEST_P(ServerIntegrationTest, GracefulShutdownStopsServing) {
  StartServer();
  auto client = MakeClient();
  ASSERT_TRUE(client->Ping().ok());
  server_->Stop();
  EXPECT_FALSE(server_->running());

  WatchmanClient::Options options = ClientOptions();
  options.connect_attempts = 1;
  auto failed = WatchmanClient::Connect(options);
  EXPECT_FALSE(failed.ok());
  // Stop() is idempotent.
  server_->Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ServerIntegrationTest,
    testing::Values(ServerBackend::kEpoll, ServerBackend::kIoUring),
    [](const testing::TestParamInfo<ServerBackend>& info) {
      return std::string(ServerBackendName(info.param));
    });

// ---- backend selection / fallback (not parameterized) ----

TEST(ServerBackendTest, ParseNamesRoundTrip) {
  ServerBackend backend = ServerBackend::kAuto;
  EXPECT_TRUE(ParseServerBackend("epoll", &backend));
  EXPECT_EQ(backend, ServerBackend::kEpoll);
  EXPECT_TRUE(ParseServerBackend("io_uring", &backend));
  EXPECT_EQ(backend, ServerBackend::kIoUring);
  EXPECT_TRUE(ParseServerBackend("auto", &backend));
  EXPECT_EQ(backend, ServerBackend::kAuto);
  EXPECT_TRUE(ParseServerBackend("uring", &backend));  // accepted alias
  EXPECT_EQ(backend, ServerBackend::kIoUring);
  EXPECT_FALSE(ParseServerBackend("epol", &backend));
  EXPECT_FALSE(ParseServerBackend("", &backend));
  EXPECT_STREQ(ServerBackendName(ServerBackend::kEpoll), "epoll");
  EXPECT_STREQ(ServerBackendName(ServerBackend::kIoUring), "io_uring");
  EXPECT_STREQ(ServerBackendName(ServerBackend::kAuto), "auto");
}

class BackendFallbackTest : public testing::TestWithParam<ServerBackend> {};

TEST_P(BackendFallbackTest, FallsBackToEpollAndStillServes) {
  // Regression for the fallback path: a kernel without io_uring must
  // not fail Start() -- both `io_uring` (with a logged warning) and
  // `auto` (silently) serve on epoll. simulate_io_uring_unavailable
  // makes the scenario deterministic on any kernel.
  Watchman::Options options;
  options.capacity_bytes = 8 << 20;
  Watchman cache(std::move(options), WatchmanServer::MissFillExecutor());
  WatchmanServer::Options server_options;
  server_options.port = 0;
  server_options.backend = GetParam();
  server_options.simulate_io_uring_unavailable = true;
  WatchmanServer server(&cache, server_options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.effective_backend(), ServerBackend::kEpoll);
  EXPECT_EQ(server.StatsSnapshot().backend, std::string("epoll"));

  WatchmanClient::Options client_options;
  client_options.port = server.port();
  auto client = WatchmanClient::Connect(client_options);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Requested, BackendFallbackTest,
    testing::Values(ServerBackend::kIoUring, ServerBackend::kAuto),
    [](const testing::TestParamInfo<ServerBackend>& info) {
      return std::string(ServerBackendName(info.param));
    });

}  // namespace
}  // namespace watchman
