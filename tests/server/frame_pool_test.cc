// Unit tests for the transport's recycling primitives: the FramePool
// free-list (frame bodies, connection buffers, recv chunks) and the
// FrameQueue ring that replaced the ready std::deque.

#include "server/frame_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace watchman {
namespace {

TEST(FramePoolTest, AcquireMissesThenReusesReleasedCapacity) {
  FramePool pool;
  EXPECT_EQ(pool.free_count(), 0u);
  std::string buffer = pool.Acquire();
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);

  buffer.assign(4096, 'x');
  const char* data = buffer.data();
  pool.Release(std::move(buffer));
  EXPECT_EQ(pool.free_count(), 1u);

  std::string again = pool.Acquire();
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
  // The pooled buffer comes back empty but with its capacity (and
  // storage) intact: the steady state re-heats warm memory.
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 4096u);
  EXPECT_EQ(again.data(), data);
}

TEST(FramePoolTest, ReleaseDropsOversizedBuffers) {
  FramePool::Options options;
  options.max_retained_capacity = 1024;
  FramePool pool(options);
  std::string huge;
  huge.assign(1 << 20, 'x');  // far past the cap
  pool.Release(std::move(huge));
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.discards(), 1u);

  std::string small;
  small.reserve(512);
  pool.Release(std::move(small));
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(FramePoolTest, ReleaseDropsBeyondRetainedCount) {
  FramePool::Options options;
  options.max_buffers = 2;
  FramePool pool(options);
  for (int i = 0; i < 5; ++i) pool.Release(std::string("abc"));
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_EQ(pool.discards(), 3u);
}

TEST(FramePoolTest, SteadyStateCycleNeverGrowsThePool) {
  FramePool pool;
  // Simulate the per-frame life cycle: acquire body, fill, release.
  for (int i = 0; i < 1000; ++i) {
    std::string body = pool.Acquire();
    body.assign(100 + (i % 50), 'b');
    pool.Release(std::move(body));
  }
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.reuses(), 999u);
  EXPECT_EQ(pool.discards(), 0u);
}

TEST(FramePoolTest, ConcurrentReleaseAcquireKeepsCounts) {
  // Workers release from many threads while the IO thread acquires;
  // run the pattern under contention (TSan covers the locking).
  FramePool pool;
  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kIterations; ++i) {
        std::string buffer = pool.Acquire();
        buffer.append("frame body bytes");
        pool.Release(std::move(buffer));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(pool.reuses() + pool.misses(),
            static_cast<uint64_t>(kThreads * kIterations));
  EXPECT_LE(pool.free_count(), static_cast<size_t>(kThreads));
}

TEST(FrameQueueTest, FifoOrderAcrossWrap) {
  FrameQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  // Push/pop far past the initial capacity so head wraps repeatedly.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) queue.push_back(next_in++);
    while (!queue.empty()) {
      EXPECT_EQ(queue.front(), next_out++);
      queue.pop_front();
    }
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(FrameQueueTest, GrowPreservesOrder) {
  FrameQueue<int> queue;
  // Offset the head first so growth has to unwrap a wrapped ring.
  for (int i = 0; i < 40; ++i) queue.push_back(int{i});
  for (int i = 0; i < 40; ++i) queue.pop_front();
  for (int i = 0; i < 300; ++i) queue.push_back(int{i});  // forces Grow()
  EXPECT_EQ(queue.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(queue.front(), i);
    queue.pop_front();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(FrameQueueTest, PopReleasesResourcesEagerly) {
  FrameQueue<std::shared_ptr<int>> queue;
  auto item = std::make_shared<int>(42);
  std::weak_ptr<int> watch = item;
  queue.push_back(std::move(item));
  EXPECT_FALSE(watch.expired());
  queue.pop_front();
  // The slot must not pin the popped item until it is overwritten.
  EXPECT_TRUE(watch.expired());
}

TEST(FrameQueueTest, ClearEmptiesTheRing) {
  FrameQueue<std::string> queue;
  for (int i = 0; i < 10; ++i) queue.push_back(std::string(100, 'x'));
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  queue.push_back(std::string("still works"));
  EXPECT_EQ(queue.front(), "still works");
}

}  // namespace
}  // namespace watchman
