// Wire-protocol serialization tests: pure byte-string round trips, no
// sockets involved.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace watchman {
namespace {

/// Strips the length prefix of a complete frame, asserting coherence.
std::string BodyOf(const std::string& frame) {
  std::string_view body;
  size_t frame_size = 0;
  StatusOr<bool> ok =
      ExtractFrame(frame, kDefaultMaxFrameBytes, &body, &frame_size);
  EXPECT_TRUE(ok.ok() && *ok);
  EXPECT_EQ(frame_size, frame.size());
  return std::string(body);
}

TEST(ProtocolTest, PingRequestRoundTrip) {
  WireRequest request;
  request.op = OpCode::kPing;
  auto decoded = DecodeRequest(BodyOf(EncodeRequest(request)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, OpCode::kPing);
  EXPECT_EQ(decoded->request_id, 0u);
}

TEST(ProtocolTest, CompactRequestRoundTrip) {
  // v4: COMPACT is payload-free both ways, like PING.
  WireRequest request;
  request.op = OpCode::kCompact;
  request.request_id = 99;
  auto decoded = DecodeRequest(BodyOf(EncodeRequest(request)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, OpCode::kCompact);
  EXPECT_EQ(decoded->request_id, 99u);
  EXPECT_TRUE(decoded->query_text.empty());

  WireResponse response;
  response.op = OpCode::kCompact;
  response.request_id = 99;
  auto echoed = DecodeResponse(BodyOf(EncodeResponse(response)));
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed->op, OpCode::kCompact);
  EXPECT_EQ(echoed->code, StatusCode::kOk);
}

TEST(ProtocolTest, RequestIdRoundTripsOnEveryOp) {
  const uint64_t ids[] = {0, 1, 0x1234567890ABCDEFull, ~0ull};
  for (OpCode op : {OpCode::kPing, OpCode::kExecute, OpCode::kGet,
                    OpCode::kInvalidate, OpCode::kInvalidateRelation,
                    OpCode::kStats, OpCode::kCompact}) {
    for (uint64_t id : ids) {
      WireRequest request;
      request.op = op;
      request.request_id = id;
      request.query_text = "select 1";
      request.relation = "r";
      auto decoded = DecodeRequest(BodyOf(EncodeRequest(request)));
      ASSERT_TRUE(decoded.ok()) << OpCodeName(op);
      EXPECT_EQ(decoded->op, op);
      EXPECT_EQ(decoded->request_id, id) << OpCodeName(op);
    }
  }
}

TEST(ProtocolTest, ResponseRequestIdRoundTripsOnEveryOp) {
  for (OpCode op : {OpCode::kPing, OpCode::kExecute, OpCode::kGet,
                    OpCode::kInvalidate, OpCode::kInvalidateRelation,
                    OpCode::kStats, OpCode::kCompact}) {
    WireResponse response;
    response.op = op;
    response.request_id = 0xFEEDFACECAFEBEEFull;
    auto decoded = DecodeResponse(BodyOf(EncodeResponse(response)));
    ASSERT_TRUE(decoded.ok()) << OpCodeName(op);
    EXPECT_EQ(decoded->request_id, 0xFEEDFACECAFEBEEFull) << OpCodeName(op);
  }
}

TEST(ProtocolTest, AppendRequestMatchesEncodeRequestAndBatches) {
  WireRequest a;
  a.op = OpCode::kGet;
  a.request_id = 7;
  a.query_text = "select a";
  WireRequest b;
  b.op = OpCode::kExecute;
  b.request_id = 8;
  b.query_text = "select b";
  b.has_fill = true;
  b.fill_payload = "bytes";
  b.fill_cost = 5;
  b.fill_relations = {"t", "u"};
  std::string batched;
  AppendRequest(a, &batched);
  AppendRequest(b, &batched);
  EXPECT_EQ(batched, EncodeRequest(a) + EncodeRequest(b));
  // Both frames extract and decode back from the batched buffer.
  std::string_view body;
  size_t frame_size = 0;
  ASSERT_TRUE(
      *ExtractFrame(batched, kDefaultMaxFrameBytes, &body, &frame_size));
  auto first = DecodeRequest(body);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->request_id, 7u);
  ASSERT_TRUE(*ExtractFrame(std::string_view(batched).substr(frame_size),
                            kDefaultMaxFrameBytes, &body, &frame_size));
  auto second = DecodeRequest(body);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->request_id, 8u);
  EXPECT_EQ(second->fill_relations, b.fill_relations);
}

TEST(ProtocolTest, PeekPrologueReadsOpAndIdFromUndecodableBodies) {
  WireRequest request;
  request.op = OpCode::kGet;
  request.request_id = 42;
  request.query_text = "select * from nation";
  const std::string body = BodyOf(EncodeRequest(request));
  // Every truncation that still contains the full prologue yields the
  // (op, id) pair even though the request as a whole cannot decode.
  for (size_t len = 10; len < body.size(); ++len) {
    OpCode op = OpCode::kPing;
    uint64_t id = 0;
    PeekPrologue(body.substr(0, len), &op, &id);
    EXPECT_EQ(op, OpCode::kGet) << len;
    EXPECT_EQ(id, 42u) << len;
  }
  // Shorter than the prologue: outputs stay untouched.
  for (size_t len = 0; len < 10; ++len) {
    OpCode op = OpCode::kStats;
    uint64_t id = 99;
    PeekPrologue(body.substr(0, len), &op, &id);
    EXPECT_EQ(op, OpCode::kStats) << len;
    EXPECT_EQ(id, 99u) << len;
  }
  // Wrong version or bogus opcode: outputs stay untouched.
  std::string bad_version = body;
  bad_version[0] = static_cast<char>(kWireVersion + 1);
  std::string bad_op = body;
  bad_op[1] = 0x7f;
  for (const std::string& mutated : {bad_version, bad_op}) {
    OpCode op = OpCode::kStats;
    uint64_t id = 99;
    PeekPrologue(mutated, &op, &id);
    EXPECT_EQ(op, OpCode::kStats);
    EXPECT_EQ(id, 99u);
  }
}

TEST(ProtocolTest, GetAndInvalidateRequestsCarryQueryText) {
  for (OpCode op : {OpCode::kGet, OpCode::kInvalidate}) {
    WireRequest request;
    request.op = op;
    request.query_text = "select count(*) from lineitem where l_tax > 0.05";
    auto decoded = DecodeRequest(BodyOf(EncodeRequest(request)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->op, op);
    EXPECT_EQ(decoded->query_text, request.query_text);
  }
}

TEST(ProtocolTest, ExecuteRequestWithoutFill) {
  WireRequest request;
  request.op = OpCode::kExecute;
  request.query_text = "select 1";
  auto decoded = DecodeRequest(BodyOf(EncodeRequest(request)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, OpCode::kExecute);
  EXPECT_EQ(decoded->query_text, "select 1");
  EXPECT_FALSE(decoded->has_fill);
}

TEST(ProtocolTest, DecodeRequestIntoReusesScratchAndResetsState) {
  WireRequest scratch;
  // First frame: an EXECUTE with a fill populates every field.
  WireRequest fill_req;
  fill_req.op = OpCode::kExecute;
  fill_req.query_text = "select a from t";
  fill_req.has_fill = true;
  fill_req.fill_payload = "payload-bytes";
  fill_req.fill_cost = 42;
  fill_req.fill_relations = {"t"};
  ASSERT_TRUE(
      DecodeRequestInto(BodyOf(EncodeRequest(fill_req)), &scratch).ok());
  EXPECT_TRUE(scratch.has_fill);
  EXPECT_EQ(scratch.fill_cost, 42u);
  const char* text_buffer = scratch.query_text.data();
  // Second frame into the same scratch: stale fill state must reset and
  // the (shorter) query text must reuse the existing buffer.
  WireRequest get_req;
  get_req.op = OpCode::kGet;
  get_req.query_text = "select b";
  ASSERT_TRUE(
      DecodeRequestInto(BodyOf(EncodeRequest(get_req)), &scratch).ok());
  EXPECT_EQ(scratch.op, OpCode::kGet);
  EXPECT_EQ(scratch.query_text, "select b");
  EXPECT_FALSE(scratch.has_fill);
  EXPECT_EQ(scratch.fill_cost, 1u);
  EXPECT_TRUE(scratch.fill_payload.empty());
  EXPECT_EQ(scratch.query_text.data(), text_buffer);
  // fill_relations may keep stale (has_fill-gated) entries for buffer
  // reuse; a third EXECUTE frame must reuse the element's buffer.
  const char* relation_buffer =
      scratch.fill_relations.empty() ? nullptr
                                     : scratch.fill_relations[0].data();
  WireRequest fill_req2 = fill_req;
  fill_req2.fill_relations = {"x"};
  ASSERT_TRUE(
      DecodeRequestInto(BodyOf(EncodeRequest(fill_req2)), &scratch).ok());
  ASSERT_EQ(scratch.fill_relations.size(), 1u);
  EXPECT_EQ(scratch.fill_relations[0], "x");
  if (relation_buffer != nullptr) {
    EXPECT_EQ(scratch.fill_relations[0].data(), relation_buffer);
  }
}

TEST(ProtocolTest, AppendResponseMatchesEncodeResponseAndBatches) {
  WireResponse a;
  a.op = OpCode::kGet;
  a.cache_hit = true;
  a.payload = "retrieved set";
  WireResponse b;
  b.op = OpCode::kInvalidate;
  b.dropped = 7;
  std::string batched;
  AppendResponse(a, &batched);
  AppendResponse(b, &batched);
  EXPECT_EQ(batched, EncodeResponse(a) + EncodeResponse(b));
  // Both frames extract and decode back from the batched buffer.
  std::string_view body;
  size_t frame_size = 0;
  ASSERT_TRUE(
      *ExtractFrame(batched, kDefaultMaxFrameBytes, &body, &frame_size));
  auto first = DecodeResponse(body);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->payload, "retrieved set");
  ASSERT_TRUE(*ExtractFrame(std::string_view(batched).substr(frame_size),
                            kDefaultMaxFrameBytes, &body, &frame_size));
  auto second = DecodeResponse(body);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->dropped, 7u);
}

TEST(ProtocolTest, WireResponseResetKeepsCapacity) {
  WireResponse response;
  response.op = OpCode::kGet;
  response.code = StatusCode::kNotFound;
  response.message = "not cached: something fairly long to force a heap";
  response.payload = std::string(256, 'p');
  response.cache_hit = true;
  response.dropped = 9;
  const size_t payload_capacity = response.payload.capacity();
  response.Reset(OpCode::kPing);
  EXPECT_EQ(response.op, OpCode::kPing);
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_TRUE(response.message.empty());
  EXPECT_TRUE(response.payload.empty());
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(response.dropped, 0u);
  EXPECT_GE(response.payload.capacity(), payload_capacity);
}

TEST(ProtocolTest, ExecuteRequestWithFillRoundTrips) {
  WireRequest request;
  request.op = OpCode::kExecute;
  request.query_text = "select sum(profit) from orders, lineitem";
  request.has_fill = true;
  request.fill_payload = std::string("binary\x00\x01\xffpayload", 16);
  request.fill_cost = 123456789;
  request.fill_relations = {"orders", "lineitem"};
  auto decoded = DecodeRequest(BodyOf(EncodeRequest(request)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->has_fill);
  EXPECT_EQ(decoded->fill_payload, request.fill_payload);
  EXPECT_EQ(decoded->fill_cost, request.fill_cost);
  EXPECT_EQ(decoded->fill_relations, request.fill_relations);
}

TEST(ProtocolTest, InvalidateRelationRequestRoundTrips) {
  WireRequest request;
  request.op = OpCode::kInvalidateRelation;
  request.relation = "lineitem";
  auto decoded = DecodeRequest(BodyOf(EncodeRequest(request)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->relation, "lineitem");
}

TEST(ProtocolTest, ResponsePayloadAndHitFlagRoundTrip) {
  WireResponse response;
  response.op = OpCode::kGet;
  response.cache_hit = true;
  response.payload = std::string(100000, 'x');
  auto decoded = DecodeResponse(BodyOf(EncodeResponse(response)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, OpCode::kGet);
  EXPECT_EQ(decoded->code, StatusCode::kOk);
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_EQ(decoded->payload, response.payload);
}

TEST(ProtocolTest, ErrorResponseCarriesStatus) {
  WireResponse response;
  response.op = OpCode::kExecute;
  response.code = StatusCode::kNotFound;
  response.message = "cache miss and no miss-fill attached";
  auto decoded = DecodeResponse(BodyOf(EncodeResponse(response)));
  ASSERT_TRUE(decoded.ok());
  const Status status = StatusFromWire(decoded->code, decoded->message);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), response.message);
}

TEST(ProtocolTest, EveryStatusCodeSurvivesTheWire) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kCapacityExceeded, StatusCode::kIOError,
        StatusCode::kCorruption, StatusCode::kNotSupported,
        StatusCode::kInternal}) {
    WireResponse response;
    response.op = OpCode::kPing;
    response.code = code;
    response.message = code == StatusCode::kOk ? "" : "context";
    auto decoded = DecodeResponse(BodyOf(EncodeResponse(response)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(StatusFromWire(decoded->code, decoded->message).code(), code);
  }
}

TEST(ProtocolTest, InvalidateResponseCountRoundTrips) {
  WireResponse response;
  response.op = OpCode::kInvalidateRelation;
  response.dropped = 42;
  auto decoded = DecodeResponse(BodyOf(EncodeResponse(response)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->dropped, 42u);
}

TEST(ProtocolTest, StatsResponseRoundTripsAllFields) {
  WireResponse response;
  response.op = OpCode::kStats;
  WireStats& s = response.stats;
  s.lookups = 1000;
  s.hits = 750;
  s.insertions = 240;
  s.evictions = 60;
  s.admission_rejections = 10;
  s.too_large_rejections = 2;
  s.cost_total = 999999;
  s.cost_saved = 888888;
  s.bytes_inserted = 1 << 30;
  s.bytes_evicted = 1 << 20;
  s.used_bytes = 12345678;
  s.capacity_bytes = 1ull << 33;
  s.entry_count = 180;
  s.retained_count = 97;
  s.invalidations = 5;
  s.num_shards = 8;
  s.policy_name = "lnc-ra(k=4)x8";
  s.connections_accepted = 17;
  s.connections_active = 3;
  s.connections_queued = 2;
  s.connections_queued_peak = 5;
  s.requests_served = 1010;
  s.frames_rejected = 1;
  s.compactions = 7;
  s.last_compaction_age_ms = 3456;
  s.backend = "io_uring";
  WireOpMetrics m;
  m.op = static_cast<uint8_t>(OpCode::kExecute);
  m.requests = 500;
  m.errors = 4;
  m.latency_count = 500;
  m.latency_mean_us = 12.375;
  m.latency_min_us = 0.5;
  m.latency_max_us = 1875.25;
  s.per_op.push_back(m);

  auto decoded = DecodeResponse(BodyOf(EncodeResponse(response)));
  ASSERT_TRUE(decoded.ok());
  const WireStats& d = decoded->stats;
  EXPECT_EQ(d.lookups, s.lookups);
  EXPECT_EQ(d.hits, s.hits);
  EXPECT_EQ(d.insertions, s.insertions);
  EXPECT_EQ(d.evictions, s.evictions);
  EXPECT_EQ(d.admission_rejections, s.admission_rejections);
  EXPECT_EQ(d.too_large_rejections, s.too_large_rejections);
  EXPECT_EQ(d.cost_total, s.cost_total);
  EXPECT_EQ(d.cost_saved, s.cost_saved);
  EXPECT_EQ(d.bytes_inserted, s.bytes_inserted);
  EXPECT_EQ(d.bytes_evicted, s.bytes_evicted);
  EXPECT_EQ(d.used_bytes, s.used_bytes);
  EXPECT_EQ(d.capacity_bytes, s.capacity_bytes);
  EXPECT_EQ(d.entry_count, s.entry_count);
  EXPECT_EQ(d.retained_count, s.retained_count);
  EXPECT_EQ(d.invalidations, s.invalidations);
  EXPECT_EQ(d.num_shards, s.num_shards);
  EXPECT_EQ(d.policy_name, s.policy_name);
  EXPECT_EQ(d.connections_accepted, s.connections_accepted);
  EXPECT_EQ(d.connections_active, s.connections_active);
  EXPECT_EQ(d.connections_queued, s.connections_queued);
  EXPECT_EQ(d.connections_queued_peak, s.connections_queued_peak);
  EXPECT_EQ(d.requests_served, s.requests_served);
  EXPECT_EQ(d.frames_rejected, s.frames_rejected);
  EXPECT_EQ(d.compactions, s.compactions);
  EXPECT_EQ(d.last_compaction_age_ms, s.last_compaction_age_ms);
  EXPECT_EQ(d.backend, s.backend);
  ASSERT_EQ(d.per_op.size(), 1u);
  EXPECT_EQ(d.per_op[0].op, m.op);
  EXPECT_EQ(d.per_op[0].requests, m.requests);
  EXPECT_EQ(d.per_op[0].errors, m.errors);
  EXPECT_EQ(d.per_op[0].latency_count, m.latency_count);
  // Doubles travel bit-exactly.
  EXPECT_EQ(d.per_op[0].latency_mean_us, m.latency_mean_us);
  EXPECT_EQ(d.per_op[0].latency_min_us, m.latency_min_us);
  EXPECT_EQ(d.per_op[0].latency_max_us, m.latency_max_us);
  EXPECT_DOUBLE_EQ(d.hit_ratio(), 0.75);
}

TEST(ProtocolTest, ExtractFrameNeedsCompletePrefixAndBody) {
  const std::string frame = EncodeRequest(WireRequest{});
  // Feed the frame byte by byte: no prefix of it except the whole thing
  // extracts.
  for (size_t len = 0; len < frame.size(); ++len) {
    std::string_view body;
    size_t frame_size = 0;
    auto extracted = ExtractFrame(frame.substr(0, len), kDefaultMaxFrameBytes,
                                  &body, &frame_size);
    ASSERT_TRUE(extracted.ok()) << len;
    EXPECT_FALSE(*extracted) << len;
  }
  std::string_view body;
  size_t frame_size = 0;
  auto extracted =
      ExtractFrame(frame, kDefaultMaxFrameBytes, &body, &frame_size);
  ASSERT_TRUE(extracted.ok());
  EXPECT_TRUE(*extracted);
  EXPECT_EQ(frame_size, frame.size());
}

TEST(ProtocolTest, ExtractFrameLeavesTrailingBytesForTheNextFrame) {
  WireRequest first;
  first.op = OpCode::kGet;
  first.query_text = "q1";
  WireRequest second;
  second.op = OpCode::kInvalidate;
  second.query_text = "q2";
  const std::string stream = EncodeRequest(first) + EncodeRequest(second);

  std::string_view body;
  size_t frame_size = 0;
  auto extracted =
      ExtractFrame(stream, kDefaultMaxFrameBytes, &body, &frame_size);
  ASSERT_TRUE(extracted.ok() && *extracted);
  auto decoded_first = DecodeRequest(body);
  ASSERT_TRUE(decoded_first.ok());
  EXPECT_EQ(decoded_first->query_text, "q1");

  extracted = ExtractFrame(std::string_view(stream).substr(frame_size),
                           kDefaultMaxFrameBytes, &body, &frame_size);
  ASSERT_TRUE(extracted.ok() && *extracted);
  auto decoded_second = DecodeRequest(body);
  ASSERT_TRUE(decoded_second.ok());
  EXPECT_EQ(decoded_second->query_text, "q2");
}

TEST(ProtocolTest, OversizedFrameIsCorruption) {
  // A length prefix of 2 MiB against a 1 MiB limit.
  std::string buffer;
  const uint32_t huge = 2u << 20;
  for (int i = 0; i < 4; ++i) {
    buffer.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  std::string_view body;
  size_t frame_size = 0;
  auto extracted = ExtractFrame(buffer, 1u << 20, &body, &frame_size);
  ASSERT_FALSE(extracted.ok());
  EXPECT_EQ(extracted.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, TruncatedBodyIsCorruption) {
  const std::string frame = EncodeRequest([] {
    WireRequest r;
    r.op = OpCode::kGet;
    r.query_text = "select * from nation";
    return r;
  }());
  const std::string body = BodyOf(frame);
  // Every strict prefix of the body must fail cleanly, never crash.
  for (size_t len = 0; len < body.size(); ++len) {
    auto decoded = DecodeRequest(body.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << len;
  }
}

/// Builds one representative request per opcode, covering every field
/// of the v3 framing (request id, strings, fill block, string list).
std::vector<WireRequest> RepresentativeRequests() {
  std::vector<WireRequest> out;
  for (OpCode op : {OpCode::kPing, OpCode::kExecute, OpCode::kGet,
                    OpCode::kInvalidate, OpCode::kInvalidateRelation,
                    OpCode::kStats}) {
    WireRequest r;
    r.op = op;
    r.request_id = 0xA5A5A5A5DEADBEEFull;
    r.query_text = "select sum(x) from t";
    r.relation = "lineitem";
    if (op == OpCode::kExecute) {
      r.has_fill = true;
      r.fill_payload = "payload";
      r.fill_cost = 123;
      r.fill_relations = {"a", "bb"};
    }
    out.push_back(std::move(r));
  }
  return out;
}

/// One representative response per opcode (stats included).
std::vector<WireResponse> RepresentativeResponses() {
  std::vector<WireResponse> out;
  for (OpCode op : {OpCode::kPing, OpCode::kExecute, OpCode::kGet,
                    OpCode::kInvalidate, OpCode::kInvalidateRelation,
                    OpCode::kStats}) {
    WireResponse r;
    r.op = op;
    r.request_id = 77;
    r.code = StatusCode::kOk;
    r.cache_hit = true;
    r.payload = "retrieved set";
    r.dropped = 3;
    if (op == OpCode::kStats) {
      r.stats.lookups = 10;
      r.stats.policy_name = "lru";
      WireOpMetrics m;
      m.op = 2;
      m.requests = 4;
      r.stats.per_op.push_back(m);
    }
    out.push_back(std::move(r));
  }
  return out;
}

TEST(ProtocolTest, EveryRequestPrefixFailsCleanly) {
  // Property: no strict prefix of any op's body decodes (every field
  // boundary of the request-id framing included), and none crashes.
  for (const WireRequest& request : RepresentativeRequests()) {
    const std::string body = BodyOf(EncodeRequest(request));
    for (size_t len = 0; len < body.size(); ++len) {
      auto decoded = DecodeRequest(body.substr(0, len));
      EXPECT_FALSE(decoded.ok())
          << OpCodeName(request.op) << " prefix " << len;
    }
    EXPECT_TRUE(DecodeRequest(body).ok()) << OpCodeName(request.op);
  }
}

TEST(ProtocolTest, EveryResponsePrefixFailsCleanly) {
  for (const WireResponse& response : RepresentativeResponses()) {
    const std::string body = BodyOf(EncodeResponse(response));
    for (size_t len = 0; len < body.size(); ++len) {
      auto decoded = DecodeResponse(body.substr(0, len));
      EXPECT_FALSE(decoded.ok())
          << OpCodeName(response.op) << " prefix " << len;
    }
    EXPECT_TRUE(DecodeResponse(body).ok()) << OpCodeName(response.op);
  }
}

TEST(ProtocolTest, SingleByteGarbageNeverCrashesTheDecoders) {
  // Property: flipping any single byte to any of a few adversarial
  // values either still decodes or fails with a clean status -- no
  // crash, no hang (string lengths are the dangerous fields).
  const uint8_t evil[] = {0x00, 0x01, 0x7f, 0x80, 0xff};
  for (const WireRequest& request : RepresentativeRequests()) {
    const std::string body = BodyOf(EncodeRequest(request));
    for (size_t at = 0; at < body.size(); ++at) {
      for (uint8_t v : evil) {
        std::string mutated = body;
        mutated[at] = static_cast<char>(v);
        auto decoded = DecodeRequest(mutated);
        (void)decoded;  // any Status is fine; UB is not
      }
    }
  }
  for (const WireResponse& response : RepresentativeResponses()) {
    const std::string body = BodyOf(EncodeResponse(response));
    for (size_t at = 0; at < body.size(); ++at) {
      for (uint8_t v : evil) {
        std::string mutated = body;
        mutated[at] = static_cast<char>(v);
        auto decoded = DecodeResponse(mutated);
        (void)decoded;
      }
    }
  }
}

TEST(ProtocolTest, TrailingGarbageIsCorruption) {
  std::string body = BodyOf(EncodeRequest(WireRequest{}));
  body += "extra";
  auto decoded = DecodeRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, VersionMismatchIsNotSupported) {
  std::string body = BodyOf(EncodeRequest(WireRequest{}));
  body[0] = static_cast<char>(kWireVersion + 1);
  auto decoded = DecodeRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotSupported);
}

TEST(ProtocolTest, UnknownOpcodeIsInvalidArgument) {
  std::string body = BodyOf(EncodeRequest(WireRequest{}));
  body[1] = static_cast<char>(0x7f);
  auto decoded = DecodeRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(IsValidOpCode(0x7f));
  EXPECT_FALSE(IsValidOpCode(0));
  EXPECT_TRUE(IsValidOpCode(static_cast<uint8_t>(OpCode::kStats)));
}

TEST(ProtocolTest, OpCodeNamesAreStable) {
  EXPECT_STREQ(OpCodeName(OpCode::kPing), "ping");
  EXPECT_STREQ(OpCodeName(OpCode::kExecute), "execute");
  EXPECT_STREQ(OpCodeName(OpCode::kGet), "get");
  EXPECT_STREQ(OpCodeName(OpCode::kInvalidate), "invalidate");
  EXPECT_STREQ(OpCodeName(OpCode::kInvalidateRelation),
               "invalidate_relation");
  EXPECT_STREQ(OpCodeName(OpCode::kStats), "stats");
  EXPECT_STREQ(OpCodeName(OpCode::kCompact), "compact");
}

TEST(ProtocolTest, NeverCompactedSentinelSurvivesTheWire) {
  // A fresh daemon reports "never compacted" as an all-ones age; the
  // sentinel must arrive intact (a 0 here would read as "just now").
  WireResponse response;
  response.op = OpCode::kStats;
  response.stats.backend = "epoll";
  auto decoded = DecodeResponse(BodyOf(EncodeResponse(response)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stats.last_compaction_age_ms,
            WireStats::kNeverCompacted);
  EXPECT_EQ(decoded->stats.compactions, 0u);
  EXPECT_EQ(decoded->stats.backend, "epoll");
}

}  // namespace
}  // namespace watchman
