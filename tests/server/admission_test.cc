#include "server/admission.h"

#include <gtest/gtest.h>

namespace watchman {
namespace {

constexpr int64_t kNs = 1;
constexpr int64_t kMs = 1000 * 1000;
constexpr int64_t kSec = 1000 * kMs;

TEST(TokenBucketTest, BurstThenEmpty) {
  TokenBucket bucket(/*rate_per_sec=*/10, /*burst=*/3, /*now_ns=*/0);
  uint32_t hint = 0;
  EXPECT_TRUE(bucket.TryAcquire(0, &hint));
  EXPECT_TRUE(bucket.TryAcquire(0, &hint));
  EXPECT_TRUE(bucket.TryAcquire(0, &hint));
  EXPECT_FALSE(bucket.TryAcquire(0, &hint));
  // One token at 10/s refills in 100ms.
  EXPECT_EQ(hint, 100u);
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket bucket(/*rate_per_sec=*/10, /*burst=*/1, /*now_ns=*/0);
  uint32_t hint = 0;
  EXPECT_TRUE(bucket.TryAcquire(0, &hint));
  EXPECT_FALSE(bucket.TryAcquire(50 * kMs, &hint));  // only half a token
  EXPECT_EQ(hint, 50u);                              // the other half: 50ms
  EXPECT_TRUE(bucket.TryAcquire(100 * kMs, &hint));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(/*rate_per_sec=*/100, /*burst=*/2, /*now_ns=*/0);
  uint32_t hint = 0;
  // A long idle period must not bank more than `burst` tokens.
  EXPECT_TRUE(bucket.TryAcquire(10 * kSec, &hint));
  EXPECT_TRUE(bucket.TryAcquire(10 * kSec, &hint));
  EXPECT_FALSE(bucket.TryAcquire(10 * kSec, &hint));
}

TEST(TokenBucketTest, HintIsAtLeastOneMs) {
  TokenBucket bucket(/*rate_per_sec=*/1e6, /*burst=*/1, /*now_ns=*/0);
  uint32_t hint = 0;
  EXPECT_TRUE(bucket.TryAcquire(0, &hint));
  EXPECT_FALSE(bucket.TryAcquire(0, &hint));
  EXPECT_GE(hint, 1u);  // sub-millisecond refill still hints >= 1
}

TEST(TokenBucketTest, TimeNeverRunsBackwards) {
  TokenBucket bucket(/*rate_per_sec=*/10, /*burst=*/1, /*now_ns=*/kSec);
  uint32_t hint = 0;
  EXPECT_TRUE(bucket.TryAcquire(kSec, &hint));
  // An earlier timestamp must not mint tokens or crash.
  EXPECT_FALSE(bucket.TryAcquire(0, &hint));
}

TEST(AdmissionTest, DefaultOptionsDisabled) {
  AdmissionOptions options;
  EXPECT_FALSE(options.any_enabled());
  AdmissionController admission(options);
  EXPECT_FALSE(admission.enabled());
  uint32_t hint = 0;
  EXPECT_EQ(admission.AdmitRequest(1, 1 << 20, 1 << 30, 0, &hint),
            ShedReason::kNone);
}

TEST(AdmissionTest, ShedReasonNamesAreStable) {
  EXPECT_STREQ(ShedReasonName(ShedReason::kNone), "none");
  EXPECT_STREQ(ShedReasonName(ShedReason::kPeerQuota), "peer_quota");
  EXPECT_STREQ(ShedReasonName(ShedReason::kPeerConnections),
               "peer_connections");
  EXPECT_STREQ(ShedReasonName(ShedReason::kGlobalInflight),
               "global_inflight");
  EXPECT_STREQ(ShedReasonName(ShedReason::kGlobalBytes), "global_bytes");
}

TEST(AdmissionTest, PeerQuotaShedsAndRefills) {
  AdmissionOptions options;
  options.peer_requests_per_sec = 10;
  options.peer_burst = 2;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.enabled());

  uint32_t hint = 0;
  EXPECT_EQ(admission.AdmitRequest(1, 0, 0, 0, &hint), ShedReason::kNone);
  EXPECT_EQ(admission.AdmitRequest(1, 0, 0, 0, &hint), ShedReason::kNone);
  EXPECT_EQ(admission.AdmitRequest(1, 0, 0, 0, &hint),
            ShedReason::kPeerQuota);
  EXPECT_EQ(hint, 100u);  // 1 token at 10/s
  // After the hinted wait the same peer is admitted again.
  EXPECT_EQ(admission.AdmitRequest(1, 0, 0, 100 * kMs, &hint),
            ShedReason::kNone);
}

TEST(AdmissionTest, PeersHaveIndependentBuckets) {
  AdmissionOptions options;
  options.peer_requests_per_sec = 1;
  options.peer_burst = 1;
  AdmissionController admission(options);

  uint32_t hint = 0;
  EXPECT_EQ(admission.AdmitRequest(1, 0, 0, 0, &hint), ShedReason::kNone);
  EXPECT_EQ(admission.AdmitRequest(1, 0, 0, 0, &hint),
            ShedReason::kPeerQuota);
  // A different peer still has its full burst.
  EXPECT_EQ(admission.AdmitRequest(2, 0, 0, 0, &hint), ShedReason::kNone);
  EXPECT_EQ(admission.tracked_peers(), 2u);
}

TEST(AdmissionTest, GlobalBudgetsCheckedBeforePeerBucket) {
  AdmissionOptions options;
  options.peer_requests_per_sec = 100;
  options.max_global_inflight = 4;
  options.max_global_output_bytes = 1024;
  options.retry_after_ms = 75;
  AdmissionController admission(options);

  uint32_t hint = 0;
  EXPECT_EQ(admission.AdmitRequest(1, 4, 0, 0, &hint),
            ShedReason::kGlobalInflight);
  EXPECT_EQ(hint, 75u);
  EXPECT_EQ(admission.AdmitRequest(1, 0, 1024, 0, &hint),
            ShedReason::kGlobalBytes);
  EXPECT_EQ(hint, 75u);
  // A global shed never consumed a peer token.
  EXPECT_EQ(admission.AdmitRequest(1, 3, 1023, 0, &hint), ShedReason::kNone);
}

TEST(AdmissionTest, ConnectionCapCountsAndReleases) {
  AdmissionOptions options;
  options.max_connections_per_peer = 2;
  options.retry_after_ms = 40;
  AdmissionController admission(options);

  uint32_t hint = 0;
  EXPECT_EQ(admission.AdmitConnection(7, &hint), ShedReason::kNone);
  EXPECT_EQ(admission.AdmitConnection(7, &hint), ShedReason::kNone);
  EXPECT_EQ(admission.AdmitConnection(7, &hint),
            ShedReason::kPeerConnections);
  EXPECT_EQ(hint, 40u);
  // Another peer is unaffected.
  EXPECT_EQ(admission.AdmitConnection(8, &hint), ShedReason::kNone);
  // Releasing a counted connection frees a slot; the rejected
  // connection was never counted so the cap stays balanced.
  admission.ConnectionClosed(7);
  EXPECT_EQ(admission.AdmitConnection(7, &hint), ShedReason::kNone);
}

TEST(AdmissionTest, GcDropsIdlePeersButKeepsConnected) {
  AdmissionOptions options;
  options.max_connections_per_peer = 4;
  options.peer_requests_per_sec = 100;
  AdmissionController admission(options);

  uint32_t hint = 0;
  // Peer 1: connected. Peer 2: only made a request long ago.
  ASSERT_EQ(admission.AdmitConnection(1, &hint), ShedReason::kNone);
  ASSERT_EQ(admission.AdmitRequest(2, 0, 0, 0, &hint), ShedReason::kNone);
  EXPECT_EQ(admission.tracked_peers(), 2u);

  EXPECT_EQ(admission.GcIdlePeers(/*now_ns=*/10 * kSec,
                                  /*idle_ns=*/5 * kSec),
            1u);
  EXPECT_EQ(admission.tracked_peers(), 1u);
  // The connected peer survives even when idle past the horizon.
  admission.ConnectionClosed(1);
  EXPECT_EQ(admission.GcIdlePeers(/*now_ns=*/20 * kSec,
                                  /*idle_ns=*/5 * kSec),
            1u);
  EXPECT_EQ(admission.tracked_peers(), 0u);
}

}  // namespace
}  // namespace watchman
