// Overload-protection integration tests: the admission layer's quota /
// connection-cap / global-budget shedding over a real loopback socket,
// the clients' shed-retry behavior, admin listener hardening, and the
// visibility of every shed event on /metrics. Parameterized over both
// event backends -- admission runs in the shared frame-parse path, and
// these tests keep it that way.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/uring.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

/// Blocking loopback HTTP client for the admin listener (which
/// half-closes after its response, so reads run to EOF).
class HttpConn {
 public:
  explicit HttpConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~HttpConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void SendAll(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  std::string ReadToEof() {
    std::string response;
    char chunk[16384];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      response.append(chunk, static_cast<size_t>(n));
    }
    return response;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class OverloadTest : public testing::TestWithParam<ServerBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == ServerBackend::kIoUring && !Uring::KernelSupported()) {
      GTEST_SKIP() << "kernel cannot run the io_uring backend";
    }
  }

  WatchmanServer::Options BackendOptions() const {
    WatchmanServer::Options server_options;
    server_options.port = 0;
    server_options.backend = GetParam();
    return server_options;
  }

  void StartServer(WatchmanServer::Options server_options) {
    Watchman::Options options;
    options.capacity_bytes = 8 << 20;
    cache_ = std::make_unique<Watchman>(std::move(options),
                                        WatchmanServer::MissFillExecutor());
    server_ = std::make_unique<WatchmanServer>(cache_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
    ASSERT_EQ(server_->effective_backend(), GetParam());
  }

  WatchmanClient::Options ClientOptions(int shed_retries = 0) const {
    WatchmanClient::Options options;
    options.port = server_->port();
    options.shed_retries = shed_retries;
    return options;
  }

  std::unique_ptr<WatchmanClient> MakeClient(int shed_retries = 0) {
    auto client = WatchmanClient::Connect(ClientOptions(shed_retries));
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  static bool Eventually(const std::function<bool()>& fn) {
    for (int i = 0; i < 200; ++i) {
      if (fn()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return fn();
  }

  std::unique_ptr<Watchman> cache_;
  std::unique_ptr<WatchmanServer> server_;
};

TEST_P(OverloadTest, PeerQuotaShedsAbuserWhileNeighborIsServed) {
  WatchmanServer::Options server_options = BackendOptions();
  server_options.admission.peer_requests_per_sec = 50;
  server_options.admission.peer_burst = 2;
  StartServer(server_options);

  // The abuser hammers from 127.0.0.1 with shed retries disabled so the
  // raw wire status is visible.
  auto abuser = MakeClient(/*shed_retries=*/0);
  int ok = 0, shed = 0;
  for (int i = 0; i < 10; ++i) {
    const Status s = abuser->Ping();
    if (s.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(s.code(), StatusCode::kShedRetryLater) << s.ToString();
      ++shed;
    }
  }
  EXPECT_GE(ok, 2);    // the burst was served
  EXPECT_GE(shed, 1);  // the flood was shed, not queued
  EXPECT_GE(server_->sheds(ShedReason::kPeerQuota), static_cast<uint64_t>(shed));

  // A well-behaved neighbor on a different loopback address has its own
  // bucket: every paced request succeeds while the abuser is shed.
  WatchmanClient::Options neighbor_options = ClientOptions(0);
  neighbor_options.local_addr = "127.0.0.2";
  auto neighbor = WatchmanClient::Connect(neighbor_options);
  ASSERT_TRUE(neighbor.ok()) << neighbor.status().ToString();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE((*neighbor)->Ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // The shed connection is still usable: once the bucket refills, the
  // abuser is served again on the same connection.
  ASSERT_TRUE(Eventually([&] { return abuser->Ping().ok(); }));
}

TEST_P(OverloadTest, ClientShedRetriesSucceedAfterBackoff) {
  WatchmanServer::Options server_options = BackendOptions();
  server_options.admission.peer_requests_per_sec = 100;
  server_options.admission.peer_burst = 1;
  StartServer(server_options);

  // Back-to-back requests exceed burst=1, but the client honors the
  // retry-after hint (10ms at 100/s) and every call succeeds.
  auto client = MakeClient(/*shed_retries=*/5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(client->Ping().ok()) << "call " << i;
  }
  EXPECT_GE(server_->sheds(ShedReason::kPeerQuota), 1u);
}

TEST_P(OverloadTest, ConnectionCapShedsSecondConnection) {
  WatchmanServer::Options server_options = BackendOptions();
  server_options.admission.max_connections_per_peer = 1;
  StartServer(server_options);

  auto first = MakeClient(0);
  ASSERT_TRUE(first->Ping().ok());

  // The TCP handshake still succeeds (backlog), but the daemon answers
  // with a request-id-0 shed response and drains the connection.
  auto second = MakeClient(0);
  const Status s = second->Ping();
  EXPECT_EQ(s.code(), StatusCode::kShedRetryLater) << s.ToString();
  EXPECT_GE(server_->sheds(ShedReason::kPeerConnections), 1u);

  // Closing the counted connection frees the peer's slot.
  first.reset();
  ASSERT_TRUE(Eventually([&] {
    auto retry = WatchmanClient::Connect(ClientOptions(0));
    return retry.ok() && (*retry)->Ping().ok();
  }));
}

TEST_P(OverloadTest, GlobalInflightBudgetShedsPipelinedBurst) {
  WatchmanServer::Options server_options = BackendOptions();
  server_options.admission.max_global_inflight = 1;
  server_options.num_workers = 1;
  StartServer(server_options);

  // EXECUTE is never inline-dispatched, so a pipelined burst must pass
  // through the worker queue -- and the budget admits one frame at a
  // time. Raw Start/Await is used so shed responses are observable.
  MultiplexedClient::Options options;
  options.port = server_->port();
  auto client = MultiplexedClient::Connect(options);
  ASSERT_TRUE(client.ok());

  constexpr int kBurst = 100;
  std::vector<MultiplexedClient::Ticket> tickets;
  for (int i = 0; i < kBurst; ++i) {
    auto ticket = (*client)->StartExecute("select " + std::to_string(i),
                                          "fill", 10, {});
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  ASSERT_TRUE((*client)->Flush().ok());

  int ok = 0, shed = 0;
  for (const auto ticket : tickets) {
    auto response = (*client)->Await(ticket);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->code == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response->code, StatusCode::kShedRetryLater)
          << static_cast<int>(response->code) << " " << response->message;
      EXPECT_GE(response->retry_after_ms, 1u);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(server_->sheds(ShedReason::kGlobalInflight),
            static_cast<uint64_t>(shed));
}

TEST_P(OverloadTest, AdminConnectionCapRefusesExcess) {
  WatchmanServer::Options server_options = BackendOptions();
  server_options.admin_port = 0;  // enable on an ephemeral port
  server_options.max_admin_connections = 1;
  server_options.admin_header_timeout_ms = 0;  // isolate the cap
  StartServer(server_options);
  ASSERT_NE(server_->admin_port(), 0);

  // One idle admin connection occupies the only slot; the IO thread
  // adopts connections in accept order, so the holder is counted before
  // the second connection is even looked at ...
  HttpConn holder(server_->admin_port());
  ASSERT_TRUE(holder.connected());

  // ... and the next one is accepted at TCP level and closed
  // immediately without a response.
  HttpConn refused(server_->admin_port());
  EXPECT_EQ(refused.ReadToEof(), "");
  ASSERT_TRUE(Eventually([&] { return server_->admin_rejected() >= 1; }));

  // The wire port is not subject to the admin cap.
  auto client = MakeClient(0);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_P(OverloadTest, AdminSlowlorisHeaderDeadlineCloses) {
  WatchmanServer::Options server_options = BackendOptions();
  server_options.admin_port = 0;
  server_options.admin_header_timeout_ms = 100;
  StartServer(server_options);
  ASSERT_NE(server_->admin_port(), 0);

  // A slowloris peer trickles an incomplete request line and then goes
  // quiet; the header deadline reaps it within ~timeout + sweep tick.
  HttpConn slow(server_->admin_port());
  ASSERT_TRUE(slow.connected());
  slow.SendAll("GET /metr");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(slow.ReadToEof(), "");  // closed without a response
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 2000);
  EXPECT_GE(server_->admin_timeouts(), 1u);

  // A prompt client on the same listener is still served.
  HttpConn fast(server_->admin_port());
  ASSERT_TRUE(fast.connected());
  fast.SendAll("GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n");
  EXPECT_NE(fast.ReadToEof().find("200"), std::string::npos);
}

TEST_P(OverloadTest, ShedCountersVisibleOnMetricsEndpoint) {
  WatchmanServer::Options server_options = BackendOptions();
  server_options.admission.peer_requests_per_sec = 50;
  server_options.admission.peer_burst = 1;
  server_options.admin_port = 0;
  StartServer(server_options);
  ASSERT_NE(server_->admin_port(), 0);

  auto client = MakeClient(0);
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    if (client->Ping().code() == StatusCode::kShedRetryLater) ++shed;
  }
  ASSERT_GE(shed, 1);

  HttpConn conn(server_->admin_port());
  ASSERT_TRUE(conn.connected());
  conn.SendAll("GET /metrics HTTP/1.0\r\nHost: t\r\n\r\n");
  const std::string body = conn.ReadToEof();
  EXPECT_NE(body.find("watchman_server_shed_total{reason=\"peer_quota\"}"),
            std::string::npos)
      << body.substr(0, 512);
  EXPECT_NE(body.find("watchman_server_shed_retry_hint_ms"),
            std::string::npos);
  EXPECT_NE(body.find("watchman_server_output_buffered_bytes"),
            std::string::npos);
  EXPECT_NE(body.find("watchman_facade_degraded_passthrough_total"),
            std::string::npos);
  EXPECT_NE(body.find("watchman_store_breaker_state"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, OverloadTest,
    testing::Values(ServerBackend::kEpoll, ServerBackend::kIoUring),
    [](const testing::TestParamInfo<ServerBackend>& info) {
      return std::string(ServerBackendName(info.param));
    });

}  // namespace
}  // namespace watchman
