// Admin HTTP endpoint integration tests: a raw loopback socket speaks
// HTTP to the /metrics listener running on the server's event loop, on
// both backends. The exposition is checked with the shared Prometheus
// text validator, and the wire STATS op is asserted to keep reporting
// per-op latency from the same metric objects.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "server/client.h"
#include "server/server.h"
#include "server/uring.h"
#include "support/promtext.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

/// Blocking loopback HTTP client. The admin listener half-closes after
/// its response, so reads run to EOF.
class HttpConn {
 public:
  explicit HttpConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~HttpConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void SendAll(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  std::string ReadToEof() {
    std::string response;
    char chunk[16384];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      response.append(chunk, static_cast<size_t>(n));
    }
    return response;
  }

  std::string RoundTrip(std::string_view request) {
    SendAll(request);
    return ReadToEof();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string Get(uint16_t port, const std::string& path) {
  HttpConn conn(port);
  EXPECT_TRUE(conn.connected());
  return conn.RoundTrip("GET " + path + " HTTP/1.0\r\nHost: t\r\n\r\n");
}

/// Splits an HTTP response into (status line, body).
void SplitResponse(const std::string& response, std::string* status_line,
                   std::string* body) {
  const size_t line_end = response.find("\r\n");
  ASSERT_NE(line_end, std::string::npos) << response;
  *status_line = response.substr(0, line_end);
  const size_t sep = response.find("\r\n\r\n");
  ASSERT_NE(sep, std::string::npos) << response;
  *body = response.substr(sep + 4);
}

class AdminEndpointTest : public testing::TestWithParam<ServerBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == ServerBackend::kIoUring && !Uring::KernelSupported()) {
      GTEST_SKIP() << "kernel cannot run the io_uring backend";
    }
  }

  void StartServer(bool metrics = true) {
    Watchman::Options options;
    options.capacity_bytes = 1 << 20;
    options.num_shards = 2;
    cache_ = std::make_unique<Watchman>(
        std::move(options),
        [this](const std::string& text) -> StatusOr<Watchman::ExecutionResult> {
          executions_.fetch_add(1);
          return Watchman::ExecutionResult{"payload(" + text + ")", 5000, {}};
        });
    WatchmanServer::Options server_options;
    server_options.port = 0;
    server_options.admin_port = 0;  // ephemeral: parallel-safe in CI
    server_options.backend = GetParam();
    server_options.metrics = metrics;
    server_ = std::make_unique<WatchmanServer>(cache_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_EQ(server_->effective_backend(), GetParam());
    ASSERT_NE(server_->admin_port(), 0);
  }

  std::unique_ptr<WatchmanClient> MakeClient() {
    WatchmanClient::Options options;
    options.port = server_->port();
    auto client = WatchmanClient::Connect(options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::atomic<int> executions_{0};
  std::unique_ptr<Watchman> cache_;
  std::unique_ptr<WatchmanServer> server_;
};

TEST_P(AdminEndpointTest, HealthzAnswersOk) {
  StartServer();
  std::string status_line, body;
  SplitResponse(Get(server_->admin_port(), "/healthz"), &status_line, &body);
  EXPECT_EQ(status_line, "HTTP/1.0 200 OK");
  EXPECT_EQ(body, "ok\n");
}

TEST_P(AdminEndpointTest, MetricsIsValidPrometheusExposition) {
  StartServer();
  // Drive traffic so the cache / facade / server families carry data:
  // one execution, one hit, one ping.
  auto client = MakeClient();
  ASSERT_TRUE(client->Execute("q1").ok());
  ASSERT_TRUE(client->Execute("q1").ok());
  ASSERT_TRUE(client->Ping().ok());

  const std::string response = Get(server_->admin_port(), "/metrics");
  std::string status_line, body;
  SplitResponse(response, &status_line, &body);
  EXPECT_EQ(status_line, "HTTP/1.0 200 OK");
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);

  std::string error;
  EXPECT_TRUE(testsupport::ValidatePrometheusText(body, &error))
      << error << "\n"
      << body;

  // Every layer's families are present, with per-shard cache labels.
  EXPECT_NE(body.find("watchman_cache_lookups_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(body.find("watchman_cache_lookups_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(body.find("watchman_cache_used_bytes"), std::string::npos);
  EXPECT_NE(body.find("watchman_cache_lock_acquisitions_total"),
            std::string::npos);
  EXPECT_NE(body.find("watchman_facade_executions_total 1"),
            std::string::npos);
  EXPECT_NE(
      body.find("watchman_facade_execution_cost_bucket{outcome=\"admitted\""),
      std::string::npos);
  EXPECT_NE(body.find("watchman_server_requests_total{op=\"execute\"} 2"),
            std::string::npos);
  EXPECT_NE(body.find("watchman_server_requests_total{op=\"ping\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("watchman_server_request_seconds_bucket{op=\"execute\""),
            std::string::npos);
  EXPECT_NE(body.find("watchman_server_info{backend=\""), std::string::npos);
}

TEST_P(AdminEndpointTest, UnknownPathIs404AndBadMethodIs405) {
  StartServer();
  std::string status_line, body;
  SplitResponse(Get(server_->admin_port(), "/nope"), &status_line, &body);
  EXPECT_EQ(status_line, "HTTP/1.0 404 Not Found");

  HttpConn conn(server_->admin_port());
  ASSERT_TRUE(conn.connected());
  SplitResponse(conn.RoundTrip("POST /metrics HTTP/1.0\r\n\r\n"), &status_line,
                &body);
  EXPECT_EQ(status_line, "HTTP/1.0 405 Method Not Allowed");
}

TEST_P(AdminEndpointTest, MalformedRequestIs400) {
  StartServer();
  HttpConn conn(server_->admin_port());
  ASSERT_TRUE(conn.connected());
  std::string status_line, body;
  SplitResponse(conn.RoundTrip("GARBAGE\r\n\r\n"), &status_line, &body);
  EXPECT_EQ(status_line, "HTTP/1.0 400 Bad Request");
}

TEST_P(AdminEndpointTest, SplitRequestAcrossPacketsStillParses) {
  StartServer();
  HttpConn conn(server_->admin_port());
  ASSERT_TRUE(conn.connected());
  // The listener must wait for the blank line before answering.
  conn.SendAll("GET /hea");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  conn.SendAll("lthz HTTP/1.0\r\n\r\n");
  std::string status_line, body;
  SplitResponse(conn.ReadToEof(), &status_line, &body);
  EXPECT_EQ(status_line, "HTTP/1.0 200 OK");
  EXPECT_EQ(body, "ok\n");
}

TEST_P(AdminEndpointTest, WireStatsStillReportsLatencyFromSameRegistry) {
  StartServer();
  auto client = MakeClient();
  ASSERT_TRUE(client->Execute("q1").ok());
  ASSERT_TRUE(client->Ping().ok());
  StatusOr<WireStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  bool saw_execute = false;
  for (const WireOpMetrics& op : stats->per_op) {
    if (static_cast<OpCode>(op.op) != OpCode::kExecute) continue;
    saw_execute = true;
    EXPECT_EQ(op.requests, 1u);
    EXPECT_EQ(op.errors, 0u);
    EXPECT_EQ(op.latency_count, 1u);
    EXPECT_GT(op.latency_mean_us, 0.0);
    EXPECT_GE(op.latency_max_us, op.latency_min_us);
  }
  EXPECT_TRUE(saw_execute);
  // op_counters() agrees with the wire payload.
  const WatchmanServer::OpCounters counters =
      server_->op_counters(OpCode::kExecute);
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.latency_count, 1u);
}

TEST_P(AdminEndpointTest, MetricsDisabledStillServesCountersAndStats) {
  StartServer(/*metrics=*/false);
  auto client = MakeClient();
  ASSERT_TRUE(client->Execute("q1").ok());

  std::string status_line, body;
  SplitResponse(Get(server_->admin_port(), "/metrics"), &status_line, &body);
  EXPECT_EQ(status_line, "HTTP/1.0 200 OK");
  std::string error;
  EXPECT_TRUE(testsupport::ValidatePrometheusText(body, &error)) << error;
  // Requests counted; the latency histogram stayed empty by contract.
  EXPECT_NE(body.find("watchman_server_requests_total{op=\"execute\"} 1"),
            std::string::npos);
  const WatchmanServer::OpCounters counters =
      server_->op_counters(OpCode::kExecute);
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.latency_count, 0u);
}

TEST_P(AdminEndpointTest, ScrapeUnderLoadStaysConsistent) {
  StartServer();
  auto client = MakeClient();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client->Execute("q" + std::to_string(i % 7)).ok());
    if (i % 10 == 0) {
      std::string status_line, body;
      SplitResponse(Get(server_->admin_port(), "/metrics"), &status_line,
                    &body);
      EXPECT_EQ(status_line, "HTTP/1.0 200 OK");
      std::string error;
      EXPECT_TRUE(testsupport::ValidatePrometheusText(body, &error)) << error;
    }
  }
}

TEST_P(AdminEndpointTest, AdminDisabledByDefault) {
  Watchman::Options options;
  cache_ = std::make_unique<Watchman>(
      std::move(options),
      [](const std::string&) -> StatusOr<Watchman::ExecutionResult> {
        return Watchman::ExecutionResult{};
      });
  WatchmanServer::Options server_options;
  server_options.port = 0;
  server_options.backend = GetParam();
  server_ = std::make_unique<WatchmanServer>(cache_.get(), server_options);
  ASSERT_TRUE(server_->Start().ok());
  EXPECT_EQ(server_->admin_port(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, AdminEndpointTest,
    testing::Values(ServerBackend::kEpoll, ServerBackend::kIoUring),
    [](const auto& info) { return std::string(ServerBackendName(info.param)); });

}  // namespace
}  // namespace watchman
