// Regression tests for the client's failure-path contract: capped dial
// backoff, poll-enforced deadlines (a stalled or half-dead daemon must
// fail the call, not wedge it), and the no-silent-replay rule for
// non-idempotent ops when a connection dies between send and reply.
//
// The "daemons" here are hand-rolled sockets with precise misbehavior
// (accept-then-stall, read-then-close, reply-on-second-connection), so
// each test pins one failure mode deterministically.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"

namespace watchman {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// A loopback listener the tests drive by hand.
class RawListener {
 public:
  RawListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~RawListener() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Listen(int backlog) { ASSERT_EQ(::listen(fd_, backlog), 0); }

  int Accept() { return ::accept(fd_, nullptr, nullptr); }

  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Reads one complete frame body off a blocking socket; empty on EOF.
std::string ReadFrameBody(int fd) {
  std::string buf;
  char chunk[4096];
  while (true) {
    std::string_view body;
    size_t frame_size = 0;
    auto extracted =
        ExtractFrame(buf, kDefaultMaxFrameBytes, &body, &frame_size);
    if (extracted.ok() && *extracted) return std::string(body);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return {};
    buf.append(chunk, static_cast<size_t>(n));
  }
}

WatchmanClient::Options FastFailOptions(uint16_t port, int io_timeout_ms) {
  WatchmanClient::Options options;
  options.port = port;
  options.connect_attempts = 1;
  options.io_timeout_ms = io_timeout_ms;
  return options;
}

TEST(DialBackoffTest, ScheduleIsCappedAndNeverOverflows) {
  // Doubles from the base...
  EXPECT_EQ(DialBackoffMs(20, 2000, 0), 0);  // first attempt never sleeps
  EXPECT_EQ(DialBackoffMs(20, 2000, 1), 20);
  EXPECT_EQ(DialBackoffMs(20, 2000, 2), 40);
  EXPECT_EQ(DialBackoffMs(20, 2000, 3), 80);
  EXPECT_EQ(DialBackoffMs(20, 2000, 7), 1280);
  // ...and pins at the cap instead of growing unbounded. Before the
  // cap, backoff_ms *= 2 overflowed int after ~30 attempts.
  EXPECT_EQ(DialBackoffMs(20, 2000, 8), 2000);
  EXPECT_EQ(DialBackoffMs(20, 2000, 9), 2000);
  EXPECT_EQ(DialBackoffMs(20, 2000, 1000), 2000);
  EXPECT_EQ(DialBackoffMs(1, 2000, 10000000), 2000);
  // Monotone non-decreasing over the whole schedule.
  for (int attempt = 1; attempt < 64; ++attempt) {
    EXPECT_GE(DialBackoffMs(20, 2000, attempt),
              DialBackoffMs(20, 2000, attempt - 1))
        << attempt;
  }
  // Degenerate configs stay sane.
  EXPECT_EQ(DialBackoffMs(0, 2000, 5), 0);
  EXPECT_EQ(DialBackoffMs(500, 100, 5), 500);  // cap below base: base wins
}

TEST(DialBackoffTest, JitterStaysInEqualJitterBandAndIsDeterministic) {
  // A nonzero seed spreads each sleep uniformly over [backoff/2,
  // backoff] so a restarting fleet does not redial in lockstep.
  for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    for (int attempt = 1; attempt < 32; ++attempt) {
      const int plain = DialBackoffMs(20, 2000, attempt);
      const int jittered = DialBackoffMs(20, 2000, attempt, seed);
      EXPECT_GE(jittered, plain / 2) << "seed " << seed << " attempt "
                                     << attempt;
      EXPECT_LE(jittered, plain) << "seed " << seed << " attempt " << attempt;
      // Pure function: the same (args, seed) always yields the same
      // value.
      EXPECT_EQ(jittered, DialBackoffMs(20, 2000, attempt, seed));
    }
  }
  // Attempt 0 never sleeps, jitter or not.
  EXPECT_EQ(DialBackoffMs(20, 2000, 0, 42), 0);
  // Different seeds actually land on different schedules.
  bool diverged = false;
  for (int attempt = 3; attempt < 16 && !diverged; ++attempt) {
    diverged = DialBackoffMs(20, 2000, attempt, 1) !=
               DialBackoffMs(20, 2000, attempt, 2);
  }
  EXPECT_TRUE(diverged);
}

TEST(ShedBackoffTest, StartsFromHintDoublesAndCaps) {
  // The daemon's retry-after hint seeds the schedule...
  EXPECT_EQ(ShedBackoffMs(50, 1000, 0), 50);
  EXPECT_EQ(ShedBackoffMs(50, 1000, 1), 100);
  EXPECT_EQ(ShedBackoffMs(50, 1000, 2), 200);
  EXPECT_EQ(ShedBackoffMs(50, 1000, 4), 800);
  EXPECT_EQ(ShedBackoffMs(50, 1000, 5), 1000);  // capped
  EXPECT_EQ(ShedBackoffMs(50, 1000, 1000000), 1000);
  // ...and a missing hint falls back to 10ms.
  EXPECT_EQ(ShedBackoffMs(0, 1000, 0), 10);
  EXPECT_EQ(ShedBackoffMs(-5, 1000, 1), 20);
  // A hint above the cap is clamped to it.
  EXPECT_EQ(ShedBackoffMs(5000, 1000, 0), 1000);
  // Jitter obeys the same equal-jitter band as DialBackoffMs.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int plain = ShedBackoffMs(50, 1000, attempt);
    const int jittered = ShedBackoffMs(50, 1000, attempt, 42);
    EXPECT_GE(jittered, plain / 2) << attempt;
    EXPECT_LE(jittered, plain) << attempt;
    EXPECT_EQ(jittered, ShedBackoffMs(50, 1000, attempt, 42));
  }
}

TEST(ClientDeadlineTest, StalledDaemonFailsTheCallWithinTheDeadline) {
  // The daemon accepts and reads but never replies: pre-v3 the client
  // blocked in ::recv forever (holding mu_, wedging every sharing
  // thread). Now the poll deadline fails the call.
  RawListener listener;
  listener.Listen(4);
  std::atomic<bool> stop{false};
  std::thread server([&] {
    const int conn = listener.Accept();
    if (conn < 0) return;
    char sink[4096];
    while (!stop.load()) {
      const ssize_t n = ::recv(conn, sink, sizeof(sink), 0);
      if (n <= 0) break;  // never reply, just consume
    }
    ::close(conn);
  });

  auto client =
      WatchmanClient::Connect(FastFailOptions(listener.port(), 250));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto begin = Clock::now();
  const Status status = (*client)->Ping();
  const double elapsed_ms = ElapsedMs(begin);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError) << status.ToString();
  // One deadline per round-trip attempt; the replay-safe PING may redial
  // once, so allow two deadlines plus scheduling slack.
  EXPECT_LT(elapsed_ms, 5000.0);
  EXPECT_GE(elapsed_ms, 200.0);
  stop.store(true);
  server.join();
}

TEST(ClientDeadlineTest, UnservedBacklogFailsWithinTheDeadline) {
  // A bound socket whose backlog is full and never drained: depending
  // on kernel SYN-queue behavior the connect itself stalls, or it
  // "succeeds" into the backlog and the first round trip stalls.
  // Either way the caller must get an error within the deadline
  // budget, not hang (pre-v3: blocking ::connect / ::recv forever).
  RawListener listener;
  listener.Listen(1);
  std::vector<int> fillers;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listener.port());
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    // Some of these connects may themselves block once the backlog is
    // full; non-blocking fire-and-forget is enough to stuff the queue.
    const int flags = 1;
    ::ioctl(fd, FIONBIO, &flags);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }

  const auto begin = Clock::now();
  auto client =
      WatchmanClient::Connect(FastFailOptions(listener.port(), 250));
  Status status = client.ok() ? (*client)->Ping() : client.status();
  const double elapsed_ms = ElapsedMs(begin);
  EXPECT_FALSE(status.ok());
  EXPECT_LT(elapsed_ms, 5000.0);
  for (int fd : fillers) ::close(fd);
}

/// Serves `connections` sequential connections; for each, reads one
/// request and -- unless told to kill the connection -- answers it OK.
/// Records every opcode it saw.
struct FlakyDaemon {
  RawListener listener;
  std::vector<OpCode> seen;
  std::thread thread;

  /// kill_first: read the first connection's request, then close
  /// without replying (simulating "processed, response lost").
  void Run(int connections, bool kill_first) {
    listener.Listen(8);
    thread = std::thread([this, connections, kill_first] {
      for (int c = 0; c < connections; ++c) {
        const int conn = listener.Accept();
        if (conn < 0) return;
        const std::string body = ReadFrameBody(conn);
        if (!body.empty()) {
          auto request = DecodeRequest(body);
          if (request.ok()) {
            seen.push_back(request->op);
            if (!(kill_first && c == 0)) {
              WireResponse response;
              response.op = request->op;
              response.request_id = request->request_id;
              response.dropped = 1;
              const std::string frame = EncodeResponse(response);
              (void)!::send(conn, frame.data(), frame.size(), MSG_NOSIGNAL);
            }
          }
        }
        ::close(conn);
      }
    });
  }
  ~FlakyDaemon() {
    if (thread.joinable()) thread.join();
  }
};

TEST(ClientReplayTest, ProbeRedialsAfterResponseLost) {
  // GET is replay-safe: when the connection dies after the request was
  // sent but before the response arrived, the client redials and
  // resends, and the caller never notices.
  FlakyDaemon daemon;
  daemon.Run(/*connections=*/2, /*kill_first=*/true);
  auto client =
      WatchmanClient::Connect(FastFailOptions(daemon.listener.port(), 2000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto got = (*client)->Get("select 1");
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  daemon.thread.join();
  ASSERT_EQ(daemon.seen.size(), 2u);
  EXPECT_EQ(daemon.seen[0], OpCode::kGet);
  EXPECT_EQ(daemon.seen[1], OpCode::kGet);
}

TEST(ClientReplayTest, InvalidateIsNeverSilentlyReplayed) {
  // Differential twin of the test above: same connection-killed-between
  // -send-and-reply failure, but INVALIDATE must surface IOError
  // instead of resending -- a replay would report dropped=0 for a set
  // the daemon actually dropped, silently corrupting the caller's
  // bookkeeping. Exactly one INVALIDATE may reach the daemon.
  FlakyDaemon daemon;
  daemon.Run(/*connections=*/1, /*kill_first=*/true);
  auto client =
      WatchmanClient::Connect(FastFailOptions(daemon.listener.port(), 2000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto dropped = (*client)->Invalidate("select 1");
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kIOError);
  // The error says why it was not retried.
  EXPECT_NE(dropped.status().message().find("not retried"),
            std::string::npos)
      << dropped.status().ToString();
  daemon.thread.join();
  ASSERT_EQ(daemon.seen.size(), 1u);
  EXPECT_EQ(daemon.seen[0], OpCode::kInvalidate);
}

TEST(ClientReplayTest, InvalidateStillRedialsWhenNothingWasSent) {
  // A pooled connection killed BEFORE the next call: the failure
  // precedes any byte of the new request, so even a non-idempotent op
  // may safely redial. (First connection serves a GET, then closes;
  // the subsequent INVALIDATE finds the dead socket, redials, and is
  // served exactly once on the second connection.)
  FlakyDaemon daemon;
  daemon.Run(/*connections=*/2, /*kill_first=*/false);
  auto client =
      WatchmanClient::Connect(FastFailOptions(daemon.listener.port(), 2000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Get("select 1").ok());
  // The daemon closed the first connection after replying. The next
  // call may be sent into the dead socket (send succeeds into the
  // kernel buffer) or fail outright; both paths must end with exactly
  // one INVALIDATE processed.
  auto dropped = (*client)->Invalidate("select 1");
  // If the client refused to resend, the daemon is still waiting for a
  // second connection; a dummy connect-and-close releases it.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(daemon.listener.port());
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(fd);
  }
  daemon.thread.join();
  int invalidates_seen = 0;
  for (OpCode op : daemon.seen) {
    if (op == OpCode::kInvalidate) ++invalidates_seen;
  }
  if (dropped.ok()) {
    EXPECT_EQ(*dropped, 1u);
    EXPECT_EQ(invalidates_seen, 1);
  } else {
    // The kernel accepted the bytes before noticing the close: the
    // client correctly refused to replay.
    EXPECT_LE(invalidates_seen, 1);
  }
}

}  // namespace
}  // namespace watchman
