// Zero-allocation guarantee of the server's steady-state request path,
// asserted the same way tests/cache/allocation_test.cc does for the
// cache: the binary-wide counting allocator is armed process-wide
// (minus the client thread driving traffic) and the measured window
// must record zero allocations on the server's IO thread and workers.
//
// Two paths are measured per backend:
//  * the inline fast path -- a blocking client's PING/GET round trips
//    are answered on the IO thread, reusing the connection buffers and
//    the IO-thread request/response scratch;
//  * the worker path (inline dispatch disabled) -- every frame cycles
//    a pooled body through the FrameQueue ring and a worker's scratch,
//    exercising FramePool recycling end to end.
//
// EXECUTE is not measured: its facade API returns the payload by value
// (a per-hit string), which is fine off the worker pool but not
// allocation-free by contract.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "server/client.h"
#include "server/server.h"
#include "server/uring.h"
#include "support/counting_alloc.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

class ServerAllocTest : public testing::TestWithParam<ServerBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == ServerBackend::kIoUring && !Uring::KernelSupported()) {
      GTEST_SKIP() << "kernel cannot run the io_uring backend";
    }
  }

  void StartServer(bool inline_dispatch) {
    Watchman::Options options;
    options.capacity_bytes = 8 << 20;
    cache_ = std::make_unique<Watchman>(std::move(options),
                                        WatchmanServer::MissFillExecutor());
    WatchmanServer::Options server_options;
    server_options.port = 0;
    server_options.backend = GetParam();
    server_options.inline_dispatch = inline_dispatch;
    // One worker: the warmup passes heat that worker's decode/encode
    // scratch, and the measured window reuses it deterministically.
    server_options.num_workers = 1;
    server_ = std::make_unique<WatchmanServer>(cache_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_EQ(server_->effective_backend(), GetParam());

    WatchmanClient::Options client_options;
    client_options.port = server_->port();
    auto client = WatchmanClient::Connect(client_options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(client).value();

    // One cached set so GET round trips are hits (a NotFound status
    // carries an allocated message and is not a steady-state path).
    ASSERT_TRUE(
        client_->Execute(kQuery, std::string(64, 'p'), 1000, {}).ok());
  }

  void RunTraffic(int rounds) {
    for (int i = 0; i < rounds; ++i) {
      ASSERT_TRUE(client_->Ping().ok());
      auto got = client_->Get(kQuery);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
    }
  }

  static constexpr const char* kQuery = "select hot from steady_state";

  std::unique_ptr<Watchman> cache_;
  std::unique_ptr<WatchmanServer> server_;
  std::unique_ptr<WatchmanClient> client_;
};

TEST_P(ServerAllocTest, InlineFastPathDoesNotAllocate) {
  StartServer(/*inline_dispatch=*/true);
  RunTraffic(/*rounds=*/100);  // warm buffers, scratch, counters
  const uint64_t inlined_before = server_->inline_dispatched();

  testsupport::GlobalCountingScope scope;
  RunTraffic(/*rounds=*/100);
  const uint64_t allocations = scope.count();
  testsupport::SetGlobalCounting(false);

  // All 200 measured frames really took the inline path...
  EXPECT_EQ(server_->inline_dispatched(), inlined_before + 200);
  // ...and the server side allocated nothing to serve them.
  EXPECT_EQ(allocations, 0u)
      << "inline path allocated " << allocations << " times over 200 frames";
}

TEST_P(ServerAllocTest, WorkerPathDoesNotAllocateOncePoolsAreWarm) {
  StartServer(/*inline_dispatch=*/false);
  RunTraffic(/*rounds=*/100);
  ASSERT_EQ(server_->inline_dispatched(), 0u);
  const uint64_t reuses_before = server_->frame_pool().reuses();

  testsupport::GlobalCountingScope scope;
  RunTraffic(/*rounds=*/100);
  const uint64_t allocations = scope.count();
  testsupport::SetGlobalCounting(false);

  // Every measured frame cycled a recycled body through the pool...
  EXPECT_EQ(server_->frame_pool().reuses(), reuses_before + 200);
  // ...allocation-free.
  EXPECT_EQ(allocations, 0u)
      << "worker path allocated " << allocations << " times over 200 frames";
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ServerAllocTest,
    testing::Values(ServerBackend::kEpoll, ServerBackend::kIoUring),
    [](const testing::TestParamInfo<ServerBackend>& info) {
      return std::string(ServerBackendName(info.param));
    });

}  // namespace
}  // namespace watchman
