// MultiplexedClient <-> event-loop server integration: one connection
// shared by many threads, out-of-order response routing by request id,
// pipelined writes, partial-write resumption under a tiny SO_SNDBUF,
// and Await deadlines. The suite name contains "Server" so the
// concurrency-heavy tests run under the CI TSan job's *Server* filter.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

std::string PayloadFor(const std::string& text) {
  return "payload(" + text + ")";
}

class MultiplexedClientServerTest : public testing::Test {
 protected:
  void StartServer(WatchmanServer::Options server_options = {}) {
    Watchman::Options options;
    options.capacity_bytes = 64 << 20;
    options.num_shards = 8;
    cache_ = std::make_unique<Watchman>(std::move(options),
                                        WatchmanServer::MissFillExecutor());
    server_options.port = 0;  // ephemeral: parallel-safe in CI
    server_ = std::make_unique<WatchmanServer>(cache_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  MultiplexedClient::Options ClientOptions() const {
    MultiplexedClient::Options options;
    options.port = server_->port();
    return options;
  }

  std::unique_ptr<MultiplexedClient> MakeClient() {
    auto client = MultiplexedClient::Connect(ClientOptions());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<Watchman> cache_;
  std::unique_ptr<WatchmanServer> server_;
};

TEST_F(MultiplexedClientServerTest, BlockingOpsShareOneConnection) {
  StartServer();
  auto client = MakeClient();
  EXPECT_TRUE(client->Ping().ok());

  const std::string query = "select sum(profit) from orders";
  auto filled = client->Execute(query, PayloadFor(query), 9000, {"orders"});
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  EXPECT_FALSE(filled->cache_hit);

  auto got = client->Get(query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->cache_hit);
  EXPECT_EQ(got->payload, PayloadFor(query));

  auto miss = client->Get("select nothing");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);

  auto dropped = client->InvalidateRelation("orders");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 1u);

  auto one = client->Invalidate(query);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 0u);  // already invalidated

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->connections_accepted, 1u);
  EXPECT_GE(stats->requests_served, 5u);
}

TEST_F(MultiplexedClientServerTest, OutOfOrderAwaitRoutesResponsesById) {
  StartServer();
  auto client = MakeClient();
  constexpr int kQueries = 24;
  for (int i = 0; i < kQueries; ++i) {
    const std::string query = "select " + std::to_string(i);
    ASSERT_TRUE(
        client->Execute(query, PayloadFor(query), 100, {"r"}).ok());
  }
  // Pipeline every GET before awaiting any, then await in REVERSE
  // issue order: each response must still land on its own ticket.
  std::vector<MultiplexedClient::Ticket> tickets;
  for (int i = 0; i < kQueries; ++i) {
    auto ticket = client->StartGet("select " + std::to_string(i));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (int i = kQueries - 1; i >= 0; --i) {
    auto response = client->Await(tickets[static_cast<size_t>(i)]);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->code, StatusCode::kOk) << i;
    EXPECT_EQ(response->payload, PayloadFor("select " + std::to_string(i)))
        << i;
  }
  // A ticket can be awaited only once.
  auto again = client->Await(tickets[0]);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MultiplexedClientServerTest,
       ConcurrentThreadsOnOneConnectionRouteToIssuer) {
  StartServer();
  constexpr int kThreads = 8;
  constexpr int kIterations = 150;
  constexpr int kQueriesPerThread = 5;
  auto client = MakeClient();
  // Prefill thread-distinct queries over the same connection.
  for (int t = 0; t < kThreads; ++t) {
    for (int q = 0; q < kQueriesPerThread; ++q) {
      const std::string query =
          "select t" + std::to_string(t) + " q" + std::to_string(q);
      ASSERT_TRUE(
          client->Execute(query, PayloadFor(query), 100, {"rel"}).ok());
    }
  }
  EXPECT_EQ(server_->connections_accepted(), 1u);

  std::atomic<int> errors{0};
  std::atomic<int> wrong_payloads{0};
  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kIterations; ++i) {
        const std::string query = "select t" + std::to_string(t) + " q" +
                                  std::to_string(i % kQueriesPerThread);
        auto got = client->Get(query);
        if (!got.ok()) {
          errors.fetch_add(1);
        } else if (got->payload != PayloadFor(query)) {
          // A routing bug would hand this thread another thread's
          // response; the thread-distinct payload catches it.
          wrong_payloads.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(wrong_payloads.load(), 0);
  EXPECT_EQ(server_->connections_accepted(), 1u);
  const CacheStats stats = cache_->stats();
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads * kIterations));
  EXPECT_TRUE(cache_->cache().CheckInvariants().ok());
}

TEST_F(MultiplexedClientServerTest, PartialWriteResumptionUnderTinySndbuf) {
  // A 4 KiB SO_SNDBUF against ~64 KiB responses forces every response
  // through the EPOLLOUT partial-write resumption path; 32 pipelined
  // GETs make many of them overlap in one connection's output buffer.
  WatchmanServer::Options server_options;
  server_options.sndbuf_bytes = 4096;
  server_options.num_workers = 4;
  StartServer(server_options);
  constexpr int kQueries = 32;
  auto client = MakeClient();
  std::vector<std::string> payloads;
  for (int i = 0; i < kQueries; ++i) {
    const std::string query = "select big " + std::to_string(i);
    std::string payload(64 * 1024,
                        static_cast<char>('a' + (i % 26)));
    payload.replace(0, query.size(), query);  // make each unique
    ASSERT_TRUE(client->Execute(query, payload, 100, {"rel"}).ok());
    payloads.push_back(std::move(payload));
  }
  std::vector<MultiplexedClient::Ticket> tickets;
  for (int i = 0; i < kQueries; ++i) {
    auto ticket = client->StartGet("select big " + std::to_string(i));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (int i = 0; i < kQueries; ++i) {
    auto response = client->Await(tickets[static_cast<size_t>(i)]);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->code, StatusCode::kOk) << i;
    // Byte-exact through arbitrarily split writes.
    EXPECT_EQ(response->payload, payloads[static_cast<size_t>(i)]) << i;
  }
}

TEST_F(MultiplexedClientServerTest, AwaitDeadlineAgainstSilentDaemon) {
  // A "daemon" that accepts and reads but never replies: Await must
  // fail with IOError within the configured deadline instead of
  // blocking its thread forever.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  std::thread server([listen_fd] {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) return;
    char sink[4096];
    while (::recv(conn, sink, sizeof(sink), 0) > 0) {
    }
    ::close(conn);
  });

  MultiplexedClient::Options options;
  options.port = ntohs(addr.sin_port);
  options.connect_attempts = 1;
  options.io_timeout_ms = 250;
  auto client = MultiplexedClient::Connect(options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto begin = std::chrono::steady_clock::now();
  auto got = (*client)->Get("select 1");
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - begin)
          .count();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
  EXPECT_GE(elapsed_ms, 200.0);
  EXPECT_LT(elapsed_ms, 5000.0);
  (*client).reset();  // closes the connection, unblocking the fake daemon
  server.join();
  ::close(listen_fd);
}

TEST_F(MultiplexedClientServerTest, TransportFailureIsStickyAndFailsFast) {
  StartServer();
  auto client = MakeClient();
  ASSERT_TRUE(client->Ping().ok());
  server_->Stop();  // closes the connection under the client
  // The reader notices EOF and breaks the client; subsequent calls
  // fail fast with the sticky status instead of hanging.
  Status status;
  for (int i = 0; i < 50; ++i) {
    status = client->Ping();
    if (!status.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(status.ok());
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_FALSE(client->Ping().ok());
  const double fail_fast_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_LT(fail_fast_ms, 1000.0);
}

}  // namespace
}  // namespace watchman
