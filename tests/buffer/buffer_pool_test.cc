#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace watchman {
namespace {

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(4, 100);
  EXPECT_FALSE(pool.Reference(7));
  EXPECT_TRUE(pool.Reference(7));
  EXPECT_EQ(pool.stats().references, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_TRUE(pool.IsResident(7));
}

TEST(BufferPoolTest, EvictsLruWhenFull) {
  BufferPool pool(3, 100);
  pool.Reference(1);
  pool.Reference(2);
  pool.Reference(3);
  pool.Reference(1);  // 2 is now LRU
  pool.Reference(4);  // evicts 2
  EXPECT_TRUE(pool.IsResident(1));
  EXPECT_FALSE(pool.IsResident(2));
  EXPECT_TRUE(pool.IsResident(3));
  EXPECT_TRUE(pool.IsResident(4));
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(BufferPoolTest, DemoteMakesPageNextVictim) {
  BufferPool pool(3, 100);
  pool.Reference(1);
  pool.Reference(2);
  pool.Reference(3);
  pool.Demote(3);     // 3 (most recent) demoted to the LRU end
  pool.Reference(4);  // evicts 3, not 1
  EXPECT_FALSE(pool.IsResident(3));
  EXPECT_TRUE(pool.IsResident(1));
  EXPECT_EQ(pool.stats().demotions, 1u);
}

TEST(BufferPoolTest, DemoteNonResidentIsNoop) {
  BufferPool pool(3, 100);
  pool.Reference(1);
  pool.Demote(50);
  EXPECT_EQ(pool.stats().demotions, 0u);
  EXPECT_TRUE(pool.CheckInvariants().ok());
}

TEST(BufferPoolTest, ReferencePromotesDemotedPage) {
  BufferPool pool(3, 100);
  pool.Reference(1);
  pool.Reference(2);
  pool.Reference(3);
  pool.Demote(3);
  pool.Reference(3);  // hit: back to MRU
  pool.Reference(4);  // evicts 1 (true LRU again)
  EXPECT_TRUE(pool.IsResident(3));
  EXPECT_FALSE(pool.IsResident(1));
}

TEST(BufferPoolTest, ResidentCountNeverExceedsCapacity) {
  BufferPool pool(16, 1000);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    pool.Reference(static_cast<PageId>(rng.NextBounded(1000)));
    ASSERT_LE(pool.resident_count(), 16u);
  }
  EXPECT_TRUE(pool.CheckInvariants().ok());
}

TEST(BufferPoolTest, RandomizedInvariantsWithDemotions) {
  BufferPool pool(32, 500);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const PageId p = static_cast<PageId>(rng.NextBounded(500));
    if (rng.NextBool(0.2)) {
      pool.Demote(p);
    } else {
      pool.Reference(p);
    }
    if (i % 1000 == 0) {
      ASSERT_TRUE(pool.CheckInvariants().ok()) << "iteration " << i;
    }
  }
  EXPECT_TRUE(pool.CheckInvariants().ok());
}

TEST(BufferPoolTest, SequentialFloodEvictsEverything) {
  BufferPool pool(10, 1000);
  for (PageId p = 0; p < 10; ++p) pool.Reference(p);
  for (PageId p = 100; p < 120; ++p) pool.Reference(p);  // flood
  for (PageId p = 0; p < 10; ++p) EXPECT_FALSE(pool.IsResident(p));
}

TEST(BufferPoolTest, HitRatioComputation) {
  BufferPool pool(10, 100);
  pool.Reference(1);
  pool.Reference(1);
  pool.Reference(1);
  pool.Reference(2);
  EXPECT_DOUBLE_EQ(pool.stats().hit_ratio(), 0.5);
}

}  // namespace
}  // namespace watchman
