#include "buffer/query_ref_tracker.h"

#include <gtest/gtest.h>

namespace watchman {
namespace {

TEST(QueryRefTrackerTest, FirstExecutionCountsOnce) {
  QueryRefTracker tracker(100);
  tracker.RecordFirstExecution("q1", {{0, 10}});
  tracker.RecordFirstExecution("q1", {{0, 10}});  // duplicate ignored
  EXPECT_EQ(tracker.reference_count(5), 1u);
  EXPECT_TRUE(tracker.Seen("q1"));
  EXPECT_FALSE(tracker.Seen("q2"));
}

TEST(QueryRefTrackerTest, OverlappingQueriesAccumulate) {
  QueryRefTracker tracker(100);
  tracker.RecordFirstExecution("q1", {{0, 10}});
  tracker.RecordFirstExecution("q2", {{5, 15}});
  EXPECT_EQ(tracker.reference_count(3), 1u);
  EXPECT_EQ(tracker.reference_count(7), 2u);
  EXPECT_EQ(tracker.reference_count(12), 1u);
  EXPECT_EQ(tracker.reference_count(20), 0u);
}

TEST(QueryRefTrackerTest, RedundancyFractionTracksCaching) {
  QueryRefTracker tracker(100);
  tracker.RecordFirstExecution("q1", {{0, 10}});
  tracker.RecordFirstExecution("q2", {{0, 10}});
  EXPECT_DOUBLE_EQ(tracker.RedundancyFraction(5), 0.0);
  tracker.OnResultCached({{0, 10}});  // q1 cached
  EXPECT_DOUBLE_EQ(tracker.RedundancyFraction(5), 0.5);
  tracker.OnResultCached({{0, 10}});  // q2 cached
  EXPECT_DOUBLE_EQ(tracker.RedundancyFraction(5), 1.0);
  tracker.OnResultEvicted({{0, 10}});
  EXPECT_DOUBLE_EQ(tracker.RedundancyFraction(5), 0.5);
}

TEST(QueryRefTrackerTest, IsRedundantThresholds) {
  QueryRefTracker tracker(100);
  tracker.RecordFirstExecution("a", {{0, 4}});
  tracker.RecordFirstExecution("b", {{0, 4}});
  tracker.RecordFirstExecution("c", {{0, 4}});
  tracker.OnResultCached({{0, 4}});
  tracker.OnResultCached({{0, 4}});
  // 2 of 3 cached -> fraction 0.667.
  EXPECT_TRUE(tracker.IsRedundant(1, 0.6));
  EXPECT_TRUE(tracker.IsRedundant(1, 2.0 / 3.0));
  EXPECT_FALSE(tracker.IsRedundant(1, 0.7));
  EXPECT_TRUE(tracker.IsRedundant(1, 0.0));
}

TEST(QueryRefTrackerTest, UnreferencedPageNeverRedundant) {
  QueryRefTracker tracker(100);
  // Even at p0 = 0 a page with an empty reference set is not demoted.
  EXPECT_FALSE(tracker.IsRedundant(42, 0.0));
  EXPECT_DOUBLE_EQ(tracker.RedundancyFraction(42), 0.0);
}

TEST(QueryRefTrackerTest, MultiRangeQueries) {
  QueryRefTracker tracker(100);
  tracker.RecordFirstExecution("join", {{0, 5}, {50, 55}});
  tracker.OnResultCached({{0, 5}, {50, 55}});
  EXPECT_DOUBLE_EQ(tracker.RedundancyFraction(2), 1.0);
  EXPECT_DOUBLE_EQ(tracker.RedundancyFraction(52), 1.0);
  EXPECT_DOUBLE_EQ(tracker.RedundancyFraction(10), 0.0);
}

}  // namespace
}  // namespace watchman
