// Integration tests of the combined WATCHMAN + buffer-pool simulation.

#include "buffer/buffer_sim.h"

#include <gtest/gtest.h>

#include "storage/schemas.h"
#include "workload/buffer_workload.h"

namespace watchman {
namespace {

class BufferSimTest : public testing::Test {
 protected:
  BufferSimTest()
      : db_(MakeBufferExperimentDatabase()), mix_(MakeBufferWorkload(db_)) {
    TraceGenOptions opts;
    opts.num_queries = 1500;  // keep unit tests fast
    opts.seed = 17;
    trace_ = mix_.GenerateTrace(opts);
  }

  Database db_;
  WorkloadMix mix_;
  Trace trace_;
};

TEST_F(BufferSimTest, CacheHitsSuppressPageReferences) {
  BufferSimOptions opts;
  opts.hints_enabled = false;
  const BufferSimResult r = RunBufferSimulation(db_, mix_, trace_, opts);
  EXPECT_GT(r.cache.hits, 0u);
  EXPECT_EQ(r.executed_queries + r.cache.hits, trace_.size());
  EXPECT_GT(r.total_page_refs, 0u);
  EXPECT_EQ(r.buffer.references, r.total_page_refs);
}

TEST_F(BufferSimTest, HintsOffSendsNoHints) {
  BufferSimOptions opts;
  opts.hints_enabled = false;
  const BufferSimResult r = RunBufferSimulation(db_, mix_, trace_, opts);
  EXPECT_EQ(r.hints_sent, 0u);
  EXPECT_EQ(r.pages_demoted, 0u);
  EXPECT_EQ(r.buffer.demotions, 0u);
}

TEST_F(BufferSimTest, HintsFireOnAdmissions) {
  BufferSimOptions opts;
  opts.p0 = 0.5;
  const BufferSimResult r = RunBufferSimulation(db_, mix_, trace_, opts);
  EXPECT_GT(r.hints_sent, 0u);
  EXPECT_GT(r.pages_demoted, 0u);
  EXPECT_EQ(r.buffer.demotions, r.pages_demoted);
}

TEST_F(BufferSimTest, PageRefStreamIdenticalAcrossThresholds) {
  // Hints only reorder the LRU chain; the reference stream (and the
  // WATCHMAN cache behaviour) must be identical for every p0.
  BufferSimOptions a;
  a.p0 = 0.9;
  BufferSimOptions b;
  b.p0 = 0.1;
  const BufferSimResult ra = RunBufferSimulation(db_, mix_, trace_, a);
  const BufferSimResult rb = RunBufferSimulation(db_, mix_, trace_, b);
  EXPECT_EQ(ra.total_page_refs, rb.total_page_refs);
  EXPECT_EQ(ra.executed_queries, rb.executed_queries);
  EXPECT_EQ(ra.cache.hits, rb.cache.hits);
  EXPECT_EQ(ra.cache.insertions, rb.cache.insertions);
}

TEST_F(BufferSimTest, LowerThresholdDemotesMore) {
  BufferSimOptions high;
  high.p0 = 0.9;
  BufferSimOptions low;
  low.p0 = 0.1;
  const BufferSimResult rh = RunBufferSimulation(db_, mix_, trace_, high);
  const BufferSimResult rl = RunBufferSimulation(db_, mix_, trace_, low);
  EXPECT_GE(rl.pages_demoted, rh.pages_demoted);
}

TEST_F(BufferSimTest, DeterministicAcrossRuns) {
  BufferSimOptions opts;
  opts.p0 = 0.6;
  const BufferSimResult a = RunBufferSimulation(db_, mix_, trace_, opts);
  const BufferSimResult b = RunBufferSimulation(db_, mix_, trace_, opts);
  EXPECT_EQ(a.buffer.hits, b.buffer.hits);
  EXPECT_EQ(a.pages_demoted, b.pages_demoted);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
}

TEST_F(BufferSimTest, SmallerPoolLowersHitRatio) {
  BufferSimOptions big;
  big.hints_enabled = false;
  big.pool_bytes = 15ull << 20;
  BufferSimOptions small;
  small.hints_enabled = false;
  small.pool_bytes = 2ull << 20;
  const BufferSimResult rb = RunBufferSimulation(db_, mix_, trace_, big);
  const BufferSimResult rs = RunBufferSimulation(db_, mix_, trace_, small);
  EXPECT_GT(rb.buffer.hit_ratio(), rs.buffer.hit_ratio());
}

}  // namespace
}  // namespace watchman
