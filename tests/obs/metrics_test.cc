#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "support/counting_alloc.h"
#include "support/promtext.h"

namespace watchman {
namespace obs {
namespace {

using testsupport::CountingScope;
using testsupport::ValidatePrometheusText;

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllCounted) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

// ------------------------------------------------------------ histogram

TEST(LogHistogramTest, SmallValuesMapExactly) {
  for (uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::BucketIndex(v), v);
    EXPECT_EQ(LogHistogram::BucketLowerBound(static_cast<uint32_t>(v)), v);
    EXPECT_EQ(LogHistogram::BucketUpperBound(static_cast<uint32_t>(v)),
              v + 1);
  }
}

TEST(LogHistogramTest, BucketBoundsContainTheirValues) {
  // Every probed value must land in a bucket whose [lower, upper) range
  // contains it, across octave boundaries and the full tracked span.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 300; ++v) probes.push_back(v);
  for (uint32_t shift = 8; shift <= 40; ++shift) {
    const uint64_t base = 1ull << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + base / 2);
  }
  for (uint64_t v : probes) {
    const uint32_t idx = LogHistogram::BucketIndex(v);
    ASSERT_LT(idx, LogHistogram::kNumBuckets);
    EXPECT_GE(v, LogHistogram::BucketLowerBound(idx)) << "v=" << v;
    EXPECT_LT(v, LogHistogram::BucketUpperBound(idx)) << "v=" << v;
  }
}

TEST(LogHistogramTest, BucketRelativeErrorBounded) {
  // Log-bucketing contract: bucket width / lower bound <= 2^-kSubBits.
  for (uint32_t idx = LogHistogram::kSubBuckets;
       idx < LogHistogram::kNumBuckets - 1; ++idx) {
    const uint64_t lo = LogHistogram::BucketLowerBound(idx);
    const uint64_t hi = LogHistogram::BucketUpperBound(idx);
    EXPECT_LE(hi - lo, lo >> LogHistogram::kSubBits)
        << "bucket " << idx << " [" << lo << "," << hi << ")";
  }
}

TEST(LogHistogramTest, OverflowBucketCatchesHugeValues) {
  const uint64_t beyond = 1ull << (LogHistogram::kMaxExponent + 1);
  EXPECT_EQ(LogHistogram::BucketIndex(beyond),
            LogHistogram::kNumBuckets - 1);
  EXPECT_EQ(
      LogHistogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
      LogHistogram::kNumBuckets - 1);
  // The last finite bucket still ends exactly at the overflow threshold.
  EXPECT_EQ(LogHistogram::BucketUpperBound(LogHistogram::kNumBuckets - 2),
            beyond);
}

TEST(LogHistogramTest, CountSumMinMax) {
  LogHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  h.Record(100);
  h.Record(7);
  h.Record(100000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 100107u);
  EXPECT_EQ(h.Min(), 7u);
  EXPECT_EQ(h.Max(), 100000u);
}

TEST(LogHistogramTest, QuantilesOnUniformData) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 10000u);
  // Bounded relative error: each quantile lands within one bucket width
  // (12.5%) of the exact order statistic.
  EXPECT_NEAR(snap.Quantile(0.5), 5000.0, 5000.0 * 0.13);
  EXPECT_NEAR(snap.Quantile(0.95), 9500.0, 9500.0 * 0.13);
  EXPECT_NEAR(snap.Quantile(0.99), 9900.0, 9900.0 * 0.13);
  // Edges clamp to the observed extremes.
  EXPECT_GE(snap.Quantile(0.0), 1.0);
  EXPECT_EQ(snap.Quantile(1.0), 10000.0);
}

TEST(LogHistogramTest, QuantileEmptyAndSingleValue) {
  LogHistogram h;
  EXPECT_EQ(h.TakeSnapshot().Quantile(0.5), 0.0);
  h.Record(777);
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  // Everything clamps to the single observed value.
  EXPECT_EQ(snap.Quantile(0.0), 777.0);
  EXPECT_EQ(snap.Quantile(0.5), 777.0);
  EXPECT_EQ(snap.Quantile(1.0), 777.0);
}

TEST(LogHistogramTest, QuantileOverflowBucketClampsToMax) {
  LogHistogram h;
  const uint64_t huge = 1ull << (LogHistogram::kMaxExponent + 2);
  h.Record(huge);
  h.Record(huge + 5);
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_GE(snap.Quantile(0.5), static_cast<double>(huge));
  EXPECT_LE(snap.Quantile(1.0), static_cast<double>(huge + 5));
}

TEST(LogHistogramTest, ConcurrentRecordsMerge) {
  LogHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 7001u);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

// ------------------------------------------------- zero-allocation path

TEST(MetricsAllocTest, HotPathUpdatesAllocateNothing) {
  Counter counter;
  Gauge gauge;
  LogHistogram histogram;
  // Warm the thread slot and touch each object once outside the scope.
  counter.Inc();
  gauge.Set(1);
  histogram.Record(1);
  {
    CountingScope scope;
    for (int i = 0; i < 1000; ++i) {
      counter.Add(3);
      gauge.Add(-1);
      histogram.Record(static_cast<uint64_t>(i) * 977);
    }
    EXPECT_EQ(scope.count(), 0u);
  }
}

// -------------------------------------------------------------- registry

TEST(MetricsRegistryTest, RendersValidExposition) {
  MetricsRegistry registry;
  Counter hits;
  hits.Add(5);
  Counter misses;
  misses.Add(2);
  Gauge used;
  used.Set(4096);
  LogHistogram latency;
  latency.Record(1200);
  latency.Record(90000);

  registry.AddCounter("test_hits_total", "Hits.", {{"shard", "0"}}, &hits);
  registry.AddCounter("test_hits_total", "Hits.", {{"shard", "1"}}, &misses);
  registry.AddGauge("test_used_bytes", "Bytes used.", {}, &used);
  registry.AddCounterFn("test_fn_total", "Callback counter.", {},
                        [] { return uint64_t{123}; });
  registry.AddHistogram("test_latency_seconds", "Latency.", {}, &latency,
                        1e-9);
  EXPECT_EQ(registry.family_count(), 4u);

  const std::string text = registry.RenderPrometheusText();
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error << "\n" << text;

  EXPECT_NE(text.find("# TYPE test_hits_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_hits_total{shard=\"0\"} 5"), std::string::npos);
  EXPECT_NE(text.find("test_hits_total{shard=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_used_bytes 4096"), std::string::npos);
  EXPECT_NE(text.find("test_fn_total 123"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulativeAndScaled) {
  MetricsRegistry registry;
  LogHistogram h;
  h.Record(1);  // bucket [1,2)
  h.Record(1);
  h.Record(1000);  // much later bucket
  registry.AddHistogram("scaled_seconds", "Scaled.", {}, &h, 1e-3);
  const std::string text = registry.RenderPrometheusText();
  std::string error;
  ASSERT_TRUE(ValidatePrometheusText(text, &error)) << error << "\n" << text;
  // First occupied bucket: upper bound 2 scaled by 1e-3, cumulative 2.
  EXPECT_NE(text.find("scaled_seconds_bucket{le=\"0.002\"} 2"),
            std::string::npos);
  // Sum scaled: 1002 * 1e-3.
  EXPECT_NE(text.find("scaled_seconds_sum 1.002"), std::string::npos);
  EXPECT_NE(text.find("scaled_seconds_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, EscapesHelpAndLabelValues) {
  MetricsRegistry registry;
  Counter c;
  registry.AddCounter("esc_total", "Help with \\ and\nnewline.",
                      {{"path", "a\"b\\c"}}, &c);
  const std::string text = registry.RenderPrometheusText();
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("# HELP esc_total Help with \\\\ and\\nnewline."),
            std::string::npos);
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\"} 0"),
            std::string::npos);
}

TEST(MetricsRegistryTest, EmptyHistogramStillWellFormed) {
  MetricsRegistry registry;
  LogHistogram h;
  registry.AddHistogram("empty_seconds", "Never recorded.", {}, &h);
  const std::string text = registry.RenderPrometheusText();
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("empty_seconds_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("empty_seconds_count 0"), std::string::npos);
}

// The validator itself must reject broken expositions, or the render
// tests above prove nothing.
TEST(PromTextValidatorTest, RejectsBrokenInput) {
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText("no_help_metric 1\n", &error));
  EXPECT_FALSE(ValidatePrometheusText(
      "# HELP m Help.\n# TYPE m counter\nm{bad-key=\"v\"} 1\n", &error));
  EXPECT_FALSE(ValidatePrometheusText(
      "# HELP m Help.\n# TYPE m counter\nm 1\nm 2\n", &error));  // dup
  EXPECT_FALSE(ValidatePrometheusText(
      "# HELP m Help.\n# TYPE m counter\nother 1\n", &error));
  // Histogram whose +Inf bucket disagrees with _count.
  EXPECT_FALSE(ValidatePrometheusText(
      "# HELP h H.\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 3\n",
      &error));
  // Histogram with decreasing cumulative counts.
  EXPECT_FALSE(ValidatePrometheusText(
      "# HELP h H.\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\n"
      "h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
      &error));
  // Histogram missing the +Inf bucket.
  EXPECT_FALSE(ValidatePrometheusText(
      "# HELP h H.\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\nh_sum 3\nh_count 2\n", &error));
}

}  // namespace
}  // namespace obs
}  // namespace watchman
