#include "obs/admin_http.h"

#include <gtest/gtest.h>

#include <string>

namespace watchman {
namespace obs {
namespace {

TEST(ParseHttpRequestTest, CompleteGet) {
  HttpRequest request;
  bool malformed = true;
  EXPECT_TRUE(ParseHttpRequest(
      "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n", &request, &malformed));
  EXPECT_FALSE(malformed);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/metrics");
}

TEST(ParseHttpRequestTest, BareNewlinesAccepted) {
  HttpRequest request;
  bool malformed = true;
  EXPECT_TRUE(
      ParseHttpRequest("GET /healthz HTTP/1.1\n\n", &request, &malformed));
  EXPECT_FALSE(malformed);
  EXPECT_EQ(request.path, "/healthz");
}

TEST(ParseHttpRequestTest, QueryStringStripped) {
  HttpRequest request;
  bool malformed = true;
  EXPECT_TRUE(ParseHttpRequest("GET /metrics?format=text HTTP/1.0\r\n\r\n",
                               &request, &malformed));
  EXPECT_EQ(request.path, "/metrics");
}

TEST(ParseHttpRequestTest, IncompleteNeedsMoreBytes) {
  HttpRequest request;
  bool malformed = true;
  EXPECT_FALSE(
      ParseHttpRequest("GET /metrics HTTP/1.0\r\n", &request, &malformed));
  EXPECT_FALSE(malformed);  // not an error, just short
  EXPECT_FALSE(ParseHttpRequest("GE", &request, &malformed));
  EXPECT_FALSE(malformed);
}

TEST(ParseHttpRequestTest, MalformedRequestLine) {
  HttpRequest request;
  bool malformed = false;
  EXPECT_FALSE(ParseHttpRequest("\r\n\r\n", &request, &malformed));
  EXPECT_TRUE(malformed);
  malformed = false;
  EXPECT_FALSE(ParseHttpRequest("GARBAGE\r\n\r\n", &request, &malformed));
  EXPECT_TRUE(malformed);
}

TEST(ParseHttpRequestTest, MethodWithoutVersion) {
  // HTTP/0.9-style "GET /path" request line still parses.
  HttpRequest request;
  bool malformed = true;
  EXPECT_TRUE(ParseHttpRequest("GET /healthz\r\n\r\n", &request, &malformed));
  EXPECT_FALSE(malformed);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/healthz");
}

TEST(HttpStatusTextTest, KnownCodes) {
  EXPECT_STREQ(HttpStatusText(200), "OK");
  EXPECT_STREQ(HttpStatusText(404), "Not Found");
  EXPECT_STREQ(HttpStatusText(405), "Method Not Allowed");
}

TEST(AppendHttpResponseTest, WellFormedResponse) {
  std::string out;
  AppendHttpResponse(200, "text/plain; charset=utf-8", "ok\n", &out);
  EXPECT_EQ(out.find("HTTP/1.0 200 OK\r\n"), 0u);
  EXPECT_NE(out.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(out.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(out.find("Connection: close\r\n"), std::string::npos);
  // Body follows the blank line, exactly once.
  const size_t sep = out.find("\r\n\r\n");
  ASSERT_NE(sep, std::string::npos);
  EXPECT_EQ(out.substr(sep + 4), "ok\n");
}

}  // namespace
}  // namespace obs
}  // namespace watchman
