// Tests of shard-count normalization, signature routing and capacity
// splitting.

#include "util/sharding.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/hash.h"

namespace watchman {
namespace {

TEST(ShardingTest, NormalizeShardCount) {
  EXPECT_EQ(NormalizeShardCount(0), 1u);
  EXPECT_EQ(NormalizeShardCount(1), 1u);
  EXPECT_EQ(NormalizeShardCount(2), 2u);
  EXPECT_EQ(NormalizeShardCount(3), 4u);
  EXPECT_EQ(NormalizeShardCount(8), 8u);
  EXPECT_EQ(NormalizeShardCount(9), 16u);
  EXPECT_EQ(NormalizeShardCount(100000), kMaxShards);
}

TEST(ShardingTest, RoutingIsStableAndInRange) {
  for (int i = 0; i < 1000; ++i) {
    const Signature sig =
        ComputeSignature("query " + std::to_string(i));
    const size_t shard = ShardOfSignature(sig, 8);
    EXPECT_LT(shard, 8u);
    EXPECT_EQ(shard, ShardOfSignature(sig, 8));
  }
}

TEST(ShardingTest, RoutingSpreadsSignatures) {
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    const Signature sig = ComputeSignature("q" + std::to_string(i));
    ++counts[ShardOfSignature(sig, 8)];
  }
  for (int c : counts) {
    // Perfectly uniform would be 1000 per shard; demand rough balance.
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ShardingTest, ShardCapacitySumsToTotal) {
  const uint64_t total = 1000003;  // prime: exercises the remainder
  for (size_t n : {1, 2, 4, 8, 16}) {
    uint64_t sum = 0;
    uint64_t min_cap = total, max_cap = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t cap = ShardCapacity(total, n, i);
      sum += cap;
      min_cap = std::min(min_cap, cap);
      max_cap = std::max(max_cap, cap);
    }
    EXPECT_EQ(sum, total) << n;
    EXPECT_LE(max_cap - min_cap, 1u) << n;
  }
}

}  // namespace
}  // namespace watchman
