#include "util/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace watchman {
namespace {

// The global injector is process-wide state; every test leaves it
// disabled so neighbours (and the rest of the suite) see no faults.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultTest, ParseEmptySpecIsAllOff) {
  FaultConfig config;
  ASSERT_TRUE(ParseFaultSpec("", &config).ok());
  EXPECT_FALSE(config.any_enabled());
  EXPECT_EQ(config.seed, 1u);
  EXPECT_EQ(config.stall_ms, 1);
}

TEST_F(FaultTest, ParseFullSpec) {
  FaultConfig config;
  ASSERT_TRUE(ParseFaultSpec(
                  "seed=42, recv_short=0.25,store_put_fail=1, stall_ms=7",
                  &config)
                  .ok());
  EXPECT_EQ(config.seed, 42u);
  EXPECT_EQ(config.stall_ms, 7);
  EXPECT_DOUBLE_EQ(
      config.probability[static_cast<size_t>(Fault::kRecvShort)], 0.25);
  EXPECT_DOUBLE_EQ(
      config.probability[static_cast<size_t>(Fault::kStorePutFail)], 1.0);
  EXPECT_DOUBLE_EQ(config.probability[static_cast<size_t>(Fault::kSendShort)],
                   0.0);
  EXPECT_TRUE(config.any_enabled());
}

TEST_F(FaultTest, EveryFaultNameRoundTrips) {
  for (size_t i = 0; i < kNumFaults; ++i) {
    const Fault f = static_cast<Fault>(i);
    FaultConfig config;
    const std::string spec = std::string(FaultName(f)) + "=0.5";
    ASSERT_TRUE(ParseFaultSpec(spec, &config).ok()) << spec;
    EXPECT_DOUBLE_EQ(config.probability[i], 0.5) << spec;
  }
}

TEST_F(FaultTest, ParseRejectsMalformedSpecs) {
  FaultConfig config;
  EXPECT_EQ(ParseFaultSpec("bogus_fault=0.5", &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("recv_short", &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("recv_short=", &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("recv_short=1.5", &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("recv_short=-0.1", &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("recv_short=abc", &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("seed=abc", &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("stall_ms=-1", &config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("stall_ms=60001", &config).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FaultTest, DisabledInjectorNeverTrips) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Reset();
  EXPECT_FALSE(fi.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.Trip(Fault::kRecvShort));
  }
  EXPECT_EQ(fi.injected_total(), 0u);
}

TEST_F(FaultTest, ProbabilityExtremes) {
  FaultInjector& fi = FaultInjector::Global();
  ASSERT_TRUE(fi.Configure("seed=7,send_reset=1,recv_reset=0").ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(fi.Trip(Fault::kSendReset));
    EXPECT_FALSE(fi.Trip(Fault::kRecvReset));
  }
  EXPECT_EQ(fi.injected(Fault::kSendReset), 64u);
  EXPECT_EQ(fi.injected(Fault::kRecvReset), 0u);
  EXPECT_EQ(fi.decisions(Fault::kSendReset), 64u);
  // A zero-probability fault short-circuits before the ordinal advances.
  EXPECT_EQ(fi.decisions(Fault::kRecvReset), 0u);
}

TEST_F(FaultTest, SameSeedReplaysSameSchedule) {
  FaultInjector& fi = FaultInjector::Global();
  std::vector<bool> first;
  ASSERT_TRUE(fi.Configure("seed=1234,recv_short=0.3").ok());
  for (int i = 0; i < 200; ++i) first.push_back(fi.Trip(Fault::kRecvShort));

  // Re-installing the same config restarts the ordinal: identical run.
  ASSERT_TRUE(fi.Configure("seed=1234,recv_short=0.3").ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(fi.Trip(Fault::kRecvShort), first[i]) << "at call " << i;
  }
}

TEST_F(FaultTest, DifferentSeedsDiverge) {
  FaultInjector& fi = FaultInjector::Global();
  std::vector<bool> a, b;
  ASSERT_TRUE(fi.Configure("seed=1,recv_short=0.5").ok());
  for (int i = 0; i < 200; ++i) a.push_back(fi.Trip(Fault::kRecvShort));
  ASSERT_TRUE(fi.Configure("seed=2,recv_short=0.5").ok());
  for (int i = 0; i < 200; ++i) b.push_back(fi.Trip(Fault::kRecvShort));
  EXPECT_NE(a, b);
}

TEST_F(FaultTest, MidProbabilityLandsNearExpectation) {
  FaultInjector& fi = FaultInjector::Global();
  ASSERT_TRUE(fi.Configure("seed=99,store_get_fail=0.2").ok());
  for (int i = 0; i < 2000; ++i) fi.Trip(Fault::kStoreGetFail);
  const uint64_t hits = fi.injected(Fault::kStoreGetFail);
  // 2000 * 0.2 = 400 expected; allow a wide deterministic band.
  EXPECT_GT(hits, 300u);
  EXPECT_LT(hits, 500u);
  EXPECT_EQ(fi.injected_total(), hits);
}

TEST_F(FaultTest, FaultPointTypesStatusByFault) {
  FaultInjector& fi = FaultInjector::Global();
  ASSERT_TRUE(
      fi.Configure("exec_fail=1,alloc_fail=1,store_put_fail=1").ok());
  EXPECT_EQ(FaultPoint(Fault::kExecFail, "executor").code(),
            StatusCode::kInternal);
  EXPECT_EQ(FaultPoint(Fault::kAllocFail, "alloc").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(FaultPoint(Fault::kStorePutFail, "store put").code(),
            StatusCode::kIOError);
  fi.Reset();
  EXPECT_TRUE(FaultPoint(Fault::kExecFail, "executor").ok());
}

TEST_F(FaultTest, ResetClearsCountersAndDisables) {
  FaultInjector& fi = FaultInjector::Global();
  ASSERT_TRUE(fi.Configure("send_short=1").ok());
  fi.Trip(Fault::kSendShort);
  EXPECT_EQ(fi.injected(Fault::kSendShort), 1u);
  fi.Reset();
  EXPECT_FALSE(fi.enabled());
  EXPECT_EQ(fi.injected(Fault::kSendShort), 0u);
  EXPECT_EQ(fi.decisions(Fault::kSendShort), 0u);
  EXPECT_EQ(fi.injected_total(), 0u);
}

}  // namespace
}  // namespace watchman
