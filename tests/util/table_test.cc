#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace watchman {
namespace {

TEST(ResultTableTest, TextRenderingContainsCells) {
  ResultTable t({"policy", "0.1%", "1%"});
  t.AddRow({"lru", "0.07", "0.31"});
  t.AddRow({"lnc-ra", "0.33", "0.58"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("policy"), std::string::npos);
  EXPECT_NE(text.find("lnc-ra"), std::string::npos);
  EXPECT_NE(text.find("0.33"), std::string::npos);
}

TEST(ResultTableTest, TextColumnsAligned) {
  ResultTable t({"a", "b"});
  t.AddRow({"xxxxxxxx", "1"});
  t.AddRow({"y", "2"});
  std::istringstream lines(t.ToText());
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.size(), row1.size());
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(ResultTableTest, NumericRowFormatsPrecision) {
  ResultTable t({"name", "v1", "v2"});
  t.AddNumericRow("row", {0.12345, 0.98765}, 3);
  EXPECT_EQ(t.row(0)[1], "0.123");
  EXPECT_EQ(t.row(0)[2], "0.988");
}

TEST(ResultTableTest, CsvEscapesSpecialCells) {
  ResultTable t({"name", "note"});
  t.AddRow({"a,b", "say \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(ResultTableTest, CsvRowCount) {
  ResultTable t({"h1"});
  t.AddRow({"r1"});
  t.AddRow({"r2"});
  std::istringstream lines(t.ToCsv());
  int count = 0;
  std::string line;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 3);  // header + 2 rows
}

TEST(ResultTableTest, WriteCsvToFile) {
  ResultTable t({"x"});
  t.AddRow({"1"});
  const std::string path = testing::TempDir() + "/watchman_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "x\n1\n");
  std::remove(path.c_str());
}

TEST(ResultTableTest, WriteCsvBadPathFails) {
  ResultTable t({"x"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir-xyz/file.csv").ok());
}

}  // namespace
}  // namespace watchman
