#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace watchman {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, MergeMatchesCombinedStream) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    a.Add(x);
    all.Add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = std::cos(i) * 3.0 + 2.0;
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(HistogramTest, CountsFallIntoBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.7);
  h.Add(9.9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 75.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 100.0);
}

TEST(HistogramTest, QuantileOfUniformData) {
  Histogram h(0.0, 1000.0, 100);
  for (int i = 0; i < 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 20.0);
  EXPECT_NEAR(h.Quantile(0.9), 900.0, 20.0);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 20.0);
}

TEST(HistogramTest, ToStringNonEmpty) {
  Histogram h(0.0, 10.0, 10);
  h.Add(5.0);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsLowerBound) {
  Histogram h(2.0, 10.0, 8);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
}

TEST(HistogramTest, QuantileSkipsLeadingEmptyBuckets) {
  // All mass in [70, 80): every quantile must land inside that bucket,
  // not interpolate across the empty leading range.
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(75.0);
  EXPECT_GE(h.Quantile(0.0), 70.0);
  EXPECT_LE(h.Quantile(0.0), 80.0);
  EXPECT_GE(h.Quantile(0.5), 70.0);
  EXPECT_LE(h.Quantile(1.0), 80.0);
}

TEST(HistogramTest, QuantileClampsOutOfRangeArgument) {
  Histogram h(0.0, 10.0, 10);
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(HistogramTest, QuantileWithSparseBuckets) {
  // Mass split between two far-apart buckets; the median boundary must
  // not land in the empty middle.
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 5; ++i) h.Add(5.0);    // bucket [0, 10)
  for (int i = 0; i < 5; ++i) h.Add(95.0);   // bucket [90, 100)
  EXPECT_LE(h.Quantile(0.25), 10.0);
  EXPECT_GE(h.Quantile(0.75), 90.0);
}

TEST(HistogramTest, ToStringEmptyAndZeroRows) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.ToString(), "(empty histogram)\n");
  h.Add(5.0);
  // max_rows == 0 collapses everything into one row instead of
  // dividing by zero.
  const std::string one_row = h.ToString(0);
  EXPECT_FALSE(one_row.empty());
  EXPECT_EQ(std::count(one_row.begin(), one_row.end(), '\n'), 1);
}

TEST(OnlineStatsTest, MergeTracksMinAndMaxAcrossDisjointRanges) {
  OnlineStats low, high;
  low.Add(-5.0);
  low.Add(-1.0);
  high.Add(100.0);
  high.Add(200.0);
  low.Merge(high);
  EXPECT_DOUBLE_EQ(low.min(), -5.0);
  EXPECT_DOUBLE_EQ(low.max(), 200.0);
  EXPECT_EQ(low.count(), 4u);
  EXPECT_DOUBLE_EQ(low.sum(), 294.0);
}

}  // namespace
}  // namespace watchman
