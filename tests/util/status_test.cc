#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace watchman {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::CapacityExceeded("e"), StatusCode::kCapacityExceeded,
       "CapacityExceeded"},
      {Status::IOError("f"), StatusCode::kIOError, "IOError"},
      {Status::Corruption("g"), StatusCode::kCorruption, "Corruption"},
      {Status::NotSupported("h"), StatusCode::kNotSupported, "NotSupported"},
      {Status::Internal("i"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("missing relation");
  EXPECT_EQ(s.ToString(), "NotFound: missing relation");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("gone"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v(std::string("hello"));
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string(1000, 'x'));
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 1000u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  WATCHMAN_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Internal("reached after macro");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UseReturnIfError(1).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace watchman
