#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace watchman {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), n / 100);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05 / rate);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(19);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfTest, DegeneratesToUniformAtThetaZero) {
  Rng rng(23);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Next(&rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 80);
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  Rng rng(29);
  ZipfGenerator zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(&rng), 0u);
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(31);
  for (double theta : {0.5, 0.86, 1.0, 1.3}) {
    ZipfGenerator zipf(1000, theta);
    for (int i = 0; i < 10000; ++i) {
      EXPECT_LT(zipf.Next(&rng), 1000u);
    }
  }
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  Rng rng(37);
  ZipfGenerator zipf(100, 1.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(&rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(ZipfTest, Theta1MatchesHarmonicDistribution) {
  Rng rng(41);
  const uint64_t n_items = 50;
  ZipfGenerator zipf(n_items, 1.0);
  std::vector<int> counts(n_items, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Next(&rng)];
  double harmonic = 0.0;
  for (uint64_t r = 1; r <= n_items; ++r) harmonic += 1.0 / double(r);
  // Check the head of the distribution against 1/(r * H_n).
  for (uint64_t r = 1; r <= 5; ++r) {
    const double expected = n / (double(r) * harmonic);
    EXPECT_NEAR(counts[r - 1], expected, expected * 0.1)
        << "rank " << r;
  }
}

TEST(ZipfTest, HugeInstanceSpaceWorks) {
  Rng rng(43);
  ZipfGenerator zipf(uint64_t{1} << 40, 0.9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Next(&rng), uint64_t{1} << 40);
  }
}

TEST(DiscreteDistributionTest, RespectsWeights) {
  Rng rng(47);
  DiscreteDistribution dist({1.0, 3.0, 6.0});
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[dist.Next(&rng)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.01);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.015);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.015);
}

TEST(DiscreteDistributionTest, ZeroWeightNeverDrawn) {
  Rng rng(53);
  DiscreteDistribution dist({0.0, 1.0});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(dist.Next(&rng), 1u);
}

TEST(DiscreteDistributionTest, ProbabilityNormalizes) {
  DiscreteDistribution dist({2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(dist.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(dist.Probability(1), 0.25);
  EXPECT_DOUBLE_EQ(dist.Probability(2), 0.5);
}

}  // namespace
}  // namespace watchman
