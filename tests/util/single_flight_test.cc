// Tests of the single-flight execution group.

#include "util/single_flight.h"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace watchman {
namespace {

TEST(SingleFlightTest, SequentialCallsEachExecute) {
  SingleFlight<std::string, int> group;
  int runs = 0;
  auto fn = [&runs] { return ++runs; };
  EXPECT_EQ(group.Do("k", fn), 1);
  EXPECT_EQ(group.Do("k", fn), 2);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(SingleFlightTest, DistinctKeysDoNotShare) {
  SingleFlight<std::string, int> group;
  EXPECT_EQ(group.Do("a", [] { return 1; }), 1);
  EXPECT_EQ(group.Do("b", [] { return 2; }), 2);
}

TEST(SingleFlightTest, ConcurrentCallersShareOneExecution) {
  SingleFlight<std::string, int> group;
  std::atomic<int> executions{0};
  std::atomic<int> leaders{0};
  constexpr int kThreads = 8;
  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  std::vector<int> results(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      start.arrive_and_wait();
      bool leader = false;
      results[i] = group.Do(
          "key",
          [&executions] {
            // Hold the flight open long enough for every thread to join.
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            return executions.fetch_add(1) + 41;
          },
          &leader);
      if (leader) leaders.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(leaders.load(), 1);
  for (int r : results) EXPECT_EQ(r, 41);
  EXPECT_EQ(group.pending(), 0u);
}

}  // namespace
}  // namespace watchman
