#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace watchman {
namespace {

TEST(HashTest, Fnv1a64KnownVectors) {
  // Reference values of FNV-1a 64-bit.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Fnv1a32KnownVectors) {
  EXPECT_EQ(Fnv1a32(""), 0x811c9dc5U);
  EXPECT_EQ(Fnv1a32("a"), 0xe40c292cU);
}

TEST(HashTest, Mix64ChangesValue) {
  // 0 is the (only known) fixed point of the SplitMix64 finalizer.
  EXPECT_EQ(Mix64(0), 0u);
  EXPECT_NE(Mix64(1), 1u);
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(123456789), Mix64(123456789));
}

TEST(HashTest, HashCombineOrderMatters) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(SignatureTest, EqualQueryIdsEqualSignatures) {
  EXPECT_EQ(ComputeSignature("select count from bench"),
            ComputeSignature("select count from bench"));
}

TEST(SignatureTest, DistinctQueryIdsRarelyCollide) {
  std::set<uint64_t> signatures;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    signatures.insert(
        ComputeSignature("query text number " + std::to_string(i)).value);
  }
  // With 64-bit signatures, 20k keys should essentially never collide.
  EXPECT_EQ(signatures.size(), static_cast<size_t>(n));
}

TEST(SignatureTest, SensitiveToSingleCharacter) {
  EXPECT_NE(ComputeSignature("select a").value,
            ComputeSignature("select b").value);
}

}  // namespace
}  // namespace watchman
