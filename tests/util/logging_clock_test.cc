#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/logging.h"

namespace watchman {
namespace {

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.Advance(5), 5u);
  EXPECT_EQ(clock.Advance(10), 15u);
  EXPECT_EQ(clock.now(), 15u);
}

TEST(SimClockTest, AdvanceToNeverGoesBackwards) {
  SimClock clock;
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.AdvanceTo(50);  // ignored
  EXPECT_EQ(clock.now(), 100u);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.now(), 200u);
}

TEST(ClockUnitsTest, Relationships) {
  EXPECT_EQ(kMillisecond, 1000u * kMicrosecond);
  EXPECT_EQ(kSecond, 1000u * kMillisecond);
  EXPECT_EQ(kMinute, 60u * kSecond);
}

TEST(LoggingTest, LevelGateControlsEmission) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  // Must compile and not crash; nothing observable at kOff.
  WATCHMAN_LOG(Error) << "suppressed " << 42;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedSideEffectsNotEvaluated) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  WATCHMAN_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kWarning);
}

}  // namespace
}  // namespace watchman
