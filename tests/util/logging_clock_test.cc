#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/logging.h"

namespace watchman {
namespace {

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.Advance(5), 5u);
  EXPECT_EQ(clock.Advance(10), 15u);
  EXPECT_EQ(clock.now(), 15u);
}

TEST(SimClockTest, AdvanceToNeverGoesBackwards) {
  SimClock clock;
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.AdvanceTo(50);  // ignored
  EXPECT_EQ(clock.now(), 100u);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.now(), 200u);
}

TEST(ClockUnitsTest, Relationships) {
  EXPECT_EQ(kMillisecond, 1000u * kMicrosecond);
  EXPECT_EQ(kSecond, 1000u * kMillisecond);
  EXPECT_EQ(kMinute, 60u * kSecond);
}

TEST(LoggingTest, LevelGateControlsEmission) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  // Must compile and not crash; nothing observable at kOff.
  WATCHMAN_LOG(Error) << "suppressed " << 42;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedSideEffectsNotEvaluated) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  WATCHMAN_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, ParseLogLevelRoundTrips) {
  LogLevel level;
  ASSERT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  ASSERT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  ASSERT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  ASSERT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  ASSERT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("DEBUG ", &level));
}

TEST(LoggingTest, LogLevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
}

TEST(LoggingTest, FormatRoundTrips) {
  SetLogFormat(LogFormat::kJson);
  EXPECT_EQ(GetLogFormat(), LogFormat::kJson);
  SetLogFormat(LogFormat::kText);
  EXPECT_EQ(GetLogFormat(), LogFormat::kText);
}

TEST(LoggingTest, AppendJsonEscapedHandlesSpecials) {
  std::string out;
  AppendJsonEscaped("a\"b\\c\nd\te", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te");
  out.clear();
  AppendJsonEscaped(std::string_view("\x01", 1), &out);
  EXPECT_EQ(out, "\\u0001");
}

TEST(LoggingTest, FormatLogLineTextAndJson) {
  const std::string text = internal::FormatLogLine(
      LogFormat::kText, LogLevel::kWarning, "server.cc", 42, 1000, "slow");
  EXPECT_EQ(text, "[WARN server.cc:42] slow");

  const std::string json = internal::FormatLogLine(
      LogFormat::kJson, LogLevel::kWarning, "server.cc", 42, 1000,
      "msg with \"quotes\"");
  EXPECT_EQ(json,
            "{\"ts_ms\":1000,\"level\":\"warn\",\"src\":\"server.cc:42\","
            "\"msg\":\"msg with \\\"quotes\\\"\"}");
}

}  // namespace
}  // namespace watchman
