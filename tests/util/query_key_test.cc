// QueryKey tests: inline vs heap storage, scratch reuse, copy/move,
// signature-prefiltered equality.

#include "util/query_key.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <utility>

namespace watchman {
namespace {

std::string LongId(size_t n, char fill = 'x') { return std::string(n, fill); }

TEST(QueryKeyTest, ComputesSignatureOnce) {
  QueryKey key("select\x1f*\x1f" "from\x1ft");
  EXPECT_EQ(key.signature().value,
            ComputeSignature("select\x1f*\x1f" "from\x1ft").value);
  EXPECT_EQ(key.id(), "select\x1f*\x1f" "from\x1ft");
  EXPECT_FALSE(key.empty());
}

TEST(QueryKeyTest, InlineAndHeapStorage) {
  const std::string inline_id = LongId(QueryKey::kInlineCapacity);
  const std::string heap_id = LongId(QueryKey::kInlineCapacity + 1);
  QueryKey a(inline_id);
  QueryKey b(heap_id);
  EXPECT_EQ(a.id(), inline_id);
  EXPECT_EQ(b.id(), heap_id);
  EXPECT_EQ(a.size(), inline_id.size());
  EXPECT_EQ(b.size(), heap_id.size());
}

TEST(QueryKeyTest, AssignReusesAndTransitions) {
  QueryKey key;
  EXPECT_TRUE(key.empty());
  // inline -> heap -> inline -> heap again (reusing the heap block).
  key.Assign(LongId(10, 'a'));
  EXPECT_EQ(key.id(), LongId(10, 'a'));
  key.Assign(LongId(100, 'b'));
  EXPECT_EQ(key.id(), LongId(100, 'b'));
  key.Assign(LongId(5, 'c'));
  EXPECT_EQ(key.id(), LongId(5, 'c'));
  key.Assign(LongId(80, 'd'));
  EXPECT_EQ(key.id(), LongId(80, 'd'));
  EXPECT_EQ(key.signature().value, ComputeSignature(LongId(80, 'd')).value);
}

TEST(QueryKeyTest, CopyAndMove) {
  for (const size_t len : {size_t{12}, QueryKey::kInlineCapacity + 20}) {
    const std::string id = LongId(len, 'q');
    QueryKey original(id);
    QueryKey copy(original);
    EXPECT_EQ(copy, original);
    EXPECT_EQ(copy.id(), id);
    QueryKey assigned;
    assigned = original;
    EXPECT_EQ(assigned, original);
    QueryKey moved(std::move(copy));
    EXPECT_EQ(moved.id(), id);
    EXPECT_EQ(moved.signature(), original.signature());
    QueryKey move_assigned;
    move_assigned = std::move(moved);
    EXPECT_EQ(move_assigned, original);
  }
}

TEST(QueryKeyTest, EqualityIsSignaturePlusExactMatch) {
  QueryKey a("alpha"), b("beta"), a2("alpha");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  // Same forced signature, different IDs: prefilter passes, exact match
  // must still separate them.
  QueryKey c1("one", Signature{99});
  QueryKey c2("two", Signature{99});
  EXPECT_NE(c1, c2);
  EXPECT_TRUE(c1.MatchesId("one"));
  EXPECT_FALSE(c1.MatchesId("two"));
}

TEST(QueryKeyTest, WorksAsHashMapKey) {
  std::unordered_map<QueryKey, int> map;
  map[QueryKey("a")] = 1;
  map[QueryKey("b")] = 2;
  map[QueryKey(LongId(200))] = 3;
  EXPECT_EQ(map.at(QueryKey("a")), 1);
  EXPECT_EQ(map.at(QueryKey("b")), 2);
  EXPECT_EQ(map.at(QueryKey(LongId(200))), 3);
  EXPECT_EQ(map.size(), 3u);
  // Identity hash: the map hash of a key is its signature.
  EXPECT_EQ(std::hash<QueryKey>{}(QueryKey("a")),
            static_cast<size_t>(ComputeSignature("a").value));
}

TEST(SignatureTest, InequalityAndStdHash) {
  const Signature a = ComputeSignature("a");
  const Signature b = ComputeSignature("b");
  EXPECT_TRUE(a != b);
  EXPECT_FALSE(a != ComputeSignature("a"));
  EXPECT_EQ(std::hash<Signature>{}(a), static_cast<size_t>(a.value));
}

}  // namespace
}  // namespace watchman
