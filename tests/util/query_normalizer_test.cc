#include "util/query_normalizer.h"

#include <gtest/gtest.h>

namespace watchman {
namespace {

TEST(QueryNormalizerTest, FormattingInvariance) {
  EXPECT_EQ(NormalizeQuery("SELECT  a FROM t"),
            NormalizeQuery("select a\nfrom   t"));
}

TEST(QueryNormalizerTest, ConjunctOrderInvariance) {
  const std::string a = NormalizeQuery(
      "select count(*) from bench where k2 = 1 and k10 = 7 and k100 = 55");
  const std::string b = NormalizeQuery(
      "select count(*) from bench where k100 = 55 and k2 = 1 and k10 = 7");
  EXPECT_EQ(a, b);
}

TEST(QueryNormalizerTest, DistinctPredicatesStayDistinct) {
  EXPECT_NE(NormalizeQuery("select * from t where a = 1 and b = 2"),
            NormalizeQuery("select * from t where a = 2 and b = 1"));
}

TEST(QueryNormalizerTest, InListOrderInvariance) {
  const std::string a =
      NormalizeQuery("select * from t where region in (asia, europe)");
  const std::string b =
      NormalizeQuery("select * from t where region in (europe, asia)");
  EXPECT_EQ(a, b);
}

TEST(QueryNormalizerTest, InListAndConjunctsTogether) {
  const std::string a = NormalizeQuery(
      "select sum(x) from t where k in (3, 1, 2) and y = 5");
  const std::string b = NormalizeQuery(
      "select sum(x) from t where y = 5 and k in (2, 1, 3)");
  EXPECT_EQ(a, b);
}

TEST(QueryNormalizerTest, SelectListOrderIsPreserved) {
  // Only WHERE conjuncts commute; the projection list does not.
  EXPECT_NE(NormalizeQuery("select a, b from t"),
            NormalizeQuery("select b, a from t"));
}

TEST(QueryNormalizerTest, TopLevelOrBlocksReordering) {
  // "x = 1 and y = 2 or z = 3" must NOT be treated as commutative
  // conjuncts (OR binds looser; reordering would change semantics).
  const std::string a =
      NormalizeQuery("select * from t where x = 1 and y = 2 or z = 3");
  const std::string b =
      NormalizeQuery("select * from t where y = 2 or z = 3 and x = 1");
  EXPECT_NE(a, b);
}

TEST(QueryNormalizerTest, ParenthesizedOrWithinConjunctReorders) {
  const std::string a = NormalizeQuery(
      "select * from t where (x = 1 or x = 2) and y = 3");
  const std::string b = NormalizeQuery(
      "select * from t where y = 3 and (x = 1 or x = 2)");
  EXPECT_EQ(a, b);
}

TEST(QueryNormalizerTest, WhereClauseEndsAtGroupBy) {
  // The GROUP BY list must not be absorbed into the conjunct sort.
  const std::string a = NormalizeQuery(
      "select k, count(*) from t where a = 1 and b = 2 group by k");
  const std::string b = NormalizeQuery(
      "select k, count(*) from t where b = 2 and a = 1 group by k");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, NormalizeQuery(
                   "select k, count(*) from t where a = 1 and b = 2 "
                   "group by j"));
}

TEST(QueryNormalizerTest, QueriesWithoutWhereUntouched) {
  EXPECT_EQ(NormalizeQuery("select count(*) from t"),
            NormalizeQuery("SELECT COUNT( * ) FROM t"));
}

TEST(QueryNormalizerTest, NestedSubqueryConjunctsKeptIntact) {
  // Depth > 0 "and" tokens do not split conjuncts.
  const std::string a = NormalizeQuery(
      "select * from t where exists (select 1 from u where p = 1 and "
      "q = 2) and r = 3");
  const std::string b = NormalizeQuery(
      "select * from t where r = 3 and exists (select 1 from u where "
      "p = 1 and q = 2)");
  EXPECT_EQ(a, b);
}

TEST(QueryNormalizerTest, Deterministic) {
  const char* q = "select * from t where b = 2 and a in (5, 4) and c = 9";
  EXPECT_EQ(NormalizeQuery(q), NormalizeQuery(q));
}

TEST(QueryNormalizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(NormalizeQuery(""), "");
  EXPECT_EQ(NormalizeQuery("   \t\n"), "");
}

}  // namespace
}  // namespace watchman
