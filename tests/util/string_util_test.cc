#include "util/string_util.h"

#include <gtest/gtest.h>

namespace watchman {
namespace {

TEST(CompressQueryIdTest, CollapsesDelimiterRuns) {
  const std::string a = CompressQueryId("SELECT  *  FROM   bench");
  const std::string b = CompressQueryId("select * from bench");
  EXPECT_EQ(a, b);
}

TEST(CompressQueryIdTest, EquivalentFormattingsMapToSameId) {
  const std::string a =
      CompressQueryId("SELECT count(*) FROM bench WHERE k2 = 1");
  const std::string b =
      CompressQueryId("select count ( * )\n\tfrom bench\nwhere k2=1");
  // Note: "k2=1" vs "k2 = 1" differ after compression (no delimiter
  // between k2 and =); only delimiter runs collapse.
  EXPECT_NE(a, b);
  const std::string c =
      CompressQueryId("select  count( * )  from  bench  where  k2  =  1");
  EXPECT_EQ(a, c);
}

TEST(CompressQueryIdTest, LowercasesLetters) {
  EXPECT_EQ(CompressQueryId("ABC"), "abc");
}

TEST(CompressQueryIdTest, NoLeadingOrTrailingSeparator) {
  const std::string id = CompressQueryId("  select x  ");
  EXPECT_FALSE(id.empty());
  EXPECT_NE(id.front(), '\x1f');
  EXPECT_NE(id.back(), '\x1f');
}

TEST(CompressQueryIdTest, EmptyAndAllDelimiters) {
  EXPECT_EQ(CompressQueryId(""), "");
  EXPECT_EQ(CompressQueryId("   \t\n,,(())"), "");
}

TEST(CompressQueryIdTest, IntoVariantMatchesAndReusesBuffer) {
  std::string scratch;
  CompressQueryIdInto("SELECT  *  FROM   bench  WHERE  k100 = 37", &scratch);
  EXPECT_EQ(scratch, CompressQueryId("SELECT  *  FROM   bench  WHERE  k100 = 37"));
  const char* buffer = scratch.data();
  const size_t capacity = scratch.capacity();
  // A shorter query reuses the scratch buffer: no reallocation.
  CompressQueryIdInto("select 1", &scratch);
  EXPECT_EQ(scratch, CompressQueryId("select 1"));
  EXPECT_EQ(scratch.data(), buffer);
  EXPECT_EQ(scratch.capacity(), capacity);
}

TEST(CompressQueryIdTest, DistinctQueriesStayDistinct) {
  EXPECT_NE(CompressQueryId("select a from t"),
            CompressQueryId("select b from t"));
}

TEST(SplitTest, BasicSplit) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split(",a,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(HumanBytesTest, Formats) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1024), "1.0 KiB");
  EXPECT_EQ(HumanBytes(16882469), "16.1 MiB");
  EXPECT_EQ(HumanBytes(uint64_t{3} << 30), "3.0 GiB");
}

TEST(ParseByteSizeTest, AcceptsPlainAndSuffixedSizes) {
  EXPECT_EQ(*ParseByteSize("262144"), 262144u);
  EXPECT_EQ(*ParseByteSize("512b"), 512u);
  EXPECT_EQ(*ParseByteSize("300k"), 300u << 10);
  EXPECT_EQ(*ParseByteSize("256K"), 256u << 10);
  EXPECT_EQ(*ParseByteSize("64m"), 64u << 20);
  EXPECT_EQ(*ParseByteSize("64MB"), 64u << 20);
  EXPECT_EQ(*ParseByteSize("64MiB"), 64u << 20);
  EXPECT_EQ(*ParseByteSize("2g"), uint64_t{2} << 30);
}

TEST(ParseByteSizeTest, RejectsMalformedZeroAndOverflow) {
  for (const char* bad :
       {"", "m", "-5", "1.5m", "64x", "64mbb", "0", "0k", "m64",
        "99999999999999999999", "18446744073709551615g"}) {
    auto parsed = ParseByteSize(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.91824, 2), "0.92");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("lnc-ra(k=4)", "lnc-ra"));
  EXPECT_FALSE(StartsWith("lnc", "lnc-ra"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

}  // namespace
}  // namespace watchman
