#include "util/circuit_breaker.h"

#include <gtest/gtest.h>

namespace watchman {
namespace {

CircuitBreaker::Options Opts(int threshold, int64_t cooldown_ms) {
  CircuitBreaker::Options o;
  o.failure_threshold = threshold;
  o.cooldown_ms = cooldown_ms;
  return o;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker cb(Opts(3, 100));
  EXPECT_TRUE(cb.enabled());
  EXPECT_EQ(cb.state(0), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow(0));
  EXPECT_EQ(cb.trips(), 0u);
}

TEST(CircuitBreakerTest, TripsAtThreshold) {
  CircuitBreaker cb(Opts(3, 100));
  cb.RecordFailure(10);
  cb.RecordFailure(10);
  EXPECT_EQ(cb.state(10), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow(10));
  cb.RecordFailure(10);  // third consecutive failure trips it
  EXPECT_EQ(cb.state(10), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.Allow(10));
  EXPECT_EQ(cb.trips(), 1u);
  EXPECT_EQ(cb.rejected(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  CircuitBreaker cb(Opts(3, 100));
  cb.RecordFailure(0);
  cb.RecordFailure(0);
  cb.RecordSuccess();
  cb.RecordFailure(0);
  cb.RecordFailure(0);
  // Never three in a row, so still closed.
  EXPECT_EQ(cb.state(0), CircuitBreaker::State::kClosed);
  EXPECT_EQ(cb.trips(), 0u);
}

TEST(CircuitBreakerTest, CooldownAdmitsSingleProbe) {
  CircuitBreaker cb(Opts(1, 100));
  cb.RecordFailure(0);  // opens until t=100
  EXPECT_FALSE(cb.Allow(50));
  EXPECT_EQ(cb.state(99), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.state(100), CircuitBreaker::State::kHalfOpen);
  // First caller after the cooldown wins the probe slot ...
  EXPECT_TRUE(cb.Allow(100));
  // ... and everyone else is rejected until the probe reports back.
  EXPECT_FALSE(cb.Allow(100));
  EXPECT_FALSE(cb.Allow(150));
}

TEST(CircuitBreakerTest, ProbeSuccessCloses) {
  CircuitBreaker cb(Opts(1, 100));
  cb.RecordFailure(0);
  ASSERT_TRUE(cb.Allow(100));
  cb.RecordSuccess();
  EXPECT_EQ(cb.state(100), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow(100));
  EXPECT_TRUE(cb.Allow(100));  // no probe gating once closed
  EXPECT_EQ(cb.trips(), 1u);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndCountsTrip) {
  CircuitBreaker cb(Opts(1, 100));
  cb.RecordFailure(0);  // trip 1, open until 100
  ASSERT_TRUE(cb.Allow(100));
  cb.RecordFailure(100);  // probe failed: trip 2, open until 200
  EXPECT_EQ(cb.state(150), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.Allow(150));
  EXPECT_EQ(cb.trips(), 2u);
  // Next cooldown admits a fresh probe.
  EXPECT_TRUE(cb.Allow(200));
  cb.RecordSuccess();
  EXPECT_EQ(cb.state(200), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ThresholdZeroDisables) {
  CircuitBreaker cb(Opts(0, 100));
  EXPECT_FALSE(cb.enabled());
  for (int i = 0; i < 10; ++i) cb.RecordFailure(0);
  EXPECT_EQ(cb.state(0), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow(0));
  EXPECT_EQ(cb.trips(), 0u);
  EXPECT_EQ(cb.rejected(), 0u);
}

TEST(CircuitBreakerTest, RejectedCounterAccumulates) {
  CircuitBreaker cb(Opts(1, 1000));
  cb.RecordFailure(0);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(cb.Allow(10));
  EXPECT_EQ(cb.rejected(), 5u);
}

TEST(CircuitBreakerTest, DefaultConstructedUsesDefaults) {
  CircuitBreaker cb;
  EXPECT_TRUE(cb.enabled());  // default threshold is 5
  for (int i = 0; i < 4; ++i) cb.RecordFailure(0);
  EXPECT_EQ(cb.state(0), CircuitBreaker::State::kClosed);
  cb.RecordFailure(0);
  EXPECT_EQ(cb.state(0), CircuitBreaker::State::kOpen);
}

}  // namespace
}  // namespace watchman
