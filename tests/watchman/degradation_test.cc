// Graceful-degradation tests: executor and payload-store failures must
// degrade to typed errors or pass-through (fresh result served
// uncached), never crash, hang or poison the cache -- with every event
// visible in FacadeMetrics and the store circuit breaker.

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/fault.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

Watchman::Options SmallOptions() {
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  opts.k = 4;
  return opts;
}

class DegradationTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(DegradationTest, ExecutorErrorIsTypedAndCounted) {
  int calls = 0;
  Watchman wm(SmallOptions(), [&calls](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    ++calls;
    if (calls == 1) return Status::IOError("warehouse down");
    return Watchman::ExecutionResult{"recovered", 16, {}};
  });

  auto r1 = wm.Execute("select a from t");
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kIOError);
  EXPECT_EQ(wm.facade_metrics().executor_failures.Value(), 1u);
  EXPECT_FALSE(wm.IsCached("select a from t"));

  // The failure is not sticky: the next miss re-runs the executor.
  auto r2 = wm.Execute("select a from t");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, "recovered");
  EXPECT_EQ(wm.facade_metrics().executor_failures.Value(), 1u);
}

TEST_F(DegradationTest, ExecutorThrowBecomesInternalStatus) {
  int calls = 0;
  Watchman wm(SmallOptions(), [&calls](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    ++calls;
    if (calls == 1) throw std::runtime_error("warehouse exploded");
    if (calls == 2) throw 42;  // non-standard exception
    return Watchman::ExecutionResult{"fine", 8, {}};
  });

  auto r1 = wm.Execute("select b from t");
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInternal);
  EXPECT_NE(r1.status().message().find("warehouse exploded"),
            std::string::npos);

  auto r2 = wm.Execute("select b from t");
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInternal);
  EXPECT_EQ(wm.facade_metrics().executor_failures.Value(), 2u);
  EXPECT_FALSE(wm.IsCached("select b from t"));

  // The worker thread survived both throws; normal service resumes.
  auto r3 = wm.Execute("select b from t");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, "fine");
}

TEST_F(DegradationTest, InjectedExecutorFaultsDegrade) {
  Watchman wm(SmallOptions(), [](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    return Watchman::ExecutionResult{"payload", 8, {}};
  });
  ASSERT_TRUE(FaultInjector::Global().Configure("exec_fail=1").ok());
  EXPECT_EQ(wm.Execute("select c").status().code(), StatusCode::kInternal);
  ASSERT_TRUE(FaultInjector::Global().Configure("exec_throw=1").ok());
  EXPECT_EQ(wm.Execute("select c").status().code(), StatusCode::kInternal);
  EXPECT_EQ(wm.facade_metrics().executor_failures.Value(), 2u);

  FaultInjector::Global().Reset();
  EXPECT_TRUE(wm.Execute("select c").ok());
}

TEST_F(DegradationTest, AllocFailureServesFreshUncached) {
  int executions = 0;
  Watchman wm(SmallOptions(), [&executions](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    ++executions;
    return Watchman::ExecutionResult{"fresh " + text, 64, {}};
  });
  ASSERT_TRUE(FaultInjector::Global().Configure("alloc_fail=1").ok());

  // The miss is served fresh but the entry never sticks.
  auto r1 = wm.Execute("select d");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, "fresh select d");
  EXPECT_FALSE(wm.IsCached("select d"));
  EXPECT_GE(wm.facade_metrics().degraded_passthrough.Value(), 1u);

  FaultInjector::Global().Reset();
  auto r2 = wm.Execute("select d");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(executions, 2);  // first fill was dropped, so re-executed
  EXPECT_TRUE(wm.IsCached("select d"));
}

TEST_F(DegradationTest, StorePutFailureDegradesAndTripsBreaker) {
  Watchman::Options opts = SmallOptions();
  opts.store_breaker.failure_threshold = 3;
  opts.store_breaker.cooldown_ms = 50;
  int executions = 0;
  Watchman wm(std::move(opts), [&executions](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    ++executions;
    return Watchman::ExecutionResult{"fresh " + text, 64, {}};
  });
  ASSERT_TRUE(FaultInjector::Global().Configure("store_put_fail=1").ok());

  // Every miss is still answered, every fill degrades to pass-through.
  for (int i = 0; i < 5; ++i) {
    auto r = wm.Execute("select e" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_FALSE(wm.IsCached("select e" + std::to_string(i)));
  }
  EXPECT_GE(wm.facade_metrics().store_failures.Value(), 3u);
  EXPECT_GE(wm.facade_metrics().degraded_passthrough.Value(), 5u);
  EXPECT_GE(wm.store_breaker().trips(), 1u);
  EXPECT_EQ(wm.store_breaker_state(), 1);  // open

  // While open the store is not called at all: failures stop growing,
  // rejected grows instead, and service continues.
  const uint64_t failures_when_open = wm.facade_metrics().store_failures.Value();
  auto r = wm.Execute("select f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(wm.facade_metrics().store_failures.Value(), failures_when_open);
  EXPECT_GE(wm.store_breaker().rejected(), 1u);

  // Once the faults clear and the cooldown elapses, a probe closes the
  // breaker and caching resumes.
  FaultInjector::Global().Reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  auto r2 = wm.Execute("select g");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(wm.IsCached("select g"));
  EXPECT_EQ(wm.store_breaker_state(), 0);  // closed again
}

TEST_F(DegradationTest, StoreGetFailureReportsMissNotError) {
  Watchman::Options opts = SmallOptions();
  opts.store_breaker.failure_threshold = 0;  // isolate the Get path
  int executions = 0;
  Watchman wm(std::move(opts), [&executions](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    ++executions;
    return Watchman::ExecutionResult{"fresh " + text, 64, {}};
  });
  ASSERT_TRUE(wm.Execute("select h").ok());
  ASSERT_EQ(executions, 1);

  // With Get failing, the cached entry's payload is unreachable; the
  // caller sees a served result (re-executed), not an IO error.
  ASSERT_TRUE(FaultInjector::Global().Configure("store_get_fail=1").ok());
  auto r = wm.Execute("select h");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "fresh select h");
  EXPECT_EQ(executions, 2);
  EXPECT_GE(wm.facade_metrics().store_failures.Value(), 1u);
}

TEST_F(DegradationTest, BreakerDisabledKeepsRetryingStore) {
  Watchman::Options opts = SmallOptions();
  opts.store_breaker.failure_threshold = 0;
  Watchman wm(std::move(opts), [](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    return Watchman::ExecutionResult{"fresh " + text, 64, {}};
  });
  ASSERT_TRUE(FaultInjector::Global().Configure("store_put_fail=1").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wm.Execute("select i" + std::to_string(i)).ok());
  }
  // Every fill hit the store (no breaker short-circuit) and failed.
  EXPECT_GE(wm.facade_metrics().store_failures.Value(), 10u);
  EXPECT_EQ(wm.store_breaker().trips(), 0u);
  EXPECT_EQ(wm.store_breaker_state(), 0);
}

}  // namespace
}  // namespace watchman
