// Concurrency tests of the Watchman facade: single-flight deduplication
// of identical missed queries, and races between concurrent execution,
// hits and relation invalidation on a sharded cache. Run under TSan in
// CI.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "watchman/watchman.h"

namespace watchman {
namespace {

/// Deterministic payload for a query text, so every thread can verify
/// the bytes it was served.
std::string PayloadFor(const std::string& text) {
  return "payload(" + text + ")";
}

TEST(ConcurrentWatchmanTest, SingleFlightDedupsConcurrentIdenticalMisses) {
  std::atomic<int> executions{0};
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  opts.num_shards = 8;
  Watchman wm(std::move(opts), [&executions](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    executions.fetch_add(1);
    // Keep the flight open long enough for all threads to pile in.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Watchman::ExecutionResult{PayloadFor(text), 500, {}};
  });

  constexpr int kThreads = 8;
  std::barrier start(kThreads);
  std::atomic<int> wrong_payloads{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  const std::string text = "select sum(profit) from lineitem";
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      auto result = wm.Execute(text);
      if (!result.ok()) {
        failures.fetch_add(1);
      } else if (*result != PayloadFor(text)) {
        wrong_payloads.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_payloads.load(), 0);
  EXPECT_EQ(executions.load(), 1);  // one warehouse execution for all 8
  EXPECT_TRUE(wm.IsCached(text));
  const CacheStats stats = wm.stats();
  EXPECT_EQ(stats.lookups, 8u);
  // Every deduplicated caller still counted one reference; all but the
  // first offer landed as hits on the admitted set.
  EXPECT_EQ(stats.hits, 7u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_TRUE(wm.cache().CheckInvariants().ok());
}

TEST(ConcurrentWatchmanTest, ExecutorErrorsPropagateToAllWaiters) {
  std::atomic<int> executions{0};
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  opts.num_shards = 4;
  Watchman wm(std::move(opts), [&executions](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    executions.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return Status::IOError("warehouse down");
  });
  constexpr int kThreads = 4;
  std::barrier start(kThreads);
  std::atomic<int> io_errors{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      auto result = wm.Execute("select broken");
      if (!result.ok() && result.status().code() == StatusCode::kIOError) {
        io_errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(io_errors.load(), kThreads);
  EXPECT_FALSE(wm.IsCached("select broken"));
}

TEST(ConcurrentWatchmanStressTest, ExecuteInvalidateRaces) {
  // A pool of queries over a few relations; worker threads execute
  // queries while an invalidator thread keeps dropping every set that
  // read relation r0. Every served payload must be the right bytes for
  // its text, and the cache must stay internally consistent throughout.
  constexpr int kWorkers = 6;
  constexpr int kOpsPerWorker = 1500;
  constexpr int kQuerySpace = 96;

  std::atomic<uint64_t> executions{0};
  Watchman::Options opts;
  opts.capacity_bytes = 96 << 10;  // small: forces constant replacement
  opts.num_shards = 8;
  Watchman wm(std::move(opts), [&executions](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    executions.fetch_add(1);
    Watchman::ExecutionResult result;
    result.payload = PayloadFor(text);
    // Pad to varied sizes so replacement stays busy.
    result.payload.resize(200 + (text.size() * 37) % 2000, '#');
    result.cost = 100 + text.size();
    result.relations = {"r" + std::to_string(text.size() % 4)};
    return result;
  });

  std::atomic<bool> stop{false};
  std::atomic<int> wrong_payloads{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      uint64_t state = 0x9e3779b97f4a7c15ull * (w + 1);
      for (int i = 0; i < kOpsPerWorker; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::string text =
            "select q" + std::to_string((state >> 33) % kQuerySpace);
        auto result = wm.Execute(text);
        if (!result.ok()) {
          failures.fetch_add(1);
        } else if (result->compare(0, PayloadFor(text).size(),
                                   PayloadFor(text)) != 0) {
          wrong_payloads.fetch_add(1);
        }
      }
    });
  }
  std::thread invalidator([&] {
    // Query texts are 9 or 10 bytes, so their reported relations are r1
    // and r2; r0 exercises the no-dependents path.
    while (!stop.load()) {
      wm.InvalidateRelation("r0");
      wm.InvalidateRelation("r1");
      wm.InvalidateRelation("r2");
      wm.Invalidate("select q1");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  invalidator.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_payloads.load(), 0);
  EXPECT_TRUE(wm.cache().CheckInvariants().ok());
  const CacheStats stats = wm.stats();
  EXPECT_LE(stats.hits, stats.lookups);
  EXPECT_GE(stats.lookups, uint64_t{kWorkers} * kOpsPerWorker);
  EXPECT_LE(wm.used_bytes(), wm.capacity_bytes());
  // The cache must have been doing real work: hits happened, and the
  // invalidator actually dropped sets.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(wm.invalidations(), 0u);
  EXPECT_LT(executions.load(), uint64_t{kWorkers} * kOpsPerWorker);
}

TEST(ConcurrentWatchmanTest, EmptyResultsNeverCachedUnderAnyPolicy) {
  // Zero-size retrieved sets must stay uncacheable for every policy the
  // factory can produce, or the facade would create phantom entries
  // that hit forever without a payload.
  for (const char* name : {"lru", "lfu", "gds", "lcs", "lnc-ra"}) {
    auto parsed = ParsePolicy(name);
    ASSERT_TRUE(parsed.ok()) << name;
    std::atomic<int> executions{0};
    Watchman::Options opts;
    opts.capacity_bytes = 1 << 20;
    opts.policy = *parsed;
    Watchman wm(std::move(opts), [&executions](const std::string&)
                    -> StatusOr<Watchman::ExecutionResult> {
      executions.fetch_add(1);
      return Watchman::ExecutionResult{"", 10, {}};
    });
    ASSERT_TRUE(wm.Execute("select nothing").ok()) << name;
    ASSERT_TRUE(wm.Execute("select nothing").ok()) << name;
    EXPECT_EQ(executions.load(), 2) << name;  // re-executed, never cached
    EXPECT_FALSE(wm.IsCached("select nothing")) << name;
    EXPECT_EQ(wm.stats().hits, 0u) << name;
    EXPECT_EQ(wm.cached_set_count(), 0u) << name;
  }
}

TEST(ConcurrentWatchmanTest, PolicyFactoryDrivesTheCache) {
  // The facade accepts any policy from the sim factory, not just LNC.
  for (const char* name : {"lru", "gds", "lfu", "lnc-ra"}) {
    auto parsed = ParsePolicy(name);
    ASSERT_TRUE(parsed.ok()) << name;
    Watchman::Options opts;
    opts.capacity_bytes = 1 << 20;
    opts.policy = *parsed;
    opts.num_shards = 2;
    Watchman wm(std::move(opts),
                [](const std::string& text)
                    -> StatusOr<Watchman::ExecutionResult> {
                  return Watchman::ExecutionResult{PayloadFor(text), 10, {}};
                });
    ASSERT_TRUE(wm.Execute("select a").ok());
    ASSERT_TRUE(wm.Execute("select a").ok());
    EXPECT_EQ(wm.stats().hits, 1u) << name;
    EXPECT_EQ(wm.policy_name().substr(0, 3),
              std::string(name).substr(0, 3));
  }
}

}  // namespace
}  // namespace watchman
