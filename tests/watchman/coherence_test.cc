// Tests of cache coherence (invalidation) and the facade's extended
// options: normalization and secondary-storage payloads.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "watchman/watchman.h"

namespace watchman {
namespace {

StatusOr<Watchman::ExecutionResult> Execute(
    const std::string& text, uint64_t cost,
    std::vector<std::string> relations) {
  Watchman::ExecutionResult r;
  r.payload = "rows for: " + text;
  r.cost = cost;
  r.relations = std::move(relations);
  return r;
}

TEST(CoherenceTest, InvalidateSingleQuery) {
  int executions = 0;
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  Watchman wm(std::move(opts), [&](const std::string& text) {
    ++executions;
    return Execute(text, 100, {});
  });
  ASSERT_TRUE(wm.Query("select sum(v) from sales").ok());
  ASSERT_TRUE(wm.Query("select sum(v) from sales").ok());
  EXPECT_EQ(executions, 1);
  EXPECT_TRUE(wm.Invalidate("select sum(v) from sales"));
  EXPECT_FALSE(wm.IsCached("select sum(v) from sales"));
  ASSERT_TRUE(wm.Query("select sum(v) from sales").ok());
  EXPECT_EQ(executions, 2);  // re-executed after invalidation
  EXPECT_EQ(wm.invalidations(), 1u);
  EXPECT_FALSE(wm.Invalidate("never seen"));
}

TEST(CoherenceTest, InvalidateRelationEvictsDependents) {
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  Watchman wm(std::move(opts), [&](const std::string& text) {
    if (text.find("lineitem") != std::string::npos) {
      return Execute(text, 100, {"lineitem", "orders"});
    }
    return Execute(text, 100, {"customer"});
  });
  ASSERT_TRUE(wm.Query("select a from lineitem q1").ok());
  ASSERT_TRUE(wm.Query("select b from lineitem q2").ok());
  ASSERT_TRUE(wm.Query("select c from customer q3").ok());
  EXPECT_EQ(wm.cached_set_count(), 3u);

  EXPECT_EQ(wm.InvalidateRelation("lineitem"), 2u);
  EXPECT_FALSE(wm.IsCached("select a from lineitem q1"));
  EXPECT_FALSE(wm.IsCached("select b from lineitem q2"));
  EXPECT_TRUE(wm.IsCached("select c from customer q3"));
  // Unknown relation is a no-op.
  EXPECT_EQ(wm.InvalidateRelation("nation"), 0u);
  // Repeating the update finds nothing left.
  EXPECT_EQ(wm.InvalidateRelation("lineitem"), 0u);
}

TEST(CoherenceTest, DependencyIndexSurvivesEvictions) {
  // When the cache evicts a set for capacity, its dependency edges must
  // disappear so InvalidateRelation does not double-count.
  Watchman::Options opts;
  opts.capacity_bytes = 4096;
  Watchman wm(std::move(opts), [&](const std::string& text) {
    Watchman::ExecutionResult r;
    r.payload = std::string(1500, 'p');
    r.cost = 1000;
    r.relations = {"shared"};
    (void)text;
    return StatusOr<Watchman::ExecutionResult>(std::move(r));
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wm.Query("select slice " + std::to_string(i)).ok());
  }
  // Capacity fits only 2 sets of 1500 bytes; invalidation must reflect
  // what is actually cached.
  EXPECT_LE(wm.InvalidateRelation("shared"), 2u);
}

TEST(CoherenceTest, RetainedHistorySpeedsReadmissionAfterInvalidation) {
  // Invalidation keeps the reference history (the reference pattern is
  // still valid; only the payload changed), so a hot invalidated query
  // comes back with its rate estimate intact.
  Timestamp now = 0;
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  opts.clock = [&now] { return now += kSecond; };
  Watchman wm(std::move(opts), [&](const std::string& text) {
    return Execute(text, 5000, {"facts"});
  });
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wm.Query("select hot aggregate from facts").ok());
  }
  EXPECT_EQ(wm.InvalidateRelation("facts"), 1u);
  EXPECT_GT(wm.retained_info_count(), 0u);
}

TEST(NormalizationOptionTest, ReorderedPredicatesHitSameEntry) {
  int executions = 0;
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  opts.normalize_queries = true;
  Watchman wm(std::move(opts), [&](const std::string& text) {
    ++executions;
    return Execute(text, 100, {});
  });
  ASSERT_TRUE(
      wm.Query("select * from t where a = 1 and b = 2 and c = 3").ok());
  ASSERT_TRUE(
      wm.Query("select * from t where c = 3 and a = 1 and b = 2").ok());
  ASSERT_TRUE(
      wm.Query("SELECT * FROM t WHERE b = 2 AND c = 3 AND a = 1").ok());
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(wm.stats().hits, 2u);
}

TEST(NormalizationOptionTest, OffByDefault) {
  int executions = 0;
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  Watchman wm(std::move(opts), [&](const std::string& text) {
    ++executions;
    return Execute(text, 100, {});
  });
  ASSERT_TRUE(wm.Query("select * from t where a = 1 and b = 2").ok());
  ASSERT_TRUE(wm.Query("select * from t where b = 2 and a = 1").ok());
  EXPECT_EQ(executions, 2);  // exact match only, like the paper's base
}

TEST(FileBackedWatchmanTest, PayloadsOnSecondaryStorage) {
  auto store = FilePayloadStore::Open(testing::TempDir() +
                                      "/watchman_facade_payloads.log");
  ASSERT_TRUE(store.ok());
  Watchman::Options opts;
  opts.capacity_bytes = 1 << 20;
  opts.payload_store = std::move(store).value();
  int executions = 0;
  Watchman wm(std::move(opts), [&](const std::string& text) {
    ++executions;
    return Execute(text, 2000, {});
  });
  ASSERT_TRUE(wm.Query("select report 1").ok());
  auto repeat = wm.Query("select report 1");
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(*repeat, "rows for: select report 1");
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(wm.payload_store().count(), wm.cached_set_count());
}

}  // namespace
}  // namespace watchman
