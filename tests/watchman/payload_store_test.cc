#include "watchman/payload_store.h"

#include <gtest/gtest.h>

#include <string>

#include "util/random.h"

namespace watchman {
namespace {

template <typename T>
std::unique_ptr<PayloadStore> MakeStore();

template <>
std::unique_ptr<PayloadStore> MakeStore<MemoryPayloadStore>() {
  return std::make_unique<MemoryPayloadStore>();
}

int g_file_store_counter = 0;

template <>
std::unique_ptr<PayloadStore> MakeStore<FilePayloadStore>() {
  const std::string path = testing::TempDir() + "/watchman_payloads_" +
                           std::to_string(g_file_store_counter++) + ".log";
  auto store = FilePayloadStore::Open(path);
  EXPECT_TRUE(store.ok());
  return std::move(store).value();
}

template <typename T>
class PayloadStoreTest : public testing::Test {
 protected:
  PayloadStoreTest() : store_(MakeStore<T>()) {}
  std::unique_ptr<PayloadStore> store_;
};

using StoreTypes = testing::Types<MemoryPayloadStore, FilePayloadStore>;
TYPED_TEST_SUITE(PayloadStoreTest, StoreTypes);

TYPED_TEST(PayloadStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(this->store_->Put("k1", "hello world").ok());
  auto got = this->store_->Get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello world");
  EXPECT_TRUE(this->store_->Contains("k1"));
  EXPECT_EQ(this->store_->count(), 1u);
  EXPECT_EQ(this->store_->payload_bytes(), 11u);
}

TYPED_TEST(PayloadStoreTest, GetMissingFails) {
  auto got = this->store_->Get("nope");
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TYPED_TEST(PayloadStoreTest, PutReplaces) {
  ASSERT_TRUE(this->store_->Put("k", "short").ok());
  ASSERT_TRUE(this->store_->Put("k", "a considerably longer value").ok());
  auto got = this->store_->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "a considerably longer value");
  EXPECT_EQ(this->store_->count(), 1u);
  EXPECT_EQ(this->store_->payload_bytes(), 27u);
}

TYPED_TEST(PayloadStoreTest, EraseRemoves) {
  ASSERT_TRUE(this->store_->Put("k", "v").ok());
  EXPECT_TRUE(this->store_->Erase("k"));
  EXPECT_FALSE(this->store_->Erase("k"));
  EXPECT_FALSE(this->store_->Contains("k"));
  EXPECT_EQ(this->store_->payload_bytes(), 0u);
}

TYPED_TEST(PayloadStoreTest, BinaryPayloadsSurvive) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  ASSERT_TRUE(this->store_->Put("bin", binary).ok());
  auto got = this->store_->Get("bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, binary);
}

TYPED_TEST(PayloadStoreTest, ManyKeysStressAndAccounting) {
  Rng rng(5);
  uint64_t expected_bytes = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string value(rng.NextBounded(2000), 'x');
    ASSERT_TRUE(this->store_->Put(key, value).ok());
    expected_bytes += value.size();
  }
  EXPECT_EQ(this->store_->count(), 500u);
  EXPECT_EQ(this->store_->payload_bytes(), expected_bytes);
  // Spot-check a few reads.
  for (int i = 0; i < 500; i += 97) {
    EXPECT_TRUE(this->store_->Get("key" + std::to_string(i)).ok());
  }
}

TEST(FilePayloadStoreTest, CompactionReclaimsGarbage) {
  const std::string path = testing::TempDir() + "/watchman_compact.log";
  FilePayloadStore::Options opts;
  opts.compaction_ratio = 0.4;
  auto store_or = FilePayloadStore::Open(path, opts);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  // Write then delete lots of payloads to accumulate garbage.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store
                      .Put("victim" + std::to_string(i),
                           std::string(1000, 'a' + (round % 26)))
                      .ok());
    }
  }
  ASSERT_TRUE(store.Put("keeper", "important payload").ok());
  EXPECT_GT(store.compactions(), 0u);
  // File size is bounded by live data plus sub-threshold garbage.
  EXPECT_LT(store.file_bytes(), 200 * 1024u);
  auto keeper = store.Get("keeper");
  ASSERT_TRUE(keeper.ok());
  EXPECT_EQ(*keeper, "important payload");
  // All victims still readable after compactions.
  for (int i = 0; i < 50; ++i) {
    auto got = store.Get("victim" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got->size(), 1000u);
  }
}

TEST(FilePayloadStoreTest, OpenFailsOnBadPath) {
  auto store = FilePayloadStore::Open("/nonexistent-dir-xyz/p.log");
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace watchman
