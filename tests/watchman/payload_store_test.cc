#include "watchman/payload_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/random.h"

namespace watchman {
namespace {

template <typename T>
std::unique_ptr<PayloadStore> MakeStore();

template <>
std::unique_ptr<PayloadStore> MakeStore<MemoryPayloadStore>() {
  return std::make_unique<MemoryPayloadStore>();
}

int g_file_store_counter = 0;

template <>
std::unique_ptr<PayloadStore> MakeStore<FilePayloadStore>() {
  const std::string path = testing::TempDir() + "/watchman_payloads_" +
                           std::to_string(g_file_store_counter++) + ".log";
  auto store = FilePayloadStore::Open(path);
  EXPECT_TRUE(store.ok());
  return std::move(store).value();
}

template <typename T>
class PayloadStoreTest : public testing::Test {
 protected:
  PayloadStoreTest() : store_(MakeStore<T>()) {}
  std::unique_ptr<PayloadStore> store_;
};

using StoreTypes = testing::Types<MemoryPayloadStore, FilePayloadStore>;
TYPED_TEST_SUITE(PayloadStoreTest, StoreTypes);

TYPED_TEST(PayloadStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(this->store_->Put("k1", "hello world").ok());
  auto got = this->store_->Get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello world");
  EXPECT_TRUE(this->store_->Contains("k1"));
  EXPECT_EQ(this->store_->count(), 1u);
  EXPECT_EQ(this->store_->payload_bytes(), 11u);
}

TYPED_TEST(PayloadStoreTest, GetMissingFails) {
  auto got = this->store_->Get("nope");
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TYPED_TEST(PayloadStoreTest, PutReplaces) {
  ASSERT_TRUE(this->store_->Put("k", "short").ok());
  ASSERT_TRUE(this->store_->Put("k", "a considerably longer value").ok());
  auto got = this->store_->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "a considerably longer value");
  EXPECT_EQ(this->store_->count(), 1u);
  EXPECT_EQ(this->store_->payload_bytes(), 27u);
}

TYPED_TEST(PayloadStoreTest, EraseRemoves) {
  ASSERT_TRUE(this->store_->Put("k", "v").ok());
  EXPECT_TRUE(this->store_->Erase("k"));
  EXPECT_FALSE(this->store_->Erase("k"));
  EXPECT_FALSE(this->store_->Contains("k"));
  EXPECT_EQ(this->store_->payload_bytes(), 0u);
}

TYPED_TEST(PayloadStoreTest, BinaryPayloadsSurvive) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  ASSERT_TRUE(this->store_->Put("bin", binary).ok());
  auto got = this->store_->Get("bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, binary);
}

TYPED_TEST(PayloadStoreTest, ManyKeysStressAndAccounting) {
  Rng rng(5);
  uint64_t expected_bytes = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string value(rng.NextBounded(2000), 'x');
    ASSERT_TRUE(this->store_->Put(key, value).ok());
    expected_bytes += value.size();
  }
  EXPECT_EQ(this->store_->count(), 500u);
  EXPECT_EQ(this->store_->payload_bytes(), expected_bytes);
  // Spot-check a few reads.
  for (int i = 0; i < 500; i += 97) {
    EXPECT_TRUE(this->store_->Get("key" + std::to_string(i)).ok());
  }
}

TEST(FilePayloadStoreTest, CompactionReclaimsGarbage) {
  const std::string path = testing::TempDir() + "/watchman_compact.log";
  FilePayloadStore::Options opts;
  opts.compaction_ratio = 0.4;
  auto store_or = FilePayloadStore::Open(path, opts);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;
  // Write then delete lots of payloads to accumulate garbage.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store
                      .Put("victim" + std::to_string(i),
                           std::string(1000, 'a' + (round % 26)))
                      .ok());
    }
  }
  ASSERT_TRUE(store.Put("keeper", "important payload").ok());
  EXPECT_GT(store.compactions(), 0u);
  // File size is bounded by live data plus sub-threshold garbage.
  EXPECT_LT(store.file_bytes(), 200 * 1024u);
  auto keeper = store.Get("keeper");
  ASSERT_TRUE(keeper.ok());
  EXPECT_EQ(*keeper, "important payload");
  // All victims still readable after compactions.
  for (int i = 0; i < 50; ++i) {
    auto got = store.Get("victim" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got->size(), 1000u);
  }
}

// The header promises Get() is safe to call concurrently with other
// Get() calls under Watchman's locking discipline (Gets share a reader
// lock, Put/Erase are exclusive). Exercise that promise across many
// compactions: the log file, fd and index are swapped out repeatedly
// under the writer lock while reader threads race each other on Get.
TEST(FilePayloadStoreTest, ConcurrentGetsStaySafeAcrossCompactions) {
  const std::string path =
      testing::TempDir() + "/watchman_concurrent_compact.log";
  FilePayloadStore::Options opts;
  opts.compaction_ratio = 0.05;  // compact eagerly
  auto store_or = FilePayloadStore::Open(path, opts);
  ASSERT_TRUE(store_or.ok());
  auto& store = **store_or;

  // Mirrors Watchman::payload_mu_: shared for Get, exclusive for
  // Put/Erase (and thus for the compactions they trigger).
  std::shared_mutex mu;

  constexpr int kStableKeys = 32;
  auto stable_key = [](int i) { return "stable" + std::to_string(i); };
  auto stable_value = [](int i) {
    return std::string(200 + 17 * i, static_cast<char>('a' + i % 26));
  };
  {
    std::unique_lock<std::shared_mutex> lock(mu);
    for (int i = 0; i < kStableKeys; ++i) {
      ASSERT_TRUE(store.Put(stable_key(i), stable_value(i)).ok());
    }
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> read_errors{0};
  std::atomic<int> write_errors{0};
  std::atomic<uint64_t> reads{0};

  // Readers and the writer each run a fixed amount of work (no
  // cross-thread stop flag: glibc rwlocks prefer readers, so a writer
  // gated on reader progress can starve into a hang). Readers pause
  // briefly every few iterations to hand the writer lock windows.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int iter = 0; iter < 1500; ++iter) {
        const int i = static_cast<int>(rng.NextBounded(kStableKeys));
        {
          std::shared_lock<std::shared_mutex> lock(mu);
          auto got = store.Get(stable_key(i));
          if (!got.ok()) {
            read_errors.fetch_add(1);
          } else if (*got != stable_value(i)) {
            mismatches.fetch_add(1);
          }
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        if (iter % 16 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }

  // Writer: churn disposable keys so garbage accumulates and the store
  // compacts over and over while the readers run.
  std::thread writer([&] {
    Rng rng(7);
    for (int round = 0; round < 300; ++round) {
      const std::string key = "churn" + std::to_string(round % 8);
      std::unique_lock<std::shared_mutex> lock(mu);
      if (!store.Put(key, std::string(500 + rng.NextBounded(1500), 'z'))
               .ok()) {
        write_errors.fetch_add(1);
      }
      if (round % 3 == 0) store.Erase(key);
    }
  });

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(write_errors.load(), 0);

  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  // The churn must actually have forced compactions, or this test
  // proved nothing.
  EXPECT_GT(store.compactions(), 10u);
  // And the stable data survived it all.
  for (int i = 0; i < kStableKeys; ++i) {
    auto got = store.Get(stable_key(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, stable_value(i)) << i;
  }
}

TEST(FilePayloadStoreTest, OpenFailsOnBadPath) {
  auto store = FilePayloadStore::Open("/nonexistent-dir-xyz/p.log");
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace watchman
