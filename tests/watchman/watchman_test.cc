// Tests of the public Watchman facade and the simulated warehouse.

#include "watchman/watchman.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/schemas.h"
#include "util/string_util.h"
#include "watchman/warehouse.h"
#include "workload/tpcd_workload.h"

namespace watchman {
namespace {

Watchman::Options SmallOptions(uint64_t capacity = 1 << 20) {
  Watchman::Options opts;
  opts.capacity_bytes = capacity;
  opts.k = 4;
  return opts;
}

TEST(WatchmanTest, MissExecutesHitDoesNot) {
  int executions = 0;
  Watchman wm(SmallOptions(), [&executions](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    ++executions;
    return Watchman::ExecutionResult{"result of " + text, 100, {}};
  });
  auto r1 = wm.Query("SELECT sum(x) FROM t");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(executions, 1);
  auto r2 = wm.Query("SELECT sum(x) FROM t");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(executions, 1);  // served from cache
  EXPECT_EQ(*r1, *r2);
  EXPECT_EQ(wm.stats().hits, 1u);
}

TEST(WatchmanTest, FormattingVariantsShareOneEntry) {
  int executions = 0;
  Watchman wm(SmallOptions(), [&executions](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    ++executions;
    return Watchman::ExecutionResult{"payload", 10, {}};
  });
  ASSERT_TRUE(wm.Query("SELECT  a FROM t").ok());
  ASSERT_TRUE(wm.Query("select a\nfrom   t").ok());
  EXPECT_EQ(executions, 1);  // compressed query IDs match
}

TEST(WatchmanTest, ExecutorErrorsPropagateAndAreNotCached) {
  int calls = 0;
  Watchman wm(SmallOptions(), [&calls](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    ++calls;
    if (calls == 1) return Status::IOError("warehouse down");
    return Watchman::ExecutionResult{"ok now", 10, {}};
  });
  auto r1 = wm.Query("select x");
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(wm.IsCached("select x"));
  auto r2 = wm.Query("select x");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, "ok now");
}

TEST(WatchmanTest, EmptyQueryRejected) {
  Watchman wm(SmallOptions(), [](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    return Watchman::ExecutionResult{"x", 1, {}};
  });
  EXPECT_FALSE(wm.Query("   \t\n ").ok());
}

TEST(WatchmanTest, EmptyPayloadReturnedButNotCached) {
  Watchman wm(SmallOptions(), [](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    return Watchman::ExecutionResult{"", 10, {}};
  });
  auto r = wm.Query("select nothing");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_FALSE(wm.IsCached("select nothing"));
}

TEST(WatchmanTest, CapacityBoundsPayloadBytes) {
  Watchman wm(SmallOptions(4096), [](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    return Watchman::ExecutionResult{std::string(1024, 0x78) + text, 50, {}};
  });
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(wm.Query("select q" + std::to_string(i)).ok());
    EXPECT_LE(wm.used_bytes(), wm.capacity_bytes());
  }
}

TEST(WatchmanTest, AdmissionListenerFires) {
  std::vector<std::string> admitted;
  Watchman wm(SmallOptions(), [](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    return Watchman::ExecutionResult{"payload", 500, {}};
  });
  wm.SetAdmissionListener(
      [&admitted](const std::string& id) { admitted.push_back(id); });
  ASSERT_TRUE(wm.Query("select a from t").ok());
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], CompressQueryId("select a from t"));
}

TEST(WatchmanTest, CostSavingsTracksRepeatedExpensiveQueries) {
  Watchman wm(SmallOptions(), [](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    return Watchman::ExecutionResult{"small result", 10000, {}};
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wm.Query("select expensive aggregate").ok());
  }
  EXPECT_NEAR(wm.cost_savings_ratio(), 0.9, 1e-9);
  EXPECT_NEAR(wm.hit_ratio(), 0.9, 1e-9);
}

TEST(WatchmanTest, ExternalClockIsUsed) {
  Timestamp now = 1000;
  Watchman::Options opts = SmallOptions();
  opts.clock = [&now]() { return now; };
  Watchman wm(std::move(opts), [](const std::string&)
                  -> StatusOr<Watchman::ExecutionResult> {
    return Watchman::ExecutionResult{"r", 5, {}};
  });
  ASSERT_TRUE(wm.Query("q1").ok());
  now += kSecond;
  ASSERT_TRUE(wm.Query("q1").ok());
  EXPECT_EQ(wm.stats().hits, 1u);
}

TEST(WarehouseTest, PayloadsAreDeterministic) {
  EXPECT_EQ(SynthesizePayload(42, 1000), SynthesizePayload(42, 1000));
  EXPECT_NE(SynthesizePayload(42, 1000), SynthesizePayload(43, 1000));
  EXPECT_EQ(SynthesizePayload(7, 123).size(), 123u);
  EXPECT_TRUE(SynthesizePayload(7, 0).empty());
}

TEST(WarehouseTest, ExecuteProducesSizedPayloadAndTracksWork) {
  SimulatedWarehouse warehouse;
  QueryEvent e;
  e.query_id = "q";
  e.result_bytes = 777;
  e.cost_block_reads = 1234;
  e.template_id = 3;
  e.instance = 9;
  const auto r = warehouse.Execute(e);
  EXPECT_EQ(r.payload.size(), 777u);
  EXPECT_EQ(r.cost, 1234u);
  EXPECT_EQ(warehouse.executions(), 1u);
  EXPECT_EQ(warehouse.total_block_reads(), 1234u);
  // Re-executing the same event yields the same payload.
  EXPECT_EQ(warehouse.Execute(e).payload, r.payload);
}

TEST(WatchmanIntegrationTest, EndToEndOnTpcdTrace) {
  // Drive the facade with the TPC-D workload through the simulated
  // warehouse and verify WATCHMAN saves a large share of the work.
  Database db = MakeTpcdDatabase();
  WorkloadMix mix = MakeTpcdWorkload(db);
  TraceGenOptions gen;
  gen.num_queries = 4000;
  gen.seed = 77;
  const Trace trace = mix.GenerateTrace(gen);

  SimulatedWarehouse warehouse;
  // The executor finds the event by query text; build an index.
  std::unordered_map<std::string, const QueryEvent*> by_id;
  for (const QueryEvent& e : trace) by_id.emplace(e.query_id, &e);

  Timestamp now = 0;
  Watchman::Options opts;
  opts.capacity_bytes = db.total_bytes() / 50;  // 2% cache
  opts.clock = [&now]() { return now; };
  Watchman wm(std::move(opts), [&](const std::string& text)
                  -> StatusOr<Watchman::ExecutionResult> {
    auto it = by_id.find(CompressQueryId(text));
    if (it == by_id.end()) return Status::NotFound("unknown query");
    return warehouse.Execute(*it->second);
  });

  uint64_t total_cost = 0;
  for (const QueryEvent& e : trace) {
    now = e.timestamp;
    // The facade compresses the text itself; feed it the raw id (the
    // compression of a compressed ID is idempotent for our generators).
    auto result = wm.Query(e.query_id);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), e.result_bytes);
    total_cost += e.cost_block_reads;
  }
  // The warehouse executed only the misses.
  EXPECT_LT(warehouse.executions(), trace.size());
  EXPECT_LT(warehouse.total_block_reads(), total_cost);
  EXPECT_GT(wm.cost_savings_ratio(), 0.3);
  EXPECT_GT(wm.hit_ratio(), 0.3);
}

}  // namespace
}  // namespace watchman
