// A counting global allocator shared by the zero-allocation tests
// (cache hit path in tests/cache/allocation_test.cc, server request
// path in tests/server/server_alloc_test.cc).
//
// The operator new/delete overrides live in counting_alloc.cc -- once
// per test binary, so multiple suites can arm the counter without each
// redefining the global allocator (an ODR trap).
//
// Two arming modes:
//  * CountingScope -- counts allocations made by the constructing
//    thread only (the classic cache-test mode: the measured section
//    runs on the test thread).
//  * GlobalCountingScope -- counts allocations made by EVERY thread
//    except those excluded; the constructing thread excludes itself,
//    because it drives the workload (client encode/decode) while the
//    threads under test are the server's IO thread and workers.

#ifndef WATCHMAN_TESTS_SUPPORT_COUNTING_ALLOC_H_
#define WATCHMAN_TESTS_SUPPORT_COUNTING_ALLOC_H_

#include <cstdint>

namespace watchman {
namespace testsupport {

/// Thread-local arm flag (CountingScope mode). Exposed so a test can
/// disarm before running FAIL()/ADD_FAILURE() machinery that
/// legitimately allocates.
extern thread_local bool t_counting;

/// Allocations recorded since the last reset, across all armed threads.
uint64_t AllocationCount();
void ResetAllocationCount();

/// Process-wide arming (GlobalCountingScope mode).
void SetGlobalCounting(bool on);
/// Excludes the calling thread from process-wide counting.
void SetThreadExcluded(bool excluded);

/// Counts allocations on the constructing thread while in scope.
struct CountingScope {
  CountingScope() {
    ResetAllocationCount();
    t_counting = true;
  }
  ~CountingScope() { t_counting = false; }
  uint64_t count() const { return AllocationCount(); }
};

/// Counts allocations on every thread but the constructing one (and
/// any other thread that called SetThreadExcluded(true)).
struct GlobalCountingScope {
  GlobalCountingScope() {
    SetThreadExcluded(true);
    ResetAllocationCount();
    SetGlobalCounting(true);
  }
  ~GlobalCountingScope() {
    SetGlobalCounting(false);
    SetThreadExcluded(false);
  }
  uint64_t count() const { return AllocationCount(); }
};

}  // namespace testsupport
}  // namespace watchman

#endif  // WATCHMAN_TESTS_SUPPORT_COUNTING_ALLOC_H_
