#include "support/promtext.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

namespace watchman {
namespace testsupport {
namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) { return IsNameStart(c) || (c >= '0' && c <= '9'); }

bool IsLabelStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsLabelChar(char c) { return IsLabelStart(c) || (c >= '0' && c <= '9'); }

bool ValidName(std::string_view name) {
  if (name.empty() || !IsNameStart(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

bool ParseValue(std::string_view text, double* out) {
  if (text.empty()) return false;
  if (text == "+Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (text == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  if (text == "NaN") {
    *out = NAN;
    return true;
  }
  const std::string copy(text);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

/// Parses `key="value",...` between braces. Returns false on syntax
/// error. `le` is extracted separately; the remaining labels (in
/// appearance order) become the series group key.
bool ParseLabels(std::string_view body, std::string* group_key,
                 bool* has_le, std::string* le_value) {
  *has_le = false;
  size_t i = 0;
  while (i < body.size()) {
    const size_t key_start = i;
    if (!IsLabelStart(body[i])) return false;
    while (i < body.size() && IsLabelChar(body[i])) ++i;
    const std::string_view key = body.substr(key_start, i - key_start);
    if (i >= body.size() || body[i] != '=') return false;
    ++i;
    if (i >= body.size() || body[i] != '"') return false;
    ++i;
    std::string value;
    while (i < body.size() && body[i] != '"') {
      if (body[i] == '\\') {
        ++i;
        if (i >= body.size()) return false;
        if (body[i] != '\\' && body[i] != '"' && body[i] != 'n') return false;
        value += body[i] == 'n' ? '\n' : body[i];
      } else if (body[i] == '\n') {
        return false;
      } else {
        value += body[i];
      }
      ++i;
    }
    if (i >= body.size()) return false;  // unterminated value
    ++i;                                 // closing quote
    if (key == "le") {
      *has_le = true;
      *le_value = value;
    } else {
      group_key->append(key);
      group_key->push_back('=');
      group_key->append(value);
      group_key->push_back(';');
    }
    if (i < body.size()) {
      if (body[i] != ',') return false;
      ++i;
      if (i >= body.size()) return false;  // trailing comma
    }
  }
  return true;
}

struct HistogramSeries {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  bool has_sum = false;
  bool has_count = false;
  double count = 0;
};

struct Family {
  std::string type;
  bool has_help = false;
  bool has_type = false;
  bool has_samples = false;
  std::set<std::string> series;  // duplicate detection (full label sets)
  std::map<std::string, HistogramSeries> histograms;  // by group key
};

bool FinishFamily(const std::string& name, const Family& family,
                  std::string* error) {
  if (family.type != "histogram") return true;
  for (const auto& [group, series] : family.histograms) {
    const std::string where =
        name + (group.empty() ? "" : "{" + group + "}");
    if (series.buckets.empty()) {
      *error = where + ": histogram without _bucket samples";
      return false;
    }
    double prev_le = -HUGE_VAL;
    double prev_count = -1;
    for (const auto& [le, cumulative] : series.buckets) {
      if (le <= prev_le) {
        *error = where + ": bucket le values not strictly increasing";
        return false;
      }
      if (cumulative < prev_count) {
        *error = where + ": cumulative bucket counts decreased";
        return false;
      }
      prev_le = le;
      prev_count = cumulative;
    }
    if (series.buckets.back().first != HUGE_VAL) {
      *error = where + ": missing le=\"+Inf\" bucket";
      return false;
    }
    if (!series.has_sum || !series.has_count) {
      *error = where + ": histogram missing _sum or _count";
      return false;
    }
    if (series.buckets.back().second != series.count) {
      *error = where + ": +Inf bucket != _count";
      return false;
    }
  }
  return true;
}

}  // namespace

bool ValidatePrometheusText(std::string_view text, std::string* error) {
  std::string current_name;
  Family current;
  const auto fail = [&](std::string_view line, const std::string& why) {
    *error = why + " in line: " + std::string(line);
    return false;
  };

  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // `# HELP name text` or `# TYPE name type`; other comments pass.
      if (line.size() < 2 || line[1] != ' ') {
        return fail(line, "malformed comment");
      }
      const std::string_view rest = line.substr(2);
      const bool is_help = rest.substr(0, 5) == "HELP ";
      const bool is_type = rest.substr(0, 5) == "TYPE ";
      if (!is_help && !is_type) continue;
      const std::string_view after = rest.substr(5);
      const size_t space = after.find(' ');
      const std::string_view name =
          space == std::string_view::npos ? after : after.substr(0, space);
      if (!ValidName(name)) return fail(line, "bad metric name");
      if (name != current_name) {
        if (!current_name.empty() &&
            !FinishFamily(current_name, current, error)) {
          return false;
        }
        current_name = std::string(name);
        current = Family();
      }
      if (is_help) {
        if (current.has_help) return fail(line, "duplicate HELP");
        if (current.has_samples) return fail(line, "HELP after samples");
        current.has_help = true;
      } else {
        if (current.has_type) return fail(line, "duplicate TYPE");
        if (current.has_samples) return fail(line, "TYPE after samples");
        const std::string_view type =
            space == std::string_view::npos ? "" : after.substr(space + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(line, "unknown TYPE");
        }
        current.has_type = true;
        current.type = std::string(type);
      }
      continue;
    }

    // Sample: name[{labels}] value [timestamp]
    size_t i = 0;
    while (i < line.size() && IsNameChar(line[i])) ++i;
    const std::string_view name = line.substr(0, i);
    if (!ValidName(name)) return fail(line, "bad sample name");
    std::string group_key;
    bool has_le = false;
    std::string le_value;
    std::string series_key(name);
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        return fail(line, "unterminated label set");
      }
      const std::string_view body = line.substr(i + 1, close - i - 1);
      if (!ParseLabels(body, &group_key, &has_le, &le_value)) {
        return fail(line, "bad label syntax");
      }
      series_key.push_back('{');
      series_key.append(body);
      series_key.push_back('}');
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(line, "missing value separator");
    }
    const std::string_view value_part = line.substr(i + 1);
    const size_t value_end = value_part.find(' ');  // optional timestamp
    double value = 0;
    if (!ParseValue(value_part.substr(0, value_end), &value)) {
      return fail(line, "bad sample value");
    }

    if (current_name.empty()) return fail(line, "sample before HELP/TYPE");
    std::string_view base = name;
    bool is_bucket = false, is_sum = false, is_count = false;
    if (current.type == "histogram") {
      const auto strip = [&](std::string_view suffix) {
        return name.size() > suffix.size() &&
               name.substr(name.size() - suffix.size()) == suffix &&
               name.substr(0, name.size() - suffix.size()) == current_name;
      };
      if (strip("_bucket")) {
        is_bucket = true;
        base = current_name;
      } else if (strip("_sum")) {
        is_sum = true;
        base = current_name;
      } else if (strip("_count")) {
        is_count = true;
        base = current_name;
      }
    }
    if (base != current_name) {
      return fail(line, "sample outside the declared family");
    }
    if (!current.series.insert(series_key).second) {
      return fail(line, "duplicate series");
    }
    current.has_samples = true;
    if (current.type == "histogram") {
      if (!is_bucket && !is_sum && !is_count) {
        return fail(line, "bare histogram sample");
      }
      if (is_bucket != has_le) {
        return fail(line, is_bucket ? "bucket without le label"
                                    : "le label outside _bucket");
      }
      HistogramSeries& series = current.histograms[group_key];
      if (is_bucket) {
        double le = 0;
        if (!ParseValue(le_value, &le)) return fail(line, "bad le value");
        series.buckets.emplace_back(le, value);
      } else if (is_sum) {
        if (series.has_sum) return fail(line, "duplicate _sum");
        series.has_sum = true;
      } else {
        if (series.has_count) return fail(line, "duplicate _count");
        series.has_count = true;
        series.count = value;
      }
    } else if (has_le) {
      return fail(line, "le label on a non-histogram sample");
    }
  }
  if (!current_name.empty() && !FinishFamily(current_name, current, error)) {
    return false;
  }
  return true;
}

}  // namespace testsupport
}  // namespace watchman
