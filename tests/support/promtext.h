// Validator for the Prometheus text exposition format 0.0.4, shared by
// the registry render tests and the admin-endpoint integration tests.
//
// Checks the structural contract a scraper relies on, not just
// tokenization:
//  * every sample line belongs to the most recently declared family
//    (`# HELP` + `# TYPE` precede samples; histogram samples may only
//    be `<family>_bucket` / `_sum` / `_count`),
//  * metric names and label keys are legal, label values are quoted
//    with legal escapes,
//  * every histogram series (grouped by its labels minus `le`) has
//    strictly increasing bucket bounds, non-decreasing cumulative
//    counts, an `le="+Inf"` bucket, and `_sum`/`_count` samples with
//    the `+Inf` count equal to `_count`,
//  * no duplicate series within a family.

#ifndef WATCHMAN_TESTS_SUPPORT_PROMTEXT_H_
#define WATCHMAN_TESTS_SUPPORT_PROMTEXT_H_

#include <string>
#include <string_view>

namespace watchman {
namespace testsupport {

/// Returns true when `text` is valid Prometheus text exposition format;
/// otherwise false with a human-readable reason (including the line)
/// in *error.
bool ValidatePrometheusText(std::string_view text, std::string* error);

}  // namespace testsupport
}  // namespace watchman

#endif  // WATCHMAN_TESTS_SUPPORT_PROMTEXT_H_
