// Global allocator override with a counting hook. Linked exactly once
// into the test binary; see counting_alloc.h for the arming modes.

#include "support/counting_alloc.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace watchman {
namespace testsupport {

thread_local bool t_counting = false;

namespace {
std::atomic<uint64_t> g_allocations{0};
std::atomic<bool> g_global_counting{false};
thread_local bool t_excluded = false;

inline bool Armed() {
  if (t_counting) return true;
  return g_global_counting.load(std::memory_order_relaxed) && !t_excluded;
}
}  // namespace

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

void ResetAllocationCount() {
  g_allocations.store(0, std::memory_order_relaxed);
}

void SetGlobalCounting(bool on) {
  g_global_counting.store(on, std::memory_order_relaxed);
}

void SetThreadExcluded(bool excluded) { t_excluded = excluded; }

}  // namespace testsupport
}  // namespace watchman

void* operator new(std::size_t size) {
  if (watchman::testsupport::Armed()) {
    watchman::testsupport::g_allocations.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  if (watchman::testsupport::Armed()) {
    watchman::testsupport::g_allocations.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
