// Chaos integration suite: seeded fault schedules against a live
// daemon on BOTH event backends. Every schedule drives a mixed
// wire workload (blocking + multiplexed clients) while the injector
// fires short reads/writes, EAGAIN storms, connection resets, slow-peer
// stalls, accept failures, store outages, executor crashes and
// allocation failures -- and asserts the three chaos invariants:
//
//  1. No crash: the daemon and both client paths survive the run.
//  2. No hang: every call returns within a bound derived from
//     io_timeout_ms (a wedged call fails the stopwatch assert).
//  3. No undocumented outcome: every client-visible status is one of
//     the documented error classes (OK, NotFound, IOError, Internal,
//     ShedRetryLater) -- nothing leaks a raw errno, an invalid frame,
//     or a partial response.
//
// After each schedule the injector is reset and a fresh client must be
// served cleanly: degradation is required to be transient.
//
// Schedules are deterministic per seed AND per site (the decision is a
// pure function of seed x site x call ordinal), so a failing seed here
// reproduces byte-for-byte under a debugger. CI runs this suite under
// ASan/LSan to pin the no-leak half of the contract.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/uring.h"
#include "util/fault.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

struct ChaosSchedule {
  const char* name;
  const char* spec;
};

// >= 8 seeded schedules, each biased toward one failure family plus a
// kitchen-sink mix. Probabilities are chosen so connections keep making
// progress (the suite asserts at least one success per run).
constexpr ChaosSchedule kSchedules[] = {
    {"recv_flaky", "seed=101,recv_short=0.08,recv_eagain=0.08"},
    {"send_flaky", "seed=202,send_short=0.08,send_eagain=0.08"},
    {"resets", "seed=303,recv_reset=0.02,send_reset=0.02"},
    {"slow_peer", "seed=404,recv_stall=0.05,send_stall=0.05,stall_ms=2"},
    {"accept_storm", "seed=505,accept_fail=0.3"},
    {"store_outage", "seed=606,store_put_fail=0.3,store_get_fail=0.3"},
    {"executor_chaos", "seed=707,exec_fail=0.2,exec_throw=0.1"},
    {"alloc_pressure", "seed=808,alloc_fail=0.5"},
    {"kitchen_sink",
     "seed=909,recv_short=0.05,send_short=0.05,recv_eagain=0.05,"
     "send_eagain=0.05,recv_reset=0.01,send_reset=0.01,store_put_fail=0.1,"
     "exec_fail=0.05,alloc_fail=0.1,stall_ms=1"},
};

constexpr int kIoTimeoutMs = 2000;
// A call that outlives this never returned within the io_timeout
// machinery: that is a hang, not an error.
constexpr int64_t kCallBoundMs = 10000;

/// One client-visible outcome, checked against the documented classes.
struct Outcomes {
  int ok = 0;
  int documented_errors = 0;
  std::vector<std::string> undocumented;
  int64_t max_call_ms = 0;

  void Record(StatusCode code, const Status& status, int64_t elapsed_ms) {
    if (elapsed_ms > max_call_ms) max_call_ms = elapsed_ms;
    switch (code) {
      case StatusCode::kOk:
        ++ok;
        return;
      case StatusCode::kNotFound:
      case StatusCode::kIOError:
      case StatusCode::kInternal:
      case StatusCode::kShedRetryLater:
        ++documented_errors;
        return;
      default:
        undocumented.push_back(std::string(StatusCodeName(code)) + ": " +
                               status.ToString());
    }
  }
};

class ChaosTest
    : public testing::TestWithParam<std::tuple<ServerBackend, size_t>> {
 protected:
  void SetUp() override {
    if (std::get<0>(GetParam()) == ServerBackend::kIoUring &&
        !Uring::KernelSupported()) {
      GTEST_SKIP() << "kernel cannot run the io_uring backend";
    }
  }

  void TearDown() override { FaultInjector::Global().Reset(); }

  static const ChaosSchedule& Schedule() {
    return kSchedules[std::get<1>(GetParam())];
  }

  void StartServer() {
    Watchman::Options options;
    options.capacity_bytes = 8 << 20;
    // A tight breaker so store outages exercise open/half-open cycling
    // within one run.
    options.store_breaker.failure_threshold = 3;
    options.store_breaker.cooldown_ms = 50;
    cache_ = std::make_unique<Watchman>(std::move(options),
                                        WatchmanServer::MissFillExecutor());
    WatchmanServer::Options server_options;
    server_options.port = 0;
    server_options.backend = std::get<0>(GetParam());
    server_options.io_timeout_ms = kIoTimeoutMs;
    server_ = std::make_unique<WatchmanServer>(cache_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_EQ(server_->effective_backend(), std::get<0>(GetParam()));
  }

  WatchmanClient::Options ClientOptions() const {
    WatchmanClient::Options options;
    options.port = server_->port();
    options.io_timeout_ms = kIoTimeoutMs;
    options.connect_attempts = 5;
    // Keep the stopwatch tight: shed statuses surface instead of
    // sleeping through retries (admission is off in this suite anyway).
    options.shed_retries = 0;
    return options;
  }

  std::unique_ptr<Watchman> cache_;
  std::unique_ptr<WatchmanServer> server_;
};

int64_t MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Blocking-client workload: a deterministic mix of fills, probes,
/// pings and invalidations. Transport failures are survived by the
/// client's own redial; a dead client is reconnected here (documented
/// IOError) so one reset does not end the run.
void BlockingWorkload(const WatchmanClient::Options& options, int ops,
                      Outcomes* out) {
  std::unique_ptr<WatchmanClient> client;
  for (int i = 0; i < ops; ++i) {
    const auto start = std::chrono::steady_clock::now();
    if (!client) {
      auto connected = WatchmanClient::Connect(options);
      if (!connected.ok()) {
        out->Record(connected.status().code(), connected.status(),
                    MsSince(start));
        continue;
      }
      client = std::move(connected).value();
    }
    const std::string query = "select c" + std::to_string(i % 8) +
                              " from chaos";
    Status status = Status::OK();
    switch (i % 4) {
      case 0: {
        auto r = client->Execute(query, "fill " + query, 100, {"chaos"});
        status = r.status();
        break;
      }
      case 1: {
        auto r = client->Get(query);
        status = r.status();
        break;
      }
      case 2:
        status = client->Ping();
        break;
      default: {
        auto r = client->Invalidate(query);
        status = r.status();
        break;
      }
    }
    out->Record(status.code(), status, MsSince(start));
    if (status.code() == StatusCode::kIOError) client.reset();
  }
}

/// Multiplexed-client workload: pipelined bursts awaited out of order.
/// Any transport failure is sticky by contract, so the client is
/// rebuilt and the burst's failures counted as documented IOErrors.
void PipelinedWorkload(const MultiplexedClient::Options& options, int bursts,
                       Outcomes* out) {
  std::unique_ptr<MultiplexedClient> client;
  for (int b = 0; b < bursts; ++b) {
    const auto start = std::chrono::steady_clock::now();
    if (!client) {
      auto connected = MultiplexedClient::Connect(options);
      if (!connected.ok()) {
        out->Record(connected.status().code(), connected.status(),
                    MsSince(start));
        continue;
      }
      client = std::move(connected).value();
    }
    std::vector<MultiplexedClient::Ticket> tickets;
    bool broken = false;
    for (int i = 0; i < 8; ++i) {
      const std::string query = "select p" + std::to_string(i) +
                                " from chaos";
      auto ticket = (i % 2 == 0)
                        ? client->StartExecute(query, "fill", 50, {"chaos"})
                        : client->StartGet(query);
      if (!ticket.ok()) {
        out->Record(ticket.status().code(), ticket.status(), MsSince(start));
        broken = true;
        break;
      }
      tickets.push_back(*ticket);
    }
    for (auto it = tickets.rbegin(); it != tickets.rend(); ++it) {
      auto response = client->Await(*it);
      if (response.ok()) {
        out->Record(response->code, Status::OK(), MsSince(start));
      } else {
        out->Record(response.status().code(), response.status(),
                    MsSince(start));
        broken = true;
      }
    }
    if (broken) client.reset();
  }
}

TEST_P(ChaosTest, SurvivesScheduleWithDocumentedOutcomesOnly) {
  StartServer();
  const ChaosSchedule& schedule = Schedule();
  SCOPED_TRACE(schedule.spec);
  ASSERT_TRUE(FaultInjector::Global().Configure(schedule.spec).ok());

  Outcomes blocking, pipelined;
  std::thread t1([&] { BlockingWorkload(ClientOptions(), 60, &blocking); });
  std::thread t2([&] { PipelinedWorkload(ClientOptions(), 8, &pipelined); });
  t1.join();
  t2.join();

  for (const Outcomes* out : {&blocking, &pipelined}) {
    // Invariant 3: only documented error classes reached a caller.
    for (const std::string& bad : out->undocumented) {
      ADD_FAILURE() << "undocumented outcome: " << bad;
    }
    // Invariant 2: nothing outlived the io_timeout machinery.
    EXPECT_LT(out->max_call_ms, kCallBoundMs);
  }
  // Progress: chaos degraded service, it did not stop it.
  EXPECT_GE(blocking.ok + pipelined.ok, 1);

  // The schedule really fired: a refactor that routes IO around the
  // shims would turn this suite into a no-op without this check. The
  // one blind spot is accept_fail on io_uring, whose multishot-accept
  // path has no shim (uring sheds coverage there by design; epoll keeps
  // it).
  const bool accept_only_on_uring =
      std::string(schedule.name) == "accept_storm" &&
      std::get<0>(GetParam()) == ServerBackend::kIoUring;
  if (!accept_only_on_uring) {
    EXPECT_GT(FaultInjector::Global().injected_total(), 0u);
  }

  // Recovery: with the injector quiet again, a fresh client is served
  // cleanly -- and the daemon's own metrics survive a scrape.
  FaultInjector::Global().Reset();
  WatchmanClient::Options clean_options = ClientOptions();
  auto clean = WatchmanClient::Connect(clean_options);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE((*clean)->Ping().ok());
  auto stats = (*clean)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->requests_served, 0u);

  // Invariant 1 is the test reaching this line (plus ASan in CI for the
  // no-leak half).
  server_->Stop();
}

std::string ChaosParamName(
    const testing::TestParamInfo<std::tuple<ServerBackend, size_t>>& info) {
  return std::string(kSchedules[std::get<1>(info.param)].name) + "_" +
         ServerBackendName(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosTest,
    testing::Combine(testing::Values(ServerBackend::kEpoll,
                                     ServerBackend::kIoUring),
                     testing::Range<size_t>(0, std::size(kSchedules))),
    ChaosParamName);

}  // namespace
}  // namespace watchman
