#include "storage/plan.h"

#include <gtest/gtest.h>

#include "storage/schemas.h"

namespace watchman {
namespace {

class PlanTest : public testing::Test {
 protected:
  PlanTest() : db_(MakeTpcdDatabase()) {}

  const Relation& Rel(const char* name) {
    auto r = db_.FindRelation(name);
    EXPECT_TRUE(r.ok());
    return **r;
  }

  Database db_;
};

TEST_F(PlanTest, ScanPropertiesMatchRelation) {
  const Relation& lineitem = Rel("lineitem");
  const PlanProperties p = Scan(lineitem)->Properties();
  EXPECT_DOUBLE_EQ(p.output_rows, static_cast<double>(lineitem.row_count()));
  EXPECT_DOUBLE_EQ(p.row_bytes, static_cast<double>(lineitem.row_bytes()));
  EXPECT_EQ(p.block_reads, lineitem.num_pages());
}

TEST_F(PlanTest, IndexSelectReducesRowsAndCost) {
  const Relation& orders = Rel("orders");
  const PlanProperties full = Scan(orders)->Properties();
  const PlanProperties sel =
      IndexSelect(orders, 0.01, AccessPath::kClusteredIndex)->Properties();
  EXPECT_LT(sel.output_rows, full.output_rows);
  EXPECT_LT(sel.block_reads, full.block_reads);
  EXPECT_NEAR(sel.output_rows, full.output_rows * 0.01, 1.0);
}

TEST_F(PlanTest, FilterReducesRowsNotCost) {
  const Relation& orders = Rel("orders");
  const PlanProperties base = Scan(orders)->Properties();
  const PlanProperties filtered =
      Filter(Scan(orders), 0.25)->Properties();
  EXPECT_DOUBLE_EQ(filtered.output_rows, base.output_rows * 0.25);
  EXPECT_EQ(filtered.block_reads, base.block_reads);
}

TEST_F(PlanTest, HashJoinAddsBuildScan) {
  const Relation& lineitem = Rel("lineitem");
  const Relation& orders = Rel("orders");
  const PlanProperties probe = Scan(lineitem)->Properties();
  const PlanProperties join =
      HashJoin(Scan(lineitem), orders, 0.5, 64.0)->Properties();
  EXPECT_EQ(join.block_reads, probe.block_reads + orders.num_pages());
  EXPECT_DOUBLE_EQ(join.output_rows, probe.output_rows * 0.5);
  EXPECT_DOUBLE_EQ(join.row_bytes, 64.0);
}

TEST_F(PlanTest, IndexJoinCostScalesWithOuterRows) {
  const Relation& orders = Rel("orders");
  const Relation& customer = Rel("customer");
  const PlanRef small_outer =
      IndexSelect(orders, 0.001, AccessPath::kClusteredIndex);
  const PlanRef big_outer =
      IndexSelect(orders, 0.05, AccessPath::kClusteredIndex);
  const uint64_t small_cost =
      IndexJoin(small_outer, customer, 1.0, 80.0)->Properties().block_reads;
  const uint64_t big_cost =
      IndexJoin(big_outer, customer, 1.0, 80.0)->Properties().block_reads;
  EXPECT_LT(small_cost, big_cost);
}

TEST_F(PlanTest, SortAddsExternalSortCost) {
  const Relation& lineitem = Rel("lineitem");
  const PlanProperties base = Scan(lineitem)->Properties();
  const PlanProperties sorted = Sort(Scan(lineitem))->Properties();
  const uint64_t pages = PagesForBytes(
      static_cast<uint64_t>(base.output_bytes()));
  EXPECT_EQ(sorted.block_reads, base.block_reads + 3 * pages);
  EXPECT_DOUBLE_EQ(sorted.output_rows, base.output_rows);
}

TEST_F(PlanTest, AggregateShrinksOutput) {
  const Relation& lineitem = Rel("lineitem");
  const PlanProperties agg =
      Aggregate(Scan(lineitem), 4, 120.0)->Properties();
  EXPECT_DOUBLE_EQ(agg.output_rows, 4.0);
  EXPECT_DOUBLE_EQ(agg.row_bytes, 120.0);
  // Small group table -> pipelined, no extra cost.
  EXPECT_EQ(agg.block_reads, lineitem.num_pages());
}

TEST_F(PlanTest, LargeAggregationPaysMaterialization) {
  const Relation& lineitem = Rel("lineitem");
  const PlanProperties small =
      Aggregate(Scan(lineitem), 100, 40.0)->Properties();
  const PlanProperties large =
      Aggregate(Scan(lineitem), 100000, 40.0)->Properties();
  EXPECT_GT(large.block_reads, small.block_reads);
}

TEST_F(PlanTest, Tpcq3StyleCompositePlan) {
  // Q3-style: customer |x| orders |x| lineitem -> aggregate -> sort.
  const Relation& customer = Rel("customer");
  const Relation& orders = Rel("orders");
  const Relation& lineitem = Rel("lineitem");
  PlanRef plan = Filter(Scan(customer), 0.2);
  plan = HashJoin(plan, orders, 10.0, 48.0);   // each customer ~10 orders
  plan = HashJoin(plan, lineitem, 4.0, 56.0);  // each order ~4 items
  plan = Aggregate(plan, 10, 80.0);
  plan = Sort(plan);
  const PlanProperties p = plan->Properties();
  // Cost must cover all three relation scans.
  EXPECT_GE(p.block_reads, customer.num_pages() + orders.num_pages() +
                               lineitem.num_pages());
  EXPECT_DOUBLE_EQ(p.output_rows, 10.0);
  // And the retrieved set is tiny -- the paper's core premise.
  EXPECT_LT(p.output_bytes(), 1024.0);
}

TEST_F(PlanTest, RenderShowsTreeStructure) {
  const Relation& orders = Rel("orders");
  const Relation& customer = Rel("customer");
  PlanRef plan = Aggregate(HashJoin(Scan(orders), customer, 1.0, 64.0),
                           25, 40.0);
  const std::string text = plan->Render();
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("Scan(orders)"), std::string::npos);
  // Child is indented under the parent.
  EXPECT_LT(text.find("Aggregate"), text.find("HashJoin"));
}

}  // namespace
}  // namespace watchman
