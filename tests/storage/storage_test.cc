#include <gtest/gtest.h>

#include "storage/cost_model.h"
#include "storage/database.h"
#include "storage/page.h"
#include "storage/relation.h"
#include "storage/schemas.h"

namespace watchman {
namespace {

TEST(PageTest, PagesForBytes) {
  EXPECT_EQ(PagesForBytes(0), 0u);
  EXPECT_EQ(PagesForBytes(1), 1u);
  EXPECT_EQ(PagesForBytes(kPageBytes), 1u);
  EXPECT_EQ(PagesForBytes(kPageBytes + 1), 2u);
  EXPECT_EQ(PagesForBytes(10 * kPageBytes), 10u);
}

TEST(PageRangeTest, SizeAndContains) {
  PageRange r{10, 20};
  EXPECT_EQ(r.size(), 10u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9));
  EXPECT_TRUE((PageRange{5, 5}).empty());
}

TEST(RelationTest, DerivedQuantities) {
  Relation r("lineitem", 180000, 112);
  EXPECT_EQ(r.total_bytes(), 180000u * 112u);
  EXPECT_EQ(r.num_pages(), PagesForBytes(180000u * 112u));
  EXPECT_EQ(r.rows_per_page(), kPageBytes / 112);
}

TEST(DatabaseTest, AssignsDisjointPageRanges) {
  Database db("test");
  ASSERT_TRUE(db.AddRelation(Relation("a", 100, 100)).ok());
  ASSERT_TRUE(db.AddRelation(Relation("b", 200, 100)).ok());
  ASSERT_TRUE(db.AddRelation(Relation("c", 300, 100)).ok());
  PageId next = 0;
  for (size_t i = 0; i < db.num_relations(); ++i) {
    const PageRange& pr = db.relation(i).pages();
    EXPECT_EQ(pr.begin, next);
    EXPECT_EQ(pr.size(), db.relation(i).num_pages());
    next = pr.end;
  }
  EXPECT_EQ(db.total_pages(), next);
}

TEST(DatabaseTest, RejectsDuplicateNames) {
  Database db("test");
  ASSERT_TRUE(db.AddRelation(Relation("a", 100, 100)).ok());
  EXPECT_EQ(db.AddRelation(Relation("a", 5, 5)).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, FindRelation) {
  Database db("test");
  ASSERT_TRUE(db.AddRelation(Relation("orders", 100, 100)).ok());
  auto found = db.FindRelation("orders");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name(), "orders");
  EXPECT_EQ(db.FindRelation("nope").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, TotalBytesAccumulates) {
  Database db("test");
  ASSERT_TRUE(db.AddRelation(Relation("a", 10, 100)).ok());
  ASSERT_TRUE(db.AddRelation(Relation("b", 20, 50)).ok());
  EXPECT_EQ(db.total_bytes(), 10u * 100u + 20u * 50u);
}

TEST(CostModelTest, ScanCostIsPageCount) {
  Relation r("t", 4096, 100);  // 4096*100 bytes = 100 pages
  EXPECT_EQ(CostModel::ScanCost(r), r.num_pages());
}

TEST(CostModelTest, ClusteredIndexScalesWithSelectivity) {
  Relation r("t", 40960, 100);  // 1000 pages
  const uint64_t full = CostModel::SelectCost(r, 1.0,
                                              AccessPath::kClusteredIndex);
  const uint64_t tenth = CostModel::SelectCost(r, 0.1,
                                               AccessPath::kClusteredIndex);
  EXPECT_GT(full, tenth);
  EXPECT_EQ(tenth, CostModel::kIndexDescentReads + 100);
}

TEST(CostModelTest, UnclusteredIndexCappedByScan) {
  Relation r("t", 40960, 100);  // 1000 pages, 40960 rows
  // selectivity high enough that row fetches would exceed a scan
  const uint64_t cost = CostModel::SelectCost(
      r, 0.5, AccessPath::kUnclusteredIndex);
  EXPECT_EQ(cost, CostModel::kIndexDescentReads + r.num_pages());
  // very selective: 41 rows
  const uint64_t cheap = CostModel::SelectCost(
      r, 0.001, AccessPath::kUnclusteredIndex);
  EXPECT_EQ(cheap, CostModel::kIndexDescentReads + 41);
}

TEST(CostModelTest, FullScanIgnoresSelectivity) {
  Relation r("t", 4096, 100);
  EXPECT_EQ(CostModel::SelectCost(r, 0.001, AccessPath::kFullScan),
            r.num_pages());
}

TEST(CostModelTest, SortAndAggregate) {
  EXPECT_EQ(CostModel::SortCost(100), 300u);
  EXPECT_EQ(CostModel::AggregateCost(100, /*pipelined=*/true), 0u);
  EXPECT_EQ(CostModel::AggregateCost(100, /*pipelined=*/false), 200u);
}

TEST(CostModelTest, IndexJoinBounded) {
  Relation inner("inner", 4096, 100);  // 100 pages
  const uint64_t few = CostModel::IndexJoinCost(10, inner, 1.0);
  EXPECT_EQ(few, 10u * (CostModel::kIndexDescentReads + 1));
  // Enormous outer is capped.
  const uint64_t capped = CostModel::IndexJoinCost(1000000, inner, 1.0);
  EXPECT_EQ(capped, 10 * inner.num_pages());
}

TEST(SchemaTest, TpcdTotalsNearPaperSize) {
  Database db = MakeTpcdDatabase();
  EXPECT_EQ(db.num_relations(), 8u);
  // Paper: 30 MB database (excluding indices).
  EXPECT_NEAR(static_cast<double>(db.total_bytes()), 30e6, 2e6);
  ASSERT_TRUE(db.FindRelation("lineitem").ok());
  ASSERT_TRUE(db.FindRelation("orders").ok());
}

TEST(SchemaTest, SetQueryTotalsNearPaperSize) {
  Database db = MakeSetQueryDatabase();
  EXPECT_EQ(db.num_relations(), 1u);
  // Paper: 100 MB database.
  EXPECT_NEAR(static_cast<double>(db.total_bytes()), 100e6, 2e6);
}

TEST(SchemaTest, BufferExperimentDatabaseMatchesPaperSetup) {
  Database db = MakeBufferExperimentDatabase();
  // Paper: 14 relations of total size 100 MB.
  EXPECT_EQ(db.num_relations(), 14u);
  EXPECT_NEAR(static_cast<double>(db.total_bytes()), 100e6, 3e6);
}

TEST(SchemaTest, LineitemDominatesTpcd) {
  Database db = MakeTpcdDatabase();
  auto lineitem = db.FindRelation("lineitem");
  ASSERT_TRUE(lineitem.ok());
  EXPECT_GT((*lineitem)->total_bytes() * 2, db.total_bytes());
}

}  // namespace
}  // namespace watchman
