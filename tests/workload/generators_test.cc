// Tests of the drill-down, multiclass and buffer-experiment generators.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "storage/schemas.h"
#include "workload/buffer_workload.h"
#include "workload/drilldown.h"
#include "workload/multiclass_workload.h"

namespace watchman {
namespace {

TEST(DrillDownTest, GeneratesRequestedLength) {
  DrillDownOptions opts;
  opts.num_queries = 1000;
  const Trace t = GenerateDrillDownTrace(opts);
  EXPECT_EQ(t.size(), 1000u);
}

TEST(DrillDownTest, ShallowLevelsRepeatDeepLevelsDoNot) {
  DrillDownOptions opts;
  opts.num_queries = 8000;
  const Trace t = GenerateDrillDownTrace(opts);
  // Count repeats per level (template_id = 200 + level).
  std::unordered_map<uint32_t, uint64_t> refs;
  std::unordered_map<uint32_t, std::unordered_set<std::string>> distinct;
  for (const QueryEvent& e : t) {
    ++refs[e.template_id];
    distinct[e.template_id].insert(e.query_id);
  }
  const double root_repeat =
      1.0 - static_cast<double>(distinct[200].size()) /
                static_cast<double>(refs[200]);
  const uint32_t deepest = 200 + opts.depth - 1;
  ASSERT_GT(refs[deepest], 0u);
  const double deep_repeat =
      1.0 - static_cast<double>(distinct[deepest].size()) /
                static_cast<double>(refs[deepest]);
  EXPECT_GT(root_repeat, 0.9);   // 12 roots referenced thousands of times
  EXPECT_LT(deep_repeat, 0.35);  // deep refinements rarely repeat
}

TEST(DrillDownTest, CostsShrinkAndResultsGrowWithDepth) {
  DrillDownOptions opts;
  opts.num_queries = 2000;
  const Trace t = GenerateDrillDownTrace(opts);
  std::unordered_map<uint32_t, QueryEvent> sample;
  for (const QueryEvent& e : t) sample.emplace(e.template_id, e);
  ASSERT_TRUE(sample.contains(200));
  ASSERT_TRUE(sample.contains(201));
  EXPECT_GT(sample[200].cost_block_reads, sample[201].cost_block_reads);
  EXPECT_LT(sample[200].result_bytes, sample[201].result_bytes);
}

TEST(DrillDownTest, DeterministicGivenSeed) {
  DrillDownOptions opts;
  opts.num_queries = 500;
  const Trace a = GenerateDrillDownTrace(opts);
  const Trace b = GenerateDrillDownTrace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query_id, b[i].query_id);
  }
}

TEST(MulticlassTest, MixesThreeClasses) {
  MulticlassOptions opts;
  opts.num_queries = 5000;
  const Trace t = GenerateMulticlassTrace(opts);
  std::unordered_map<uint32_t, uint64_t> per_class;
  for (const QueryEvent& e : t) ++per_class[e.query_class];
  EXPECT_EQ(per_class.size(), 3u);
  // Bursts emit 2-4 events per class-1 draw, so the burst class is
  // over-represented relative to its draw weight; the others shrink
  // proportionally. Expected class-1 inflation factor ~3.
  EXPECT_GT(per_class[1], per_class[0]);
  const double w_eff = opts.dashboard_weight /
                       (opts.dashboard_weight + 3.0 * opts.burst_weight +
                        opts.report_weight);
  EXPECT_NEAR(static_cast<double>(per_class[0]) / 5000.0, w_eff, 0.05);
}

TEST(MulticlassTest, BurstsAreConsecutiveAndUnrepeated) {
  MulticlassOptions opts;
  opts.num_queries = 6000;
  const Trace t = GenerateMulticlassTrace(opts);
  // Burst instances: every reference to a burst query is part of one
  // consecutive run (never re-referenced later).
  std::unordered_map<std::string, std::pair<size_t, size_t>> spans;
  std::unordered_map<std::string, uint64_t> counts;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].query_class != 1) continue;
    auto [it, inserted] = spans.try_emplace(t[i].query_id, i, i);
    if (!inserted) it->second.second = i;
    ++counts[t[i].query_id];
  }
  for (const auto& [id, span] : spans) {
    const uint64_t n = counts[id];
    // All n references of a burst lie within a window only as wide as
    // the interleaving allows; re-use after the burst never happens, so
    // the span is small.
    EXPECT_LE(span.second - span.first, n + 2u) << id;
  }
}

TEST(MulticlassTest, ReportsArePeriodic) {
  MulticlassOptions opts;
  opts.num_queries = 8000;
  const Trace t = GenerateMulticlassTrace(opts);
  // The report class cycles through its instances; each instance's
  // references are spaced by about a full tour.
  std::unordered_map<uint64_t, uint64_t> counts;
  uint64_t report_refs = 0;
  for (const QueryEvent& e : t) {
    if (e.query_class != 2) continue;
    ++counts[e.instance];
    ++report_refs;
  }
  ASSERT_GT(report_refs, 1000u);
  // Tours cover all instances nearly evenly.
  uint64_t min_c = ~uint64_t{0}, max_c = 0;
  for (const auto& [inst, c] : counts) {
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  EXPECT_LE(max_c - min_c, 1u);
}

TEST(BufferWorkloadTest, MatchesPaperScale) {
  Database db = MakeBufferExperimentDatabase();
  WorkloadMix mix = MakeBufferWorkload(db);
  TraceGenOptions opts;
  opts.num_queries = 2000;
  opts.seed = 3;
  const Trace t = mix.GenerateTrace(opts);
  // Page references scale to >1000 pages/query on average (paper: 17000
  // queries -> more than 26 million references).
  uint64_t total_pages = 0;
  for (const QueryEvent& e : t) {
    const QueryTemplate* tmpl = mix.FindTemplate(e.template_id);
    ASSERT_NE(tmpl, nullptr);
    for (const PageRange& r : tmpl->PageAccesses(e.instance)) {
      total_pages += r.size();
    }
  }
  EXPECT_GT(total_pages / t.size(), 700u);
}

TEST(BufferWorkloadTest, PageAccessesWithinDatabase) {
  Database db = MakeBufferExperimentDatabase();
  WorkloadMix mix = MakeBufferWorkload(db);
  for (size_t i = 0; i < mix.num_templates(); ++i) {
    const QueryTemplate& tmpl = mix.tmpl(i);
    for (uint64_t inst : {0ull, 123ull, 999999ull}) {
      for (const PageRange& r :
           tmpl.PageAccesses(inst % tmpl.instance_space())) {
        EXPECT_LT(r.begin, r.end);
        EXPECT_LE(r.end, db.total_pages());
      }
    }
  }
}

TEST(BufferWorkloadTest, RangeAccessesAreDeterministicPerInstance) {
  Database db = MakeBufferExperimentDatabase();
  WorkloadMix mix = MakeBufferWorkload(db);
  for (size_t i = 0; i < mix.num_templates(); ++i) {
    const QueryTemplate& tmpl = mix.tmpl(i);
    const uint64_t inst = 42 % tmpl.instance_space();
    EXPECT_EQ(tmpl.PageAccesses(inst), tmpl.PageAccesses(inst));
  }
}

TEST(BufferWorkloadTest, DetailJoinsTouchThreeRelations) {
  Database db = MakeBufferExperimentDatabase();
  WorkloadMix mix = MakeBufferWorkload(db);
  const QueryTemplate* detail = mix.FindTemplate(1);
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->PageAccesses(7).size(), 3u);
}

}  // namespace
}  // namespace watchman
