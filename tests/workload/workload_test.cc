// Tests of the workload layer: templates, mixes, trace generation and
// the benchmark workload definitions.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "storage/schemas.h"
#include "workload/query_template.h"
#include "workload/setquery_workload.h"
#include "workload/tpcd_workload.h"
#include "workload/workload_mix.h"

namespace watchman {
namespace {

ParamQueryTemplate::Spec BasicSpec() {
  ParamQueryTemplate::Spec spec;
  spec.name = "t";
  spec.instance_space = 100;
  spec.base_cost = 500;
  spec.cost_jitter = 0.1;
  spec.base_result_bytes = 1000;
  spec.result_log_spread = 0.5;
  return spec;
}

TEST(ParamQueryTemplateTest, PropertiesAreDeterministic) {
  ParamQueryTemplate t(1, BasicSpec());
  for (uint64_t inst : {0ull, 7ull, 99ull}) {
    const InstanceProperties a = t.Properties(inst);
    const InstanceProperties b = t.Properties(inst);
    EXPECT_EQ(a.result_bytes, b.result_bytes);
    EXPECT_EQ(a.cost_block_reads, b.cost_block_reads);
  }
}

TEST(ParamQueryTemplateTest, JitterStaysInBounds) {
  ParamQueryTemplate t(1, BasicSpec());
  for (uint64_t inst = 0; inst < 100; ++inst) {
    const InstanceProperties p = t.Properties(inst);
    EXPECT_GE(p.cost_block_reads, 450u);
    EXPECT_LE(p.cost_block_reads, 550u);
    // result in [1000*e^-0.5, 1000*e^0.5]
    EXPECT_GE(p.result_bytes, 606u);
    EXPECT_LE(p.result_bytes, 1649u);
  }
}

TEST(ParamQueryTemplateTest, DistinctInstancesDistinctText) {
  ParamQueryTemplate::Spec spec = BasicSpec();
  spec.text_template = "select x from t where p = %llu";
  ParamQueryTemplate t(1, spec);
  EXPECT_NE(t.QueryText(1), t.QueryText(2));
  EXPECT_EQ(t.QueryText(5), t.QueryText(5));
}

TEST(ParamQueryTemplateTest, ZeroJitterIsConstant) {
  ParamQueryTemplate::Spec spec = BasicSpec();
  spec.cost_jitter = 0.0;
  spec.result_log_spread = 0.0;
  ParamQueryTemplate t(1, spec);
  for (uint64_t inst = 0; inst < 20; ++inst) {
    EXPECT_EQ(t.Properties(inst).cost_block_reads, 500u);
    EXPECT_EQ(t.Properties(inst).result_bytes, 1000u);
  }
}

TEST(WorkloadMixTest, DrawsRespectWeights) {
  WorkloadMix mix("m");
  ParamQueryTemplate::Spec heavy = BasicSpec();
  heavy.name = "heavy";
  heavy.weight = 9.0;
  ParamQueryTemplate::Spec light = BasicSpec();
  light.name = "light";
  light.weight = 1.0;
  mix.Add(std::make_unique<ParamQueryTemplate>(1, heavy));
  mix.Add(std::make_unique<ParamQueryTemplate>(2, light));
  Rng rng(5);
  int heavy_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (mix.DrawQuery(&rng).template_index == 0) ++heavy_count;
  }
  EXPECT_NEAR(heavy_count, n * 0.9, n * 0.02);
}

TEST(WorkloadMixTest, FindTemplateById) {
  WorkloadMix mix("m");
  mix.Add(std::make_unique<ParamQueryTemplate>(42, BasicSpec()));
  EXPECT_NE(mix.FindTemplate(42), nullptr);
  EXPECT_EQ(mix.FindTemplate(41), nullptr);
}

TEST(WorkloadMixTest, TraceIsDeterministicGivenSeed) {
  WorkloadMix mix("m");
  mix.Add(std::make_unique<ParamQueryTemplate>(1, BasicSpec()));
  TraceGenOptions opts;
  opts.num_queries = 200;
  opts.seed = 99;
  const Trace a = mix.GenerateTrace(opts);
  const Trace b = mix.GenerateTrace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].query_id, b[i].query_id);
    EXPECT_EQ(a[i].cost_block_reads, b[i].cost_block_reads);
  }
  opts.seed = 100;
  const Trace c = mix.GenerateTrace(opts);
  bool any_different = false;
  for (size_t i = 0; i < a.size() && !any_different; ++i) {
    any_different = a[i].query_id != c[i].query_id;
  }
  EXPECT_TRUE(any_different);
}

TEST(WorkloadMixTest, TimestampsStrictlyIncrease) {
  WorkloadMix mix("m");
  mix.Add(std::make_unique<ParamQueryTemplate>(1, BasicSpec()));
  TraceGenOptions opts;
  opts.num_queries = 500;
  const Trace t = mix.GenerateTrace(opts);
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i].timestamp, t[i - 1].timestamp);
  }
}

TEST(WorkloadMixTest, RepeatProbabilityCreatesBursts) {
  WorkloadMix mix("m");
  ParamQueryTemplate::Spec spec = BasicSpec();
  spec.instance_space = 1000000;  // repeats only come from bursts
  mix.Add(std::make_unique<ParamQueryTemplate>(1, spec));
  TraceGenOptions opts;
  opts.num_queries = 2000;
  opts.repeat_probability = 0.3;
  const Trace t = mix.GenerateTrace(opts);
  size_t immediate_repeats = 0;
  for (size_t i = 1; i < t.size(); ++i) {
    if (t[i].query_id == t[i - 1].query_id) ++immediate_repeats;
  }
  EXPECT_NEAR(static_cast<double>(immediate_repeats), 600.0, 90.0);
}

TEST(WorkloadMixTest, SameInstanceSameEventProperties) {
  WorkloadMix mix("m");
  mix.Add(std::make_unique<ParamQueryTemplate>(1, BasicSpec()));
  const QueryEvent a = mix.MakeEvent(0, 17, 1000);
  const QueryEvent b = mix.MakeEvent(0, 17, 2000);
  EXPECT_EQ(a.query_id, b.query_id);
  EXPECT_EQ(a.result_bytes, b.result_bytes);
  EXPECT_EQ(a.cost_block_reads, b.cost_block_reads);
  EXPECT_NE(a.timestamp, b.timestamp);
}

// ------------------------------------------------------ TPC-D workload

class TpcdWorkloadTest : public testing::Test {
 protected:
  TpcdWorkloadTest() : db_(MakeTpcdDatabase()), mix_(MakeTpcdWorkload(db_)) {}
  Database db_;
  WorkloadMix mix_;
};

TEST_F(TpcdWorkloadTest, HasSeventeenTemplates) {
  // The paper excludes the two update templates and uses the other 17.
  EXPECT_EQ(mix_.num_templates(), 17u);
}

TEST_F(TpcdWorkloadTest, InstanceSpacesSpanOrdersOfMagnitude) {
  uint64_t min_space = ~uint64_t{0};
  uint64_t max_space = 0;
  for (size_t i = 0; i < mix_.num_templates(); ++i) {
    min_space = std::min(min_space, mix_.tmpl(i).instance_space());
    max_space = std::max(max_space, mix_.tmpl(i).instance_space());
  }
  EXPECT_LE(min_space, 100u);          // high summarization levels
  EXPECT_GE(max_space, 1000000000u);   // effectively never repeats
}

TEST_F(TpcdWorkloadTest, AllTemplatesJoinHeavy) {
  // Every TPC-D query template performs joins / relation scans: costs
  // are at least several hundred block reads.
  for (size_t i = 0; i < mix_.num_templates(); ++i) {
    const InstanceProperties p = mix_.tmpl(i).Properties(0);
    EXPECT_GT(p.cost_block_reads, 500u) << mix_.tmpl(i).name();
  }
}

TEST_F(TpcdWorkloadTest, ResultsAreSmallRelativeToDatabase) {
  for (size_t i = 0; i < mix_.num_templates(); ++i) {
    const InstanceProperties p = mix_.tmpl(i).Properties(3);
    EXPECT_LT(p.result_bytes, db_.total_bytes() / 100)
        << mix_.tmpl(i).name();
  }
}

TEST_F(TpcdWorkloadTest, TraceHasDrillDownLocality) {
  TraceGenOptions opts;
  opts.num_queries = 17000;
  opts.seed = 1;
  const Trace trace = mix_.GenerateTrace(opts);
  const TraceSummary s = trace.Summarize();
  // High reference locality (paper Figure 2 discussion).
  EXPECT_GT(s.max_hit_ratio, 0.6);
  EXPECT_GT(s.max_cost_savings_ratio, 0.6);
  // But thousands of queries never repeat.
  EXPECT_GT(s.num_distinct_queries, 3000u);
}

TEST_F(TpcdWorkloadTest, QueryIdsAreCompressed) {
  TraceGenOptions opts;
  opts.num_queries = 50;
  const Trace trace = mix_.GenerateTrace(opts);
  for (const QueryEvent& e : trace) {
    EXPECT_EQ(e.query_id.find(' '), std::string::npos);
    EXPECT_EQ(e.query_id.find('('), std::string::npos);
  }
}

// -------------------------------------------------- Set Query workload

class SetQueryWorkloadTest : public testing::Test {
 protected:
  SetQueryWorkloadTest()
      : db_(MakeSetQueryDatabase()), mix_(MakeSetQueryWorkload(db_)) {}
  Database db_;
  WorkloadMix mix_;
};

TEST_F(SetQueryWorkloadTest, HasSixTemplateFamilies) {
  EXPECT_EQ(mix_.num_templates(), 6u);
}

TEST_F(SetQueryWorkloadTest, CostDistributionMoreSkewedThanTpcd) {
  // Paper: "the distribution of query execution costs is more skewed in
  // the Set Query benchmark" -- expensive scans coexist with cheap
  // index-based selections.
  TraceGenOptions opts;
  opts.num_queries = 5000;
  const Trace trace = mix_.GenerateTrace(opts);
  const TraceSummary s = trace.Summarize();
  EXPECT_GT(s.max_cost, 100u * s.min_cost);
}

TEST_F(SetQueryWorkloadTest, CountQueriesReturnTinyResults) {
  const QueryTemplate* counts = mix_.FindTemplate(1);
  ASSERT_NE(counts, nullptr);
  for (uint64_t inst = 0; inst < counts->instance_space(); inst += 13) {
    EXPECT_LE(counts->Properties(inst).result_bytes, 64u);
  }
}

TEST_F(SetQueryWorkloadTest, CountCostsDependOnColumnCardinality) {
  const QueryTemplate* counts = mix_.FindTemplate(1);
  ASSERT_NE(counts, nullptr);
  // Instance 0 is a K2 count (full scan); the last instances are K100
  // counts (index-assisted, cheaper).
  const uint64_t coarse = counts->Properties(0).cost_block_reads;
  const uint64_t fine =
      counts->Properties(counts->instance_space() - 1).cost_block_reads;
  EXPECT_GT(coarse, fine);
}

TEST_F(SetQueryWorkloadTest, TraceMatchesPaperInfiniteCacheShape) {
  TraceGenOptions opts;
  opts.num_queries = 17000;
  opts.seed = 9602;
  const Trace trace = mix_.GenerateTrace(opts);
  const TraceSummary s = trace.Summarize();
  // Paper Figure 2: CSR 0.92, HR 0.65, 16.1 MB distinct result bytes.
  EXPECT_NEAR(s.max_cost_savings_ratio, 0.92, 0.04);
  EXPECT_NEAR(s.max_hit_ratio, 0.65, 0.05);
  EXPECT_NEAR(static_cast<double>(s.distinct_result_bytes), 16.1e6, 4e6);
}

}  // namespace
}  // namespace watchman
