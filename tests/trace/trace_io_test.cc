#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/random.h"

namespace watchman {
namespace {

Trace MakeTrace(size_t n, uint64_t seed) {
  Rng rng(seed);
  Trace t;
  t.set_name("roundtrip");
  Timestamp now = 0;
  for (size_t i = 0; i < n; ++i) {
    now += rng.NextBounded(1000) + 1;
    QueryEvent e;
    e.timestamp = now;
    e.query_id = "query\x1fnumber\x1f" + std::to_string(rng.NextBounded(50));
    e.result_bytes = rng.NextBounded(1 << 20);
    e.cost_block_reads = rng.NextBounded(100000);
    e.template_id = static_cast<TemplateId>(rng.NextBounded(20));
    e.instance = rng.Next();
    e.query_class = static_cast<uint32_t>(rng.NextBounded(3));
    EXPECT_TRUE(t.Append(std::move(e)).ok());
  }
  return t;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(TraceIoTest, BinaryRoundTripPreservesEverything) {
  const Trace original = MakeTrace(500, 77);
  const std::string path = TempPath("trace_roundtrip.wtrc");
  ASSERT_TRUE(WriteTraceBinary(original, path).ok());

  StatusOr<Trace> loaded = ReadTraceBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->name(), original.name());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].timestamp, original[i].timestamp);
    EXPECT_EQ((*loaded)[i].query_id, original[i].query_id);
    EXPECT_EQ((*loaded)[i].result_bytes, original[i].result_bytes);
    EXPECT_EQ((*loaded)[i].cost_block_reads, original[i].cost_block_reads);
    EXPECT_EQ((*loaded)[i].template_id, original[i].template_id);
    EXPECT_EQ((*loaded)[i].instance, original[i].instance);
    EXPECT_EQ((*loaded)[i].query_class, original[i].query_class);
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.set_name("empty");
  const std::string path = TempPath("trace_empty.wtrc");
  ASSERT_TRUE(WriteTraceBinary(empty, path).ok());
  StatusOr<Trace> loaded = ReadTraceBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->name(), "empty");
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileFails) {
  StatusOr<Trace> loaded = ReadTraceBinary("/nonexistent/file.wtrc");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(TraceIoTest, BadMagicDetected) {
  const std::string path = TempPath("trace_bad_magic.wtrc");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOPE and some more bytes to make it non-trivial";
  }
  StatusOr<Trace> loaded = ReadTraceBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceIoTest, TruncationDetected) {
  const Trace original = MakeTrace(50, 99);
  const std::string path = TempPath("trace_trunc.wtrc");
  ASSERT_TRUE(WriteTraceBinary(original, path).ok());
  // Truncate the file by a few bytes.
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() - 7));
  }
  StatusOr<Trace> loaded = ReadTraceBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceIoTest, TrailingGarbageDetected) {
  const Trace original = MakeTrace(10, 3);
  const std::string path = TempPath("trace_trailing.wtrc");
  ASSERT_TRUE(WriteTraceBinary(original, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  StatusOr<Trace> loaded = ReadTraceBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceIoTest, CsvExportHasHeaderAndRows) {
  const Trace original = MakeTrace(20, 5);
  const std::string path = TempPath("trace_export.csv");
  ASSERT_TRUE(WriteTraceCsv(original, path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "timestamp,query_id,result_bytes,cost_block_reads,template_id,"
            "instance,class");
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    // Separator characters must have been made printable.
    EXPECT_EQ(line.find('\x1f'), std::string::npos);
  }
  EXPECT_EQ(rows, 20);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace watchman
