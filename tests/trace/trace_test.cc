#include "trace/trace.h"

#include <gtest/gtest.h>

namespace watchman {
namespace {

QueryEvent Ev(Timestamp t, const std::string& id, uint64_t bytes,
              uint64_t cost) {
  QueryEvent e;
  e.timestamp = t;
  e.query_id = id;
  e.result_bytes = bytes;
  e.cost_block_reads = cost;
  return e;
}

TEST(TraceTest, AppendKeepsOrder) {
  Trace t;
  EXPECT_TRUE(t.Append(Ev(1, "a", 10, 5)).ok());
  EXPECT_TRUE(t.Append(Ev(2, "b", 10, 5)).ok());
  EXPECT_TRUE(t.Append(Ev(2, "c", 10, 5)).ok());  // equal timestamps fine
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].query_id, "a");
  EXPECT_EQ(t[2].query_id, "c");
}

TEST(TraceTest, RejectsDecreasingTimestamps) {
  Trace t;
  ASSERT_TRUE(t.Append(Ev(5, "a", 10, 5)).ok());
  Status st = t.Append(Ev(4, "b", 10, 5));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceTest, RejectsEmptyQueryId) {
  Trace t;
  EXPECT_EQ(t.Append(Ev(1, "", 10, 5)).code(),
            StatusCode::kInvalidArgument);
}

TEST(TraceTest, EmptySummary) {
  Trace t;
  TraceSummary s = t.Summarize();
  EXPECT_EQ(s.num_events, 0u);
  EXPECT_EQ(s.num_distinct_queries, 0u);
  EXPECT_DOUBLE_EQ(s.max_cost_savings_ratio, 0.0);
}

TEST(TraceTest, SummaryCountsDistinctAndRepeats) {
  Trace t;
  ASSERT_TRUE(t.Append(Ev(1, "a", 100, 10)).ok());
  ASSERT_TRUE(t.Append(Ev(2, "b", 200, 30)).ok());
  ASSERT_TRUE(t.Append(Ev(3, "a", 100, 10)).ok());
  ASSERT_TRUE(t.Append(Ev(4, "a", 100, 10)).ok());
  TraceSummary s = t.Summarize();
  EXPECT_EQ(s.num_events, 4u);
  EXPECT_EQ(s.num_distinct_queries, 2u);
  EXPECT_EQ(s.repeat_references, 2u);
  EXPECT_EQ(s.distinct_result_bytes, 300u);
  EXPECT_EQ(s.total_cost, 60u);
  EXPECT_EQ(s.repeat_cost, 20u);
  EXPECT_DOUBLE_EQ(s.max_cost_savings_ratio, 20.0 / 60.0);
  EXPECT_DOUBLE_EQ(s.max_hit_ratio, 0.5);
}

TEST(TraceTest, SummaryMinMaxMean) {
  Trace t;
  ASSERT_TRUE(t.Append(Ev(1, "a", 100, 10)).ok());
  ASSERT_TRUE(t.Append(Ev(9, "b", 300, 50)).ok());
  TraceSummary s = t.Summarize();
  EXPECT_EQ(s.min_result_bytes, 100u);
  EXPECT_EQ(s.max_result_bytes, 300u);
  EXPECT_DOUBLE_EQ(s.mean_result_bytes, 200.0);
  EXPECT_EQ(s.min_cost, 10u);
  EXPECT_EQ(s.max_cost, 50u);
  EXPECT_DOUBLE_EQ(s.mean_cost, 30.0);
  EXPECT_EQ(s.first_timestamp, 1u);
  EXPECT_EQ(s.last_timestamp, 9u);
}

TEST(TraceTest, PrefixCopiesLeadingEvents) {
  Trace t;
  t.set_name("full");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Append(Ev(i + 1, "q" + std::to_string(i), 8, 1)).ok());
  }
  Trace p = t.Prefix(3);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.name(), "full");
  EXPECT_EQ(p[2].query_id, "q2");
  // Prefix longer than trace returns whole trace.
  EXPECT_EQ(t.Prefix(100).size(), 10u);
}

TEST(TraceTest, IterationVisitsAllEvents) {
  Trace t;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.Append(Ev(i, "q" + std::to_string(i), 8, 1)).ok());
  }
  int count = 0;
  for (const QueryEvent& e : t) {
    EXPECT_EQ(e.query_id, "q" + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace watchman
