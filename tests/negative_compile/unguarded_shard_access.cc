// MUST NOT COMPILE under -Werror=thread-safety (see README.md).
//
// Simulates deleting the MutexLock from an annotated ShardedQueryCache
// accessor: the probe (a friend of the cache, declared exactly for this
// harness) reads the GUARDED_BY(mu) shard state without holding mu.
// Expected diagnostic: "reading variable 'cache' requires holding
// mutex 'shard.mu'".

#include "cache/sharded_query_cache.h"

namespace watchman {

class ShardedQueryCacheUnguardedProbe {
 public:
  static const QueryCache* Peek(const ShardedQueryCache& sharded) {
    const ShardedQueryCache::Shard& shard = *sharded.shards_[0];
    // Deliberately NO MutexLock lock(shard.mu) here.
    return shard.cache.get();
  }
};

const QueryCache* DriveProbe(const ShardedQueryCache& sharded) {
  return ShardedQueryCacheUnguardedProbe::Peek(sharded);
}

}  // namespace watchman
