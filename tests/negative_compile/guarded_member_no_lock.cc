// MUST NOT COMPILE under -Werror=thread-safety (see README.md).
//
// Gate sanity check with no repo types beyond util/mutex.h: reading a
// GUARDED_BY member without holding its Mutex must be rejected. If this
// TU ever compiles, the annotation macros are expanding to nothing
// under a compiler the harness believed was Clang.

#include "util/mutex.h"

namespace {

struct Guarded {
  watchman::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

int ReadWithoutLock(Guarded& g) {
  return g.value;  // no MutexLock -> -Wthread-safety-analysis error
}

}  // namespace

int Drive(Guarded& g) { return ReadWithoutLock(g); }
