// MUST NOT COMPILE under -Werror=thread-safety (see README.md).
//
// The ThreadRole capability is how the server marks IO-thread-only
// state (Server::admission_, conns_, ...): code running without a
// ThreadRoleGrant -- i.e. worker-side code -- must fail to compile when
// it touches role-guarded state. This TU models exactly that misuse.

#include "util/mutex.h"

namespace {

watchman::ThreadRole io_role;
int io_confined_state GUARDED_BY(io_role) = 0;

void WorkerSideTouch() {
  // No ThreadRoleGrant in scope -> -Wthread-safety-analysis error.
  io_confined_state += 1;
}

}  // namespace

void Drive() { WorkerSideTouch(); }
