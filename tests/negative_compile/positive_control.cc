// MUST COMPILE cleanly under -Werror=thread-safety (see README.md).
//
// The same shard access as unguarded_shard_access.cc, but holding the
// shard mutex through MutexLock. If this TU fails, the negative tests
// are failing for the wrong reason (includes, flags), not because the
// analysis caught the missing lock.

#include "cache/sharded_query_cache.h"

namespace watchman {

class ShardedQueryCacheUnguardedProbe {
 public:
  static const QueryCache* Peek(const ShardedQueryCache& sharded) {
    const ShardedQueryCache::Shard& shard = *sharded.shards_[0];
    MutexLock lock(shard.mu);
    return shard.cache.get();
  }
};

const QueryCache* DriveProbe(const ShardedQueryCache& sharded) {
  return ShardedQueryCacheUnguardedProbe::Peek(sharded);
}

}  // namespace watchman
