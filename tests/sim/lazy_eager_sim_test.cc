// Differential of the lazy LNC implementation against the eager
// reference implementation on the fig4/fig5 workload: the paper-level
// metrics (cost savings ratio, hit ratio) must agree within a tight
// documented tolerance across cache sizes, for both LNC-R and LNC-RA.
//
// Individual victim choices are allowed to differ -- lazy aging ranks
// un-walked entries by their last-evaluated profit while the eager
// implementation re-ages every key within its sweep horizon; both
// approximate the paper's decision-time ideal -- so this test pins the
// metrics the paper reports, not the decision stream (the decision
// stream of the lazy semantics itself is verified exactly against a
// brute-force model in tests/cache/lazy_profit_test.cc).

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/simulator.h"
#include "storage/schemas.h"
#include "workload/tpcd_workload.h"

namespace watchman {
namespace {

/// Documented tolerance, calibrated over six trace seeds (see the
/// PR's knob sweep): lazy minus eager CSR/HR is within [-0.035, +0.02]
/// for LNC-RA at every size, and within [-0.035, +0.10] for LNC-R --
/// the upper excursion is systematic and in lazy's favour (ranking by
/// profit-at-last-reference retains once-hot sets longer, which helps
/// LNC-R at mid cache sizes on TPC-D; LNC-A admission mostly cancels
/// the effect). The floor is what matters for "holds the paper's
/// results": lazy never degrades a figure by more than 0.035 absolute.
constexpr double kDegradationTolerance = 0.035;
constexpr double kImprovementToleranceRa = 0.02;
constexpr double kImprovementToleranceR = 0.10;

struct TpcdSetup {
  Database db;
  Trace trace;
};

const TpcdSetup& TpcdFixture() {
  static const TpcdSetup* setup = [] {
    auto* s = new TpcdSetup{MakeTpcdDatabase(), Trace{}};
    WorkloadMix mix = MakeTpcdWorkload(s->db);
    TraceGenOptions opts;
    opts.num_queries = 4000;
    opts.seed = 20260730;
    s->trace = mix.GenerateTrace(opts);
    return s;
  }();
  return *setup;
}

class LazyEagerSimTest
    : public testing::TestWithParam<std::pair<PolicyKind, double>> {};

TEST_P(LazyEagerSimTest, Fig4Fig5MetricsMatchEagerWithinTolerance) {
  const auto [kind, cache_percent] = GetParam();
  const TpcdSetup& setup = TpcdFixture();
  const uint64_t capacity = static_cast<uint64_t>(
      static_cast<double>(setup.db.total_bytes()) * cache_percent / 100.0);

  PolicyConfig lazy;
  lazy.kind = kind;
  lazy.k = 4;
  PolicyConfig eager = lazy;
  eager.lnc_eager_profits = true;

  const RunResult lazy_result =
      RunSimulation(setup.trace, lazy, capacity);
  const RunResult eager_result =
      RunSimulation(setup.trace, eager, capacity);

  std::printf("  %-12s %4.1f%%: CSR lazy %.4f eager %.4f (d=%+.4f)  "
              "HR lazy %.4f eager %.4f (d=%+.4f)\n",
              lazy_result.policy_name.c_str(), cache_percent,
              lazy_result.cost_savings_ratio,
              eager_result.cost_savings_ratio,
              lazy_result.cost_savings_ratio -
                  eager_result.cost_savings_ratio,
              lazy_result.hit_ratio, eager_result.hit_ratio,
              lazy_result.hit_ratio - eager_result.hit_ratio);

  const double improvement_tolerance = kind == PolicyKind::kLncRA
                                           ? kImprovementToleranceRa
                                           : kImprovementToleranceR;
  // Figure 4 metric: cost savings ratio.
  EXPECT_GE(lazy_result.cost_savings_ratio,
            eager_result.cost_savings_ratio - kDegradationTolerance);
  EXPECT_LE(lazy_result.cost_savings_ratio,
            eager_result.cost_savings_ratio + improvement_tolerance);
  // Figure 5 metric: hit ratio.
  EXPECT_GE(lazy_result.hit_ratio,
            eager_result.hit_ratio - kDegradationTolerance);
  EXPECT_LE(lazy_result.hit_ratio,
            eager_result.hit_ratio + improvement_tolerance);
  // Sanity: both runs actually exercised replacement.
  EXPECT_GT(lazy_result.stats.evictions + lazy_result.stats.admission_rejections, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSizes, LazyEagerSimTest,
    testing::Values(std::make_pair(PolicyKind::kLncR, 0.5),
                    std::make_pair(PolicyKind::kLncR, 2.0),
                    std::make_pair(PolicyKind::kLncRA, 0.5),
                    std::make_pair(PolicyKind::kLncRA, 2.0),
                    std::make_pair(PolicyKind::kLncRA, 5.0)));

}  // namespace
}  // namespace watchman
