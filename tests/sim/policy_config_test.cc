// ParsePolicy / PolicyName tests, including the round-trip property the
// watchmand --policy flag depends on: every name PolicyName() can emit
// must parse back to an equivalent config.

#include "sim/policy_config.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace watchman {
namespace {

constexpr PolicyKind kAllKinds[] = {
    PolicyKind::kLru, PolicyKind::kLruK,  PolicyKind::kLfu,
    PolicyKind::kLcs, PolicyKind::kGds,   PolicyKind::kLncR,
    PolicyKind::kLncRA, PolicyKind::kInfinite,
};

bool UsesK(PolicyKind kind) {
  return kind == PolicyKind::kLruK || kind == PolicyKind::kLncR ||
         kind == PolicyKind::kLncRA;
}

TEST(PolicyConfigTest, ParsePolicyPolicyNameRoundTripsEveryKindAndK) {
  for (PolicyKind kind : kAllKinds) {
    for (size_t k : {1, 2, 3, 4, 8, 16, 100}) {
      PolicyConfig config;
      config.kind = kind;
      config.k = k;
      const std::string name = PolicyName(config);
      auto parsed = ParsePolicy(name);
      ASSERT_TRUE(parsed.ok())
          << name << ": " << parsed.status().ToString();
      EXPECT_EQ(parsed->kind, kind) << name;
      if (UsesK(kind)) {
        EXPECT_EQ(parsed->k, k) << name;
      }
      // And the parse result names itself identically (fixed point).
      EXPECT_EQ(PolicyName(*parsed), UsesK(kind) ? name : PolicyName(config))
          << name;
    }
  }
}

TEST(PolicyConfigTest, BareNamesKeepTheirDefaults) {
  const PolicyConfig defaults;
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, PolicyKind>>{
           {"lru", PolicyKind::kLru},
           {"lru-k", PolicyKind::kLruK},
           {"lfu", PolicyKind::kLfu},
           {"lcs", PolicyKind::kLcs},
           {"gds", PolicyKind::kGds},
           {"lnc-r", PolicyKind::kLncR},
           {"lnc-ra", PolicyKind::kLncRA},
           {"inf", PolicyKind::kInfinite}}) {
    auto parsed = ParsePolicy(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed->kind, kind) << name;
    EXPECT_EQ(parsed->k, defaults.k) << name;
  }
}

TEST(PolicyConfigTest, ParameterizedFormsSetK) {
  auto lru7 = ParsePolicy("lru-7");
  ASSERT_TRUE(lru7.ok());
  EXPECT_EQ(lru7->kind, PolicyKind::kLruK);
  EXPECT_EQ(lru7->k, 7u);

  auto lnc_r2 = ParsePolicy("lnc-r(k=2)");
  ASSERT_TRUE(lnc_r2.ok());
  EXPECT_EQ(lnc_r2->kind, PolicyKind::kLncR);
  EXPECT_EQ(lnc_r2->k, 2u);

  auto lnc_ra16 = ParsePolicy("lnc-ra(k=16)");
  ASSERT_TRUE(lnc_ra16.ok());
  EXPECT_EQ(lnc_ra16->kind, PolicyKind::kLncRA);
  EXPECT_EQ(lnc_ra16->k, 16u);
}

TEST(PolicyConfigTest, MalformedNamesAreRejected) {
  for (const char* raw :
       {"", "bogus", "lru-", "lru-0", "lru-x", "lru-2x", "lru-4.5",
        "lru-9999999",  // > 6 digits
        "lnc-ra(", "lnc-ra()", "lnc-ra(k=)", "lnc-ra(k=0)", "lnc-ra(k=4",
        "lnc-ra(j=4)", "lnc-ra(k=4))", "lnc-rak=4)", "lnc-x(k=4)",
        "lfu(k=4)", "gds(k=2)", "inf(k=1)", "lru(k=3)", "LRU", "lnc-RA"}) {
    const std::string name(raw);
    auto parsed = ParsePolicy(name);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << name;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << name;
    }
  }
}

}  // namespace
}  // namespace watchman
