// Tests of the policy factory, simulator and experiment harness.

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/policy_config.h"
#include "sim/simulator.h"
#include "storage/schemas.h"
#include "workload/tpcd_workload.h"

namespace watchman {
namespace {

Trace SmallTpcdTrace() {
  static const Trace trace = [] {
    Database db = MakeTpcdDatabase();
    WorkloadMix mix = MakeTpcdWorkload(db);
    TraceGenOptions opts;
    opts.num_queries = 3000;
    opts.seed = 123;
    return mix.GenerateTrace(opts);
  }();
  return trace;
}

TEST(PolicyConfigTest, NamesAreStable) {
  EXPECT_EQ(PolicyName({PolicyKind::kLru}), "lru");
  EXPECT_EQ(PolicyName({PolicyKind::kLruK, 2}), "lru-2");
  EXPECT_EQ(PolicyName({PolicyKind::kLfu}), "lfu");
  EXPECT_EQ(PolicyName({PolicyKind::kLcs}), "lcs");
  EXPECT_EQ(PolicyName({PolicyKind::kGds}), "gds");
  EXPECT_EQ(PolicyName({PolicyKind::kLncR, 4}), "lnc-r(k=4)");
  EXPECT_EQ(PolicyName({PolicyKind::kLncRA, 4}), "lnc-ra(k=4)");
  EXPECT_EQ(PolicyName({PolicyKind::kInfinite}), "inf");
}

TEST(PolicyConfigTest, FactoryProducesEveryKind) {
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kLruK, PolicyKind::kLfu,
        PolicyKind::kLcs, PolicyKind::kGds, PolicyKind::kLncR,
        PolicyKind::kLncRA, PolicyKind::kInfinite}) {
    PolicyConfig config;
    config.kind = kind;
    auto cache = MakeCache(config, 1 << 20);
    ASSERT_NE(cache, nullptr);
    if (kind == PolicyKind::kInfinite) {
      // The infinite cache is an unbounded LRU under the hood.
      EXPECT_EQ(cache->name(), "lru");
      EXPECT_GT(cache->capacity_bytes(), uint64_t{1} << 60);
    } else {
      EXPECT_EQ(cache->name(), PolicyName(config));
    }
  }
}

TEST(PolicyConfigTest, ParseRoundTrip) {
  for (const char* name :
       {"lru", "lru-k", "lfu", "lcs", "gds", "lnc-r", "lnc-ra", "inf"}) {
    auto parsed = ParsePolicy(name);
    ASSERT_TRUE(parsed.ok()) << name;
  }
  EXPECT_FALSE(ParsePolicy("bogus").ok());
}

TEST(SimulatorTest, InfiniteCacheNeverMissesRepeats) {
  const Trace trace = SmallTpcdTrace();
  PolicyConfig inf;
  inf.kind = PolicyKind::kInfinite;
  const RunResult r = RunSimulation(trace, inf, 1);
  const TraceSummary s = trace.Summarize();
  EXPECT_DOUBLE_EQ(r.hit_ratio, s.max_hit_ratio);
  EXPECT_DOUBLE_EQ(r.cost_savings_ratio, s.max_cost_savings_ratio);
}

TEST(SimulatorTest, BiggerCacheNeverHurtsLnc) {
  const Trace trace = SmallTpcdTrace();
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  const RunResult small = RunSimulation(trace, config, 50 << 10);
  const RunResult large = RunSimulation(trace, config, 2 << 20);
  EXPECT_GE(large.cost_savings_ratio, small.cost_savings_ratio);
}

TEST(SimulatorTest, MetricsWithinBounds) {
  const Trace trace = SmallTpcdTrace();
  for (PolicyKind kind : {PolicyKind::kLru, PolicyKind::kLncR,
                          PolicyKind::kLncRA, PolicyKind::kGds}) {
    PolicyConfig config;
    config.kind = kind;
    const RunResult r = RunSimulation(trace, config, 200 << 10);
    EXPECT_GE(r.cost_savings_ratio, 0.0);
    EXPECT_LE(r.cost_savings_ratio, 1.0);
    EXPECT_GE(r.hit_ratio, 0.0);
    EXPECT_LE(r.hit_ratio, 1.0);
    EXPECT_GE(r.external_fragmentation, 0.0);
    EXPECT_LE(r.external_fragmentation, 1.0);
    EXPECT_NEAR(r.used_space_fraction + r.external_fragmentation, 1.0,
                1e-12);
  }
}

TEST(SimulatorTest, DeterministicResults) {
  const Trace trace = SmallTpcdTrace();
  PolicyConfig config;
  config.kind = PolicyKind::kLncRA;
  const RunResult a = RunSimulation(trace, config, 100 << 10);
  const RunResult b = RunSimulation(trace, config, 100 << 10);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  EXPECT_EQ(a.stats.evictions, b.stats.evictions);
  EXPECT_DOUBLE_EQ(a.external_fragmentation, b.external_fragmentation);
}

TEST(ExperimentTest, SweepProducesAllCells) {
  const Trace trace = SmallTpcdTrace();
  CacheSizeSweep sweep(trace, 30 << 20);
  sweep.AddPolicy({PolicyKind::kLncRA});
  sweep.AddPolicy({PolicyKind::kLru});
  sweep.AddCachePercent(0.5);
  sweep.AddCachePercent(1.0);
  sweep.AddCachePercent(2.0);
  sweep.Run();
  EXPECT_EQ(sweep.cells().size(), 6u);
  const ResultTable csr = sweep.CsrTable();
  EXPECT_EQ(csr.num_rows(), 2u);
  EXPECT_EQ(csr.num_cols(), 4u);  // label + 3 sizes
}

TEST(ExperimentTest, RatioVersusBaseline) {
  const Trace trace = SmallTpcdTrace();
  CacheSizeSweep sweep(trace, 30 << 20);
  sweep.AddPolicy({PolicyKind::kLncRA});
  sweep.AddPolicy({PolicyKind::kLru});
  sweep.AddCachePercent(0.5);
  sweep.Run();
  const auto ratios = sweep.CsrRatioVersus("lru");
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_GT(ratios[0], 1.0);  // LNC-RA beats LRU on the TPC-D trace
}

TEST(ExperimentTest, SweepKReturnsOneResultPerK) {
  const Trace trace = SmallTpcdTrace();
  const auto results =
      SweepK(trace, PolicyKind::kLncRA, {1, 2, 4}, 150 << 10);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].policy_name, "lnc-ra(k=1)");
  EXPECT_EQ(results[2].policy_name, "lnc-ra(k=4)");
}

}  // namespace
}  // namespace watchman
