// Set Query scenario: skewed execution costs and admission control.
//
// The Set Query trace mixes very expensive full-scan counts (tiny
// results) with inexpensive index selections (large results). This
// example shows why a cost/size-oblivious policy struggles: it tracks,
// per template family, how often LNC-A rejects the family's retrieved
// sets, and contrasts the resulting cost savings with vanilla LRU.

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "cache/lnc_cache.h"
#include "cache/lru_cache.h"
#include "cache/query_descriptor.h"
#include "storage/schemas.h"
#include "util/string_util.h"
#include "util/table.h"
#include "workload/setquery_workload.h"

using namespace watchman;

int main() {
  Database db = MakeSetQueryDatabase();
  WorkloadMix mix = MakeSetQueryWorkload(db);
  TraceGenOptions gen;
  gen.num_queries = 17000;
  gen.seed = 4711;
  const Trace trace = mix.GenerateTrace(gen);

  std::printf("Set Query BENCH relation: %s\n",
              HumanBytes(db.total_bytes()).c_str());

  // Cost skew across the families.
  std::map<TemplateId, std::pair<uint64_t, uint64_t>> cost_minmax;
  for (const QueryEvent& e : trace) {
    auto [it, inserted] = cost_minmax.try_emplace(
        e.template_id, e.cost_block_reads, e.cost_block_reads);
    it->second.first = std::min(it->second.first, e.cost_block_reads);
    it->second.second = std::max(it->second.second, e.cost_block_reads);
  }
  std::printf("cost skew across families: min %llu, max %llu block "
              "reads\n\n",
              static_cast<unsigned long long>(
                  cost_minmax.begin()->second.first),
              static_cast<unsigned long long>(
                  std::max_element(cost_minmax.begin(), cost_minmax.end(),
                                   [](const auto& a, const auto& b) {
                                     return a.second.second <
                                            b.second.second;
                                   })
                      ->second.second));

  // Run LNC-RA with a 1 MB cache and record rejections per family.
  LncOptions opts;
  opts.capacity_bytes = db.total_bytes() / 100;
  opts.k = 4;
  LncCache lnc(opts);
  std::map<TemplateId, uint64_t> rejections, misses;
  for (const QueryEvent& e : trace) {
    const uint64_t before = lnc.stats().admission_rejections;
    const bool hit = lnc.Reference(QueryDescriptor::FromEvent(e),
                                   e.timestamp);
    if (!hit) ++misses[e.template_id];
    if (lnc.stats().admission_rejections > before) {
      ++rejections[e.template_id];
    }
  }

  LruCache lru(opts.capacity_bytes);
  for (const QueryEvent& e : trace) {
    lru.Reference(QueryDescriptor::FromEvent(e), e.timestamp);
  }

  ResultTable table({"family", "misses", "rejected by LNC-A",
                     "reject %"});
  for (const auto& [id, miss_count] : misses) {
    const QueryTemplate* tmpl = mix.FindTemplate(id);
    const uint64_t rej = rejections.contains(id) ? rejections.at(id) : 0;
    table.AddRow({tmpl->name(), std::to_string(miss_count),
                  std::to_string(rej),
                  FormatDouble(100.0 * static_cast<double>(rej) /
                                   static_cast<double>(miss_count),
                               1)});
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf("cache = %s (1%% of database)\n",
              HumanBytes(opts.capacity_bytes).c_str());
  std::printf("  lnc-ra : CSR %.3f  HR %.3f  (admission rejected %llu "
              "sets)\n",
              lnc.stats().cost_savings_ratio(), lnc.stats().hit_ratio(),
              static_cast<unsigned long long>(
                  lnc.stats().admission_rejections));
  std::printf("  lru    : CSR %.3f  HR %.3f\n",
              lru.stats().cost_savings_ratio(), lru.stats().hit_ratio());
  std::printf("\nthe cheap, large selections (sq_select / sq_range) are "
              "exactly what LNC-A keeps out of the cache.\n");
  return 0;
}
