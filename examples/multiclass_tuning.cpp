// Multi-class workload tuning: the paper's future-work scenario.
//
// Section 6 conjectures that histories deeper than one reference matter
// most when the query stream mixes classes with different reference
// characteristics. This example generates such a stream (stable
// dashboards + exploratory bursts + periodic reports) and sweeps K for
// LNC-RA and LRU-K, then breaks savings down per class.

#include <cstdio>
#include <map>
#include <memory>

#include "cache/lnc_cache.h"
#include "cache/query_descriptor.h"
#include "sim/experiment.h"
#include "util/table.h"
#include "util/string_util.h"
#include "workload/multiclass_workload.h"

using namespace watchman;

int main() {
  MulticlassOptions opts;
  opts.num_queries = 17000;
  opts.seed = 99;
  const Trace trace = GenerateMulticlassTrace(opts);

  const char* kClassNames[] = {"dashboards", "bursts", "reports"};
  std::map<uint32_t, uint64_t> refs;
  for (const QueryEvent& e : trace) ++refs[e.query_class];
  std::printf("multi-class stream: ");
  for (const auto& [cls, n] : refs) {
    std::printf("%s=%llu  ", kClassNames[cls],
                static_cast<unsigned long long>(n));
  }
  std::printf("\n\n");

  // K sweep at a fixed cache size.
  const uint64_t cache_bytes = 512 << 10;
  const std::vector<size_t> ks{1, 2, 3, 4, 6};
  ResultTable table({"policy", "K=1", "K=2", "K=3", "K=4", "K=6"});
  for (PolicyKind kind : {PolicyKind::kLncRA, PolicyKind::kLruK}) {
    std::vector<double> csr;
    for (const RunResult& r : SweepK(trace, kind, ks, cache_bytes)) {
      csr.push_back(r.cost_savings_ratio);
    }
    table.AddNumericRow(kind == PolicyKind::kLncRA ? "lnc-ra" : "lru-k",
                        csr, 3);
  }
  std::printf("CSR vs history depth (cache = 512 KiB):\n%s\n",
              table.ToText().c_str());

  // Per-class savings under LNC-RA with K = 4.
  LncOptions lnc_opts;
  lnc_opts.capacity_bytes = cache_bytes;
  lnc_opts.k = 4;
  LncCache cache(lnc_opts);
  std::map<uint32_t, uint64_t> saved, total;
  for (const QueryEvent& e : trace) {
    total[e.query_class] += e.cost_block_reads;
    if (cache.Reference(QueryDescriptor::FromEvent(e), e.timestamp)) {
      saved[e.query_class] += e.cost_block_reads;
    }
  }
  std::printf("per-class cost savings under lnc-ra(k=4):\n");
  for (const auto& [cls, t] : total) {
    std::printf("  %-10s %6.1f%%  (class cost share %.0f%%)\n",
                kClassNames[cls],
                100.0 * static_cast<double>(saved[cls]) /
                    static_cast<double>(t),
                100.0 * static_cast<double>(t) /
                    static_cast<double>(cache.stats().cost_total));
  }
  std::printf("\nbursts are one-shot: a policy that caches them wastes "
              "space; deeper histories recognize this.\n");
  return 0;
}
