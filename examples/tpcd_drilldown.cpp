// TPC-D drill-down scenario: the workload from the paper's evaluation.
//
// Generates the 17-template TPC-D trace over the scaled 30 MB warehouse
// and replays it through WATCHMAN at a realistic cache size, comparing
// the LNC-RA policy with vanilla LRU and reporting per-template
// statistics -- the drill-down effect (high-summarization templates
// repeat, detail templates do not) is visible directly.

#include <cstdio>
#include <map>
#include <string>

#include "cache/query_descriptor.h"
#include "sim/simulator.h"
#include "storage/schemas.h"
#include "util/string_util.h"
#include "util/table.h"
#include "workload/tpcd_workload.h"

using namespace watchman;

int main() {
  Database db = MakeTpcdDatabase();
  WorkloadMix mix = MakeTpcdWorkload(db);

  TraceGenOptions gen;
  gen.num_queries = 17000;
  gen.seed = 2026;
  const Trace trace = mix.GenerateTrace(gen);
  const TraceSummary summary = trace.Summarize();

  std::printf("TPC-D warehouse: %s in %zu relations\n",
              HumanBytes(db.total_bytes()).c_str(), db.num_relations());
  std::printf("trace: %llu queries, %llu distinct, best possible "
              "HR %.2f / CSR %.2f\n\n",
              static_cast<unsigned long long>(summary.num_events),
              static_cast<unsigned long long>(summary.num_distinct_queries),
              summary.max_hit_ratio, summary.max_cost_savings_ratio);

  // Per-template drill-down statistics.
  struct TemplateStats {
    uint64_t refs = 0;
    std::map<std::string, int> distinct;
    uint64_t cost = 0;
  };
  std::map<TemplateId, TemplateStats> per_template;
  for (const QueryEvent& e : trace) {
    TemplateStats& s = per_template[e.template_id];
    ++s.refs;
    ++s.distinct[e.query_id];
    s.cost += e.cost_block_reads;
  }
  ResultTable table({"template", "instances", "refs", "distinct",
                     "repeat ratio", "avg cost"});
  for (const auto& [id, s] : per_template) {
    const QueryTemplate* tmpl = mix.FindTemplate(id);
    const double repeat =
        1.0 - static_cast<double>(s.distinct.size()) /
                  static_cast<double>(s.refs);
    table.AddRow({tmpl->name(),
                  tmpl->instance_space() > 1000000
                      ? ">10^6"
                      : std::to_string(tmpl->instance_space()),
                  std::to_string(s.refs), std::to_string(s.distinct.size()),
                  FormatDouble(repeat, 2),
                  std::to_string(s.cost / s.refs)});
  }
  std::printf("%s\n", table.ToText().c_str());

  // Replay through the cache policies at a 1% cache.
  const uint64_t cache_bytes = db.total_bytes() / 100;
  for (PolicyKind kind :
       {PolicyKind::kLncRA, PolicyKind::kLncR, PolicyKind::kLru}) {
    PolicyConfig config;
    config.kind = kind;
    config.k = 4;
    const RunResult r = RunSimulation(trace, config, cache_bytes);
    std::printf("%-12s cache=%s  CSR=%.3f  HR=%.3f  used=%.1f%%\n",
                r.policy_name.c_str(), HumanBytes(cache_bytes).c_str(),
                r.cost_savings_ratio, r.hit_ratio,
                r.used_space_fraction * 100.0);
  }
  return 0;
}
