// Quickstart: wire WATCHMAN in front of a (mock) warehouse executor.
//
// The library is used exactly as the paper describes (section 3): link
// it with your application, hand it an executor callback, and submit
// query text. WATCHMAN compresses the text into a query ID, serves
// repeats from the retrieved-set cache, and uses the LNC-RA profit
// logic to decide what stays cached.

#include <cstdio>
#include <string>
#include <utility>

#include "watchman/watchman.h"

using watchman::Status;
using watchman::StatusOr;
using watchman::Watchman;

int main() {
  // A stand-in for the DBMS: count the executions and charge a cost.
  int executions = 0;
  auto executor =
      [&executions](const std::string& query)
      -> StatusOr<Watchman::ExecutionResult> {
    ++executions;
    // Pretend the warehouse scanned 12,000 blocks and produced a small
    // aggregate result. A real integration would run the query and
    // report the optimizer's (or the statistics') cost.
    Watchman::ExecutionResult result;
    result.payload = "region=EU revenue=1,240,551 orders=8,412 [" + query +
                     "]";
    result.cost = 12000;
    return result;
  };

  Watchman::Options options;
  options.capacity_bytes = 4 << 20;  // 4 MiB of retrieved sets
  options.k = 4;                     // history depth (paper default)
  Watchman cache(std::move(options), executor);

  const std::string query =
      "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
      "WHERE o_orderdate >= DATE '1995-04-01' GROUP BY o_orderpriority";

  for (int i = 0; i < 5; ++i) {
    StatusOr<std::string> result = cache.Query(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("run %d: %s (executions so far: %d)\n", i + 1,
                result->c_str(), executions);
  }

  // Differently formatted but equivalent text hits the same entry.
  StatusOr<std::string> reformatted = cache.Query(
      "select   o_orderpriority, count( * )\nfrom orders,lineitem\n"
      "where o_orderdate >= date '1995-04-01' group by o_orderpriority");
  if (!reformatted.ok()) return 1;

  std::printf("\nafter 6 submissions: %d execution(s), hit ratio %.2f, "
              "cost savings ratio %.2f\n",
              executions, cache.hit_ratio(), cache.cost_savings_ratio());
  std::printf("cached sets: %zu, bytes used: %llu / %llu\n",
              cache.cached_set_count(),
              static_cast<unsigned long long>(cache.used_bytes()),
              static_cast<unsigned long long>(cache.capacity_bytes()));
  return 0;
}
