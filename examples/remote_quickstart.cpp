// Remote quickstart: the quickstart scenario, but served by a watchmand
// daemon over TCP instead of an in-process cache.
//
// The daemon owns no warehouse -- it is a shared retrieved-set cache.
// Each front-end keeps its own executor; RemoteWatchman probes the
// daemon first (GET) and on a miss runs the executor and offers the
// result back (EXECUTE + miss-fill), so swapping `Watchman` for
// `RemoteWatchman` changes nothing else in application code.
//
// By default this example starts a daemon in-process on an ephemeral
// loopback port so it runs standalone; pass a port number to attach to
// an already-running `watchmand` instead:
//
//   ./build/watchmand --port=9736 &
//   ./build/example_remote_quickstart 9736

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "server/client.h"
#include "server/server.h"
#include "watchman/watchman.h"

using watchman::MultiplexedClient;
using watchman::RemoteWatchman;
using watchman::Status;
using watchman::StatusOr;
using watchman::Watchman;
using watchman::WatchmanClient;
using watchman::WatchmanServer;
using watchman::WireStats;

int main(int argc, char** argv) {
  // An in-process daemon, unless the caller pointed us at a real one.
  std::unique_ptr<Watchman> daemon_cache;
  std::unique_ptr<WatchmanServer> daemon;
  uint16_t port = 0;
  if (argc > 1) {
    port = static_cast<uint16_t>(std::atoi(argv[1]));
  } else {
    Watchman::Options options;
    options.capacity_bytes = 4 << 20;
    options.num_shards = 4;
    daemon_cache = std::make_unique<Watchman>(
        std::move(options), WatchmanServer::MissFillExecutor());
    daemon = std::make_unique<WatchmanServer>(daemon_cache.get(),
                                              WatchmanServer::Options{});
    if (!daemon->Start().ok()) {
      std::fprintf(stderr, "cannot start in-process daemon\n");
      return 1;
    }
    port = daemon->port();
    std::printf("started in-process watchmand on 127.0.0.1:%u\n\n",
                static_cast<unsigned>(port));
  }

  // This front-end's warehouse executor (a mock, as in the quickstart).
  int executions = 0;
  auto executor = [&executions](const std::string& query)
      -> StatusOr<Watchman::ExecutionResult> {
    ++executions;
    Watchman::ExecutionResult result;
    result.payload =
        "region=EU revenue=1,240,551 orders=8,412 [" + query + "]";
    result.cost = 12000;
    result.relations = {"orders", "lineitem"};
    return result;
  };

  WatchmanClient::Options client_options;
  client_options.port = port;
  auto remote = RemoteWatchman::Connect(client_options, executor);
  if (!remote.ok()) {
    std::fprintf(stderr, "cannot connect: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }

  const std::string query =
      "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
      "WHERE o_orderdate >= DATE '1995-04-01' GROUP BY o_orderpriority";

  for (int i = 0; i < 5; ++i) {
    StatusOr<std::string> result = (*remote)->Query(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("run %d: %s (local executions so far: %d)\n", i + 1,
                result->c_str(), executions);
  }

  // The warehouse loaded new lineitem rows: every cached set that read
  // the relation is dropped daemon-side, so the next query re-executes.
  StatusOr<uint64_t> dropped = (*remote)->InvalidateRelation("lineitem");
  if (!dropped.ok()) return 1;
  std::printf("\nwarehouse update: invalidated %llu dependent set(s)\n",
              static_cast<unsigned long long>(*dropped));
  StatusOr<std::string> refreshed = (*remote)->Query(query);
  if (!refreshed.ok()) return 1;
  std::printf("after update: re-executed (local executions: %d)\n",
              executions);

  StatusOr<WireStats> stats = (*remote)->Stats();
  if (!stats.ok()) return 1;
  std::printf("\ndaemon stats: %llu lookups, %llu hits (HR %.2f), "
              "CSR %.2f, %llu cached set(s), policy %s\n",
              static_cast<unsigned long long>(stats->lookups),
              static_cast<unsigned long long>(stats->hits),
              stats->hit_ratio(), stats->cost_savings_ratio(),
              static_cast<unsigned long long>(stats->entry_count),
              stats->policy_name.c_str());

  // One connection, many requests in flight: the multiplexed client
  // pipelines a burst of GET probes (StartGet buffers, the first Await
  // flushes the batch in one write) and the daemon's responses are
  // routed back to each ticket by request id -- the pattern that lets
  // many application threads share a single daemon connection.
  auto mux = MultiplexedClient::Connect(client_options);
  if (!mux.ok()) return 1;
  std::printf("\npipelined probes on one multiplexed connection:\n");
  MultiplexedClient::Ticket tickets[3];
  const std::string probes[3] = {query, "select 1", query};
  for (int i = 0; i < 3; ++i) {
    auto ticket = (*mux)->StartGet(probes[i]);
    if (!ticket.ok()) return 1;
    tickets[i] = *ticket;
  }
  for (int i = 0; i < 3; ++i) {
    auto response = (*mux)->Await(tickets[i]);
    const bool hit = response.ok() &&
                     response->code == watchman::StatusCode::kOk;
    std::printf("  probe %d (%.25s...): %s\n", i + 1, probes[i].c_str(),
                hit ? "hit" : "miss");
  }
  if (daemon != nullptr) daemon->Stop();
  return 0;
}
