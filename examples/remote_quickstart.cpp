// Remote quickstart: the quickstart scenario, but served by a watchmand
// daemon over TCP instead of an in-process cache.
//
// The daemon owns no warehouse -- it is a shared retrieved-set cache.
// Each front-end keeps its own executor; RemoteWatchman probes the
// daemon first (GET) and on a miss runs the executor and offers the
// result back (EXECUTE + miss-fill), so swapping `Watchman` for
// `RemoteWatchman` changes nothing else in application code.
//
// By default this example starts a daemon in-process on an ephemeral
// loopback port so it runs standalone; pass a port number to attach to
// an already-running `watchmand` instead:
//
//   ./build/watchmand --port=9736 &
//   ./build/example_remote_quickstart 9736

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "server/client.h"
#include "server/server.h"
#include "watchman/watchman.h"

using watchman::MultiplexedClient;
using watchman::RemoteWatchman;
using watchman::Status;
using watchman::StatusOr;
using watchman::Watchman;
using watchman::WatchmanClient;
using watchman::WatchmanServer;
using watchman::WireStats;

namespace {

/// One blocking HTTP GET against the daemon's admin endpoint. The
/// listener half-closes after its response, so reading to EOF is the
/// whole protocol -- no HTTP library needed.
std::string AdminHttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[8192];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t body_at = response.find("\r\n\r\n");
  return body_at == std::string::npos ? "" : response.substr(body_at + 4);
}

/// Pulls one sample value out of a Prometheus exposition body: the sum
/// of every series whose line starts with `name` followed by a label
/// set or a space.
double SumMetric(const std::string& body, const std::string& name) {
  double total = 0.0;
  size_t pos = 0;
  while ((pos = body.find(name, pos)) != std::string::npos) {
    const size_t after = pos + name.size();
    pos = after;
    if (after >= body.size() ||
        (body[after] != '{' && body[after] != ' ')) {
      continue;  // prefix of a longer metric name
    }
    const size_t space = body.find(' ', after);
    const size_t eol = body.find('\n', after);
    if (space == std::string::npos || (eol != std::string::npos && space > eol))
      continue;
    total += std::atof(body.c_str() + space + 1);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  // An in-process daemon, unless the caller pointed us at a real one.
  std::unique_ptr<Watchman> daemon_cache;
  std::unique_ptr<WatchmanServer> daemon;
  uint16_t port = 0;
  if (argc > 1) {
    port = static_cast<uint16_t>(std::atoi(argv[1]));
  } else {
    Watchman::Options options;
    options.capacity_bytes = 4 << 20;
    options.num_shards = 4;
    daemon_cache = std::make_unique<Watchman>(
        std::move(options), WatchmanServer::MissFillExecutor());
    WatchmanServer::Options server_options;
    server_options.admin_port = 0;  // ephemeral /metrics endpoint
    daemon = std::make_unique<WatchmanServer>(daemon_cache.get(),
                                              server_options);
    if (!daemon->Start().ok()) {
      std::fprintf(stderr, "cannot start in-process daemon\n");
      return 1;
    }
    port = daemon->port();
    std::printf("started in-process watchmand on 127.0.0.1:%u "
                "(admin http on :%u)\n\n",
                static_cast<unsigned>(port),
                static_cast<unsigned>(daemon->admin_port()));
  }

  // This front-end's warehouse executor (a mock, as in the quickstart).
  int executions = 0;
  auto executor = [&executions](const std::string& query)
      -> StatusOr<Watchman::ExecutionResult> {
    ++executions;
    Watchman::ExecutionResult result;
    result.payload =
        "region=EU revenue=1,240,551 orders=8,412 [" + query + "]";
    result.cost = 12000;
    result.relations = {"orders", "lineitem"};
    return result;
  };

  WatchmanClient::Options client_options;
  client_options.port = port;
  auto remote = RemoteWatchman::Connect(client_options, executor);
  if (!remote.ok()) {
    std::fprintf(stderr, "cannot connect: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }

  const std::string query =
      "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
      "WHERE o_orderdate >= DATE '1995-04-01' GROUP BY o_orderpriority";

  for (int i = 0; i < 5; ++i) {
    StatusOr<std::string> result = (*remote)->Query(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("run %d: %s (local executions so far: %d)\n", i + 1,
                result->c_str(), executions);
  }

  // The warehouse loaded new lineitem rows: every cached set that read
  // the relation is dropped daemon-side, so the next query re-executes.
  StatusOr<uint64_t> dropped = (*remote)->InvalidateRelation("lineitem");
  if (!dropped.ok()) return 1;
  std::printf("\nwarehouse update: invalidated %llu dependent set(s)\n",
              static_cast<unsigned long long>(*dropped));
  StatusOr<std::string> refreshed = (*remote)->Query(query);
  if (!refreshed.ok()) return 1;
  std::printf("after update: re-executed (local executions: %d)\n",
              executions);

  StatusOr<WireStats> stats = (*remote)->Stats();
  if (!stats.ok()) return 1;
  std::printf("\ndaemon stats: %llu lookups, %llu hits (HR %.2f), "
              "CSR %.2f, %llu cached set(s), policy %s\n",
              static_cast<unsigned long long>(stats->lookups),
              static_cast<unsigned long long>(stats->hits),
              stats->hit_ratio(), stats->cost_savings_ratio(),
              static_cast<unsigned long long>(stats->entry_count),
              stats->policy_name.c_str());

  // One connection, many requests in flight: the multiplexed client
  // pipelines a burst of GET probes (StartGet buffers, the first Await
  // flushes the batch in one write) and the daemon's responses are
  // routed back to each ticket by request id -- the pattern that lets
  // many application threads share a single daemon connection.
  auto mux = MultiplexedClient::Connect(client_options);
  if (!mux.ok()) return 1;
  std::printf("\npipelined probes on one multiplexed connection:\n");
  MultiplexedClient::Ticket tickets[3];
  const std::string probes[3] = {query, "select 1", query};
  for (int i = 0; i < 3; ++i) {
    auto ticket = (*mux)->StartGet(probes[i]);
    if (!ticket.ok()) return 1;
    tickets[i] = *ticket;
  }
  for (int i = 0; i < 3; ++i) {
    auto response = (*mux)->Await(tickets[i]);
    const bool hit = response.ok() &&
                     response->code == watchman::StatusCode::kOk;
    std::printf("  probe %d (%.25s...): %s\n", i + 1, probes[i].c_str(),
                hit ? "hit" : "miss");
  }
  // The same numbers a Prometheus scraper would see: poll the admin
  // endpoint and derive the hit ratio from the exposition text.
  if (daemon != nullptr && daemon->admin_port() != 0) {
    const std::string body = AdminHttpGet(daemon->admin_port(), "/metrics");
    if (!body.empty()) {
      const double lookups = SumMetric(body, "watchman_cache_lookups_total");
      const double hits = SumMetric(body, "watchman_cache_hits_total");
      const double used = SumMetric(body, "watchman_cache_used_bytes");
      std::printf("\nscraped /metrics: hit ratio %.2f (%.0f/%.0f), "
                  "%.0f bytes cached, %.0f requests served\n",
                  lookups > 0 ? hits / lookups : 0.0, hits, lookups, used,
                  SumMetric(body, "watchman_server_requests_served_total"));
    }
  }

  if (daemon != nullptr) daemon->Stop();
  return 0;
}
