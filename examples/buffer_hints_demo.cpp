// Buffer-hint demo: WATCHMAN cooperating with the buffer manager.
//
// Runs the paper's buffer-interaction testbed (section 3 / Figure 7) at
// three hint thresholds and shows how demoting p0-redundant pages --
// pages whose referencing queries have cached retrieved sets -- frees
// pool space for the useful working set.

#include <cstdio>

#include "buffer/buffer_sim.h"
#include "storage/schemas.h"
#include "util/string_util.h"
#include "workload/buffer_workload.h"

using namespace watchman;

int main() {
  Database db = MakeBufferExperimentDatabase();
  WorkloadMix mix = MakeBufferWorkload(db);
  TraceGenOptions gen;
  gen.num_queries = 6000;  // demo-sized; fig7 bench runs the full trace
  gen.seed = 31337;
  const Trace trace = mix.GenerateTrace(gen);

  std::printf("warehouse: %zu relations, %s; buffer pool 15 MiB; "
              "WATCHMAN cache 15 MiB\n\n",
              db.num_relations(), HumanBytes(db.total_bytes()).c_str());

  struct Setting {
    const char* label;
    bool hints;
    double p0;
  };
  const Setting settings[] = {
      {"hints off (plain LRU)", false, 1.0},
      {"hints at p0 = 90%", true, 0.9},
      {"hints at p0 = 0% (demote everything cached)", true, 0.0},
  };
  for (const Setting& s : settings) {
    BufferSimOptions opts;
    opts.hints_enabled = s.hints;
    opts.p0 = s.p0;
    const BufferSimResult r = RunBufferSimulation(db, mix, trace, opts);
    std::printf("%-45s buffer HR %.3f  (%llu page refs, %llu demotions, "
                "cache CSR %.2f)\n",
                s.label, r.buffer.hit_ratio(),
                static_cast<unsigned long long>(r.total_page_refs),
                static_cast<unsigned long long>(r.pages_demoted),
                r.cache.cost_savings_ratio());
  }
  std::printf("\nqueries whose retrieved sets sit in the WATCHMAN cache "
              "never execute, so their buffered pages are dead weight -- "
              "until a hint tells the buffer manager.\n");
  return 0;
}
