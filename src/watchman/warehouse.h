// SimulatedWarehouse: a query executor backed by the synthetic workload
// layer. It stands in for the Oracle 7 warehouse of the paper's testbed:
// executing a query produces a deterministic payload of the instance's
// retrieved-set size and charges the instance's block-read cost.

#ifndef WATCHMAN_WATCHMAN_WAREHOUSE_H_
#define WATCHMAN_WATCHMAN_WAREHOUSE_H_

#include <cstdint>
#include <string>

#include "trace/query_event.h"
#include "util/status.h"
#include "watchman/watchman.h"
#include "workload/workload_mix.h"

namespace watchman {

/// Executes trace events against nothing at all -- it synthesizes the
/// payload a real warehouse would have produced, with bookkeeping for
/// the total simulated work.
class SimulatedWarehouse {
 public:
  SimulatedWarehouse() = default;

  /// Executes `event`'s query: returns a payload of exactly
  /// event.result_bytes deterministic bytes and the event's cost.
  Watchman::ExecutionResult Execute(const QueryEvent& event);

  /// Total block reads performed by actual executions.
  uint64_t total_block_reads() const { return total_block_reads_; }
  /// Number of queries actually executed (cache misses).
  uint64_t executions() const { return executions_; }

 private:
  uint64_t total_block_reads_ = 0;
  uint64_t executions_ = 0;
};

/// Deterministic filler payload of `bytes` bytes derived from `seed`;
/// repeated executions of the same query produce identical payloads.
std::string SynthesizePayload(uint64_t seed, uint64_t bytes);

}  // namespace watchman

#endif  // WATCHMAN_WATCHMAN_WAREHOUSE_H_
