// Retrieved-set payload storage.
//
// The paper (section 3): "In general, retrieved sets may be stored
// either in main memory or on secondary storage. The current version of
// WATCHMAN stores all retrieved sets in main memory primarily to
// simplify storage management." This module provides both: the
// main-memory store the paper used, and a log-structured secondary-
// storage store with in-memory index and automatic compaction, so large
// caches need not live in RAM.

#ifndef WATCHMAN_WATCHMAN_PAYLOAD_STORE_H_
#define WATCHMAN_WATCHMAN_PAYLOAD_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace watchman {

/// Keyed blob storage for retrieved-set payloads.
class PayloadStore {
 public:
  virtual ~PayloadStore() = default;

  /// Stores (or replaces) the payload under `key`.
  virtual Status Put(const std::string& key, const std::string& payload) = 0;

  /// Fetches the payload; NotFound if absent. Must be safe to call
  /// concurrently with other Get() calls (Watchman serializes Get
  /// against Put/Erase but lets payload fetches share a reader lock);
  /// both built-in stores satisfy this.
  virtual StatusOr<std::string> Get(const std::string& key) = 0;

  /// Get() into a caller-owned buffer, reusing its capacity -- the
  /// serving hit path fetches every payload into per-connection scratch
  /// and so allocates nothing at steady state. Same concurrency
  /// contract as Get(). The default adapter costs one move; stores
  /// should override with a real copy-into.
  virtual Status GetInto(const std::string& key, std::string* out) {
    StatusOr<std::string> payload = Get(key);
    if (!payload.ok()) return payload.status();
    *out = std::move(*payload);
    return Status::OK();
  }

  /// Drops the payload; returns true if it existed.
  virtual bool Erase(const std::string& key) = 0;

  virtual bool Contains(const std::string& key) const = 0;
  virtual size_t count() const = 0;

  /// Total bytes of live payloads.
  virtual uint64_t payload_bytes() const = 0;
};

/// The paper's main-memory store.
class MemoryPayloadStore : public PayloadStore {
 public:
  Status Put(const std::string& key, const std::string& payload) override;
  StatusOr<std::string> Get(const std::string& key) override;
  Status GetInto(const std::string& key, std::string* out) override;
  bool Erase(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t count() const override { return map_.size(); }
  uint64_t payload_bytes() const override { return live_bytes_; }

 private:
  std::unordered_map<std::string, std::string> map_;
  uint64_t live_bytes_ = 0;
};

/// Secondary-storage store: an append-only log file with an in-memory
/// index. Deletions leave garbage in the log; when garbage exceeds
/// `compaction_ratio` of the file, live records are rewritten to a new
/// log (single-threaded, crash-safety out of scope -- this is cache
/// state and fully rebuildable).
class FilePayloadStore : public PayloadStore {
 public:
  struct Options {
    /// Compact when garbage_bytes > compaction_ratio * file_bytes.
    double compaction_ratio = 0.5;
  };

  /// Creates/truncates the log at `path`.
  static StatusOr<std::unique_ptr<FilePayloadStore>> Open(
      const std::string& path, const Options& options);
  static StatusOr<std::unique_ptr<FilePayloadStore>> Open(
      const std::string& path) {
    return Open(path, Options{});
  }

  ~FilePayloadStore() override;

  Status Put(const std::string& key, const std::string& payload) override;
  StatusOr<std::string> Get(const std::string& key) override;
  bool Erase(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t count() const override { return index_.size(); }
  uint64_t payload_bytes() const override { return live_bytes_; }

  uint64_t file_bytes() const { return file_bytes_; }
  uint64_t garbage_bytes() const { return garbage_bytes_; }
  uint64_t compactions() const { return compactions_; }

 private:
  struct Slot {
    uint64_t offset = 0;  // offset of the payload bytes
    uint64_t length = 0;
  };

  FilePayloadStore(std::string path, const Options& options, int fd);

  Status AppendRecord(const std::string& key, const std::string& payload,
                      Slot* slot);
  Status MaybeCompact();

  std::string path_;
  Options options_;
  int fd_;
  std::unordered_map<std::string, Slot> index_;
  uint64_t file_bytes_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t garbage_bytes_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_WATCHMAN_PAYLOAD_STORE_H_
