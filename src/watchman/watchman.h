// Watchman: the public library API.
//
// The paper (section 3) implements WATCHMAN as a library of routines
// linked with an application such as a data warehouse manager. This
// facade reproduces that design: the application submits query text and
// an executor callback; Watchman compresses the text into a query ID,
// looks the retrieved set up by signature + exact match, returns the
// cached payload on a hit, and on a miss invokes the executor, records
// the cost, and offers the retrieved set to the configured admission
// policy.
//
// Beyond the paper's base design the facade also provides:
//  * any replacement policy (section 5's competitors included) via the
//    PolicyConfig factory, defaulting to the paper's LNC-RA;
//  * a thread-safe execution path: the cache is partitioned into
//    signature-hashed shards with per-shard locks, warehouse executions
//    run outside all shard locks, and concurrent identical missed
//    queries are collapsed into a single execution (single-flight);
//  * query normalization (section 6 future work): an optional canonical
//    form that identifies queries differing in predicate order;
//  * cache coherence (section 3): executors may report the relations a
//    query touched, and InvalidateRelation() evicts the dependent sets
//    when the warehouse is updated -- across all shards;
//  * pluggable payload storage (section 3): retrieved sets live in main
//    memory by default, or on secondary storage via FilePayloadStore.
//
// Threading model: Execute(), Query(), IsCached(), Invalidate(),
// InvalidateRelation() and the statistics accessors may be called from
// any thread. Configuration (SetAdmissionListener, construction options)
// must happen before concurrent use. A user-supplied clock or payload
// store must itself be thread-safe when Execute() is called
// concurrently; the built-in defaults are.

#ifndef WATCHMAN_WATCHMAN_WATCHMAN_H_
#define WATCHMAN_WATCHMAN_WATCHMAN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/sharded_query_cache.h"
#include "obs/metrics.h"
#include "sim/policy_config.h"
#include "util/circuit_breaker.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/single_flight.h"
#include "util/status.h"
#include "watchman/payload_store.h"

namespace watchman {

/// Top-level cache manager.
class Watchman {
 public:
  /// What a query execution produces: the retrieved set (payload), the
  /// execution cost in logical block reads, and optionally the
  /// relations the query read (enables invalidation). The cost may come
  /// from a query optimizer or from DBMS performance statistics
  /// (paper section 2.1).
  struct ExecutionResult {
    std::string payload;
    uint64_t cost = 1;
    std::vector<std::string> relations;
  };

  /// Executes a query against the underlying warehouse. May be invoked
  /// from any thread that calls Execute(), but never twice concurrently
  /// for the same query text (single-flight).
  using Executor =
      std::function<StatusOr<ExecutionResult>(const std::string& query_text)>;

  /// Receives the query ID of every newly cached retrieved set -- the
  /// hook the buffer-manager hint channel attaches to (paper §3).
  using AdmissionListener = std::function<void(const std::string& query_id)>;

  struct Options {
    /// Cache capacity for retrieved-set payloads, in bytes.
    uint64_t capacity_bytes = 64ull << 20;
    /// Reference-history depth K.
    size_t k = 4;
    /// LNC-A admission control (disable for plain LNC-R).
    bool admission = true;
    /// Retained reference information (section 2.4).
    bool retain_reference_info = true;
    /// Replacement policy. When unset, an LNC policy is assembled from
    /// the k / admission / retain_reference_info fields above; when set,
    /// it wins and those legacy fields are ignored.
    std::optional<PolicyConfig> policy;
    /// Cache shards (normalized to a power of two). 1 keeps the exact
    /// unsharded decision sequence; use >= number of worker threads for
    /// concurrent serving.
    size_t num_shards = 1;
    /// Use the conjunct-order canonical form instead of the plain
    /// compressed query ID (catches reordered WHERE predicates).
    bool normalize_queries = false;
    /// Payload storage; defaults to MemoryPayloadStore.
    std::unique_ptr<PayloadStore> payload_store;
    /// Clock used for reference timestamps; defaults to an internal
    /// monotonic counter advanced by 1 microsecond per query, which is
    /// sufficient for rate estimation. Supply a simulation clock for
    /// reproducible experiments.
    std::function<Timestamp()> clock;
    /// Record facade-level observability metrics (single-flight dedups,
    /// admitted/rejected cost+profit distributions). Off-path only --
    /// the hit path is never instrumented here -- but embedders chasing
    /// the last nanosecond can disable it.
    bool metrics = true;
    /// Payload-store circuit breaker: after `failure_threshold`
    /// consecutive store failures (Put or Get errors other than
    /// NotFound) the facade stops calling the store for `cooldown_ms`,
    /// serving misses uncached (pass-through) and reporting cached
    /// entries whose payload is unreachable as misses. A threshold of 0
    /// disables the breaker.
    CircuitBreaker::Options store_breaker;
  };

  /// Facade-level observability: what the admission decision actually
  /// did to the miss stream. The profit histograms record the paper's
  /// profit metric cost/size scaled to parts-per-million
  /// (cost * 1e6 / result_bytes), so admitted vs rejected distributions
  /// are comparable on one log scale. Updated only on the miss path;
  /// all members are safe to read concurrently.
  struct FacadeMetrics {
    /// Warehouse executions actually run (single-flight leaders).
    obs::Counter executions;
    /// Callers served by another caller's in-flight execution.
    obs::Counter dedup_hits;
    obs::LogHistogram admitted_cost;
    obs::LogHistogram rejected_cost;
    obs::LogHistogram admitted_profit_ppm;
    obs::LogHistogram rejected_profit_ppm;
    /// Degradation counters (always recorded, independent of
    /// Options::metrics -- operators need these precisely when things
    /// go wrong). Executor failures: the warehouse callback returned an
    /// error or threw (the exception is converted to a typed Status
    /// instead of unwinding through the caller). Store failures: payload
    /// store Put/Get errors other than NotFound. Degraded pass-through:
    /// misses served fresh but uncached because the store failed, its
    /// breaker was open, or entry allocation failed.
    obs::Counter executor_failures;
    obs::Counter store_failures;
    obs::Counter degraded_passthrough;
  };

  /// `executor` must be valid for the lifetime of the Watchman.
  Watchman(Options options, Executor executor);

  /// Looks up the retrieved set of `query_text`, executing the query on
  /// a miss. Returns the payload (from cache or fresh). Executor errors
  /// surface as their Status; an executor that THROWS is converted to
  /// an Internal status (counted in FacadeMetrics::executor_failures)
  /// rather than unwinding -- a daemon worker thread must never die to
  /// one bad warehouse callback. Failed executions are not cached.
  ///
  /// Thread-safe: the lookup takes only the owning shard's lock, the
  /// miss executes with no lock held, and concurrent misses on the same
  /// query share one execution.
  StatusOr<std::string> Execute(const std::string& query_text);

  /// Alias of Execute() (the paper-era name).
  StatusOr<std::string> Query(const std::string& query_text) {
    return Execute(query_text);
  }

  /// Hit-only probe: returns the cached retrieved set of `query_text`,
  /// recording the reference exactly like a hit in Execute(); NotFound
  /// -- with no lookup counted and nothing executed -- when the set is
  /// absent. This is the daemon's GET op: a remote caller probes, and
  /// on NotFound materializes the result itself and offers it back
  /// through an Execute() miss-fill, so the two round trips together
  /// count as one reference, like one local Execute().
  StatusOr<std::string> GetCached(const std::string& query_text);

  /// GetCached() into a caller-owned buffer, reusing its capacity: the
  /// daemon serves GET into per-connection response scratch, so the
  /// remote hit path allocates nothing at steady state.
  Status GetCachedInto(const std::string& query_text, std::string* out);

  /// True if the retrieved set of `query_text` is currently cached.
  bool IsCached(const std::string& query_text) const;

  /// Cache coherence: drops the retrieved set of `query_text`.
  /// Returns true if it was cached.
  bool Invalidate(const std::string& query_text);

  /// Cache coherence: drops every cached retrieved set whose execution
  /// reported reading `relation`, on whichever shards they live.
  /// Returns the number of sets dropped.
  size_t InvalidateRelation(const std::string& relation);

  /// Registers the admission listener (replaces any previous one). Call
  /// before serving concurrently.
  void SetAdmissionListener(AdmissionListener listener);

  /// Shrink-to-fit pass over the cache's metadata (signature tables,
  /// entry arenas, retained-info stores): long-lived daemons whose
  /// working set shrank stop pinning peak-size index structures. Takes
  /// each shard's lock in turn; call at quiescent moments.
  void CompactMetadata() { cache_->Compact(); }

  CacheStats stats() const { return cache_->stats(); }
  uint64_t used_bytes() const { return cache_->used_bytes(); }
  uint64_t capacity_bytes() const { return cache_->capacity_bytes(); }
  size_t cached_set_count() const { return cache_->entry_count(); }
  size_t retained_info_count() const { return cache_->retained_count(); }
  uint64_t invalidations() const { return invalidations_.load(); }
  size_t num_shards() const { return cache_->num_shards(); }
  std::string policy_name() const { return cache_->name(); }
  const PayloadStore& payload_store() const { return *payloads_; }
  const ShardedQueryCache& cache() const { return *cache_; }
  const FacadeMetrics& facade_metrics() const { return metrics_; }
  /// The payload-store breaker, for observability (state/trips/rejects).
  const CircuitBreaker& store_breaker() const { return store_breaker_; }
  /// Breaker state at this instant: 0 closed, 1 open, 2 half-open.
  int store_breaker_state() const;

  double cost_savings_ratio() const {
    return cache_->stats().cost_savings_ratio();
  }
  double hit_ratio() const { return cache_->stats().hit_ratio(); }

 private:
  /// What one single-flight execution produced, shared by all callers:
  /// the executor's result and the invalidation epoch observed before
  /// it ran (detects updates that raced with the execution).
  struct FlightOutcome {
    StatusOr<ExecutionResult> result = Status::Internal("not executed");
    uint64_t epoch_at_start = 0;
  };

  Timestamp NowTick();
  /// Runs the warehouse executor with fault-point and exception
  /// containment: a throwing executor becomes an Internal status.
  StatusOr<ExecutionResult> RunExecutor(const std::string& query_text);
  std::string MakeQueryId(const std::string& query_text) const;
  /// MakeQueryId into a caller-owned buffer (per-thread scratch reuse).
  void MakeQueryIdInto(const std::string& query_text, std::string* out) const;
  void ForgetDependencies(const std::string& query_id);
  void RegisterDependencies(const std::string& query_id,
                            const std::vector<std::string>& relations);

  /// Records one reference for `desc` (unless this call's reference was
  /// already counted on the fast path) and, when the set is cached,
  /// publishes the payload and coherence bookkeeping. Drops the entry
  /// again if any of its relations was invalidated after
  /// `epoch_at_start` (the execution read pre-update data).
  void OfferToCache(const QueryDescriptor& desc,
                    const ExecutionResult& result, uint64_t epoch_at_start,
                    Timestamp now, bool record_reference = true);

  /// True if the query itself or any of `relations` was invalidated
  /// after `epoch`.
  bool InvalidatedSince(const std::string& query_id,
                        const std::vector<std::string>& relations,
                        uint64_t epoch) const;

  /// Drops one in-flight-execution guard; when the last one goes, the
  /// per-relation invalidation-epoch records are pruned (no overlapping
  /// execution can reference them anymore).
  void ReleaseInflightOffer();

  StatusOr<std::string> GetPayload(const std::string& query_id);
  Status GetPayloadInto(const std::string& query_id, std::string* out);
  bool HasPayload(const std::string& query_id) const;
  Status PutPayload(const std::string& query_id, const std::string& payload);
  void ErasePayload(const std::string& query_id);

  Options options_;
  Executor executor_;
  std::unique_ptr<ShardedQueryCache> cache_;
  std::unique_ptr<PayloadStore> payloads_;
  /// Guards payloads_ (the built-in stores are not thread-safe):
  /// concurrent Gets share the lock -- PayloadStore::Get must therefore
  /// be safe to call concurrently with itself, which both built-in
  /// stores are -- while Put/Erase are exclusive. (The pointee, not the
  /// unique_ptr, is the guarded object; the analysis tracks the lock
  /// sites in the payload helpers rather than a PT_GUARDED_BY member.)
  mutable SharedMutex payload_mu_;
  /// Trips on consecutive store failures; while open, Put/Get short-
  /// circuit and misses are served uncached (Options::store_breaker).
  CircuitBreaker store_breaker_;
  /// Guards dependents_ / reads_. Lock order: shard lock, then this
  /// (taken by the eviction listener); never call into the cache while
  /// holding it.
  mutable Mutex coherence_mu_;
  /// relation -> query IDs of cached sets that read it.
  std::unordered_map<std::string, std::unordered_set<std::string>>
      dependents_ GUARDED_BY(coherence_mu_);
  /// query ID -> relations it read (only for cached sets).
  std::unordered_map<std::string, std::vector<std::string>> reads_
      GUARDED_BY(coherence_mu_);
  /// relation / query ID -> epoch of its latest invalidation (coherence
  /// vs. in-flight executions); pruned when no execution is in flight.
  std::unordered_map<std::string, uint64_t> relation_invalidation_epoch_
      GUARDED_BY(coherence_mu_);
  std::unordered_map<std::string, uint64_t> query_invalidation_epoch_
      GUARDED_BY(coherence_mu_);
  AdmissionListener admission_listener_;
  /// Miss-path observability (Options::metrics).
  FacadeMetrics metrics_;
  /// Collapses concurrent executions of the same missed query.
  SingleFlight<std::string, std::shared_ptr<const FlightOutcome>> flights_;
  std::atomic<Timestamp> internal_clock_{0};
  std::atomic<uint64_t> invalidations_{0};
  /// Bumped by every relation invalidation.
  std::atomic<uint64_t> invalidation_epoch_{0};
  /// Executions currently between epoch snapshot and cache offer; the
  /// relation-epoch records are pruned whenever this drains to zero.
  std::atomic<int64_t> inflight_offers_{0};
};

}  // namespace watchman

#endif  // WATCHMAN_WATCHMAN_WATCHMAN_H_
