// Watchman: the public library API.
//
// The paper (section 3) implements WATCHMAN as a library of routines
// linked with an application such as a data warehouse manager. This
// facade reproduces that design: the application submits query text and
// an executor callback; Watchman compresses the text into a query ID,
// looks the retrieved set up by signature + exact match, returns the
// cached payload on a hit, and on a miss invokes the executor, records
// the cost, and offers the retrieved set to the LNC-RA admission policy.
//
// Beyond the paper's base design the facade also provides:
//  * query normalization (section 6 future work): an optional canonical
//    form that identifies queries differing in predicate order;
//  * cache coherence (section 3): executors may report the relations a
//    query touched, and InvalidateRelation() evicts the dependent sets
//    when the warehouse is updated;
//  * pluggable payload storage (section 3): retrieved sets live in main
//    memory by default, or on secondary storage via FilePayloadStore.

#ifndef WATCHMAN_WATCHMAN_WATCHMAN_H_
#define WATCHMAN_WATCHMAN_WATCHMAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/lnc_cache.h"
#include "util/clock.h"
#include "util/status.h"
#include "watchman/payload_store.h"

namespace watchman {

/// Top-level cache manager.
class Watchman {
 public:
  /// What a query execution produces: the retrieved set (payload), the
  /// execution cost in logical block reads, and optionally the
  /// relations the query read (enables invalidation). The cost may come
  /// from a query optimizer or from DBMS performance statistics
  /// (paper section 2.1).
  struct ExecutionResult {
    std::string payload;
    uint64_t cost = 1;
    std::vector<std::string> relations;
  };

  /// Executes a query against the underlying warehouse.
  using Executor =
      std::function<StatusOr<ExecutionResult>(const std::string& query_text)>;

  /// Receives the query ID of every newly cached retrieved set -- the
  /// hook the buffer-manager hint channel attaches to (paper §3).
  using AdmissionListener = std::function<void(const std::string& query_id)>;

  struct Options {
    /// Cache capacity for retrieved-set payloads, in bytes.
    uint64_t capacity_bytes = 64ull << 20;
    /// Reference-history depth K.
    size_t k = 4;
    /// LNC-A admission control (disable for plain LNC-R).
    bool admission = true;
    /// Retained reference information (section 2.4).
    bool retain_reference_info = true;
    /// Use the conjunct-order canonical form instead of the plain
    /// compressed query ID (catches reordered WHERE predicates).
    bool normalize_queries = false;
    /// Payload storage; defaults to MemoryPayloadStore.
    std::unique_ptr<PayloadStore> payload_store;
    /// Clock used for reference timestamps; defaults to an internal
    /// monotonic counter advanced by 1 microsecond per query, which is
    /// sufficient for rate estimation in single-threaded use. Supply a
    /// simulation clock for reproducible experiments.
    std::function<Timestamp()> clock;
  };

  /// `executor` must be valid for the lifetime of the Watchman.
  Watchman(Options options, Executor executor);

  /// Looks up the retrieved set of `query_text`, executing the query on
  /// a miss. Returns the payload (from cache or fresh). Errors from the
  /// executor propagate unchanged; failed executions are not cached.
  StatusOr<std::string> Query(const std::string& query_text);

  /// True if the retrieved set of `query_text` is currently cached.
  bool IsCached(const std::string& query_text) const;

  /// Cache coherence: drops the retrieved set of `query_text`.
  /// Returns true if it was cached.
  bool Invalidate(const std::string& query_text);

  /// Cache coherence: drops every cached retrieved set whose execution
  /// reported reading `relation`. Returns the number of sets dropped.
  size_t InvalidateRelation(const std::string& relation);

  /// Registers the admission listener (replaces any previous one).
  void SetAdmissionListener(AdmissionListener listener);

  const CacheStats& stats() const { return cache_->stats(); }
  uint64_t used_bytes() const { return cache_->used_bytes(); }
  uint64_t capacity_bytes() const { return cache_->capacity_bytes(); }
  size_t cached_set_count() const { return cache_->entry_count(); }
  size_t retained_info_count() const { return cache_->retained_count(); }
  uint64_t invalidations() const { return invalidations_; }
  const PayloadStore& payload_store() const { return *payloads_; }

  double cost_savings_ratio() const {
    return cache_->stats().cost_savings_ratio();
  }
  double hit_ratio() const { return cache_->stats().hit_ratio(); }

 private:
  Timestamp NowTick();
  std::string MakeQueryId(const std::string& query_text) const;
  void ForgetDependencies(const std::string& query_id);

  Options options_;
  Executor executor_;
  std::unique_ptr<LncCache> cache_;
  std::unique_ptr<PayloadStore> payloads_;
  /// relation -> query IDs of cached sets that read it.
  std::unordered_map<std::string, std::unordered_set<std::string>>
      dependents_;
  /// query ID -> relations it read (only for cached sets).
  std::unordered_map<std::string, std::vector<std::string>> reads_;
  AdmissionListener admission_listener_;
  Timestamp internal_clock_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_WATCHMAN_WATCHMAN_H_
