#include "watchman/watchman.h"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "cache/query_descriptor.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/query_normalizer.h"
#include "util/string_util.h"

namespace watchman {

namespace {

/// Wall-time for the store breaker (monotonic ms; origin irrelevant).
int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread request scratch: the compressed query ID and the probe
/// descriptor carrying its QueryKey. Reused across calls, so the
/// steady-state hit path derives the key (one compression pass + one
/// signature) with no heap allocation. Only valid until the next
/// Execute()/GetCached()/IsCached() on the same thread -- the miss path
/// copies what it needs before running the executor, which may reenter.
struct RequestScratch {
  std::string id;
  QueryDescriptor probe;
};

RequestScratch& Scratch() {
  static thread_local RequestScratch scratch;
  return scratch;
}

}  // namespace

Watchman::Watchman(Options options, Executor executor)
    : options_(std::move(options)),
      executor_(std::move(executor)),
      store_breaker_(options_.store_breaker) {
  assert(executor_ != nullptr);
  PolicyConfig policy;
  if (options_.policy.has_value()) {
    policy = *options_.policy;
  } else {
    policy.kind =
        options_.admission ? PolicyKind::kLncRA : PolicyKind::kLncR;
    policy.k = options_.k;
    policy.retain_reference_info = options_.retain_reference_info;
  }
  cache_ = MakeShardedCache(policy, options_.capacity_bytes,
                            options_.num_shards);
  if (options_.payload_store != nullptr) {
    payloads_ = std::move(options_.payload_store);
  } else {
    payloads_ = std::make_unique<MemoryPayloadStore>();
  }
  // Runs under the evicting shard's lock; touches only the payload and
  // coherence state (never the cache), keeping the lock order
  // shard -> payload/coherence acyclic.
  cache_->SetEvictionListener([this](const QueryDescriptor& d) {
    // Runs under the evicting shard's lock: reuse a per-thread buffer
    // so the listener does not allocate there once its capacity covers
    // the longest evicted ID.
    static thread_local std::string id;
    id.assign(d.query_id());
    ErasePayload(id);
    ForgetDependencies(id);
  });
}

Timestamp Watchman::NowTick() {
  if (options_.clock) return options_.clock();
  return internal_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
}

StatusOr<Watchman::ExecutionResult> Watchman::RunExecutor(
    const std::string& query_text) {
  StatusOr<ExecutionResult> result = ExecutionResult{};
  const Status injected = FaultPoint(Fault::kExecFail, "warehouse executor");
  if (!injected.ok()) {
    result = injected;
  } else {
    try {
      FaultInjector& fi = FaultInjector::Global();
      if (fi.enabled() && fi.Trip(Fault::kExecThrow)) {
        throw std::runtime_error("injected executor exception");
      }
      result = executor_(query_text);
    } catch (const std::exception& e) {
      result = Status::Internal(std::string("executor threw: ") + e.what());
    } catch (...) {
      result = Status::Internal("executor threw a non-standard exception");
    }
  }
  if (!result.ok()) metrics_.executor_failures.Inc();
  return result;
}

std::string Watchman::MakeQueryId(const std::string& query_text) const {
  return options_.normalize_queries ? NormalizeQuery(query_text)
                                    : CompressQueryId(query_text);
}

void Watchman::MakeQueryIdInto(const std::string& query_text,
                               std::string* out) const {
  if (options_.normalize_queries) {
    *out = NormalizeQuery(query_text);
  } else {
    CompressQueryIdInto(query_text, out);
  }
}

void Watchman::ForgetDependencies(const std::string& query_id) {
  MutexLock lock(coherence_mu_);
  auto it = reads_.find(query_id);
  if (it == reads_.end()) return;
  for (const std::string& relation : it->second) {
    auto dep = dependents_.find(relation);
    if (dep == dependents_.end()) continue;
    dep->second.erase(query_id);
    if (dep->second.empty()) dependents_.erase(dep);
  }
  reads_.erase(it);
}

void Watchman::RegisterDependencies(
    const std::string& query_id, const std::vector<std::string>& relations) {
  if (relations.empty()) return;
  MutexLock lock(coherence_mu_);
  reads_[query_id] = relations;
  for (const std::string& relation : relations) {
    dependents_[relation].insert(query_id);
  }
}

StatusOr<std::string> Watchman::GetPayload(const std::string& query_id) {
  if (!store_breaker_.Allow(SteadyNowMs())) {
    return Status::IOError("payload store circuit open");
  }
  Status st = FaultPoint(Fault::kStoreGetFail, "payload store Get");
  StatusOr<std::string> result = std::string();
  if (st.ok()) {
    // Reader lock: payload fetches (the hit path) proceed concurrently.
    SharedReaderLock lock(payload_mu_);
    result = payloads_->Get(query_id);
    st = result.status();
  } else {
    result = st;
  }
  // NotFound is a normal miss, not a store failure.
  if (st.ok() || st.code() == StatusCode::kNotFound) {
    store_breaker_.RecordSuccess();
  } else {
    store_breaker_.RecordFailure(SteadyNowMs());
    metrics_.store_failures.Inc();
  }
  return result;
}

Status Watchman::GetPayloadInto(const std::string& query_id,
                                std::string* out) {
  if (!store_breaker_.Allow(SteadyNowMs())) {
    return Status::IOError("payload store circuit open");
  }
  Status st = FaultPoint(Fault::kStoreGetFail, "payload store Get");
  if (st.ok()) {
    SharedReaderLock lock(payload_mu_);
    st = payloads_->GetInto(query_id, out);
  }
  if (st.ok() || st.code() == StatusCode::kNotFound) {
    store_breaker_.RecordSuccess();
  } else {
    store_breaker_.RecordFailure(SteadyNowMs());
    metrics_.store_failures.Inc();
  }
  return st;
}

bool Watchman::HasPayload(const std::string& query_id) const {
  SharedReaderLock lock(payload_mu_);
  return payloads_->Contains(query_id);
}

Status Watchman::PutPayload(const std::string& query_id,
                            const std::string& payload) {
  if (!store_breaker_.Allow(SteadyNowMs())) {
    return Status::IOError("payload store circuit open");
  }
  Status st = FaultPoint(Fault::kStorePutFail, "payload store Put");
  if (st.ok()) {
    SharedMutexLock lock(payload_mu_);
    st = payloads_->Put(query_id, payload);
  }
  if (st.ok()) {
    store_breaker_.RecordSuccess();
  } else {
    store_breaker_.RecordFailure(SteadyNowMs());
    metrics_.store_failures.Inc();
  }
  return st;
}

int Watchman::store_breaker_state() const {
  return static_cast<int>(store_breaker_.state(SteadyNowMs()));
}

void Watchman::ErasePayload(const std::string& query_id) {
  SharedMutexLock lock(payload_mu_);
  payloads_->Erase(query_id);
}

bool Watchman::InvalidatedSince(const std::string& query_id,
                                const std::vector<std::string>& relations,
                                uint64_t epoch) const {
  MutexLock lock(coherence_mu_);
  auto invalidated_after = [epoch](const auto& map, const std::string& key) {
    auto it = map.find(key);
    return it != map.end() && it->second > epoch;
  };
  if (invalidated_after(query_invalidation_epoch_, query_id)) return true;
  for (const std::string& relation : relations) {
    if (invalidated_after(relation_invalidation_epoch_, relation)) {
      return true;
    }
  }
  return false;
}

void Watchman::OfferToCache(const QueryDescriptor& desc,
                            const ExecutionResult& result,
                            uint64_t epoch_at_start, Timestamp now,
                            bool record_reference) {
  if (desc.result_bytes == 0) {
    // Empty retrieved sets are returned but never cached (the cache
    // rejects zero-size sets under every policy).
    if (record_reference) cache_->Reference(desc, now);
    return;
  }
  const std::string query_id(desc.query_id());
  bool newly_admitted = false;
  if (record_reference) {
    newly_admitted = !cache_->Reference(desc, now);
  }
  if (!cache_->Contains(desc.key)) return;  // rejected or raced out
  if (record_reference && !newly_admitted && HasPayload(query_id)) {
    // Deduplicated follower hitting the leader's already-published set:
    // nothing left to publish.
    return;
  }
  Status stored = FaultPoint(Fault::kAllocFail, "cache entry allocation");
  if (stored.ok()) stored = PutPayload(query_id, result.payload);
  if (!stored.ok()) {
    // Storage/allocation failure: keep the cache metadata consistent by
    // dropping the entry; the caller still serves the fresh result
    // uncached (degraded pass-through).
    cache_->Erase(desc.key);
    metrics_.degraded_passthrough.Inc();
    return;
  }
  RegisterDependencies(query_id, result.relations);
  // Coherence check AFTER the dependencies are registered: an
  // invalidation that lands before this point is detected here, and one
  // that lands after will find the entry in dependents_ (or the cache
  // itself, for per-query invalidation) and erase it -- no window in
  // between.
  if (InvalidatedSince(query_id, result.relations, epoch_at_start)) {
    // A relation this execution read was invalidated while the query
    // ran outside the locks: the result reflects pre-update data, so it
    // must not stay cached past the invalidation.
    cache_->Erase(desc.key);
    return;
  }
  if (!cache_->Contains(desc.key)) {
    // Evicted concurrently before the payload and dependencies were
    // published, so the eviction listener could not clean them up; undo
    // both rather than leak them. (Should a racing re-admission publish
    // in between, this undo costs it one re-execution on the next
    // access, which re-publishes -- the hit path self-heals on a
    // missing payload.)
    ErasePayload(query_id);
    ForgetDependencies(query_id);
    return;
  }
  if (newly_admitted && admission_listener_) {
    admission_listener_(query_id);
  }
}

StatusOr<std::string> Watchman::Execute(const std::string& query_text) {
  // Key derivation in per-thread scratch: one compression pass, one
  // signature, no allocation at steady state.
  RequestScratch& scratch = Scratch();
  MakeQueryIdInto(query_text, &scratch.id);
  if (scratch.id.empty()) {
    return Status::InvalidArgument("query text contains no tokens");
  }
  scratch.probe.key.Assign(scratch.id);
  scratch.probe.result_bytes = 0;
  scratch.probe.cost = 0;
  const Timestamp now = NowTick();

  // Fast path: the reference is recorded under the shard lock only when
  // the set is cached (the stored descriptor supplies size and cost).
  bool already_referenced = false;
  if (cache_->TryReferenceCached(scratch.probe, now)) {
    StatusOr<std::string> payload = GetPayload(scratch.id);
    if (payload.ok()) return payload;
    // The payload vanished between the reference and the fetch
    // (concurrent eviction, or an undone racing publish); execute and
    // re-publish below. This call's reference is already counted.
    already_referenced = true;
  }

  // Miss path: copy out of the scratch before the executor runs -- it
  // may reenter Execute() on this thread and clobber it.
  const std::string query_id = scratch.id;
  QueryDescriptor probe;
  probe.key = scratch.probe.key;

  // Miss: execute the query with no lock held; concurrent misses on the
  // same query ID share one warehouse execution. The leader offers the
  // set to the cache and publishes the payload before the flight
  // closes, so late arrivals find it on the fast path instead of
  // re-executing. The in-flight guard keeps the invalidation-epoch
  // records alive until every overlapping offer has checked them.
  inflight_offers_.fetch_add(1, std::memory_order_acq_rel);
  bool leader = false;
  std::shared_ptr<const FlightOutcome> flight;
  try {
    flight = flights_.Do(
        query_id,
        [this, &query_text, &probe, now, already_referenced] {
          auto out = std::make_shared<FlightOutcome>();
          out->epoch_at_start =
              invalidation_epoch_.load(std::memory_order_acquire);
          out->result = RunExecutor(query_text);
          if (out->result.ok()) {
            QueryDescriptor desc = probe;
            desc.result_bytes = out->result->payload.size();
            desc.cost = out->result->cost;
            OfferToCache(desc, *out->result, out->epoch_at_start, now,
                         /*record_reference=*/!already_referenced);
          }
          return std::shared_ptr<const FlightOutcome>(std::move(out));
        },
        &leader);
  } catch (...) {
    ReleaseInflightOffer();
    throw;
  }
  if (flight != nullptr && flight->result.ok() && !leader) {
    // A deduplicated follower still counts as one reference: normally a
    // hit on the leader's freshly admitted set -- exactly the cost the
    // shared execution saved -- and a fresh admission decision when the
    // leader's offer was rejected. A caller whose fast-path reference
    // already counted only repairs the payload.
    if (options_.metrics) metrics_.dedup_hits.Inc();
    QueryDescriptor desc = probe;
    desc.result_bytes = flight->result->payload.size();
    desc.cost = flight->result->cost;
    OfferToCache(desc, *flight->result, flight->epoch_at_start, now,
                 /*record_reference=*/!already_referenced);
  }
  if (options_.metrics && leader && flight != nullptr &&
      flight->result.ok()) {
    // The admission outcome of this execution: what the policy kept vs
    // declined, by cost and by the paper's profit (cost/size) in ppm.
    metrics_.executions.Inc();
    const uint64_t cost = flight->result->cost;
    const uint64_t bytes = flight->result->payload.size();
    const bool admitted = bytes > 0 && cache_->Contains(probe.key);
    const uint64_t profit_ppm =
        bytes == 0 ? 0 : cost * 1000000ull / bytes;
    if (admitted) {
      metrics_.admitted_cost.Record(cost);
      metrics_.admitted_profit_ppm.Record(profit_ppm);
    } else {
      metrics_.rejected_cost.Record(cost);
      metrics_.rejected_profit_ppm.Record(profit_ppm);
    }
  }
  ReleaseInflightOffer();

  if (flight == nullptr) {
    // The leader's executor threw; it propagated the exception and the
    // flight was released without a result.
    return Status::Internal("query execution failed for a waiting caller");
  }
  if (!flight->result.ok()) return flight->result.status();
  return flight->result->payload;
}

void Watchman::ReleaseInflightOffer() {
  if (inflight_offers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last overlapping execution finished: every future flight will
    // snapshot an epoch at least as new as anything recorded, so the
    // per-relation records can no longer change a staleness check.
    MutexLock lock(coherence_mu_);
    if (inflight_offers_.load(std::memory_order_acquire) == 0) {
      relation_invalidation_epoch_.clear();
      query_invalidation_epoch_.clear();
    }
  }
}

StatusOr<std::string> Watchman::GetCached(const std::string& query_text) {
  RequestScratch& scratch = Scratch();
  MakeQueryIdInto(query_text, &scratch.id);
  if (scratch.id.empty()) {
    return Status::InvalidArgument("query text contains no tokens");
  }
  scratch.probe.key.Assign(scratch.id);
  scratch.probe.result_bytes = 0;
  scratch.probe.cost = 0;
  if (!cache_->TryReferenceCached(scratch.probe, NowTick())) {
    return Status::NotFound("not cached: " + scratch.id);
  }
  StatusOr<std::string> payload = GetPayload(scratch.id);
  if (!payload.ok()) {
    // Evicted between the reference and the fetch; report the miss (the
    // recorded reference stands, matching a hit that raced an eviction).
    return Status::NotFound("payload evicted concurrently: " + scratch.id);
  }
  return payload;
}

Status Watchman::GetCachedInto(const std::string& query_text,
                               std::string* out) {
  RequestScratch& scratch = Scratch();
  MakeQueryIdInto(query_text, &scratch.id);
  if (scratch.id.empty()) {
    return Status::InvalidArgument("query text contains no tokens");
  }
  scratch.probe.key.Assign(scratch.id);
  scratch.probe.result_bytes = 0;
  scratch.probe.cost = 0;
  if (!cache_->TryReferenceCached(scratch.probe, NowTick())) {
    return Status::NotFound("not cached: " + scratch.id);
  }
  const Status fetched = GetPayloadInto(scratch.id, out);
  if (!fetched.ok()) {
    // Evicted between the reference and the fetch; report the miss (the
    // recorded reference stands, matching a hit that raced an eviction).
    return Status::NotFound("payload evicted concurrently: " + scratch.id);
  }
  return Status::OK();
}

bool Watchman::IsCached(const std::string& query_text) const {
  RequestScratch& scratch = Scratch();
  MakeQueryIdInto(query_text, &scratch.id);
  scratch.probe.key.Assign(scratch.id);
  return cache_->Contains(scratch.probe.key);
}

bool Watchman::Invalidate(const std::string& query_text) {
  const std::string query_id = MakeQueryId(query_text);
  // Stamp the epoch before erasing so an in-flight execution of this
  // query that started earlier cannot re-cache its pre-update result.
  const uint64_t epoch =
      invalidation_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  {
    MutexLock lock(coherence_mu_);
    query_invalidation_epoch_[query_id] = epoch;
  }
  const bool erased = cache_->Erase(query_id);
  if (erased) invalidations_.fetch_add(1, std::memory_order_relaxed);
  return erased;
}

size_t Watchman::InvalidateRelation(const std::string& relation) {
  // Stamp the invalidation epoch first: any in-flight execution that
  // read `relation` before this point will see the newer epoch when it
  // tries to cache its (pre-update) result and discard it.
  const uint64_t epoch =
      invalidation_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Snapshot the dependent IDs, then erase without holding the
  // coherence lock (Erase takes the shard lock and fires the listener,
  // which re-acquires the coherence lock).
  std::vector<std::string> ids;
  {
    MutexLock lock(coherence_mu_);
    relation_invalidation_epoch_[relation] = epoch;
    auto it = dependents_.find(relation);
    if (it == dependents_.end()) return 0;
    ids.assign(it->second.begin(), it->second.end());
  }
  size_t dropped = 0;
  for (const std::string& id : ids) {
    if (cache_->Erase(id)) ++dropped;
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

void Watchman::SetAdmissionListener(AdmissionListener listener) {
  admission_listener_ = std::move(listener);
}

}  // namespace watchman
