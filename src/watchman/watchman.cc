#include "watchman/watchman.h"

#include <cassert>
#include <utility>

#include "cache/query_descriptor.h"
#include "util/hash.h"
#include "util/query_normalizer.h"
#include "util/string_util.h"

namespace watchman {

Watchman::Watchman(Options options, Executor executor)
    : options_(std::move(options)), executor_(std::move(executor)) {
  assert(executor_ != nullptr);
  LncOptions lnc;
  lnc.capacity_bytes = options_.capacity_bytes;
  lnc.k = options_.k;
  lnc.admission = options_.admission;
  lnc.retain_reference_info = options_.retain_reference_info;
  cache_ = std::make_unique<LncCache>(lnc);
  if (options_.payload_store != nullptr) {
    payloads_ = std::move(options_.payload_store);
  } else {
    payloads_ = std::make_unique<MemoryPayloadStore>();
  }
  cache_->SetEvictionListener([this](const QueryDescriptor& d) {
    payloads_->Erase(d.query_id);
    ForgetDependencies(d.query_id);
  });
}

Timestamp Watchman::NowTick() {
  if (options_.clock) return options_.clock();
  return ++internal_clock_;
}

std::string Watchman::MakeQueryId(const std::string& query_text) const {
  return options_.normalize_queries ? NormalizeQuery(query_text)
                                    : CompressQueryId(query_text);
}

void Watchman::ForgetDependencies(const std::string& query_id) {
  auto it = reads_.find(query_id);
  if (it == reads_.end()) return;
  for (const std::string& relation : it->second) {
    auto dep = dependents_.find(relation);
    if (dep == dependents_.end()) continue;
    dep->second.erase(query_id);
    if (dep->second.empty()) dependents_.erase(dep);
  }
  reads_.erase(it);
}

StatusOr<std::string> Watchman::Query(const std::string& query_text) {
  const std::string query_id = MakeQueryId(query_text);
  if (query_id.empty()) {
    return Status::InvalidArgument("query text contains no tokens");
  }
  const Timestamp now = NowTick();

  // Fast path: payload already cached. The cache's Reference() both
  // detects the hit and updates the reference history, but it needs the
  // descriptor (size/cost); for a cached set those are the stored ones.
  if (payloads_->Contains(query_id)) {
    StatusOr<std::string> payload = payloads_->Get(query_id);
    if (!payload.ok()) return payload.status();
    QueryDescriptor desc;
    desc.query_id = query_id;
    desc.signature = ComputeSignature(query_id);
    desc.result_bytes = payload->size();
    desc.cost = 0;  // hits are credited the stored cost by the cache
    const bool hit = cache_->Reference(desc, now);
    assert(hit);
    (void)hit;
    return payload;
  }

  // Miss: execute, then offer the retrieved set to the cache.
  StatusOr<ExecutionResult> executed = executor_(query_text);
  if (!executed.ok()) return executed.status();

  QueryDescriptor desc;
  desc.query_id = query_id;
  desc.signature = ComputeSignature(query_id);
  desc.result_bytes = executed->payload.size();
  desc.cost = executed->cost;
  if (desc.result_bytes == 0) {
    // Empty retrieved sets are returned but not cached (nothing to
    // store; the cache rejects zero-size sets anyway).
    cache_->Reference(desc, now);
    return std::move(executed->payload);
  }
  const bool hit = cache_->Reference(desc, now);
  assert(!hit);
  (void)hit;
  if (cache_->Contains(query_id)) {
    Status stored = payloads_->Put(query_id, executed->payload);
    if (!stored.ok()) {
      // Storage failure: keep the cache metadata consistent by
      // dropping the entry; serve the fresh result regardless.
      cache_->Erase(query_id);
      return std::move(executed->payload);
    }
    if (!executed->relations.empty()) {
      reads_[query_id] = executed->relations;
      for (const std::string& relation : executed->relations) {
        dependents_[relation].insert(query_id);
      }
    }
    if (admission_listener_) admission_listener_(query_id);
  }
  return std::move(executed->payload);
}

bool Watchman::IsCached(const std::string& query_text) const {
  return cache_->Contains(MakeQueryId(query_text));
}

bool Watchman::Invalidate(const std::string& query_text) {
  const std::string query_id = MakeQueryId(query_text);
  const bool erased = cache_->Erase(query_id);
  if (erased) ++invalidations_;
  return erased;
}

size_t Watchman::InvalidateRelation(const std::string& relation) {
  auto it = dependents_.find(relation);
  if (it == dependents_.end()) return 0;
  // Erasing mutates dependents_ via the eviction listener; copy first.
  const std::vector<std::string> ids(it->second.begin(), it->second.end());
  size_t dropped = 0;
  for (const std::string& id : ids) {
    if (cache_->Erase(id)) ++dropped;
  }
  invalidations_ += dropped;
  return dropped;
}

void Watchman::SetAdmissionListener(AdmissionListener listener) {
  admission_listener_ = std::move(listener);
}

}  // namespace watchman
