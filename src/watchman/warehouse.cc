#include "watchman/warehouse.h"

#include "util/hash.h"

namespace watchman {

std::string SynthesizePayload(uint64_t seed, uint64_t bytes) {
  std::string payload;
  payload.resize(bytes);
  uint64_t state = Mix64(seed ^ 0x9a71d00dULL);
  size_t i = 0;
  while (i < payload.size()) {
    state = Mix64(state + 0x9e3779b97f4a7c15ULL);
    for (int b = 0; b < 8 && i < payload.size(); ++b, ++i) {
      payload[i] = static_cast<char>((state >> (8 * b)) & 0xff);
    }
  }
  return payload;
}

Watchman::ExecutionResult SimulatedWarehouse::Execute(
    const QueryEvent& event) {
  ++executions_;
  total_block_reads_ += event.cost_block_reads;
  Watchman::ExecutionResult result;
  result.payload = SynthesizePayload(
      HashCombine(event.template_id, event.instance), event.result_bytes);
  result.cost = event.cost_block_reads;
  return result;
}

}  // namespace watchman
