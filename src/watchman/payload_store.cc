#include "watchman/payload_store.h"

#include "util/errno_string.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace watchman {

// ------------------------------------------------ MemoryPayloadStore

Status MemoryPayloadStore::Put(const std::string& key,
                               const std::string& payload) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    live_bytes_ -= it->second.size();
    it->second = payload;
  } else {
    map_.emplace(key, payload);
  }
  live_bytes_ += payload.size();
  return Status::OK();
}

StatusOr<std::string> MemoryPayloadStore::Get(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("no payload for: " + key);
  return it->second;
}

Status MemoryPayloadStore::GetInto(const std::string& key,
                                   std::string* out) {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("no payload for: " + key);
  out->assign(it->second);
  return Status::OK();
}

bool MemoryPayloadStore::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  live_bytes_ -= it->second.size();
  map_.erase(it);
  return true;
}

bool MemoryPayloadStore::Contains(const std::string& key) const {
  return map_.contains(key);
}

// -------------------------------------------------- FilePayloadStore

StatusOr<std::unique_ptr<FilePayloadStore>> FilePayloadStore::Open(
    const std::string& path, const Options& options) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open payload log: " + path + ": " +
                           ErrnoString(errno));
  }
  return std::unique_ptr<FilePayloadStore>(
      new FilePayloadStore(path, options, fd));
}

FilePayloadStore::FilePayloadStore(std::string path, const Options& options,
                                   int fd)
    : path_(std::move(path)), options_(options), fd_(fd) {}

FilePayloadStore::~FilePayloadStore() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

Status FilePayloadStore::AppendRecord(const std::string& key,
                                      const std::string& payload,
                                      Slot* slot) {
  // Record layout: u32 key length, u32 payload length, key, payload.
  std::string header(8, '\0');
  const uint32_t klen = static_cast<uint32_t>(key.size());
  const uint32_t plen = static_cast<uint32_t>(payload.size());
  std::memcpy(header.data(), &klen, 4);
  std::memcpy(header.data() + 4, &plen, 4);

  const uint64_t record_offset = file_bytes_;
  std::string record = header + key + payload;
  ssize_t written = ::pwrite(fd_, record.data(), record.size(),
                             static_cast<off_t>(record_offset));
  if (written < 0 || static_cast<size_t>(written) != record.size()) {
    return Status::IOError("short write to payload log");
  }
  file_bytes_ += record.size();
  slot->offset = record_offset + 8 + key.size();
  slot->length = payload.size();
  return Status::OK();
}

Status FilePayloadStore::Put(const std::string& key,
                             const std::string& payload) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Old record becomes garbage.
    garbage_bytes_ += 8 + key.size() + it->second.length;
    live_bytes_ -= it->second.length;
  }
  Slot slot;
  WATCHMAN_RETURN_IF_ERROR(AppendRecord(key, payload, &slot));
  index_[key] = slot;
  live_bytes_ += payload.size();
  return MaybeCompact();
}

StatusOr<std::string> FilePayloadStore::Get(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no payload for: " + key);
  std::string out;
  out.resize(it->second.length);
  const ssize_t got = ::pread(fd_, out.data(), out.size(),
                              static_cast<off_t>(it->second.offset));
  if (got < 0 || static_cast<size_t>(got) != out.size()) {
    return Status::IOError("short read from payload log");
  }
  return out;
}

bool FilePayloadStore::Erase(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  garbage_bytes_ += 8 + key.size() + it->second.length;
  live_bytes_ -= it->second.length;
  index_.erase(it);
  // Compaction failures here would lose nothing but space; ignore the
  // status (cache payloads are rebuildable).
  MaybeCompact();
  return true;
}

bool FilePayloadStore::Contains(const std::string& key) const {
  return index_.contains(key);
}

Status FilePayloadStore::MaybeCompact() {
  if (file_bytes_ == 0 ||
      static_cast<double>(garbage_bytes_) <
          options_.compaction_ratio * static_cast<double>(file_bytes_)) {
    return Status::OK();
  }
  // Rewrite live records into a fresh log.
  const std::string tmp_path = path_ + ".compact";
  const int new_fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                            0644);
  if (new_fd < 0) return Status::IOError("cannot open compaction log");

  uint64_t new_offset = 0;
  std::unordered_map<std::string, Slot> new_index;
  new_index.reserve(index_.size());
  for (const auto& [key, slot] : index_) {
    std::string payload;
    payload.resize(slot.length);
    const ssize_t got = ::pread(fd_, payload.data(), payload.size(),
                                static_cast<off_t>(slot.offset));
    if (got < 0 || static_cast<size_t>(got) != payload.size()) {
      ::close(new_fd);
      ::unlink(tmp_path.c_str());
      return Status::IOError("compaction read failed");
    }
    std::string header(8, '\0');
    const uint32_t klen = static_cast<uint32_t>(key.size());
    const uint32_t plen = static_cast<uint32_t>(payload.size());
    std::memcpy(header.data(), &klen, 4);
    std::memcpy(header.data() + 4, &plen, 4);
    const std::string record = header + key + payload;
    const ssize_t written = ::pwrite(new_fd, record.data(), record.size(),
                                     static_cast<off_t>(new_offset));
    if (written < 0 || static_cast<size_t>(written) != record.size()) {
      ::close(new_fd);
      ::unlink(tmp_path.c_str());
      return Status::IOError("compaction write failed");
    }
    new_index[key] = Slot{new_offset + 8 + key.size(), payload.size()};
    new_offset += record.size();
  }
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::close(new_fd);
    ::unlink(tmp_path.c_str());
    return Status::IOError("compaction rename failed");
  }
  ::close(fd_);
  fd_ = new_fd;
  index_ = std::move(new_index);
  file_bytes_ = new_offset;
  garbage_bytes_ = 0;
  ++compactions_;
  return Status::OK();
}

}  // namespace watchman
