// QueryCache: the common machinery of all retrieved-set cache policies.
//
// A cache maps query keys to cached retrieved sets under a byte-capacity
// budget. Lookup uses a 64-bit signature prefilter followed by an exact
// query-ID match (paper section 3). Subclasses implement the replacement
// (and optionally admission) decisions; the base class owns the index,
// byte accounting and statistics so that every policy measures cost
// savings ratio and hit ratio identically.
//
// Hot-path layout: the base index is a flat open-addressing table keyed
// by the precomputed signature (open_table.h) and entries live in a
// slab/freelist arena (entry_arena.h), so a hit costs one masked probe
// plus an inline-ID compare -- no hashing, no bucket chains, no
// allocation -- and miss+evict churn recycles entry slots in place.
//
// Victim selection is driven by a policy-maintained eviction index (see
// victim_index.h): the base notifies the policy when entries enter and
// leave the cache (OnInsert / OnEvict) and the policy keeps its entries
// in eviction order incrementally, so a miss walks the index instead of
// rebuilding a heap over all entries.

#ifndef WATCHMAN_CACHE_QUERY_CACHE_H_
#define WATCHMAN_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/entry_arena.h"
#include "cache/open_table.h"
#include "cache/query_descriptor.h"
#include "cache/ref_history.h"
#include "cache/victim_index.h"
#include "util/clock.h"
#include "util/status.h"

namespace watchman {

/// Counters every cache maintains; CSR = cost_saved / cost_total and
/// HR = hits / lookups reproduce the paper's metrics (eqs. 1 and 17).
struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Misses the admission policy declined to cache.
  uint64_t admission_rejections = 0;
  /// Misses whose retrieved set exceeds the entire cache capacity.
  uint64_t too_large_rejections = 0;
  uint64_t cost_total = 0;
  uint64_t cost_saved = 0;
  uint64_t bytes_inserted = 0;
  uint64_t bytes_evicted = 0;

  double hit_ratio() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  double cost_savings_ratio() const {
    return cost_total == 0 ? 0.0
                           : static_cast<double>(cost_saved) /
                                 static_cast<double>(cost_total);
  }

  /// Accumulates `other` into this (per-shard stats aggregation).
  void Accumulate(const CacheStats& other);
};

/// Abstract retrieved-set cache. Thread-compatible (external
/// synchronization required), like the paper's library design; see
/// ShardedQueryCache for the synchronized, partitioned front-end.
class QueryCache {
 public:
  /// Common configuration of all policies.
  struct Options {
    /// Cache capacity in bytes. Must be > 0.
    uint64_t capacity_bytes = 0;
    /// Reference-history depth K (paper's K; policies that only use the
    /// last reference run with K = 1).
    size_t k = 1;
  };

  explicit QueryCache(const Options& options);
  virtual ~QueryCache();

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Processes one reference to query `d` at time `now`. Returns true if
  /// the retrieved set was served from cache. On a miss the policy
  /// decides admission and eviction. Timestamps are expected to be
  /// non-decreasing across calls; a slightly older `now` (concurrent
  /// callers racing into different shards) is clamped forward rather
  /// than rejected.
  bool Reference(const QueryDescriptor& d, Timestamp now);

  /// Hit-only probe: when `d` is cached, records the reference exactly
  /// like Reference() and returns true; otherwise leaves the cache and
  /// its statistics untouched (no lookup is counted) and returns false.
  /// Lets a caller that must materialize the miss outside the cache lock
  /// (Watchman::Execute) split the lookup from the later offer.
  bool TryReferenceCached(const QueryDescriptor& d, Timestamp now);

  /// True if the retrieved set of `key` is currently cached.
  bool Contains(const QueryKey& key) const;
  /// Convenience overload that computes the signature.
  bool Contains(std::string_view query_id) const {
    return Contains(QueryKey(query_id));
  }

  /// Removes the retrieved set of `key` from the cache (cache
  /// coherence: the warehouse manager invalidates sets affected by an
  /// update, paper section 3). Fires the eviction listener and the
  /// OnEvict hook like a replacement eviction. Returns true if an entry
  /// was removed.
  bool Erase(const QueryKey& key);
  /// Convenience overload that computes the signature.
  bool Erase(std::string_view query_id) { return Erase(QueryKey(query_id)); }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  uint64_t available_bytes() const {
    return used_ >= capacity_ ? 0 : capacity_ - used_;
  }
  size_t entry_count() const { return entry_count_; }
  size_t k() const { return k_; }
  const CacheStats& stats() const { return stats_; }

  /// Policy name for reports ("lru", "lnc-ra", ...).
  virtual std::string name() const = 0;

  /// Entries in the policy's retained-information store (0 for policies
  /// without one).
  virtual size_t retained_count() const { return 0; }

  /// Registers a callback invoked whenever an entry is evicted (used by
  /// the buffer-hint machinery to track which retrieved sets are
  /// resident). Admission rejections do not fire it.
  void SetEvictionListener(
      std::function<void(const QueryDescriptor&)> listener) {
    eviction_listener_ = std::move(listener);
  }

  /// Verifies internal accounting (byte totals, entry counts, capacity
  /// bound, index probe invariants) and cross-checks the policy's victim
  /// index against it. Used by tests and debug assertions.
  Status CheckInvariants() const;

  /// Shrink-to-fit pass for metadata that grew to a past peak: the
  /// signature index rehashes down to the current entry count, the entry
  /// arena returns fully-free slabs, and the policy compacts its own
  /// stores (OnCompact). Intended for quiescent moments in long-lived
  /// daemons whose working set shrank; safe (but pointless) anytime.
  void Compact();

  /// Slot capacity of the signature index / slab count of the entry
  /// arena (observability for the Compact() tests and stats).
  size_t index_capacity() const { return index_.capacity(); }
  size_t arena_slab_count() const { return arena_.slab_count(); }

 protected:
  /// A cached retrieved set and its bookkeeping.
  struct Entry {
    QueryDescriptor desc;
    ReferenceHistory history;
    /// References received while cached (used by LFU).
    uint64_t cached_refs = 0;
    /// GreedyDual-Size inflated value (used by GdsCache only).
    double gds_h = 0.0;
    /// Victim-index hooks: intrusive-list linkage and the ordered-index
    /// key handle (see victim_index.h). Maintained by the policy.
    Entry* vprev = nullptr;
    Entry* vnext = nullptr;
    VictimKey vkey;
    /// Time the stored vkey was last evaluated (LazyOrderedVictimIndex
    /// staleness stamp; maintained by lazily-keyed policies only).
    Timestamp vkey_eval = 0;
  };

  using VictimList = IntrusiveVictimList<Entry>;
  using VictimIndex = OrderedVictimIndex<Entry>;
  using LazyVictimIndex = LazyOrderedVictimIndex<Entry>;

  /// Hook invoked after the base records a cache hit (history already
  /// updated); the policy re-keys the entry in its victim index.
  virtual void OnHit(Entry* entry, Timestamp now) = 0;

  /// Hook invoked on a miss; the policy performs admission, eviction and
  /// insertion via the protected helpers.
  virtual void OnMiss(const QueryDescriptor& d, Timestamp now) = 0;

  /// Hook invoked by InsertEntry after the base bookkeeping; the policy
  /// adds the entry to its victim index.
  virtual void OnInsert(Entry* entry, Timestamp now) = 0;

  /// Hook invoked just before an entry leaves the cache; the policy
  /// removes it from its victim index (and may retain reference
  /// information).
  virtual void OnEvict(Entry* entry) = 0;

  /// Cross-checks the policy's victim index against the base accounting:
  /// every cached entry indexed exactly once, index byte total equal to
  /// used_bytes(). Called by CheckInvariants().
  virtual Status CheckPolicyIndex() const = 0;

  /// Hook invoked by Compact() after the base shrinks its index and
  /// arena; policies with auxiliary stores (retained reference
  /// information) shrink them here.
  virtual void OnCompact() {}

  /// Latest reference time the cache has seen (policies use it to bound
  /// key staleness in invariant checks).
  Timestamp last_reference_time() const { return last_reference_time_; }

  /// Inserts a new entry; there must be room (checked). If `history` is
  /// non-null its contents seed the entry's reference history (retained
  /// reference information); otherwise the entry starts with the single
  /// reference at `now`. Invokes OnInsert.
  Entry* InsertEntry(const QueryDescriptor& d, Timestamp now,
                     const ReferenceHistory* history = nullptr);

  /// Evicts `entry` (calls OnEvict first).
  void EvictEntry(Entry* entry);

  /// Returns pointers to all entries; invalidated by insert/evict.
  std::vector<Entry*> AllEntries();

  /// Walks `list` front-to-back collecting victims until their sizes sum
  /// to at least `bytes_needed`. Does not evict.
  static std::vector<Entry*> CollectVictims(const VictimList& list,
                                            uint64_t bytes_needed);

  /// Walks `index` in ascending key order collecting victims until their
  /// sizes sum to at least `bytes_needed`. Does not evict.
  static std::vector<Entry*> CollectVictims(const VictimIndex& index,
                                            uint64_t bytes_needed);

  /// CollectVictims into a caller-owned scratch vector (cleared first),
  /// so steady-state miss paths reuse capacity instead of allocating a
  /// fresh vector per miss. Works over any ordered index whose items
  /// expose `->node` (VictimIndex and LazyVictimIndex).
  template <typename Index>
  static void CollectVictimsInto(const Index& index, uint64_t bytes_needed,
                                 std::vector<Entry*>* out) {
    out->clear();
    uint64_t freed = 0;
    for (auto it = index.begin(); it != index.end() && freed < bytes_needed;
         ++it) {
      out->push_back(it->node);
      freed += it->node->desc.result_bytes;
    }
  }

  /// Revalidated victim walk over a lazily-keyed index: visits entries
  /// in ascending stored-key order, calling `validate(entry)` on each
  /// before accepting it. `validate` may Refresh() the entry's key in
  /// `index` (the walk advances its iterator before invoking it), so
  /// stale keys at the eviction end are repaired as a side effect.
  ///
  /// Because lazily-stored keys only decay, a refreshed key can only
  /// move *earlier*: the refreshed entry still sorts at or before every
  /// remaining stored key, so accepting entries in visit order yields
  /// exactly the ascending prefix of the post-walk key order -- no
  /// restart is needed. Collects into the caller's scratch vector until
  /// the victims' sizes sum to at least `bytes_needed`. Does not evict.
  template <typename Validate>
  static void CollectVictimsValidatedInto(const LazyVictimIndex& index,
                                          uint64_t bytes_needed,
                                          Validate&& validate,
                                          std::vector<Entry*>* out) {
    out->clear();
    uint64_t freed = 0;
    auto it = index.begin();
    while (it != index.end() && freed < bytes_needed) {
      Entry* e = it->node;
      // Advance past `e` before validate() may re-key (and therefore
      // re-seat) it; iterators to other elements stay valid.
      ++it;
      validate(e);
      out->push_back(e);
      freed += e->desc.result_bytes;
    }
  }

  /// Shared tail of CheckPolicyIndex(): compares a policy index's walked
  /// totals against the base accounting (every cached entry indexed
  /// exactly once, bytes equal to used_bytes()).
  Status CheckIndexAccounting(const char* index_name, size_t indexed_entries,
                              uint64_t indexed_bytes) const;

  /// Records an admission rejection in the stats.
  void CountAdmissionRejection() { ++stats_.admission_rejections; }
  void CountTooLargeRejection() { ++stats_.too_large_rejections; }

 private:
  bool ReferenceImpl(const QueryDescriptor& d, Timestamp now,
                     bool probe_only);
  Entry* FindEntry(const QueryKey& key) const;

  uint64_t capacity_;
  size_t k_;
  uint64_t used_ = 0;
  size_t entry_count_ = 0;
  CacheStats stats_;
  Timestamp last_reference_time_ = 0;
  /// Signature-keyed open-addressing index; exact ID match resolves
  /// collisions, mirroring the paper's lookup design.
  SignatureTable<Entry> index_;
  /// Slab/freelist storage of the entries the index points into.
  SlabArena<Entry> arena_;
  std::function<void(const QueryDescriptor&)> eviction_listener_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_QUERY_CACHE_H_
