// QueryCache: the common machinery of all retrieved-set cache policies.
//
// A cache maps query IDs to cached retrieved sets under a byte-capacity
// budget. Lookup uses a 64-bit signature prefilter followed by an exact
// query-ID match (paper section 3). Subclasses implement the replacement
// (and optionally admission) decisions; the base class owns the index,
// byte accounting and statistics so that every policy measures cost
// savings ratio and hit ratio identically.

#ifndef WATCHMAN_CACHE_QUERY_CACHE_H_
#define WATCHMAN_CACHE_QUERY_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/query_descriptor.h"
#include "cache/ref_history.h"
#include "util/clock.h"
#include "util/status.h"

namespace watchman {

/// Counters every cache maintains; CSR = cost_saved / cost_total and
/// HR = hits / lookups reproduce the paper's metrics (eqs. 1 and 17).
struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Misses the admission policy declined to cache.
  uint64_t admission_rejections = 0;
  /// Misses whose retrieved set exceeds the entire cache capacity.
  uint64_t too_large_rejections = 0;
  uint64_t cost_total = 0;
  uint64_t cost_saved = 0;
  uint64_t bytes_inserted = 0;
  uint64_t bytes_evicted = 0;

  double hit_ratio() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  double cost_savings_ratio() const {
    return cost_total == 0 ? 0.0
                           : static_cast<double>(cost_saved) /
                                 static_cast<double>(cost_total);
  }
};

/// Abstract retrieved-set cache. Thread-compatible (external
/// synchronization required), like the paper's library design.
class QueryCache {
 public:
  /// Common configuration of all policies.
  struct Options {
    /// Cache capacity in bytes. Must be > 0.
    uint64_t capacity_bytes = 0;
    /// Reference-history depth K (paper's K; policies that only use the
    /// last reference run with K = 1).
    size_t k = 1;
  };

  explicit QueryCache(const Options& options);
  virtual ~QueryCache() = default;

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Processes one reference to query `d` at time `now` (non-decreasing
  /// across calls). Returns true if the retrieved set was served from
  /// cache. On a miss the policy decides admission and eviction.
  bool Reference(const QueryDescriptor& d, Timestamp now);

  /// True if the retrieved set of `query_id` is currently cached.
  bool Contains(const std::string& query_id) const;

  /// Removes the retrieved set of `query_id` from the cache (cache
  /// coherence: the warehouse manager invalidates sets affected by an
  /// update, paper section 3). Fires the eviction listener and the
  /// OnEvict hook like a replacement eviction. Returns true if an entry
  /// was removed.
  bool Erase(const std::string& query_id);

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  uint64_t available_bytes() const { return capacity_ - used_; }
  size_t entry_count() const { return entry_count_; }
  size_t k() const { return k_; }
  const CacheStats& stats() const { return stats_; }

  /// Policy name for reports ("lru", "lnc-ra", ...).
  virtual std::string name() const = 0;

  /// Registers a callback invoked whenever an entry is evicted (used by
  /// the buffer-hint machinery to track which retrieved sets are
  /// resident). Admission rejections do not fire it.
  void SetEvictionListener(
      std::function<void(const QueryDescriptor&)> listener) {
    eviction_listener_ = std::move(listener);
  }

  /// Verifies internal accounting (byte totals, entry counts, capacity
  /// bound). Used by tests and debug assertions.
  Status CheckInvariants() const;

 protected:
  /// A cached retrieved set and its bookkeeping.
  struct Entry {
    QueryDescriptor desc;
    ReferenceHistory history;
    /// References received while cached (used by LFU).
    uint64_t cached_refs = 0;
    Timestamp inserted_at = 0;
    /// GreedyDual-Size inflated value (used by GdsCache only).
    double gds_h = 0.0;
  };

  /// Hook invoked after the base records a cache hit (history already
  /// updated).
  virtual void OnHit(Entry* entry, Timestamp now) = 0;

  /// Hook invoked on a miss; the policy performs admission, eviction and
  /// insertion via the protected helpers.
  virtual void OnMiss(const QueryDescriptor& d, Timestamp now) = 0;

  /// Hook invoked just before an entry leaves the cache (for retained
  /// reference information).
  virtual void OnEvict(const Entry& entry) { (void)entry; }

  /// Inserts a new entry; there must be room (checked). If `history` is
  /// non-null its contents seed the entry's reference history (retained
  /// reference information); otherwise the entry starts with the single
  /// reference at `now`.
  Entry* InsertEntry(const QueryDescriptor& d, Timestamp now,
                     const ReferenceHistory* history = nullptr);

  /// Evicts `entry` (calls OnEvict first).
  void EvictEntry(Entry* entry);

  /// Returns pointers to all entries; invalidated by insert/evict.
  std::vector<Entry*> AllEntries();

  /// Selects victims in ascending `key` order until their sizes sum to at
  /// least `bytes_needed`. Does not evict. `KeyFn` maps Entry* to a
  /// strict-weak-ordered key (double, pair, tuple...).
  template <typename KeyFn>
  std::vector<Entry*> SelectVictims(uint64_t bytes_needed, KeyFn key_fn) {
    using Key = decltype(key_fn(static_cast<Entry*>(nullptr)));
    std::vector<std::pair<Key, Entry*>> heap;
    heap.reserve(entry_count_);
    for (auto& [sig, bucket] : index_) {
      for (auto& entry : bucket) {
        heap.emplace_back(key_fn(entry.get()), entry.get());
      }
    }
    auto greater = [](const std::pair<Key, Entry*>& a,
                      const std::pair<Key, Entry*>& b) {
      return b.first < a.first;
    };
    std::make_heap(heap.begin(), heap.end(), greater);
    std::vector<Entry*> victims;
    uint64_t freed = 0;
    while (freed < bytes_needed && !heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), greater);
      Entry* e = heap.back().second;
      heap.pop_back();
      victims.push_back(e);
      freed += e->desc.result_bytes;
    }
    return victims;
  }

  /// Records an admission rejection in the stats.
  void CountAdmissionRejection() { ++stats_.admission_rejections; }
  void CountTooLargeRejection() { ++stats_.too_large_rejections; }

 private:
  Entry* FindEntry(const QueryDescriptor& d);

  uint64_t capacity_;
  size_t k_;
  uint64_t used_ = 0;
  size_t entry_count_ = 0;
  CacheStats stats_;
  Timestamp last_reference_time_ = 0;
  /// signature -> entries with that signature (exact match resolves
  /// collisions, mirroring the paper's lookup design).
  std::unordered_map<uint64_t, std::vector<std::unique_ptr<Entry>>> index_;
  std::function<void(const QueryDescriptor&)> eviction_listener_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_QUERY_CACHE_H_
