#include "cache/lcs_cache.h"

#include <cstdint>
#include <utility>

namespace watchman {

LcsCache::LcsCache(uint64_t capacity_bytes)
    : QueryCache(Options{capacity_bytes, /*k=*/1}) {}

void LcsCache::OnHit(Entry* /*entry*/, Timestamp /*now*/) {}

void LcsCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  if (d.result_bytes > available_bytes()) {
    auto victims = SelectVictims(
        d.result_bytes - available_bytes(), [](Entry* e) {
          // Largest first; ties broken least-recently-used first.
          return std::make_pair(
              ~uint64_t{0} - e->desc.result_bytes, e->history.last());
        });
    for (Entry* victim : victims) EvictEntry(victim);
  }
  InsertEntry(d, now);
}

}  // namespace watchman
