#include "cache/lcs_cache.h"

namespace watchman {

LcsCache::LcsCache(uint64_t capacity_bytes)
    : QueryCache(Options{capacity_bytes, /*k=*/1}) {}

void LcsCache::OnHit(Entry* entry, Timestamp /*now*/) {
  // Size is immutable; only the recency tie-break changes.
  by_size_.Update(entry, 0, -static_cast<double>(entry->desc.result_bytes),
                  entry->history.last());
}

void LcsCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  if (d.result_bytes > available_bytes()) {
    auto victims =
        CollectVictims(by_size_, d.result_bytes - available_bytes());
    for (Entry* victim : victims) EvictEntry(victim);
  }
  InsertEntry(d, now);
}

void LcsCache::OnInsert(Entry* entry, Timestamp /*now*/) {
  // Largest first: descending size, ties least-recently-used first.
  by_size_.Add(entry, 0, -static_cast<double>(entry->desc.result_bytes),
               entry->history.last());
}

void LcsCache::OnEvict(Entry* entry) { by_size_.Remove(entry); }

Status LcsCache::CheckPolicyIndex() const {
  uint64_t bytes = 0;
  for (const auto& item : by_size_) {
    bytes += item.node->desc.result_bytes;
  }
  return CheckIndexAccounting("lcs index", by_size_.size(), bytes);
}

}  // namespace watchman
