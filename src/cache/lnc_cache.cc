#include "cache/lnc_cache.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

namespace watchman {

LncCache::LncCache(const LncOptions& options)
    : QueryCache(Options{options.capacity_bytes, options.k}),
      opts_(options) {}

std::string LncCache::name() const {
  std::string base = opts_.admission ? "lnc-ra" : "lnc-r";
  return base + "(k=" + std::to_string(k()) + ")";
}

std::optional<double> LncCache::Rate(const ReferenceHistory& history,
                                     Timestamp now) const {
  Timestamp eval_time = now;
  if (opts_.aging_period > 0) {
    // Reduced-overhead mode: profits are evaluated against the last
    // refresh tick, so between ticks the estimates stay frozen.
    eval_time = std::max(aging_tick_, history.empty() ? 0 : history.last());
  }
  return history.EstimateRate(eval_time);
}

double LncCache::EntryProfit(const Entry& entry, Timestamp now) const {
  assert(entry.desc.result_bytes > 0);
  const double cost_per_byte =
      static_cast<double>(entry.desc.cost) /
      static_cast<double>(entry.desc.result_bytes);
  const auto rate = Rate(entry.history, now);
  if (!rate.has_value()) return cost_per_byte;
  return *rate * cost_per_byte;
}

double LncCache::MinCachedProfit(Timestamp now) {
  double min_profit = std::numeric_limits<double>::infinity();
  for (Entry* e : AllEntries()) {
    min_profit = std::min(min_profit, EntryProfit(*e, now));
  }
  return min_profit;
}

std::vector<QueryCache::Entry*> LncCache::SelectCandidates(
    uint64_t bytes_needed) {
  // Bucket R_i: i = number of recorded references (capped at K by the
  // history window). Lower buckets are evicted first; ascending profit
  // within a bucket. The index maintains exactly this order.
  return CollectVictims(by_profit_, bytes_needed);
}

double LncCache::ListProfit(const std::vector<Entry*>& list,
                            Timestamp now) const {
  double rate_cost_sum = 0.0;
  double size_sum = 0.0;
  for (const Entry* e : list) {
    const auto rate = Rate(e->history, now);
    // Candidates are cached, so they carry at least one past reference;
    // a missing rate can only mean the entry was inserted at `now`
    // itself. Fall back to its e-profit contribution.
    const double lambda = rate.has_value()
                              ? *rate
                              : 1.0 / static_cast<double>(
                                          e->desc.result_bytes);
    rate_cost_sum += lambda * static_cast<double>(e->desc.cost);
    size_sum += static_cast<double>(e->desc.result_bytes);
  }
  assert(size_sum > 0.0);
  return rate_cost_sum / size_sum;
}

double LncCache::ListEstimatedProfit(const std::vector<Entry*>& list) const {
  double cost_sum = 0.0;
  double size_sum = 0.0;
  for (const Entry* e : list) {
    cost_sum += static_cast<double>(e->desc.cost);
    size_sum += static_cast<double>(e->desc.result_bytes);
  }
  assert(size_sum > 0.0);
  return cost_sum / size_sum;
}

void LncCache::RekeyEntry(Entry* entry, Timestamp now, bool already_indexed) {
  const uint32_t bucket = static_cast<uint32_t>(entry->history.size());
  const double profit = EntryProfit(*entry, now);
  if (already_indexed) {
    by_profit_.Update(entry, bucket, profit, 0);
  } else {
    by_profit_.Add(entry, bucket, profit, 0);
  }
}

void LncCache::RefreshSomeProfits(Timestamp now) {
  if (refresh_queue_.empty() || opts_.sweep_interval == 0) return;
  const size_t batch =
      (entry_count() + opts_.sweep_interval - 1) / opts_.sweep_interval;
  for (size_t i = 0; i < batch && !refresh_queue_.empty(); ++i) {
    Entry* e = refresh_queue_.front();
    RekeyEntry(e, now, /*already_indexed=*/true);
    refresh_queue_.MoveToBack(e);
  }
}

void LncCache::OnHit(Entry* entry, Timestamp now) {
  RekeyEntry(entry, now, /*already_indexed=*/true);
  refresh_queue_.MoveToBack(entry);
  MaybeSweep(now);
}

void LncCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  MaybeSweep(now);
  if (d.result_bytes > capacity_bytes() || d.result_bytes == 0) {
    CountTooLargeRejection();
    return;
  }

  // Reconstruct the reference information for RS_i: retained history if
  // available, then record the current reference.
  ReferenceHistory history(k());
  bool had_retained = false;
  if (opts_.retain_reference_info) {
    if (RetainedInfo* info = retained_.Find(d.key)) {
      history = info->history;
      had_retained = true;
    }
  }
  history.Record(now);

  // Figure 1: when the set fits into free space it is cached without an
  // admission test.
  if (d.result_bytes <= available_bytes()) {
    InsertEntry(d, now, &history);
    if (had_retained) retained_.Remove(d.key);
    return;
  }

  const uint64_t bytes_needed = d.result_bytes - available_bytes();
  std::vector<Entry*> candidates = SelectCandidates(bytes_needed);

  bool admit = true;
  if (opts_.admission) {
    // LNC-A (Figure 1): with reference information compare profits,
    // otherwise compare estimated profits.
    const auto rate = Rate(history, now);
    if (rate.has_value()) {
      const double profit_rs = *rate * static_cast<double>(d.cost) /
                               static_cast<double>(d.result_bytes);
      admit = profit_rs > ListProfit(candidates, now);
    } else {
      const double e_profit_rs = static_cast<double>(d.cost) /
                                 static_cast<double>(d.result_bytes);
      admit = e_profit_rs > ListEstimatedProfit(candidates);
    }
  }

  if (admit) {
    for (Entry* victim : candidates) EvictEntry(victim);
    InsertEntry(d, now, &history);
    if (opts_.retain_reference_info) retained_.Remove(d.key);
  } else {
    CountAdmissionRejection();
    if (opts_.retain_reference_info) {
      // Section 2.4 (last paragraph): sets the admission algorithm
      // rejects also retain their reference information, so a set that
      // is initially rejected can be admitted once enough references
      // accumulate.
      RetainedInfo info;
      info.history = history;
      info.result_bytes = d.result_bytes;
      info.cost = d.cost;
      retained_.Put(d.key, std::move(info));
    }
  }
}

void LncCache::OnInsert(Entry* entry, Timestamp now) {
  RekeyEntry(entry, now, /*already_indexed=*/false);
  refresh_queue_.PushBack(entry);
}

void LncCache::OnEvict(Entry* entry) {
  by_profit_.Remove(entry);
  refresh_queue_.Remove(entry);
  RetainEntryInfo(*entry);
}

Status LncCache::CheckPolicyIndex() const {
  uint64_t bytes = 0;
  for (const auto& item : by_profit_) {
    if (item.key.bucket != item.node->history.size()) {
      return Status::Internal("lnc index bucket out of date");
    }
    bytes += item.node->desc.result_bytes;
  }
  if (refresh_queue_.size() != entry_count()) {
    return Status::Internal("lnc refresh queue entry count mismatch");
  }
  return CheckIndexAccounting("lnc index", by_profit_.size(), bytes);
}

void LncCache::RetainEntryInfo(const Entry& entry) {
  if (!opts_.retain_reference_info) return;
  RetainedInfo info;
  info.history = entry.history;
  info.result_bytes = entry.desc.result_bytes;
  info.cost = entry.desc.cost;
  retained_.Put(entry.desc.key, std::move(info));
}

void LncCache::MaybeSweep(Timestamp now) {
  if (opts_.aging_period > 0 && now >= aging_tick_ + opts_.aging_period) {
    aging_tick_ = now;
  }
  // Rate aging: refresh a bounded batch of index keys per reference, so
  // sets that stopped being referenced sink toward the eviction end
  // without any reference paying for a full-index walk.
  RefreshSomeProfits(now);
  if (++references_since_sweep_ < opts_.sweep_interval) return;
  references_since_sweep_ = 0;
  if (!opts_.retain_reference_info) return;
  if (retained_.empty()) return;
  const double min_profit = MinCachedProfit(now);
  if (std::isinf(min_profit)) return;
  retained_.SweepBelowProfit(min_profit, now);
}

}  // namespace watchman
