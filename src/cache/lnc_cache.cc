#include "cache/lnc_cache.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

namespace watchman {

LncCache::LncCache(const LncOptions& options)
    : QueryCache(Options{options.capacity_bytes, options.k}),
      opts_(options),
      by_profit_(options.eager_profits ? 0 : options.profit_quant_steps) {}

std::string LncCache::name() const {
  std::string base = opts_.admission ? "lnc-ra" : "lnc-r";
  return base + "(k=" + std::to_string(k()) + ")";
}

std::optional<double> LncCache::Rate(const ReferenceHistory& history,
                                     Timestamp now) const {
  Timestamp eval_time = now;
  if (opts_.aging_period > 0) {
    // Reduced-overhead mode: profits are evaluated against the last
    // refresh tick, so between ticks the estimates stay frozen.
    eval_time = std::max(aging_tick_, history.empty() ? 0 : history.last());
  }
  return history.EstimateRate(eval_time);
}

double LncCache::EntryProfit(const Entry& entry, Timestamp now) const {
  assert(entry.desc.result_bytes > 0);
  const double cost_per_byte =
      static_cast<double>(entry.desc.cost) /
      static_cast<double>(entry.desc.result_bytes);
  const auto rate = Rate(entry.history, now);
  if (!rate.has_value()) return cost_per_byte;
  return *rate * cost_per_byte;
}

double LncCache::MinCachedProfit(Timestamp now) {
  double min_profit = std::numeric_limits<double>::infinity();
  for (Entry* e : AllEntries()) {
    min_profit = std::min(min_profit, EntryProfit(*e, now));
  }
  return min_profit;
}

double LncCache::ApproxMinCachedProfit(Timestamp now) {
  double min_profit = std::numeric_limits<double>::infinity();
  size_t probed = 0;
  auto it = by_profit_.begin();
  while (it != by_profit_.end() && probed < kMinProfitProbe) {
    Entry* e = it->node;
    ++it;  // advance before the refresh may re-seat e
    const double profit = EntryProfit(*e, now);
    by_profit_.Refresh(e, static_cast<uint32_t>(e->history.size()), profit,
                       now);
    min_profit = std::min(min_profit, profit);
    ++probed;
  }
  return min_profit;
}

void LncCache::SelectCandidates(uint64_t bytes_needed, Timestamp now,
                                CandidateAggregates* agg) {
  // Bucket R_i: i = number of recorded references (capped at K by the
  // history window). Lower buckets are evicted first; ascending profit
  // within a bucket.
  if (opts_.eager_profits) {
    // Eager reference path: keys were refreshed within the aging
    // horizon; walk them as-is and leave the aggregates to the explicit
    // ListProfit walks.
    CollectVictimsInto(by_profit_, bytes_needed, &candidate_scratch_);
    return;
  }
  // Lazy path: the index holds each entry's profit as of its last
  // evaluation, an upper bound of its profit at `now`. Re-validate each
  // candidate at decision time -- the fresh key only moves toward the
  // eviction end, so the walk still visits the ascending prefix of
  // current keys -- and fold its rate into the admission aggregates
  // while its history is hot in cache.
  CollectVictimsValidatedInto(
      by_profit_, bytes_needed,
      [this, now, agg](Entry* e) {
        const auto rate = Rate(e->history, now);
        const double bytes = static_cast<double>(e->desc.result_bytes);
        const double cost = static_cast<double>(e->desc.cost);
        // Same association as EntryProfit -- rate * (cost/bytes) -- so
        // the stored key bit-matches a later recomputation.
        const double cost_per_byte = cost / bytes;
        const double profit =
            rate.has_value() ? *rate * cost_per_byte : cost_per_byte;
        by_profit_.Refresh(e, static_cast<uint32_t>(e->history.size()),
                           profit, now);
        // Candidates are cached, so they carry at least one past
        // reference; a missing rate can only mean the entry was
        // inserted at `now` itself. Eq. 5 falls back to lambda = 1/s.
        agg->rate_cost_sum += (rate.has_value() ? *rate : 1.0 / bytes) * cost;
        agg->cost_sum += cost;
        agg->size_sum += bytes;
      },
      &candidate_scratch_);
}

double LncCache::ListProfit(Timestamp now) const {
  double rate_cost_sum = 0.0;
  double size_sum = 0.0;
  for (const Entry* e : candidate_scratch_) {
    const auto rate = Rate(e->history, now);
    // Candidates are cached, so they carry at least one past reference;
    // a missing rate can only mean the entry was inserted at `now`
    // itself. Fall back to its e-profit contribution.
    const double lambda = rate.has_value()
                              ? *rate
                              : 1.0 / static_cast<double>(
                                          e->desc.result_bytes);
    rate_cost_sum += lambda * static_cast<double>(e->desc.cost);
    size_sum += static_cast<double>(e->desc.result_bytes);
  }
  assert(size_sum > 0.0);
  return rate_cost_sum / size_sum;
}

double LncCache::ListEstimatedProfit() const {
  double cost_sum = 0.0;
  double size_sum = 0.0;
  for (const Entry* e : candidate_scratch_) {
    cost_sum += static_cast<double>(e->desc.cost);
    size_sum += static_cast<double>(e->desc.result_bytes);
  }
  assert(size_sum > 0.0);
  return cost_sum / size_sum;
}

void LncCache::RekeyEntry(Entry* entry, Timestamp now, bool already_indexed) {
  const uint32_t bucket = static_cast<uint32_t>(entry->history.size());
  const double profit = EntryProfit(*entry, now);
  if (already_indexed) {
    by_profit_.Rekey(entry, bucket, profit, now);
  } else {
    by_profit_.Add(entry, bucket, profit, now);
  }
}

void LncCache::RefreshSomeProfits(Timestamp now) {
  if (refresh_queue_.empty() || opts_.sweep_interval == 0) return;
  const size_t batch =
      (entry_count() + opts_.sweep_interval - 1) / opts_.sweep_interval;
  for (size_t i = 0; i < batch && !refresh_queue_.empty(); ++i) {
    Entry* e = refresh_queue_.front();
    RekeyEntry(e, now, /*already_indexed=*/true);
    refresh_queue_.MoveToBack(e);
  }
}

void LncCache::RefreshSomeLazy(Timestamp now) {
  for (uint32_t i = 0;
       i < opts_.lazy_refresh_per_miss && !refresh_queue_.empty(); ++i) {
    Entry* e = refresh_queue_.front();
    by_profit_.Refresh(e, static_cast<uint32_t>(e->history.size()),
                       EntryProfit(*e, now), now);
    refresh_queue_.MoveToBack(e);
  }
}

void LncCache::OnHit(Entry* entry, Timestamp now) {
  if (opts_.eager_profits) {
    RekeyEntry(entry, now, /*already_indexed=*/true);
  } else {
    // Lazy: re-evaluate only the touched entry; the quantized level
    // usually has not moved, so most hits skip the tree re-key.
    by_profit_.Refresh(entry, static_cast<uint32_t>(entry->history.size()),
                       EntryProfit(*entry, now), now);
  }
  refresh_queue_.MoveToBack(entry);
  MaybeSweep(now);
}

void LncCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  MaybeSweep(now);
  if (d.result_bytes > capacity_bytes() || d.result_bytes == 0) {
    CountTooLargeRejection();
    return;
  }
  if (!opts_.eager_profits) {
    // Miss-time amortized aging: idle entries' keys age within
    // ceil(n / lazy_refresh_per_miss) misses, so long-unreferenced sets
    // sink toward the eviction end without any hit paying for it.
    RefreshSomeLazy(now);
  }

  // Reconstruct the reference information for RS_i: retained history if
  // available, then record the current reference.
  ReferenceHistory history(k());
  bool had_retained = false;
  if (opts_.retain_reference_info) {
    if (RetainedInfo* info = retained_.Find(d.key)) {
      history = info->history;
      had_retained = true;
    }
  }
  history.Record(now);

  // Figure 1: when the set fits into free space it is cached without an
  // admission test.
  if (d.result_bytes <= available_bytes()) {
    InsertEntry(d, now, &history);
    if (had_retained) retained_.Remove(d.key);
    return;
  }

  const uint64_t bytes_needed = d.result_bytes - available_bytes();
  CandidateAggregates agg;
  SelectCandidates(bytes_needed, now, &agg);

  bool admit = true;
  if (opts_.admission) {
    // LNC-A (Figure 1): with reference information compare profits,
    // otherwise compare estimated profits. The candidates' rates were
    // already estimated during the selection walk (lazy mode) -- the
    // aggregates reuse them; the eager reference path re-walks.
    const auto rate = Rate(history, now);
    if (rate.has_value()) {
      const double profit_rs = *rate * static_cast<double>(d.cost) /
                               static_cast<double>(d.result_bytes);
      const double list_profit =
          opts_.eager_profits ? ListProfit(now) : agg.profit();
      admit = profit_rs > list_profit;
    } else {
      const double e_profit_rs = static_cast<double>(d.cost) /
                                 static_cast<double>(d.result_bytes);
      const double list_e_profit =
          opts_.eager_profits ? ListEstimatedProfit() : agg.estimated_profit();
      admit = e_profit_rs > list_e_profit;
    }
  }

  if (admit) {
    for (Entry* victim : candidate_scratch_) EvictEntry(victim);
    candidate_scratch_.clear();
    InsertEntry(d, now, &history);
    if (opts_.retain_reference_info) retained_.Remove(d.key);
  } else {
    CountAdmissionRejection();
    if (opts_.retain_reference_info) {
      // Section 2.4 (last paragraph): sets the admission algorithm
      // rejects also retain their reference information, so a set that
      // is initially rejected can be admitted once enough references
      // accumulate.
      RetainedInfo info;
      info.history = history;
      info.result_bytes = d.result_bytes;
      info.cost = d.cost;
      retained_.Put(d.key, std::move(info));
    }
  }
}

void LncCache::OnInsert(Entry* entry, Timestamp now) {
  RekeyEntry(entry, now, /*already_indexed=*/false);
  refresh_queue_.PushBack(entry);
}

void LncCache::OnEvict(Entry* entry) {
  by_profit_.Remove(entry);
  refresh_queue_.Remove(entry);
  RetainEntryInfo(*entry);
}

Status LncCache::CheckPolicyIndex() const {
  uint64_t bytes = 0;
  const Timestamp now = last_reference_time();
  for (const auto& item : by_profit_) {
    const Entry* e = item.node;
    if (item.key.bucket != e->history.size()) {
      return Status::Internal("lnc index bucket out of date");
    }
    bytes += e->desc.result_bytes;
    if (opts_.eager_profits) continue;
    // Lazy staleness bounds: the evaluation stamp lies between the
    // entry's last reference and the cache's latest reference ...
    if (e->history.empty() || e->vkey_eval < e->history.last() ||
        e->vkey_eval > now) {
      return Status::Internal("lnc lazy key evaluation stamp out of bounds");
    }
    if (opts_.aging_period == 0) {
      // ... the stored key is exactly the entry's quantized profit at
      // its evaluation time (profits are pure functions of the history,
      // which has not changed since vkey_eval) ...
      const double at_eval =
          by_profit_.QuantizeKey(EntryProfit(*e, e->vkey_eval));
      if (item.key.primary != at_eval) {
        return Status::Internal("lnc lazy key does not match eval-time "
                                "profit");
      }
      // ... and profits only decay, so the stored key is an upper bound
      // of the entry's current quantized profit (the property the
      // revalidated victim walk relies on).
      const double at_now = by_profit_.QuantizeKey(EntryProfit(*e, now));
      if (item.key.primary < at_now) {
        return Status::Internal("lnc lazy key below current profit "
                                "(decay violated)");
      }
    }
  }
  if (refresh_queue_.size() != entry_count()) {
    return Status::Internal("lnc refresh queue entry count mismatch");
  }
  return CheckIndexAccounting("lnc index", by_profit_.size(), bytes);
}

void LncCache::OnCompact() {
  retained_.Compact();
  candidate_scratch_.clear();
  candidate_scratch_.shrink_to_fit();
}

void LncCache::RetainEntryInfo(const Entry& entry) {
  if (!opts_.retain_reference_info) return;
  RetainedInfo info;
  info.history = entry.history;
  info.result_bytes = entry.desc.result_bytes;
  info.cost = entry.desc.cost;
  retained_.Put(entry.desc.key, std::move(info));
}

void LncCache::MaybeSweep(Timestamp now) {
  if (opts_.aging_period > 0 && now >= aging_tick_ + opts_.aging_period) {
    aging_tick_ = now;
  }
  if (opts_.eager_profits) {
    // Eager rate aging: refresh a bounded batch of index keys per
    // reference, so sets that stopped being referenced sink toward the
    // eviction end without any reference paying for a full-index walk.
    RefreshSomeProfits(now);
  }
  if (++references_since_sweep_ < opts_.sweep_interval) return;
  references_since_sweep_ = 0;
  if (!opts_.retain_reference_info) return;
  if (retained_.empty()) return;
  const double min_profit = opts_.eager_profits
                                ? MinCachedProfit(now)
                                : ApproxMinCachedProfit(now);
  if (std::isinf(min_profit)) return;
  retained_.SweepBelowProfit(min_profit, now);
}

}  // namespace watchman
