#include "cache/sharded_query_cache.h"

#include <cassert>
#include <utility>

#include "util/hash.h"
#include "util/sharding.h"

namespace watchman {

ShardedQueryCache::ShardedQueryCache(const Options& options,
                                     const ShardFactory& factory)
    : capacity_(options.capacity_bytes) {
  assert(factory != nullptr);
  size_t n = NormalizeShardCount(options.num_shards);
  // Every shard must own at least one byte of the budget (policies
  // reject a zero-capacity cache); a tiny capacity caps the fan-out.
  while (n > 1 && capacity_ < n) n >>= 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->cache = factory(ShardCapacity(capacity_, n, i));
    assert(shard->cache != nullptr);
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedQueryCache::ShardIndexOf(Signature signature) const {
  return ShardOfSignature(signature, shards_.size());
}

bool ShardedQueryCache::Reference(const QueryDescriptor& d, Timestamp now) {
  Shard& shard = *shards_[ShardIndexOf(d.signature())];
  CountedLock lock(shard);
  return shard.cache->Reference(d, now);
}

bool ShardedQueryCache::TryReferenceCached(const QueryDescriptor& d,
                                           Timestamp now) {
  Shard& shard = *shards_[ShardIndexOf(d.signature())];
  CountedLock lock(shard);
  return shard.cache->TryReferenceCached(d, now);
}

bool ShardedQueryCache::Contains(const QueryKey& key) const {
  const Shard& shard = *shards_[ShardIndexOf(key.signature())];
  CountedLock lock(shard);
  return shard.cache->Contains(key);
}

bool ShardedQueryCache::Erase(const QueryKey& key) {
  Shard& shard = *shards_[ShardIndexOf(key.signature())];
  CountedLock lock(shard);
  return shard.cache->Erase(key);
}

ShardedQueryCache::LockStats ShardedQueryCache::lock_stats(
    size_t shard) const {
  LockStats out;
  out.acquisitions =
      shards_[shard]->lock_acquisitions.load(std::memory_order_relaxed);
  out.contended =
      shards_[shard]->lock_contended.load(std::memory_order_relaxed);
  return out;
}

ShardedQueryCache::LockStats ShardedQueryCache::total_lock_stats() const {
  LockStats total;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const LockStats s = lock_stats(i);
    total.acquisitions += s.acquisitions;
    total.contended += s.contended;
  }
  return total;
}

void ShardedQueryCache::Compact() {
  for (auto& shard : shards_) {
    CountedLock lock(*shard);
    shard->cache->Compact();
  }
}

void ShardedQueryCache::SetEvictionListener(
    std::function<void(const QueryDescriptor&)> listener) {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->cache->SetEvictionListener(listener);
  }
}

CacheStats ShardedQueryCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total.Accumulate(shard->cache->stats());
  }
  return total;
}

CacheStats ShardedQueryCache::shard_stats(size_t shard) const {
  MutexLock lock(shards_[shard]->mu);
  return shards_[shard]->cache->stats();
}

uint64_t ShardedQueryCache::used_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->cache->used_bytes();
  }
  return total;
}

size_t ShardedQueryCache::entry_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->cache->entry_count();
  }
  return total;
}

size_t ShardedQueryCache::retained_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->cache->retained_count();
  }
  return total;
}

std::string ShardedQueryCache::name() const {
  MutexLock lock(shards_[0]->mu);
  std::string base = shards_[0]->cache->name();
  if (shards_.size() > 1) {
    base += "x" + std::to_string(shards_.size());
  }
  return base;
}

Status ShardedQueryCache::CheckInvariants() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    MutexLock lock(shards_[i]->mu);
    Status st = shards_[i]->cache->CheckInvariants();
    if (!st.ok()) {
      return Status::Internal("shard " + std::to_string(i) + ": " +
                              st.message());
    }
  }
  return Status::OK();
}

}  // namespace watchman
