// Sliding-window reference history: the last K reference timestamps of a
// retrieved set, and the reference-rate estimate of paper equation (3):
//
//   lambda_i = K / (t - t_K)
//
// where t is the current time and t_K the K-th most recent reference.
// When fewer than K references are recorded, the maximal available number
// is used (paper section 2.1). Including the current time ages sets that
// are no longer referenced.

#ifndef WATCHMAN_CACHE_REF_HISTORY_H_
#define WATCHMAN_CACHE_REF_HISTORY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/clock.h"

namespace watchman {

/// Fixed-capacity ring of the most recent K reference timestamps.
class ReferenceHistory {
 public:
  /// `k` must be >= 1.
  explicit ReferenceHistory(size_t k = 1);

  /// Records a reference at time `t` (non-decreasing across calls).
  void Record(Timestamp t);

  /// Number of recorded references, capped at K.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t k() const { return ring_.size(); }

  /// Most recent reference time; history must be non-empty.
  Timestamp last() const;

  /// Oldest retained reference time (the "t_K" of eq. 3 when full);
  /// history must be non-empty.
  Timestamp oldest() const;

  /// The i-th most recent timestamp, i in [0, size).
  Timestamp recent(size_t i) const;

  /// Reference-rate estimate lambda = size / (now - oldest), in
  /// references per microsecond. Returns nullopt when no rate can be
  /// estimated: no references, or the only information is a reference at
  /// `now` itself (the paper's "first retrieval" case that falls back to
  /// the estimated profit).
  std::optional<double> EstimateRate(Timestamp now) const;

  /// Discards all recorded references.
  void Clear();

 private:
  std::vector<Timestamp> ring_;
  size_t next_ = 0;   // slot that the next Record() writes
  size_t size_ = 0;   // number of valid entries, <= ring_.size()
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_REF_HISTORY_H_
