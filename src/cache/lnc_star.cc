#include "cache/lnc_star.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace watchman {

StaticSelection LncStarSelect(const std::vector<StaticSet>& sets,
                              uint64_t capacity) {
  std::vector<size_t> order(sets.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&sets](size_t a, size_t b) {
    const double da = sets[a].probability * sets[a].cost /
                      static_cast<double>(sets[a].size);
    const double db = sets[b].probability * sets[b].cost /
                      static_cast<double>(sets[b].size);
    if (da != db) return da > db;
    return a < b;  // deterministic tie-break
  });
  StaticSelection sel;
  for (size_t idx : order) {
    if (sel.used_bytes + sets[idx].size > capacity) break;
    sel.chosen.push_back(idx);
    sel.used_bytes += sets[idx].size;
    sel.expected_saving += sets[idx].probability * sets[idx].cost;
  }
  std::sort(sel.chosen.begin(), sel.chosen.end());
  return sel;
}

StaticSelection OptimalSelect(const std::vector<StaticSet>& sets,
                              uint64_t capacity) {
  assert(sets.size() <= 24 && "exhaustive solver limited to small n");
  const size_t n = sets.size();
  StaticSelection best;
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    uint64_t bytes = 0;
    double saving = 0.0;
    bool feasible = true;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        bytes += sets[i].size;
        if (bytes > capacity) {
          feasible = false;
          break;
        }
        saving += sets[i].probability * sets[i].cost;
      }
    }
    if (!feasible) continue;
    if (saving > best.expected_saving) {
      best.expected_saving = saving;
      best.used_bytes = bytes;
      best.chosen.clear();
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) best.chosen.push_back(i);
      }
    }
  }
  return best;
}

double ExpectedMissCost(const std::vector<StaticSet>& sets,
                        const StaticSelection& selection) {
  double total = 0.0;
  for (const StaticSet& s : sets) total += s.probability * s.cost;
  return total - selection.expected_saving;
}

}  // namespace watchman
