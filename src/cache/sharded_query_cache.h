// ShardedQueryCache: a thread-safe, hash-partitioned front-end over the
// (thread-compatible) QueryCache policies.
//
// Entries are partitioned by query signature across N independent
// policy instances, each guarded by its own mutex, so lookups on
// different shards never contend. Each shard runs the full replacement
// and admission machinery over its slice of the capacity; with one
// shard the behaviour (every hit, eviction and statistic) is identical
// to the wrapped unsharded policy, which the differential tests assert.
//
// Cache coherence works across shards: Erase() routes by the query
// key's signature, so the Watchman facade can invalidate any cached set
// no matter which shard holds it.
//
// Every operation routes on the request's precomputed signature -- the
// QueryKey is hashed once when it is built, and shard choice reads the
// signature's high bits directly (no second hash).

#ifndef WATCHMAN_CACHE_SHARDED_QUERY_CACHE_H_
#define WATCHMAN_CACHE_SHARDED_QUERY_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cache/query_cache.h"
#include "util/clock.h"
#include "util/status.h"

namespace watchman {

/// Thread-safe sharded cache of retrieved sets.
class ShardedQueryCache {
 public:
  /// Builds one policy instance with the given byte capacity; invoked
  /// once per shard at construction.
  using ShardFactory =
      std::function<std::unique_ptr<QueryCache>(uint64_t capacity_bytes)>;

  struct Options {
    /// Total capacity in bytes, split across the shards.
    uint64_t capacity_bytes = 0;
    /// Requested shard count; normalized to a power of two in [1, 1024]
    /// and reduced if needed so every shard owns at least one byte.
    size_t num_shards = 1;
  };

  ShardedQueryCache(const Options& options, const ShardFactory& factory);

  ShardedQueryCache(const ShardedQueryCache&) = delete;
  ShardedQueryCache& operator=(const ShardedQueryCache&) = delete;

  /// Processes one reference to `d` (see QueryCache::Reference) under
  /// the owning shard's lock.
  bool Reference(const QueryDescriptor& d, Timestamp now);

  /// Hit-only probe (see QueryCache::TryReferenceCached): records the
  /// reference and returns true when cached, touches nothing otherwise.
  bool TryReferenceCached(const QueryDescriptor& d, Timestamp now);

  /// True if the retrieved set of `key` is currently cached.
  bool Contains(const QueryKey& key) const;
  /// Convenience overload that computes the signature.
  bool Contains(std::string_view query_id) const {
    return Contains(QueryKey(query_id));
  }

  /// Invalidates the retrieved set of `key` on whichever shard holds
  /// it. Returns true if an entry was removed.
  bool Erase(const QueryKey& key);
  /// Convenience overload that computes the signature.
  bool Erase(std::string_view query_id) { return Erase(QueryKey(query_id)); }

  /// Registers the eviction listener on every shard. The callback runs
  /// under the evicting shard's lock; it must not call back into the
  /// cache.
  void SetEvictionListener(std::function<void(const QueryDescriptor&)>);

  /// Statistics aggregated over all shards (a consistent per-shard
  /// snapshot; shards are read under their locks one at a time).
  CacheStats stats() const;

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const;
  size_t entry_count() const;
  size_t retained_count() const;
  size_t num_shards() const { return shards_.size(); }

  /// Policy name of the wrapped caches, e.g. "lnc-ra(k=4)x8".
  std::string name() const;

  /// Direct access to one shard's policy (tests and benches; the caller
  /// must synchronize externally or reach quiescence first).
  QueryCache& shard(size_t i) { return *shards_[i]->cache; }
  const QueryCache& shard(size_t i) const { return *shards_[i]->cache; }

  /// Verifies every shard's invariants.
  Status CheckInvariants() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<QueryCache> cache;
  };

  size_t ShardIndexOf(Signature signature) const;

  uint64_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_SHARDED_QUERY_CACHE_H_
