// ShardedQueryCache: a thread-safe, hash-partitioned front-end over the
// (thread-compatible) QueryCache policies.
//
// Entries are partitioned by query signature across N independent
// policy instances, each guarded by its own mutex, so lookups on
// different shards never contend. Each shard runs the full replacement
// and admission machinery over its slice of the capacity; with one
// shard the behaviour (every hit, eviction and statistic) is identical
// to the wrapped unsharded policy, which the differential tests assert.
//
// Cache coherence works across shards: Erase() routes by the query
// key's signature, so the Watchman facade can invalidate any cached set
// no matter which shard holds it.
//
// Every operation routes on the request's precomputed signature -- the
// QueryKey is hashed once when it is built, and shard choice reads the
// signature's high bits directly (no second hash).

#ifndef WATCHMAN_CACHE_SHARDED_QUERY_CACHE_H_
#define WATCHMAN_CACHE_SHARDED_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/query_cache.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"

namespace watchman {

/// Thread-safe sharded cache of retrieved sets.
class ShardedQueryCache {
 public:
  /// Builds one policy instance with the given byte capacity; invoked
  /// once per shard at construction.
  using ShardFactory =
      std::function<std::unique_ptr<QueryCache>(uint64_t capacity_bytes)>;

  struct Options {
    /// Total capacity in bytes, split across the shards.
    uint64_t capacity_bytes = 0;
    /// Requested shard count; normalized to a power of two in [1, 1024]
    /// and reduced if needed so every shard owns at least one byte.
    size_t num_shards = 1;
  };

  ShardedQueryCache(const Options& options, const ShardFactory& factory);

  ShardedQueryCache(const ShardedQueryCache&) = delete;
  ShardedQueryCache& operator=(const ShardedQueryCache&) = delete;

  /// Processes one reference to `d` (see QueryCache::Reference) under
  /// the owning shard's lock.
  bool Reference(const QueryDescriptor& d, Timestamp now);

  /// Hit-only probe (see QueryCache::TryReferenceCached): records the
  /// reference and returns true when cached, touches nothing otherwise.
  bool TryReferenceCached(const QueryDescriptor& d, Timestamp now);

  /// True if the retrieved set of `key` is currently cached.
  bool Contains(const QueryKey& key) const;
  /// Convenience overload that computes the signature.
  bool Contains(std::string_view query_id) const {
    return Contains(QueryKey(query_id));
  }

  /// Invalidates the retrieved set of `key` on whichever shard holds
  /// it. Returns true if an entry was removed.
  bool Erase(const QueryKey& key);
  /// Convenience overload that computes the signature.
  bool Erase(std::string_view query_id) { return Erase(QueryKey(query_id)); }

  /// Registers the eviction listener on every shard. The callback runs
  /// under the evicting shard's lock; it must not call back into the
  /// cache.
  void SetEvictionListener(std::function<void(const QueryDescriptor&)>);

  /// Statistics aggregated over all shards (a consistent per-shard
  /// snapshot; shards are read under their locks one at a time).
  CacheStats stats() const;

  /// One shard's statistics (a copy taken under that shard's lock) --
  /// the per-shard metric families scrape through this.
  CacheStats shard_stats(size_t shard) const;

  /// Per-shard lock contention counters: every shard-lock acquisition
  /// first tries the uncontended fast path (try_lock); `contended`
  /// counts the acquisitions that had to block instead. The ratio shows
  /// whether the shard fan-out matches the thread count (ROADMAP:
  /// sharded-concurrent scaling on real cores).
  struct LockStats {
    uint64_t acquisitions = 0;
    uint64_t contended = 0;

    uint64_t uncontended() const { return acquisitions - contended; }
    double contention_ratio() const {
      return acquisitions == 0
                 ? 0.0
                 : static_cast<double>(contended) /
                       static_cast<double>(acquisitions);
    }
  };

  /// Lock counters of one shard (relaxed reads: a racy snapshot).
  LockStats lock_stats(size_t shard) const;
  /// Lock counters summed over all shards.
  LockStats total_lock_stats() const;

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const;
  size_t entry_count() const;
  size_t retained_count() const;
  size_t num_shards() const { return shards_.size(); }

  /// Policy name of the wrapped caches, e.g. "lnc-ra(k=4)x8".
  std::string name() const;

  /// Direct access to one shard's policy (tests and benches; the caller
  /// must synchronize externally or reach quiescence first -- hence the
  /// analysis opt-out: the guarantee is the caller's, not a lock's).
  QueryCache& shard(size_t i) NO_THREAD_SAFETY_ANALYSIS {
    return *shards_[i]->cache;
  }
  const QueryCache& shard(size_t i) const NO_THREAD_SAFETY_ANALYSIS {
    return *shards_[i]->cache;
  }

  /// Verifies every shard's invariants.
  Status CheckInvariants() const;

  /// Shrink-to-fit pass over every shard (see QueryCache::Compact);
  /// takes each shard's lock in turn, so it is safe to call while
  /// serving (intended for quiescent moments in long-lived daemons).
  void Compact();

 private:
  struct Shard {
    mutable Mutex mu;
    std::unique_ptr<QueryCache> cache GUARDED_BY(mu);
    /// Lock counters (relaxed: they order nothing, they only count).
    mutable std::atomic<uint64_t> lock_acquisitions{0};
    mutable std::atomic<uint64_t> lock_contended{0};
  };

  /// lock_guard that takes the shard lock via the try_lock fast path
  /// and maintains the shard's contention counters.
  class SCOPED_CAPABILITY CountedLock {
   public:
    explicit CountedLock(const Shard& shard) ACQUIRE(shard.mu)
        : mu_(shard.mu) {
      // Count the acquisition before the contended counter so a
      // concurrent stats reader can never observe contended >
      // acquisitions (uncontended() would underflow).
      shard.lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
      if (!mu_.TryLock()) {
        shard.lock_contended.fetch_add(1, std::memory_order_relaxed);
        mu_.Lock();
      }
    }
    ~CountedLock() RELEASE() { mu_.Unlock(); }
    CountedLock(const CountedLock&) = delete;
    CountedLock& operator=(const CountedLock&) = delete;

   private:
    Mutex& mu_;
  };

  /// Probe for the negative-compile harness (tests/negative_compile):
  /// reaches a GUARDED_BY member without its lock to prove the
  /// -Werror=thread-safety gate rejects exactly that.
  friend class ShardedQueryCacheUnguardedProbe;

  size_t ShardIndexOf(Signature signature) const;

  uint64_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_SHARDED_QUERY_CACHE_H_
