// GreedyDual-Size (Cao & Irani, 1997) over retrieved sets: a later
// cost/size-aware policy included as a context baseline beyond the
// paper. Each set carries H = L + cost/size; the set with minimal H is
// evicted and L inflates to the evicted H, which ages unreferenced sets
// without timestamps.
//
// Eviction order is an incrementally maintained ordered index keyed by
// (H, last reference time); a hit re-keys the entry in O(log n). The
// inflation trick makes H static between touches, so the index is exact.

#ifndef WATCHMAN_CACHE_GDS_CACHE_H_
#define WATCHMAN_CACHE_GDS_CACHE_H_

#include <string>

#include "cache/query_cache.h"

namespace watchman {

/// GreedyDual-Size replacement, no admission control.
class GdsCache : public QueryCache {
 public:
  explicit GdsCache(uint64_t capacity_bytes);

  std::string name() const override { return "gds"; }

  /// Current inflation value L (monotonically non-decreasing).
  double inflation() const { return inflation_; }

 protected:
  void OnHit(Entry* entry, Timestamp now) override;
  void OnMiss(const QueryDescriptor& d, Timestamp now) override;
  void OnInsert(Entry* entry, Timestamp now) override;
  void OnEvict(Entry* entry) override;
  Status CheckPolicyIndex() const override;

 private:
  double HValue(const QueryDescriptor& d) const;

  double inflation_ = 0.0;
  VictimIndex by_h_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_GDS_CACHE_H_
