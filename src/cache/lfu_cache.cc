#include "cache/lfu_cache.h"

#include <utility>

namespace watchman {

LfuCache::LfuCache(uint64_t capacity_bytes)
    : QueryCache(Options{capacity_bytes, /*k=*/1}) {}

void LfuCache::OnHit(Entry* /*entry*/, Timestamp /*now*/) {}

void LfuCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  if (d.result_bytes > available_bytes()) {
    auto victims = SelectVictims(
        d.result_bytes - available_bytes(), [](Entry* e) {
          return std::make_pair(e->cached_refs, e->history.last());
        });
    for (Entry* victim : victims) EvictEntry(victim);
  }
  InsertEntry(d, now);
}

}  // namespace watchman
