#include "cache/lfu_cache.h"

namespace watchman {

LfuCache::LfuCache(uint64_t capacity_bytes)
    : QueryCache(Options{capacity_bytes, /*k=*/1}) {}

void LfuCache::Rekey(Entry* entry, bool already_indexed) {
  const double refs = static_cast<double>(entry->cached_refs);
  if (already_indexed) {
    by_frequency_.Update(entry, 0, refs, entry->history.last());
  } else {
    by_frequency_.Add(entry, 0, refs, entry->history.last());
  }
}

void LfuCache::OnHit(Entry* entry, Timestamp /*now*/) {
  Rekey(entry, /*already_indexed=*/true);
}

void LfuCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  if (d.result_bytes > available_bytes()) {
    auto victims =
        CollectVictims(by_frequency_, d.result_bytes - available_bytes());
    for (Entry* victim : victims) EvictEntry(victim);
  }
  InsertEntry(d, now);
}

void LfuCache::OnInsert(Entry* entry, Timestamp /*now*/) {
  Rekey(entry, /*already_indexed=*/false);
}

void LfuCache::OnEvict(Entry* entry) { by_frequency_.Remove(entry); }

Status LfuCache::CheckPolicyIndex() const {
  uint64_t bytes = 0;
  for (const auto& item : by_frequency_) {
    if (item.key.primary !=
        static_cast<double>(item.node->cached_refs)) {
      return Status::Internal("lfu index key out of date");
    }
    bytes += item.node->desc.result_bytes;
  }
  return CheckIndexAccounting("lfu index", by_frequency_.size(), bytes);
}

}  // namespace watchman
