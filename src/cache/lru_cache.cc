#include "cache/lru_cache.h"

namespace watchman {

LruCache::LruCache(uint64_t capacity_bytes)
    : QueryCache(Options{capacity_bytes, /*k=*/1}) {}

void LruCache::OnHit(Entry* entry, Timestamp /*now*/) {
  recency_.MoveToBack(entry);
}

void LruCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  if (d.result_bytes > available_bytes()) {
    auto victims =
        CollectVictims(recency_, d.result_bytes - available_bytes());
    for (Entry* victim : victims) EvictEntry(victim);
  }
  InsertEntry(d, now);
}

void LruCache::OnInsert(Entry* entry, Timestamp /*now*/) {
  recency_.PushBack(entry);
}

void LruCache::OnEvict(Entry* entry) { recency_.Remove(entry); }

Status LruCache::CheckPolicyIndex() const {
  uint64_t bytes = 0;
  size_t count = 0;
  Timestamp prev = 0;
  for (const Entry* e = recency_.front(); e != nullptr;
       e = VictimList::Next(e)) {
    bytes += e->desc.result_bytes;
    ++count;
    if (e->history.last() < prev) {
      return Status::Internal("lru list out of recency order");
    }
    prev = e->history.last();
  }
  return CheckIndexAccounting("lru list", count, bytes);
}

}  // namespace watchman
