#include "cache/lru_cache.h"

namespace watchman {

LruCache::LruCache(uint64_t capacity_bytes)
    : QueryCache(Options{capacity_bytes, /*k=*/1}) {}

void LruCache::OnHit(Entry* /*entry*/, Timestamp /*now*/) {
  // Recency is read from the reference history; nothing else to do.
}

void LruCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  if (d.result_bytes > available_bytes()) {
    auto victims = SelectVictims(
        d.result_bytes - available_bytes(),
        [](Entry* e) { return e->history.last(); });
    for (Entry* victim : victims) EvictEntry(victim);
  }
  InsertEntry(d, now);
}

}  // namespace watchman
