#include "cache/query_cache.h"

#include <algorithm>
#include <cassert>

namespace watchman {

void CacheStats::Accumulate(const CacheStats& other) {
  lookups += other.lookups;
  hits += other.hits;
  insertions += other.insertions;
  evictions += other.evictions;
  admission_rejections += other.admission_rejections;
  too_large_rejections += other.too_large_rejections;
  cost_total += other.cost_total;
  cost_saved += other.cost_saved;
  bytes_inserted += other.bytes_inserted;
  bytes_evicted += other.bytes_evicted;
}

QueryCache::QueryCache(const Options& options)
    : capacity_(options.capacity_bytes), k_(options.k == 0 ? 1 : options.k) {
  assert(capacity_ > 0);
}

QueryCache::~QueryCache() {
  // Entries live in the arena; release them before it is destroyed.
  std::vector<Entry*> entries;
  entries.reserve(entry_count_);
  index_.ForEach([&entries](uint64_t, Entry* e) { entries.push_back(e); });
  for (Entry* e : entries) arena_.Release(e);
}

bool QueryCache::Reference(const QueryDescriptor& d, Timestamp now) {
  return ReferenceImpl(d, now, /*probe_only=*/false);
}

bool QueryCache::TryReferenceCached(const QueryDescriptor& d, Timestamp now) {
  return ReferenceImpl(d, now, /*probe_only=*/true);
}

bool QueryCache::ReferenceImpl(const QueryDescriptor& d, Timestamp now,
                               bool probe_only) {
  Entry* entry = FindEntry(d.key);
  if (entry == nullptr && probe_only) return false;
  // Tolerate slightly out-of-order timestamps (concurrent callers race
  // into a shard with independently drawn clock ticks) by clamping
  // forward; per-entry histories stay monotone.
  now = std::max(now, last_reference_time_);
  last_reference_time_ = now;
  ++stats_.lookups;
  if (entry != nullptr) {
    // A hit saves the stored execution cost of the query (the
    // descriptor's cost may be unknown to callers on the hit path).
    ++stats_.hits;
    stats_.cost_total += entry->desc.cost;
    stats_.cost_saved += entry->desc.cost;
    entry->history.Record(now);
    ++entry->cached_refs;
    OnHit(entry, now);
  } else {
    stats_.cost_total += d.cost;
    if (d.result_bytes == 0) {
      // Zero-size retrieved sets are uncacheable under every policy
      // (there is nothing to store; an entry without a payload would be
      // a phantom that hits forever).
      CountTooLargeRejection();
    } else {
      OnMiss(d, now);
    }
  }
  assert(CheckInvariants().ok());
  return entry != nullptr;
}

bool QueryCache::Contains(const QueryKey& key) const {
  return FindEntry(key) != nullptr;
}

bool QueryCache::Erase(const QueryKey& key) {
  Entry* entry = FindEntry(key);
  if (entry == nullptr) return false;
  EvictEntry(entry);
  return true;
}

QueryCache::Entry* QueryCache::FindEntry(const QueryKey& key) const {
  const std::string_view id = key.id();
  return index_.Find(key.signature().value, [id](const Entry* e) {
    return e->desc.key.MatchesId(id);
  });
}

QueryCache::Entry* QueryCache::InsertEntry(const QueryDescriptor& d,
                                           Timestamp now,
                                           const ReferenceHistory* history) {
  assert(d.result_bytes <= available_bytes());
  assert(FindEntry(d.key) == nullptr);
  Entry* entry = arena_.New();
  entry->desc = d;
  if (history != nullptr) {
    entry->history = *history;
  } else {
    entry->history = ReferenceHistory(k_);
    entry->history.Record(now);
  }
  index_.Insert(d.signature().value, entry);
  used_ += d.result_bytes;
  ++entry_count_;
  ++stats_.insertions;
  stats_.bytes_inserted += d.result_bytes;
  OnInsert(entry, now);
  return entry;
}

void QueryCache::EvictEntry(Entry* entry) {
  assert(entry != nullptr);
  OnEvict(entry);
  if (eviction_listener_) eviction_listener_(entry->desc);
  const bool erased = index_.Erase(entry->desc.signature().value, entry);
  assert(erased && "entry not found in the signature index");
  (void)erased;
  used_ -= entry->desc.result_bytes;
  --entry_count_;
  ++stats_.evictions;
  stats_.bytes_evicted += entry->desc.result_bytes;
  arena_.Release(entry);
}

std::vector<QueryCache::Entry*> QueryCache::AllEntries() {
  std::vector<Entry*> out;
  out.reserve(entry_count_);
  index_.ForEach([&out](uint64_t, Entry* e) { out.push_back(e); });
  return out;
}

std::vector<QueryCache::Entry*> QueryCache::CollectVictims(
    const VictimList& list, uint64_t bytes_needed) {
  std::vector<Entry*> victims;
  uint64_t freed = 0;
  for (Entry* e = list.front(); e != nullptr && freed < bytes_needed;
       e = VictimList::Next(e)) {
    victims.push_back(e);
    freed += e->desc.result_bytes;
  }
  return victims;
}

std::vector<QueryCache::Entry*> QueryCache::CollectVictims(
    const VictimIndex& index, uint64_t bytes_needed) {
  std::vector<Entry*> victims;
  CollectVictimsInto(index, bytes_needed, &victims);
  return victims;
}

void QueryCache::Compact() {
  index_.Compact();
  arena_.Compact();
  OnCompact();
  assert(CheckInvariants().ok());
}

Status QueryCache::CheckIndexAccounting(const char* index_name,
                                        size_t indexed_entries,
                                        uint64_t indexed_bytes) const {
  if (indexed_entries != entry_count_) {
    return Status::Internal(std::string(index_name) +
                            " entry count mismatch");
  }
  if (indexed_bytes != used_) {
    return Status::Internal(std::string(index_name) +
                            " byte total mismatch");
  }
  return Status::OK();
}

Status QueryCache::CheckInvariants() const {
  uint64_t bytes = 0;
  size_t count = 0;
  bool sig_mismatch = false;
  index_.ForEach([&](uint64_t sig, Entry* entry) {
    if (entry->desc.signature().value != sig) sig_mismatch = true;
    bytes += entry->desc.result_bytes;
    ++count;
  });
  if (sig_mismatch) {
    return Status::Internal("entry stored under wrong signature");
  }
  WATCHMAN_RETURN_IF_ERROR(index_.CheckStructure());
  if (bytes != used_) {
    return Status::Internal("used byte accounting mismatch");
  }
  if (count != entry_count_) {
    return Status::Internal("entry count mismatch");
  }
  if (arena_.live() != entry_count_) {
    return Status::Internal("arena live count != entry count");
  }
  if (used_ > capacity_) {
    return Status::Internal("cache over capacity");
  }
  if (stats_.hits > stats_.lookups) {
    return Status::Internal("hits exceed lookups");
  }
  if (stats_.cost_saved > stats_.cost_total) {
    return Status::Internal("saved cost exceeds total cost");
  }
  return CheckPolicyIndex();
}

}  // namespace watchman
