#include "cache/query_cache.h"

#include <algorithm>
#include <cassert>

namespace watchman {

void CacheStats::Accumulate(const CacheStats& other) {
  lookups += other.lookups;
  hits += other.hits;
  insertions += other.insertions;
  evictions += other.evictions;
  admission_rejections += other.admission_rejections;
  too_large_rejections += other.too_large_rejections;
  cost_total += other.cost_total;
  cost_saved += other.cost_saved;
  bytes_inserted += other.bytes_inserted;
  bytes_evicted += other.bytes_evicted;
}

QueryCache::QueryCache(const Options& options)
    : capacity_(options.capacity_bytes), k_(options.k == 0 ? 1 : options.k) {
  assert(capacity_ > 0);
}

bool QueryCache::Reference(const QueryDescriptor& d, Timestamp now) {
  return ReferenceImpl(d, now, /*probe_only=*/false);
}

bool QueryCache::TryReferenceCached(const QueryDescriptor& d, Timestamp now) {
  return ReferenceImpl(d, now, /*probe_only=*/true);
}

bool QueryCache::ReferenceImpl(const QueryDescriptor& d, Timestamp now,
                               bool probe_only) {
  Entry* entry = FindEntry(d);
  if (entry == nullptr && probe_only) return false;
  // Tolerate slightly out-of-order timestamps (concurrent callers race
  // into a shard with independently drawn clock ticks) by clamping
  // forward; per-entry histories stay monotone.
  now = std::max(now, last_reference_time_);
  last_reference_time_ = now;
  ++stats_.lookups;
  if (entry != nullptr) {
    // A hit saves the stored execution cost of the query (the
    // descriptor's cost may be unknown to callers on the hit path).
    ++stats_.hits;
    stats_.cost_total += entry->desc.cost;
    stats_.cost_saved += entry->desc.cost;
    entry->history.Record(now);
    ++entry->cached_refs;
    OnHit(entry, now);
  } else {
    stats_.cost_total += d.cost;
    if (d.result_bytes == 0) {
      // Zero-size retrieved sets are uncacheable under every policy
      // (there is nothing to store; an entry without a payload would be
      // a phantom that hits forever).
      CountTooLargeRejection();
    } else {
      OnMiss(d, now);
    }
  }
  assert(CheckInvariants().ok());
  return entry != nullptr;
}

bool QueryCache::Contains(const std::string& query_id) const {
  const Signature sig = ComputeSignature(query_id);
  auto it = index_.find(sig.value);
  if (it == index_.end()) return false;
  for (const auto& entry : it->second) {
    if (entry->desc.query_id == query_id) return true;
  }
  return false;
}

bool QueryCache::Erase(const std::string& query_id) {
  QueryDescriptor probe;
  probe.query_id = query_id;
  probe.signature = ComputeSignature(query_id);
  Entry* entry = FindEntry(probe);
  if (entry == nullptr) return false;
  EvictEntry(entry);
  return true;
}

QueryCache::Entry* QueryCache::FindEntry(const QueryDescriptor& d) {
  auto it = index_.find(d.signature.value);
  if (it == index_.end()) return nullptr;
  for (auto& entry : it->second) {
    if (entry->desc.query_id == d.query_id) return entry.get();
  }
  return nullptr;
}

QueryCache::Entry* QueryCache::InsertEntry(const QueryDescriptor& d,
                                           Timestamp now,
                                           const ReferenceHistory* history) {
  assert(d.result_bytes <= available_bytes());
  assert(FindEntry(d) == nullptr);
  auto entry = std::make_unique<Entry>();
  entry->desc = d;
  if (history != nullptr) {
    entry->history = *history;
  } else {
    entry->history = ReferenceHistory(k_);
    entry->history.Record(now);
  }
  entry->inserted_at = now;
  Entry* raw = entry.get();
  index_[d.signature.value].push_back(std::move(entry));
  used_ += d.result_bytes;
  ++entry_count_;
  ++stats_.insertions;
  stats_.bytes_inserted += d.result_bytes;
  OnInsert(raw, now);
  return raw;
}

void QueryCache::EvictEntry(Entry* entry) {
  assert(entry != nullptr);
  OnEvict(entry);
  if (eviction_listener_) eviction_listener_(entry->desc);
  auto it = index_.find(entry->desc.signature.value);
  assert(it != index_.end());
  auto& bucket = it->second;
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].get() == entry) {
      used_ -= entry->desc.result_bytes;
      --entry_count_;
      ++stats_.evictions;
      stats_.bytes_evicted += entry->desc.result_bytes;
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
      if (bucket.empty()) index_.erase(it);
      return;
    }
  }
  assert(false && "entry not found in its signature bucket");
}

std::vector<QueryCache::Entry*> QueryCache::AllEntries() {
  std::vector<Entry*> out;
  out.reserve(entry_count_);
  for (auto& [sig, bucket] : index_) {
    for (auto& entry : bucket) out.push_back(entry.get());
  }
  return out;
}

std::vector<QueryCache::Entry*> QueryCache::CollectVictims(
    const VictimList& list, uint64_t bytes_needed) {
  std::vector<Entry*> victims;
  uint64_t freed = 0;
  for (Entry* e = list.front(); e != nullptr && freed < bytes_needed;
       e = VictimList::Next(e)) {
    victims.push_back(e);
    freed += e->desc.result_bytes;
  }
  return victims;
}

std::vector<QueryCache::Entry*> QueryCache::CollectVictims(
    const VictimIndex& index, uint64_t bytes_needed) {
  std::vector<Entry*> victims;
  uint64_t freed = 0;
  for (auto it = index.begin(); it != index.end() && freed < bytes_needed;
       ++it) {
    victims.push_back(it->node);
    freed += it->node->desc.result_bytes;
  }
  return victims;
}

Status QueryCache::CheckIndexAccounting(const char* index_name,
                                        size_t indexed_entries,
                                        uint64_t indexed_bytes) const {
  if (indexed_entries != entry_count_) {
    return Status::Internal(std::string(index_name) +
                            " entry count mismatch");
  }
  if (indexed_bytes != used_) {
    return Status::Internal(std::string(index_name) +
                            " byte total mismatch");
  }
  return Status::OK();
}

Status QueryCache::CheckInvariants() const {
  uint64_t bytes = 0;
  size_t count = 0;
  for (const auto& [sig, bucket] : index_) {
    if (bucket.empty()) {
      return Status::Internal("empty signature bucket left in index");
    }
    for (const auto& entry : bucket) {
      if (entry->desc.signature.value != sig) {
        return Status::Internal("entry stored under wrong signature");
      }
      bytes += entry->desc.result_bytes;
      ++count;
    }
  }
  if (bytes != used_) {
    return Status::Internal("used byte accounting mismatch");
  }
  if (count != entry_count_) {
    return Status::Internal("entry count mismatch");
  }
  if (used_ > capacity_) {
    return Status::Internal("cache over capacity");
  }
  if (stats_.hits > stats_.lookups) {
    return Status::Internal("hits exceed lookups");
  }
  if (stats_.cost_saved > stats_.cost_total) {
    return Status::Internal("saved cost exceeds total cost");
  }
  return CheckPolicyIndex();
}

}  // namespace watchman
