// LCS (Largest Cached Set first): evicts the largest retrieved sets
// first, the replacement policy the ADMS project found strongest among
// the classic ones (paper section 5). Size-aware but cost- and
// rate-oblivious.
//
// Eviction order is an incrementally maintained ordered index keyed by
// (descending size, last reference time); a hit re-keys the entry in
// O(log n).

#ifndef WATCHMAN_CACHE_LCS_CACHE_H_
#define WATCHMAN_CACHE_LCS_CACHE_H_

#include <string>

#include "cache/query_cache.h"

namespace watchman {

/// Largest-set-first replacement, no admission control.
class LcsCache : public QueryCache {
 public:
  explicit LcsCache(uint64_t capacity_bytes);

  std::string name() const override { return "lcs"; }

 protected:
  void OnHit(Entry* entry, Timestamp now) override;
  void OnMiss(const QueryDescriptor& d, Timestamp now) override;
  void OnInsert(Entry* entry, Timestamp now) override;
  void OnEvict(Entry* entry) override;
  Status CheckPolicyIndex() const override;

 private:
  VictimIndex by_size_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_LCS_CACHE_H_
