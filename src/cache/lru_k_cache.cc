#include "cache/lru_k_cache.h"

#include <utility>
#include <vector>

namespace watchman {

LruKCache::LruKCache(const LruKOptions& options)
    : QueryCache(Options{options.capacity_bytes, options.k}),
      opts_(options),
      retained_(options.retained_timeout) {}

std::string LruKCache::name() const {
  return "lru-" + std::to_string(k());
}

Timestamp LruKCache::KthRecent(const Entry& entry) const {
  // recent(size-1) is the oldest retained timestamp = the K-th most
  // recent once the window is full.
  return entry.history.recent(k() - 1);
}

void LruKCache::OnHit(Entry* entry, Timestamp /*now*/) {
  if (full_.Contains(entry)) {
    full_.Update(entry, 0, 0.0, KthRecent(*entry));
  } else if (entry->history.size() >= k()) {
    // This reference completed the history window: graduate from the
    // partial list into the full index.
    partial_.Remove(entry);
    full_.Add(entry, 0, 0.0, KthRecent(*entry));
  } else {
    partial_.MoveToBack(entry);
  }
}

void LruKCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (++references_since_sweep_ >= opts_.sweep_interval) {
    references_since_sweep_ = 0;
    retained_.SweepExpired(now);
  }
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  // Restore any retained reference history and record this reference.
  ReferenceHistory history(k());
  if (opts_.retain_history) {
    if (RetainedInfo* info = retained_.Find(d.key)) {
      history = info->history;
      retained_.Remove(d.key);
    }
  }
  history.Record(now);

  if (d.result_bytes > available_bytes()) {
    // Backward K-distance order: the partial list (sets with fewer than
    // K references, LRU among them), then the full index by oldest K-th
    // most recent reference.
    uint64_t bytes_needed = d.result_bytes - available_bytes();
    std::vector<Entry*> victims = CollectVictims(partial_, bytes_needed);
    uint64_t freed = 0;
    for (const Entry* v : victims) freed += v->desc.result_bytes;
    if (freed < bytes_needed) {
      for (Entry* v : CollectVictims(full_, bytes_needed - freed)) {
        victims.push_back(v);
      }
    }
    for (Entry* victim : victims) EvictEntry(victim);
  }
  InsertEntry(d, now, &history);
}

void LruKCache::OnInsert(Entry* entry, Timestamp /*now*/) {
  if (entry->history.size() >= k()) {
    full_.Add(entry, 0, 0.0, KthRecent(*entry));
  } else {
    partial_.PushBack(entry);
  }
}

void LruKCache::OnEvict(Entry* entry) {
  if (full_.Contains(entry)) {
    full_.Remove(entry);
  } else {
    partial_.Remove(entry);
  }
  if (!opts_.retain_history) return;
  RetainedInfo info;
  info.history = entry->history;
  info.result_bytes = entry->desc.result_bytes;
  info.cost = entry->desc.cost;
  retained_.Put(entry->desc.key, std::move(info));
}

Status LruKCache::CheckPolicyIndex() const {
  uint64_t bytes = 0;
  size_t count = 0;
  for (const Entry* e = partial_.front(); e != nullptr;
       e = VictimList::Next(e)) {
    if (e->history.size() >= k()) {
      return Status::Internal("full-history entry on the partial list");
    }
    bytes += e->desc.result_bytes;
    ++count;
  }
  for (const auto& item : full_) {
    if (item.node->history.size() < k()) {
      return Status::Internal("partial-history entry in the full index");
    }
    if (item.key.secondary != KthRecent(*item.node)) {
      return Status::Internal("lru-k index key out of date");
    }
    bytes += item.node->desc.result_bytes;
    ++count;
  }
  return CheckIndexAccounting("lru-k index", count, bytes);
}

}  // namespace watchman
