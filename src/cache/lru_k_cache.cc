#include "cache/lru_k_cache.h"

#include <utility>

namespace watchman {

LruKCache::LruKCache(const LruKOptions& options)
    : QueryCache(Options{options.capacity_bytes, options.k}),
      opts_(options),
      retained_(options.retained_timeout) {}

std::string LruKCache::name() const {
  return "lru-" + std::to_string(k());
}

void LruKCache::OnHit(Entry* /*entry*/, Timestamp /*now*/) {}

void LruKCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (++references_since_sweep_ >= opts_.sweep_interval) {
    references_since_sweep_ = 0;
    retained_.SweepExpired(now);
  }
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  // Restore any retained reference history and record this reference.
  ReferenceHistory history(k());
  if (opts_.retain_history) {
    if (RetainedInfo* info = retained_.Find(d.query_id)) {
      history = info->history;
      retained_.Remove(d.query_id);
    }
  }
  history.Record(now);

  if (d.result_bytes > available_bytes()) {
    // Backward K-distance order: sets with fewer than K references
    // first (LRU among them), then by oldest K-th most recent
    // reference.
    auto victims = SelectVictims(
        d.result_bytes - available_bytes(), [this](Entry* e) {
          const bool full = e->history.size() >= k();
          // recent(size-1) is the oldest retained timestamp = the K-th
          // most recent once the window is full.
          const Timestamp key_time =
              full ? e->history.recent(k() - 1) : e->history.last();
          return std::make_pair(full ? 1 : 0, key_time);
        });
    for (Entry* victim : victims) EvictEntry(victim);
  }
  InsertEntry(d, now, &history);
}

void LruKCache::OnEvict(const Entry& entry) {
  if (!opts_.retain_history) return;
  RetainedInfo info;
  info.history = entry.history;
  info.result_bytes = entry.desc.result_bytes;
  info.cost = entry.desc.cost;
  retained_.Put(entry.desc.query_id, std::move(info));
}

}  // namespace watchman
