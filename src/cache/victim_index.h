// Policy-maintained victim indexes.
//
// Every replacement policy keeps its cached entries in an incrementally
// maintained eviction order instead of re-heapifying all entries on each
// miss: victim selection walks the index in ascending victim order and
// stops as soon as enough bytes are covered, so a miss costs
// O(victims * log n) (or O(victims) for the intrusive lists) rather than
// O(n log n).
//
// Three structures cover all policies:
//  * IntrusiveVictimList -- a doubly-linked list threaded through the
//    entries themselves, for orders that a reference can only move to
//    one end (pure recency: LRU, and the partial bucket of LRU-K).
//  * OrderedVictimIndex -- a balanced-tree index over a composite key
//    (bucket, primary, secondary, seq), for value orders that a
//    reference re-keys in place (LFU counts, GreedyDual-Size H values,
//    LCS sizes). The monotone `seq` makes keys unique and breaks exact
//    ties in first-keyed-first-evicted order, matching the
//    ascending-timestamp tie behaviour of the old heap selection.
//  * LazyOrderedVictimIndex -- an OrderedVictimIndex for keys that only
//    *decay* between re-evaluations (LNC profits: lambda = K/(t - t_K)
//    shrinks as t grows). Keys are stored log-quantized and carry the
//    evaluation timestamp, so a re-evaluation whose quantized level did
//    not move skips the O(log n) tree re-key entirely, and victim
//    selection can treat every stored key as an upper bound of the
//    entry's current value (see lnc_cache.h for the selection walk).

#ifndef WATCHMAN_CACHE_VICTIM_INDEX_H_
#define WATCHMAN_CACHE_VICTIM_INDEX_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <set>
#include <tuple>

#include "util/clock.h"

namespace watchman {

/// Composite ordering key of an OrderedVictimIndex. Entries are evicted
/// in ascending (bucket, primary, secondary, seq) order. `seq` is
/// assigned by the index on every (re)keying; seq == 0 means "not
/// currently in an ordered index".
struct VictimKey {
  uint32_t bucket = 0;
  double primary = 0.0;
  uint64_t secondary = 0;
  uint64_t seq = 0;

  friend bool operator<(const VictimKey& a, const VictimKey& b) {
    return std::tie(a.bucket, a.primary, a.secondary, a.seq) <
           std::tie(b.bucket, b.primary, b.secondary, b.seq);
  }
};

/// Intrusive doubly-linked list over nodes carrying `vprev` / `vnext`
/// pointers. The front is the next victim; the back is the most
/// recently touched node. All operations are O(1).
template <typename Node>
class IntrusiveVictimList {
 public:
  bool empty() const { return head_ == nullptr; }
  size_t size() const { return size_; }
  Node* front() const { return head_; }
  Node* back() const { return tail_; }
  static Node* Next(const Node* n) { return n->vnext; }

  void PushBack(Node* n) {
    assert(n->vprev == nullptr && n->vnext == nullptr && n != head_);
    n->vprev = tail_;
    n->vnext = nullptr;
    if (tail_ != nullptr) {
      tail_->vnext = n;
    } else {
      head_ = n;
    }
    tail_ = n;
    ++size_;
  }

  void Remove(Node* n) {
    assert(size_ > 0);
    if (n->vprev != nullptr) {
      n->vprev->vnext = n->vnext;
    } else {
      assert(head_ == n);
      head_ = n->vnext;
    }
    if (n->vnext != nullptr) {
      n->vnext->vprev = n->vprev;
    } else {
      assert(tail_ == n);
      tail_ = n->vprev;
    }
    n->vprev = nullptr;
    n->vnext = nullptr;
    --size_;
  }

  void MoveToBack(Node* n) {
    if (tail_ == n) return;
    Remove(n);
    PushBack(n);
  }

 private:
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  size_t size_ = 0;
};

/// Ordered victim index over nodes carrying a `vkey` member. The node's
/// stored key is the handle for O(log n) removal, so no iterators need
/// to be kept alive across mutations.
template <typename Node>
class OrderedVictimIndex {
 public:
  struct Item {
    VictimKey key;
    Node* node;
    friend bool operator<(const Item& a, const Item& b) {
      return a.key < b.key;  // seq makes keys unique
    }
  };
  using const_iterator = typename std::set<Item>::const_iterator;

  bool empty() const { return set_.empty(); }
  size_t size() const { return set_.size(); }
  const_iterator begin() const { return set_.begin(); }
  const_iterator end() const { return set_.end(); }

  bool Contains(const Node* n) const { return n->vkey.seq != 0; }

  void Add(Node* n, uint32_t bucket, double primary, uint64_t secondary) {
    assert(n->vkey.seq == 0 && "node already in an ordered index");
    n->vkey = VictimKey{bucket, primary, secondary, ++next_seq_};
    const bool inserted = set_.insert(Item{n->vkey, n}).second;
    assert(inserted);
    (void)inserted;
  }

  /// Re-keys `n` in place by extracting its tree node and reinserting
  /// it under the new key -- no allocation, unlike erase + insert. The
  /// hot hit path of every ordered-index policy lands here.
  void Update(Node* n, uint32_t bucket, double primary, uint64_t secondary) {
    assert(n->vkey.seq != 0 && "node not in the ordered index");
    auto it = set_.find(Item{n->vkey, n});
    assert(it != set_.end());
    auto handle = set_.extract(it);
    n->vkey = VictimKey{bucket, primary, secondary, ++next_seq_};
    handle.value() = Item{n->vkey, n};
    const auto inserted = set_.insert(std::move(handle));
    assert(inserted.inserted);
    (void)inserted;
  }

  void Remove(Node* n) {
    assert(n->vkey.seq != 0 && "node not in the ordered index");
    const size_t erased = set_.erase(Item{n->vkey, n});
    assert(erased == 1);
    (void)erased;
    n->vkey = VictimKey{};
  }

 private:
  std::set<Item> set_;
  uint64_t next_seq_ = 0;
};

/// Ordered victim index for monotonically decaying keys, re-keyed
/// lazily. Nodes additionally carry a `vkey_eval` timestamp: the time
/// their stored key was last evaluated.
///
/// The stored primary key is the *log-quantized level* of the value:
/// level = floor(log2(value) * quant_steps), i.e. `quant_steps` levels
/// per doubling, so two values within a ratio of 2^(1/quant_steps)
/// (~4.4% for the default 16) can share a level. Refresh() skips the
/// O(log n) tree re-key whenever bucket and level are unchanged -- on a
/// steady hit stream nearly every re-evaluation is a stamp update plus
/// one comparison. quant_steps == 0 stores the exact value (every
/// changed value re-keys), which the eager reference mode uses.
///
/// Because values only decay between evaluations, a stored level is an
/// upper bound of the node's current level; the consumer's victim walk
/// exploits this (see LncCache::SelectCandidates).
template <typename Node>
class LazyOrderedVictimIndex {
 public:
  using Base = OrderedVictimIndex<Node>;
  using const_iterator = typename Base::const_iterator;

  /// Lowest representable level; used for values <= 0 (a zero-cost set
  /// has zero profit) so they sort before everything else.
  static constexpr double kFloorLevel = -1.0e9;

  explicit LazyOrderedVictimIndex(uint32_t quant_steps = 0)
      : quant_steps_(quant_steps) {}

  void set_quant_steps(uint32_t steps) {
    assert(empty() && "cannot change quantization of a populated index");
    quant_steps_ = steps;
  }
  uint32_t quant_steps() const { return quant_steps_; }

  /// Largest ratio two values sharing a quantized level can have.
  double quantization_ratio() const {
    return quant_steps_ == 0
               ? 1.0
               : std::exp2(1.0 / static_cast<double>(quant_steps_));
  }

  /// The stored form of `value`: its quantized level, or the exact
  /// value when quantization is off.
  double QuantizeKey(double value) const {
    if (quant_steps_ == 0) return value;
    if (!(value > 0.0)) return kFloorLevel;
    const double level =
        std::floor(std::log2(value) * static_cast<double>(quant_steps_));
    return level < kFloorLevel ? kFloorLevel : level;
  }

  bool empty() const { return index_.empty(); }
  size_t size() const { return index_.size(); }
  const_iterator begin() const { return index_.begin(); }
  const_iterator end() const { return index_.end(); }
  bool Contains(const Node* n) const { return index_.Contains(n); }

  /// Tree re-keys performed / skipped by Refresh() (observability and
  /// tests; the skip ratio is the point of the quantization).
  uint64_t rekeys() const { return rekeys_; }
  uint64_t refreshes_skipped() const { return refreshes_skipped_; }

  void Add(Node* n, uint32_t bucket, double value, Timestamp eval_time) {
    index_.Add(n, bucket, QuantizeKey(value), 0);
    n->vkey_eval = eval_time;
  }

  /// Re-evaluation of `n`'s key as `value` at `eval_time`. Re-keys the
  /// tree only when the bucket or the quantized level moved; always
  /// advances the evaluation stamp. Returns true if a tree re-key
  /// happened.
  bool Refresh(Node* n, uint32_t bucket, double value, Timestamp eval_time) {
    assert(index_.Contains(n));
    const double key = QuantizeKey(value);
    n->vkey_eval = eval_time;
    if (n->vkey.bucket == bucket && n->vkey.primary == key) {
      ++refreshes_skipped_;
      return false;
    }
    index_.Update(n, bucket, key, 0);
    ++rekeys_;
    return true;
  }

  /// Unconditional re-key (the eager reference path: matches the
  /// historical always-Update behaviour including seq reassignment on
  /// equal keys).
  void Rekey(Node* n, uint32_t bucket, double value, Timestamp eval_time) {
    index_.Update(n, bucket, QuantizeKey(value), 0);
    n->vkey_eval = eval_time;
    ++rekeys_;
  }

  void Remove(Node* n) { index_.Remove(n); }

 private:
  Base index_;
  uint32_t quant_steps_;
  uint64_t rekeys_ = 0;
  uint64_t refreshes_skipped_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_VICTIM_INDEX_H_
