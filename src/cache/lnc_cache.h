// LNC-R / LNC-RA: the paper's cache replacement and admission algorithms
// (Figure 1).
//
// Replacement (LNC-R): victims are selected in the order
// R_1 < R_2 < ... < R_K, where R_i holds the cached sets with exactly i
// recorded references arranged by ascending profit
//
//   profit(RS_i) = lambda_i * c_i / s_i ,   lambda_i = K / (t - t_K).
//
// Sets with fewer references are replaced earlier because their rate
// estimates are less reliable (paper section 2.1).
//
// Admission (LNC-A): a missed set RS_i with candidate victim list
// C = LNC-R(s_i) is admitted only if profit(RS_i) > profit(C); for sets
// with no past reference information the estimated profit
// e-profit = c_i / s_i is used on both sides (eqs. 4-8). Per Figure 1, a
// set that fits into the available free space is cached without an
// admission test.
//
// Retained reference information (section 2.4): timestamps, size and cost
// of evicted and admission-rejected sets are retained, and dropped when
// their profit falls below the least profit among all cached sets.
//
// Victim order is an incrementally maintained ordered index keyed by
// (reference-count bucket, profit). A reference re-keys the touched
// entry with its profit at that instant; untouched entries keep the
// profit of their last re-keying and are refreshed round-robin -- every
// reference re-keys ceil(n / sweep_interval) of the longest-unrefreshed
// entries, so each entry's rate estimate ages within ~sweep_interval
// references without ever stalling a reference on a full-index walk.
// This is the paper's reduced-overhead profit maintenance ("updated ...
// at fixed time periods") applied to the index: selection walks the
// index in O(victims * log n) instead of re-heapifying every cached
// set, while the admission comparisons of Figure 1 still evaluate exact
// decision-time profits.

#ifndef WATCHMAN_CACHE_LNC_CACHE_H_
#define WATCHMAN_CACHE_LNC_CACHE_H_

#include <optional>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "cache/retained_info.h"

namespace watchman {

/// Configuration of the LNC family.
struct LncOptions {
  uint64_t capacity_bytes = 0;

  /// Reference-history depth K (paper experiments use K = 4).
  size_t k = 4;

  /// Enables the LNC-A admission algorithm; with it the cache is LNC-RA,
  /// without it plain LNC-R (which admits everything that fits).
  bool admission = true;

  /// Enables retained reference information (section 2.4).
  bool retain_reference_info = true;

  /// Rate-aging horizon: every entry's profit key is refreshed within
  /// this many references (spread round-robin), and the retained store
  /// is swept at the same cadence.
  uint64_t sweep_interval = 64;

  /// Profit evaluation mode. In exact mode profits are evaluated with
  /// the decision-time clock (the reference behaviour). With a non-zero
  /// aging period, rate estimates are refreshed only every `aging_period`
  /// (the paper's "updated ... at fixed time periods" reduced-overhead
  /// variant); see the ablation bench.
  Duration aging_period = 0;
};

/// The integrated LNC cache (LNC-R when admission is disabled, LNC-RA
/// when enabled).
class LncCache : public QueryCache {
 public:
  explicit LncCache(const LncOptions& options);

  std::string name() const override;

  /// Profit of a cached entry at time `now` (exposed for tests and the
  /// retained-info drop rule): lambda * c / s, with e-profit = c / s as
  /// the fallback when no rate estimate exists yet.
  double EntryProfit(const Entry& entry, Timestamp now) const;

  /// Least profit among all cached sets at `now`; +infinity for an empty
  /// cache (nothing constrains the retained store then).
  double MinCachedProfit(Timestamp now);

  size_t retained_count() const override { return retained_.size(); }
  uint64_t retained_metadata_bytes() const {
    return retained_.ApproxMetadataBytes();
  }

  const LncOptions& options() const { return opts_; }

 protected:
  void OnHit(Entry* entry, Timestamp now) override;
  void OnMiss(const QueryDescriptor& d, Timestamp now) override;
  void OnInsert(Entry* entry, Timestamp now) override;
  void OnEvict(Entry* entry) override;
  Status CheckPolicyIndex() const override;

 private:
  /// lambda estimate honouring the aging mode: exact mode uses `now`,
  /// aging mode uses the last refresh tick.
  std::optional<double> Rate(const ReferenceHistory& history,
                             Timestamp now) const;

  /// The LNC-R candidate-selection function (Figure 1): a minimal list of
  /// victims in (reference-count bucket, ascending profit) order whose
  /// sizes sum to at least `bytes_needed` -- a walk of the profit index.
  std::vector<Entry*> SelectCandidates(uint64_t bytes_needed);

  /// Aggregate profit of a candidate list (eq. 5); requires rates.
  double ListProfit(const std::vector<Entry*>& list, Timestamp now) const;

  /// Aggregate estimated profit of a candidate list (eq. 8).
  double ListEstimatedProfit(const std::vector<Entry*>& list) const;

  /// (Re-)keys `entry` in the profit index with its profit at `now`.
  void RekeyEntry(Entry* entry, Timestamp now, bool already_indexed);

  /// Re-keys the ceil(n / sweep_interval) longest-unrefreshed entries
  /// with their profit at `now` (incremental rate aging).
  void RefreshSomeProfits(Timestamp now);

  void RetainEntryInfo(const Entry& entry);
  void MaybeSweep(Timestamp now);

  LncOptions opts_;
  ProfitRetainedStore retained_;
  uint64_t references_since_sweep_ = 0;
  /// Aging mode: the clock value profits are currently evaluated at.
  Timestamp aging_tick_ = 0;
  /// Victim order: (reference-count bucket, profit at last re-keying).
  VictimIndex by_profit_;
  /// Round-robin rate-aging order: front = refreshed longest ago.
  VictimList refresh_queue_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_LNC_CACHE_H_
