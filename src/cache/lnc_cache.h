// LNC-R / LNC-RA: the paper's cache replacement and admission algorithms
// (Figure 1).
//
// Replacement (LNC-R): victims are selected in the order
// R_1 < R_2 < ... < R_K, where R_i holds the cached sets with exactly i
// recorded references arranged by ascending profit
//
//   profit(RS_i) = lambda_i * c_i / s_i ,   lambda_i = K / (t - t_K).
//
// Sets with fewer references are replaced earlier because their rate
// estimates are less reliable (paper section 2.1).
//
// Admission (LNC-A): a missed set RS_i with candidate victim list
// C = LNC-R(s_i) is admitted only if profit(RS_i) > profit(C); for sets
// with no past reference information the estimated profit
// e-profit = c_i / s_i is used on both sides (eqs. 4-8). Per Figure 1, a
// set that fits into the available free space is cached without an
// admission test.
//
// Retained reference information (section 2.4): timestamps, size and cost
// of evicted and admission-rejected sets are retained, and dropped when
// their profit falls below the least profit among all cached sets.
//
// Profit maintenance -- lazy by default. Victim order is a
// LazyOrderedVictimIndex keyed by (reference-count bucket, log-quantized
// profit). A reference re-evaluates only the touched entry, and even
// that usually skips the tree re-key because the quantized level did
// not move. Untouched entries keep the profit of their last evaluation;
// since EstimateRate profits only *decay* between references, every
// stored key is an upper bound of the entry's current profit, and the
// victim-selection walk re-validates candidates at decision time: it
// recomputes each candidate's profit at `now` and re-keys it in place
// (the fresh key can only move toward the eviction end, so the walk
// order remains the ascending prefix of current keys -- see
// CollectVictimsValidatedInto). A reference therefore costs O(1)
// amortized index work instead of the former ceil(n / sweep_interval)
// re-keys, and the O(n) MinCachedProfit sweep walk is replaced by a
// bounded read off the revalidated front of the index.
//
// The cost of laziness is bounded, documented staleness: selection
// ranks un-walked entries by their last-evaluated profit (an upper
// bound) rather than the decision-time profit the eager implementation
// approximated within its sweep_interval horizon, and the retained-info
// sweep threshold becomes an upper bound of the true minimum cached
// profit (so retained records are dropped at least as eagerly as the
// paper's rule). The eager reference implementation is retained behind
// LncOptions::eager_profits for differential tests and ablation; the
// fig4/fig5 metrics of the two implementations agree within the
// tolerance asserted by tests/sim/lazy_eager_sim_test.cc.

#ifndef WATCHMAN_CACHE_LNC_CACHE_H_
#define WATCHMAN_CACHE_LNC_CACHE_H_

#include <optional>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "cache/retained_info.h"

namespace watchman {

/// Configuration of the LNC family.
struct LncOptions {
  uint64_t capacity_bytes = 0;

  /// Reference-history depth K (paper experiments use K = 4).
  size_t k = 4;

  /// Enables the LNC-A admission algorithm; with it the cache is LNC-RA,
  /// without it plain LNC-R (which admits everything that fits).
  bool admission = true;

  /// Enables retained reference information (section 2.4).
  bool retain_reference_info = true;

  /// Retained-info sweep cadence, in references. In the eager reference
  /// mode it is additionally the rate-aging horizon: every entry's
  /// profit key is refreshed within this many references.
  uint64_t sweep_interval = 64;

  /// Profit evaluation mode. In exact mode profits are evaluated with
  /// the decision-time clock (the reference behaviour). With a non-zero
  /// aging period, rate estimates are refreshed only every `aging_period`
  /// (the paper's "updated ... at fixed time periods" reduced-overhead
  /// variant); see the ablation bench.
  Duration aging_period = 0;

  /// Eager reference mode: exact profit keys, re-keyed round-robin
  /// (ceil(n / sweep_interval) entries per reference) with a full-walk
  /// MinCachedProfit sweep -- the pre-lazy implementation, kept for
  /// differential tests and ablation. Default off: lazy eviction-time
  /// profit evaluation.
  bool eager_profits = false;

  /// Log-quantization granularity of lazily stored profit keys: levels
  /// per profit doubling. Two profits within a ratio of
  /// 2^(1/quant_steps) (~4.4% at the default 16) share a level and a
  /// re-evaluation between them skips the tree re-key. 0 = exact keys
  /// (every changed profit re-keys). Ignored in eager mode, which is
  /// always exact.
  uint32_t profit_quant_steps = 16;

  /// Lazy mode: number of round-robin key re-evaluations per *miss*
  /// (the pre-lazy implementation paid ceil(n / sweep_interval) per
  /// *reference*). 0 (default) disables miss-time aging: victim order
  /// ranks every un-walked entry by its profit at its own last
  /// reference -- a mutually consistent metric that tracks the eager
  /// implementation's figures closely (and systematically improves
  /// LNC-R at mid cache sizes; see tests/sim/lazy_eager_sim_test.cc).
  /// A non-zero batch bounds key staleness to ceil(n / batch) misses,
  /// guarding against adversarial once-hot-never-again sets pinning
  /// cache space, at the cost of comparing keys evaluated at mixed
  /// times (on TPC-D that costs up to ~0.04 CSR vs eager at large
  /// caches).
  uint32_t lazy_refresh_per_miss = 0;
};

/// The integrated LNC cache (LNC-R when admission is disabled, LNC-RA
/// when enabled).
class LncCache : public QueryCache {
 public:
  explicit LncCache(const LncOptions& options);

  std::string name() const override;

  /// Profit of a cached entry at time `now` (exposed for tests and the
  /// retained-info drop rule): lambda * c / s, with e-profit = c / s as
  /// the fallback when no rate estimate exists yet.
  double EntryProfit(const Entry& entry, Timestamp now) const;

  /// Least profit among all cached sets at `now`, by exact full walk;
  /// +infinity for an empty cache (nothing constrains the retained
  /// store then). The eager sweep threshold; tests use it as the ground
  /// truth for the lazy approximation below.
  double MinCachedProfit(Timestamp now);

  /// Lazy-mode sweep threshold: the minimum profit over a bounded
  /// prefix (kMinProfitProbe entries) of the victim index, re-evaluated
  /// at `now` and re-keyed in place (revalidated front). Always within
  /// [MinCachedProfit(now), smallest re-evaluated prefix profit]: an
  /// upper bound of the true minimum, so SweepBelowProfit drops a
  /// superset of what the paper's exact rule would drop -- retained
  /// metadata still self-scales with cache pressure. Equals
  /// MinCachedProfit exactly whenever the true minimum-profit entry
  /// sits within the probed prefix (in particular whenever the cache
  /// holds at most kMinProfitProbe entries).
  double ApproxMinCachedProfit(Timestamp now);

  /// Prefix length of the ApproxMinCachedProfit() probe.
  static constexpr size_t kMinProfitProbe = 8;

  size_t retained_count() const override { return retained_.size(); }
  uint64_t retained_metadata_bytes() const {
    return retained_.ApproxMetadataBytes();
  }

  /// Tree re-keys performed / skipped by lazy profit maintenance
  /// (observability: the skip ratio is what quantization buys).
  uint64_t profit_rekeys() const { return by_profit_.rekeys(); }
  uint64_t profit_refreshes_skipped() const {
    return by_profit_.refreshes_skipped();
  }

  const LncOptions& options() const { return opts_; }

 protected:
  void OnHit(Entry* entry, Timestamp now) override;
  void OnMiss(const QueryDescriptor& d, Timestamp now) override;
  void OnInsert(Entry* entry, Timestamp now) override;
  void OnEvict(Entry* entry) override;
  Status CheckPolicyIndex() const override;
  void OnCompact() override;

 private:
  /// Aggregates of one candidate list, accumulated during the selection
  /// walk so the admission comparison does not re-walk the candidates
  /// (eqs. 5 and 8 as running sums).
  struct CandidateAggregates {
    double rate_cost_sum = 0.0;  // sum of lambda_i * c_i (eq. 5 numerator)
    double cost_sum = 0.0;       // sum of c_i (eq. 8 numerator)
    double size_sum = 0.0;       // sum of s_i (shared denominator)

    double profit() const { return rate_cost_sum / size_sum; }
    double estimated_profit() const { return cost_sum / size_sum; }
  };

  /// lambda estimate honouring the aging mode: exact mode uses `now`,
  /// aging mode uses the last refresh tick.
  std::optional<double> Rate(const ReferenceHistory& history,
                             Timestamp now) const;

  /// The LNC-R candidate-selection function (Figure 1): a minimal list
  /// of victims in (reference-count bucket, ascending profit) order
  /// whose sizes sum to at least `bytes_needed`, collected into the
  /// reusable scratch vector. In lazy mode the walk revalidates each
  /// candidate's profit at `now` (re-keying stale entries in place) and
  /// accumulates the rate/cost/size sums the admission test needs, so
  /// each candidate's rate is estimated exactly once per miss.
  void SelectCandidates(uint64_t bytes_needed, Timestamp now,
                        CandidateAggregates* agg);

  /// Aggregate profit of the scratch candidate list (eq. 5) by explicit
  /// walk -- the eager reference path.
  double ListProfit(Timestamp now) const;

  /// Aggregate estimated profit of the scratch candidate list (eq. 8).
  double ListEstimatedProfit() const;

  /// (Re-)keys `entry` in the profit index with its profit at `now`
  /// (eager mode: unconditional re-key).
  void RekeyEntry(Entry* entry, Timestamp now, bool already_indexed);

  /// Eager mode: re-keys the ceil(n / sweep_interval) longest-
  /// unrefreshed entries with their profit at `now` (round-robin rate
  /// aging).
  void RefreshSomeProfits(Timestamp now);

  /// Lazy mode: re-evaluates the `lazy_refresh_per_miss` longest-
  /// unevaluated entries at `now` (miss-time amortized aging; most
  /// re-evaluations skip the tree re-key via quantization).
  void RefreshSomeLazy(Timestamp now);

  void RetainEntryInfo(const Entry& entry);
  void MaybeSweep(Timestamp now);

  LncOptions opts_;
  ProfitRetainedStore retained_;
  uint64_t references_since_sweep_ = 0;
  /// Aging mode: the clock value profits are currently evaluated at.
  Timestamp aging_tick_ = 0;
  /// Victim order: (reference-count bucket, quantized profit at last
  /// evaluation). Lazy by default; exact keys in eager mode.
  LazyVictimIndex by_profit_;
  /// Round-robin aging order: front = evaluated longest ago. Eager
  /// mode drains ceil(n / sweep_interval) per reference; lazy mode
  /// drains lazy_refresh_per_miss per miss.
  VictimList refresh_queue_;
  /// Reused candidate scratch: SelectCandidates fills it, OnMiss
  /// consumes it before the next miss. Steady-state misses do not
  /// allocate for candidate collection.
  std::vector<Entry*> candidate_scratch_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_LNC_CACHE_H_
