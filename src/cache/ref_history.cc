#include "cache/ref_history.h"

#include <cassert>

namespace watchman {

ReferenceHistory::ReferenceHistory(size_t k) : ring_(k == 0 ? 1 : k, 0) {
  assert(k >= 1);
}

void ReferenceHistory::Record(Timestamp t) {
  assert(size_ == 0 || t >= last());
  ring_[next_] = t;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

Timestamp ReferenceHistory::last() const {
  assert(size_ > 0);
  const size_t idx = (next_ + ring_.size() - 1) % ring_.size();
  return ring_[idx];
}

Timestamp ReferenceHistory::oldest() const {
  assert(size_ > 0);
  const size_t idx = (next_ + ring_.size() - size_) % ring_.size();
  return ring_[idx];
}

Timestamp ReferenceHistory::recent(size_t i) const {
  assert(i < size_);
  const size_t idx = (next_ + ring_.size() - 1 - i) % ring_.size();
  return ring_[idx];
}

std::optional<double> ReferenceHistory::EstimateRate(Timestamp now) const {
  if (size_ == 0) return std::nullopt;
  const Timestamp t_k = oldest();
  if (now <= t_k) {
    // The only information is the reference happening right now; the
    // paper handles this case via the estimated profit instead.
    if (size_ == 1) return std::nullopt;
    // Multiple references at the same instant: treat the window as one
    // microsecond wide rather than dividing by zero.
    return static_cast<double>(size_);
  }
  return static_cast<double>(size_) / static_cast<double>(now - t_k);
}

void ReferenceHistory::Clear() {
  next_ = 0;
  size_ = 0;
}

}  // namespace watchman
