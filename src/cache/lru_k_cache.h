// LRU-K [OOW93] at retrieved-set granularity, used for the paper's
// Figure 3 comparison ("impact of K"). The victim is the set with the
// oldest K-th most recent reference; sets with fewer than K recorded
// references have infinite backward K-distance and are evicted first
// (among themselves, least-recently-used first). Reference histories of
// evicted sets are retained with a timeout (Five Minute Rule default).
//
// Eviction order is maintained incrementally in two buckets: sets with
// fewer than K references live on an intrusive recency list (O(1) per
// touch), sets with a full history in an ordered index keyed by their
// K-th most recent reference (O(log n) re-key per hit). Victim
// selection walks the partial list first, then the full index.

#ifndef WATCHMAN_CACHE_LRU_K_CACHE_H_
#define WATCHMAN_CACHE_LRU_K_CACHE_H_

#include <string>

#include "cache/query_cache.h"
#include "cache/retained_info.h"

namespace watchman {

/// LRU-K replacement, no admission control.
class LruKCache : public QueryCache {
 public:
  struct LruKOptions {
    uint64_t capacity_bytes = 0;
    size_t k = 2;
    /// Whether histories of evicted sets are retained.
    bool retain_history = true;
    /// Retained-history timeout (Five Minute Rule).
    Duration retained_timeout = 5 * kMinute;
    /// Sweep the retained store every this many references.
    uint64_t sweep_interval = 64;
  };

  explicit LruKCache(const LruKOptions& options);

  std::string name() const override;

  size_t retained_count() const override { return retained_.size(); }

 protected:
  void OnHit(Entry* entry, Timestamp now) override;
  void OnMiss(const QueryDescriptor& d, Timestamp now) override;
  void OnInsert(Entry* entry, Timestamp now) override;
  void OnEvict(Entry* entry) override;
  Status CheckPolicyIndex() const override;

 private:
  /// The K-th most recent reference of a full-history entry.
  Timestamp KthRecent(const Entry& entry) const;

  LruKOptions opts_;
  TimeoutRetainedStore retained_;
  uint64_t references_since_sweep_ = 0;
  /// Entries with fewer than K recorded references: infinite backward
  /// K-distance, evicted first, LRU among themselves. Front = victim.
  VictimList partial_;
  /// Entries with K recorded references, keyed by KthRecent().
  VictimIndex full_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_LRU_K_CACHE_H_
