#include "cache/retained_info.h"

#include <cassert>

namespace watchman {

RetainedInfo* RetainedInfoStore::Find(const std::string& query_id) {
  auto it = map_.find(query_id);
  return it == map_.end() ? nullptr : &it->second;
}

void RetainedInfoStore::Put(const std::string& query_id, RetainedInfo info) {
  map_[query_id] = std::move(info);
}

void RetainedInfoStore::Remove(const std::string& query_id) {
  map_.erase(query_id);
}

uint64_t RetainedInfoStore::ApproxMetadataBytes() const {
  uint64_t bytes = 0;
  for (const auto& [id, info] : map_) {
    bytes += id.size() + sizeof(RetainedInfo) +
             info.history.k() * sizeof(Timestamp);
  }
  return bytes;
}

double RetainedProfit(const RetainedInfo& info, Timestamp now) {
  assert(info.result_bytes > 0);
  const auto rate = info.history.EstimateRate(now);
  const double cost_per_byte = static_cast<double>(info.cost) /
                               static_cast<double>(info.result_bytes);
  if (!rate.has_value()) return cost_per_byte;
  return *rate * cost_per_byte;
}

size_t ProfitRetainedStore::SweepBelowProfit(double min_cached_profit,
                                             Timestamp now) {
  size_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (RetainedProfit(it->second, now) < min_cached_profit) {
      it = map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

size_t TimeoutRetainedStore::SweepExpired(Timestamp now) {
  size_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    const ReferenceHistory& h = it->second.history;
    if (!h.empty() && h.last() + timeout_ < now) {
      it = map_.erase(it);
      ++dropped;
    } else if (h.empty()) {
      it = map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace watchman
