#include "cache/retained_info.h"

#include <cassert>

namespace watchman {

RetainedInfo* RetainedInfoStore::Find(const QueryKey& key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void RetainedInfoStore::Put(const QueryKey& key, RetainedInfo info) {
  map_[key] = std::move(info);
}

void RetainedInfoStore::Remove(const QueryKey& key) { map_.erase(key); }

void RetainedInfoStore::Compact() {
  if (map_.empty()) {
    // rehash(0) keeps libstdc++'s current bucket array; swapping with a
    // fresh map actually releases it.
    std::unordered_map<QueryKey, RetainedInfo>().swap(map_);
    return;
  }
  map_.rehash(0);  // shrink the bucket array to fit the current size
}

uint64_t RetainedInfoStore::ApproxMetadataBytes() const {
  uint64_t bytes = 0;
  for (const auto& [key, info] : map_) {
    bytes += sizeof(QueryKey) +
             (key.size() > QueryKey::kInlineCapacity ? key.size() : 0) +
             sizeof(RetainedInfo) + info.history.k() * sizeof(Timestamp);
  }
  return bytes;
}

double RetainedProfit(const RetainedInfo& info, Timestamp now) {
  assert(info.result_bytes > 0);
  const auto rate = info.history.EstimateRate(now);
  const double cost_per_byte = static_cast<double>(info.cost) /
                               static_cast<double>(info.result_bytes);
  if (!rate.has_value()) return cost_per_byte;
  return *rate * cost_per_byte;
}

size_t ProfitRetainedStore::SweepBelowProfit(double min_cached_profit,
                                             Timestamp now) {
  size_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (RetainedProfit(it->second, now) < min_cached_profit) {
      it = map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

size_t TimeoutRetainedStore::SweepExpired(Timestamp now) {
  size_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    const ReferenceHistory& h = it->second.history;
    if (!h.empty() && h.last() + timeout_ < now) {
      it = map_.erase(it);
      ++dropped;
    } else if (h.empty()) {
      it = map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace watchman
