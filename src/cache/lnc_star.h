// LNC*: the static, greedy cache-content selection of paper section 2.3,
// and an exact 0/1 knapsack solver used to test Theorem 1 on small
// instances.
//
// The optimal static cache contents minimize the expected cost of misses
//   min sum_{i not in I*} p_i * c_i   s.t.  sum_{i in I*} s_i <= S,
// equivalently maximize sum_{i in I*} p_i * c_i. This is NP-complete in
// general; under the assumption that sizes are small relative to S the
// greedy LNC* (sort by p_i * c_i / s_i descending, take items until the
// capacity is violated) is optimal (Theorem 1).

#ifndef WATCHMAN_CACHE_LNC_STAR_H_
#define WATCHMAN_CACHE_LNC_STAR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace watchman {

/// One retrieved set in the static model.
struct StaticSet {
  double probability = 0.0;  // stationary reference probability p_i
  double cost = 0.0;         // execution cost c_i
  uint64_t size = 0;         // retrieved-set size s_i
};

/// Result of a static selection.
struct StaticSelection {
  std::vector<size_t> chosen;  // indices into the input vector
  double expected_saving = 0.0;  // sum of p_i * c_i over chosen
  uint64_t used_bytes = 0;
};

/// Greedy LNC*: sorts by p*c/s descending and assigns items from the
/// start of the list until the capacity constraint would be violated
/// (the paper's construction stops at the first violation).
StaticSelection LncStarSelect(const std::vector<StaticSet>& sets,
                              uint64_t capacity);

/// Exact optimum by exhaustive search; exponential, for n <= ~24 only.
StaticSelection OptimalSelect(const std::vector<StaticSet>& sets,
                              uint64_t capacity);

/// Expected per-reference miss cost of a selection:
/// sum_{i not chosen} p_i * c_i.
double ExpectedMissCost(const std::vector<StaticSet>& sets,
                        const StaticSelection& selection);

}  // namespace watchman

#endif  // WATCHMAN_CACHE_LNC_STAR_H_
