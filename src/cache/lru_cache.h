// Vanilla LRU over retrieved sets: the paper's primary baseline.
// Admits every set that fits in the cache at all and evicts
// least-recently-used sets until there is room.
//
// Recency order is an intrusive list (front = least recently used), so
// hits and victim selection are O(1) per entry touched.

#ifndef WATCHMAN_CACHE_LRU_CACHE_H_
#define WATCHMAN_CACHE_LRU_CACHE_H_

#include <string>

#include "cache/query_cache.h"

namespace watchman {

/// Least-recently-used replacement, no admission control.
class LruCache : public QueryCache {
 public:
  explicit LruCache(uint64_t capacity_bytes);

  std::string name() const override { return "lru"; }

 protected:
  void OnHit(Entry* entry, Timestamp now) override;
  void OnMiss(const QueryDescriptor& d, Timestamp now) override;
  void OnInsert(Entry* entry, Timestamp now) override;
  void OnEvict(Entry* entry) override;
  Status CheckPolicyIndex() const override;

 private:
  /// Front = next victim (least recently used), back = most recent.
  VictimList recency_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_LRU_CACHE_H_
