// Vanilla LRU over retrieved sets: the paper's primary baseline.
// Admits every set that fits in the cache at all and evicts
// least-recently-used sets until there is room.

#ifndef WATCHMAN_CACHE_LRU_CACHE_H_
#define WATCHMAN_CACHE_LRU_CACHE_H_

#include <string>

#include "cache/query_cache.h"

namespace watchman {

/// Least-recently-used replacement, no admission control.
class LruCache : public QueryCache {
 public:
  explicit LruCache(uint64_t capacity_bytes);

  std::string name() const override { return "lru"; }

 protected:
  void OnHit(Entry* entry, Timestamp now) override;
  void OnMiss(const QueryDescriptor& d, Timestamp now) override;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_LRU_CACHE_H_
