// LFU over retrieved sets: evicts the set with the fewest references
// received while cached (ties broken least-recently-used). One of the
// baselines discussed in the paper's related work (ADMS experiments).
//
// Eviction order is an incrementally maintained ordered index keyed by
// (cached reference count, last reference time); a hit re-keys the
// entry in O(log n).

#ifndef WATCHMAN_CACHE_LFU_CACHE_H_
#define WATCHMAN_CACHE_LFU_CACHE_H_

#include <string>

#include "cache/query_cache.h"

namespace watchman {

/// Least-frequently-used replacement, no admission control.
class LfuCache : public QueryCache {
 public:
  explicit LfuCache(uint64_t capacity_bytes);

  std::string name() const override { return "lfu"; }

 protected:
  void OnHit(Entry* entry, Timestamp now) override;
  void OnMiss(const QueryDescriptor& d, Timestamp now) override;
  void OnInsert(Entry* entry, Timestamp now) override;
  void OnEvict(Entry* entry) override;
  Status CheckPolicyIndex() const override;

 private:
  void Rekey(Entry* entry, bool already_indexed);

  VictimIndex by_frequency_;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_LFU_CACHE_H_
