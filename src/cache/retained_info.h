// Retained reference information (paper section 2.4).
//
// When a retrieved set is evicted (or rejected by admission), its
// reference timestamps, size and cost are retained so that a later
// re-reference starts from real rate information instead of from scratch
// -- the fix for the LRU-K-style starvation problem. Two drop policies
// are provided:
//
//  * ProfitRetainedStore -- the paper's rule: a retained record is
//    dropped whenever its profit falls below the least profit among all
//    cached retrieved sets (evaluated during sweeps). Self-scales with
//    cache pressure.
//  * TimeoutRetainedStore -- the [OOW93] alternative: records expire a
//    fixed period after their last reference (Five Minute Rule default),
//    used by the LRU-K baseline.
//
// Records are keyed by QueryKey, so lookups reuse the request's
// precomputed signature (identity hash) instead of re-hashing the query
// ID string; equality still resolves signature collisions by exact ID
// match.

#ifndef WATCHMAN_CACHE_RETAINED_INFO_H_
#define WATCHMAN_CACHE_RETAINED_INFO_H_

#include <cstdint>
#include <unordered_map>

#include "cache/ref_history.h"
#include "util/clock.h"
#include "util/query_key.h"

namespace watchman {

/// Metadata retained for a non-cached retrieved set.
struct RetainedInfo {
  ReferenceHistory history;
  uint64_t result_bytes = 0;
  uint64_t cost = 0;
};

/// Base map of query key -> RetainedInfo.
class RetainedInfoStore {
 public:
  virtual ~RetainedInfoStore() = default;

  /// Returns mutable info for `key`, or nullptr.
  RetainedInfo* Find(const QueryKey& key);

  /// Inserts or replaces the record for `key`.
  void Put(const QueryKey& key, RetainedInfo info);

  /// Drops the record for `key` if present.
  void Remove(const QueryKey& key);

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Shrink-to-fit: rehashes the map down to its current size so a
  /// store that grew to a past peak releases its bucket array
  /// (quiescent compaction; see QueryCache::Compact).
  void Compact();

  /// Total bytes of metadata retained (approximate; used to report the
  /// self-scaling behaviour the paper describes).
  uint64_t ApproxMetadataBytes() const;

 protected:
  std::unordered_map<QueryKey, RetainedInfo> map_;
};

/// Paper policy: drop records whose profit (lambda * cost / size, with
/// e-profit fallback when no rate is available) is below
/// `min_cached_profit`.
class ProfitRetainedStore : public RetainedInfoStore {
 public:
  /// Removes every record whose profit at time `now` is smaller than
  /// `min_cached_profit`. Returns the number of dropped records.
  size_t SweepBelowProfit(double min_cached_profit, Timestamp now);
};

/// [OOW93] policy: drop records not referenced for `timeout`.
class TimeoutRetainedStore : public RetainedInfoStore {
 public:
  explicit TimeoutRetainedStore(Duration timeout) : timeout_(timeout) {}

  /// Removes every record whose last reference is older than the
  /// timeout. Returns the number of dropped records.
  size_t SweepExpired(Timestamp now);

  Duration timeout() const { return timeout_; }

 private:
  Duration timeout_;
};

/// Profit of a retained record at time `now`: lambda * c / s, falling
/// back to c / s when no rate estimate is available.
double RetainedProfit(const RetainedInfo& info, Timestamp now);

}  // namespace watchman

#endif  // WATCHMAN_CACHE_RETAINED_INFO_H_
