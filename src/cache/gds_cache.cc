#include "cache/gds_cache.h"

#include <algorithm>
#include <utility>

namespace watchman {

GdsCache::GdsCache(uint64_t capacity_bytes)
    : QueryCache(Options{capacity_bytes, /*k=*/1}) {}

double GdsCache::HValue(const QueryDescriptor& d) const {
  return inflation_ + static_cast<double>(d.cost) /
                          static_cast<double>(std::max<uint64_t>(
                              d.result_bytes, 1));
}

void GdsCache::OnHit(Entry* entry, Timestamp /*now*/) {
  entry->gds_h = HValue(entry->desc);
}

void GdsCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  if (d.result_bytes > available_bytes()) {
    auto victims = SelectVictims(
        d.result_bytes - available_bytes(),
        [](Entry* e) { return std::make_pair(e->gds_h, e->history.last()); });
    double max_evicted_h = inflation_;
    for (Entry* victim : victims) {
      max_evicted_h = std::max(max_evicted_h, victim->gds_h);
      EvictEntry(victim);
    }
    inflation_ = max_evicted_h;
  }
  Entry* entry = InsertEntry(d, now);
  entry->gds_h = HValue(d);
}

}  // namespace watchman
