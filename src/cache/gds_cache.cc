#include "cache/gds_cache.h"

#include <algorithm>

namespace watchman {

GdsCache::GdsCache(uint64_t capacity_bytes)
    : QueryCache(Options{capacity_bytes, /*k=*/1}) {}

double GdsCache::HValue(const QueryDescriptor& d) const {
  return inflation_ + static_cast<double>(d.cost) /
                          static_cast<double>(std::max<uint64_t>(
                              d.result_bytes, 1));
}

void GdsCache::OnHit(Entry* entry, Timestamp /*now*/) {
  entry->gds_h = HValue(entry->desc);
  by_h_.Update(entry, 0, entry->gds_h, entry->history.last());
}

void GdsCache::OnMiss(const QueryDescriptor& d, Timestamp now) {
  if (d.result_bytes > capacity_bytes()) {
    CountTooLargeRejection();
    return;
  }
  if (d.result_bytes > available_bytes()) {
    auto victims = CollectVictims(by_h_, d.result_bytes - available_bytes());
    double max_evicted_h = inflation_;
    for (Entry* victim : victims) {
      max_evicted_h = std::max(max_evicted_h, victim->gds_h);
      EvictEntry(victim);
    }
    inflation_ = max_evicted_h;
  }
  InsertEntry(d, now);
}

void GdsCache::OnInsert(Entry* entry, Timestamp /*now*/) {
  entry->gds_h = HValue(entry->desc);
  by_h_.Add(entry, 0, entry->gds_h, entry->history.last());
}

void GdsCache::OnEvict(Entry* entry) { by_h_.Remove(entry); }

Status GdsCache::CheckPolicyIndex() const {
  uint64_t bytes = 0;
  for (const auto& item : by_h_) {
    if (item.key.primary != item.node->gds_h) {
      return Status::Internal("gds index key out of date");
    }
    bytes += item.node->desc.result_bytes;
  }
  return CheckIndexAccounting("gds index", by_h_.size(), bytes);
}

}  // namespace watchman
