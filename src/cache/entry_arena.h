// SlabArena: a slab + freelist allocator for cache entries.
//
// Entries were previously heap-allocated one unique_ptr at a time;
// under miss+evict churn that is one malloc/free pair per miss and
// entries scatter across the heap. The arena carves fixed-size slabs
// (kSlabNodes objects each), hands out slots from a freelist, and
// recycles released slots in place -- evict-then-insert reuses the same
// memory, keeping the working set of entry metadata compact and the
// churn path allocation-free once the arena reaches steady state.
//
// Objects are constructed with placement new and destroyed on Release;
// slab memory itself is only returned to the system when the arena is
// destroyed (cache lifetime).

#ifndef WATCHMAN_CACHE_ENTRY_ARENA_H_
#define WATCHMAN_CACHE_ENTRY_ARENA_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace watchman {

template <typename T>
class SlabArena {
 public:
  static constexpr size_t kSlabNodes = 64;

  SlabArena() = default;

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  ~SlabArena() { assert(live_ == 0 && "arena destroyed with live objects"); }

  /// Constructs a T in a recycled (or fresh) slot.
  template <typename... Args>
  T* New(Args&&... args) {
    Slot* slot;
    if (free_ != nullptr) {
      slot = free_;
      free_ = free_->next_free;
    } else {
      if (next_in_slab_ == kSlabNodes) {
        slabs_.push_back(std::make_unique<Slot[]>(kSlabNodes));
        next_in_slab_ = 0;
      }
      slot = &slabs_.back()[next_in_slab_++];
    }
    ++live_;
    return new (slot->storage) T(std::forward<Args>(args)...);
  }

  /// Destroys `t` and recycles its slot.
  void Release(T* t) {
    assert(t != nullptr && live_ > 0);
    t->~T();
    Slot* slot = reinterpret_cast<Slot*>(t);
    slot->next_free = free_;
    free_ = slot;
    --live_;
  }

  size_t live() const { return live_; }
  size_t slab_count() const { return slabs_.size(); }

 private:
  union Slot {
    Slot() {}
    ~Slot() {}
    Slot* next_free;
    alignas(T) unsigned char storage[sizeof(T)];
  };
  static_assert(sizeof(T) >= sizeof(void*),
                "freelist pointer must fit a slot");

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  Slot* free_ = nullptr;
  size_t next_in_slab_ = kSlabNodes;
  size_t live_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_ENTRY_ARENA_H_
