// SlabArena: a slab + freelist allocator for cache entries.
//
// Entries were previously heap-allocated one unique_ptr at a time;
// under miss+evict churn that is one malloc/free pair per miss and
// entries scatter across the heap. The arena carves fixed-size slabs
// (kSlabNodes objects each), hands out slots from a freelist, and
// recycles released slots in place -- evict-then-insert reuses the same
// memory, keeping the working set of entry metadata compact and the
// churn path allocation-free once the arena reaches steady state.
//
// Objects are constructed with placement new and destroyed on Release;
// slab memory is returned to the system when the arena is destroyed, or
// earlier via Compact(), which releases slabs whose slots are all free
// (quiescent shrink for long-lived daemons whose working set shrank).

#ifndef WATCHMAN_CACHE_ENTRY_ARENA_H_
#define WATCHMAN_CACHE_ENTRY_ARENA_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace watchman {

template <typename T>
class SlabArena {
 public:
  static constexpr size_t kSlabNodes = 64;

  SlabArena() = default;

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  ~SlabArena() { assert(live_ == 0 && "arena destroyed with live objects"); }

  /// Constructs a T in a recycled (or fresh) slot.
  template <typename... Args>
  T* New(Args&&... args) {
    Slot* slot;
    if (free_ != nullptr) {
      slot = free_;
      free_ = free_->next_free;
    } else {
      if (next_in_slab_ == kSlabNodes) {
        slabs_.push_back(std::make_unique<Slot[]>(kSlabNodes));
        next_in_slab_ = 0;
      }
      slot = &slabs_.back()[next_in_slab_++];
    }
    ++live_;
    return new (slot->storage) T(std::forward<Args>(args)...);
  }

  /// Destroys `t` and recycles its slot.
  void Release(T* t) {
    assert(t != nullptr && live_ > 0);
    t->~T();
    Slot* slot = reinterpret_cast<Slot*>(t);
    slot->next_free = free_;
    free_ = slot;
    --live_;
  }

  size_t live() const { return live_; }
  size_t slab_count() const { return slabs_.size(); }

  /// Releases every slab all of whose handed-out slots sit on the
  /// freelist (none of its objects are live) back to the system and
  /// rebuilds the freelist from the surviving slabs. Live objects never
  /// move, so outstanding T* stay valid. O((slabs + free slots) *
  /// log slabs); intended for quiescent moments. Returns the number of
  /// slabs released.
  size_t Compact() {
    if (slabs_.empty()) return 0;
    // Sort slab base addresses so each free slot maps to its slab by
    // binary search.
    struct SlabRef {
      const Slot* base;
      size_t index;
      // std::less: raw < on pointers into different slabs is
      // unspecified; std::less guarantees a total order.
      bool operator<(const SlabRef& o) const {
        return std::less<const Slot*>()(base, o.base);
      }
    };
    std::vector<SlabRef> refs;
    refs.reserve(slabs_.size());
    for (size_t i = 0; i < slabs_.size(); ++i) {
      refs.push_back(SlabRef{slabs_[i].get(), i});
    }
    std::sort(refs.begin(), refs.end());
    std::vector<size_t> free_in_slab(slabs_.size(), 0);
    std::vector<std::pair<size_t, Slot*>> free_slots;  // (slab, slot)
    for (Slot* s = free_; s != nullptr; s = s->next_free) {
      auto it = std::upper_bound(refs.begin(), refs.end(), SlabRef{s, 0});
      assert(it != refs.begin());
      --it;
      assert(s >= it->base && s < it->base + kSlabNodes);
      ++free_in_slab[it->index];
      free_slots.emplace_back(it->index, s);
    }
    // A slab is releasable when every slot it has handed out is free;
    // only the open slab (the back) may have an unhanded tail.
    auto handed = [this](size_t i) {
      return i + 1 == slabs_.size() && next_in_slab_ < kSlabNodes
                 ? next_in_slab_
                 : kSlabNodes;
    };
    std::vector<bool> release(slabs_.size());
    size_t released = 0;
    for (size_t i = 0; i < slabs_.size(); ++i) {
      release[i] = free_in_slab[i] == handed(i);
      if (release[i]) ++released;
    }
    if (released == 0) return 0;
    // Rebuild the freelist from the surviving slabs' free slots, then
    // drop the released slabs.
    free_ = nullptr;
    for (const auto& [slab, slot] : free_slots) {
      if (release[slab]) continue;
      slot->next_free = free_;
      free_ = slot;
    }
    const bool back_released = release.back();
    std::vector<std::unique_ptr<Slot[]>> kept;
    kept.reserve(slabs_.size() - released);
    for (size_t i = 0; i < slabs_.size(); ++i) {
      if (!release[i]) kept.push_back(std::move(slabs_[i]));
    }
    slabs_ = std::move(kept);
    if (back_released) next_in_slab_ = kSlabNodes;  // no open slab left
    return released;
  }

 private:
  union Slot {
    Slot() {}
    ~Slot() {}
    Slot* next_free;
    alignas(T) unsigned char storage[sizeof(T)];
  };
  static_assert(sizeof(T) >= sizeof(void*),
                "freelist pointer must fit a slot");

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  Slot* free_ = nullptr;
  size_t next_in_slab_ = kSlabNodes;
  size_t live_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_ENTRY_ARENA_H_
