// The immutable facts the cache manager knows about a query / retrieved
// set: its ID (and signature), the retrieved-set size and the execution
// cost of the query (paper section 2.1).

#ifndef WATCHMAN_CACHE_QUERY_DESCRIPTOR_H_
#define WATCHMAN_CACHE_QUERY_DESCRIPTOR_H_

#include <cstdint>
#include <string>

#include "trace/query_event.h"
#include "util/hash.h"

namespace watchman {

/// Descriptor of a retrieved set offered to (or held by) the cache.
struct QueryDescriptor {
  /// Compressed query ID; the exact-match cache key.
  std::string query_id;

  /// 64-bit signature over the query ID (lookup prefilter, paper §3).
  Signature signature;

  /// Size s_i of the retrieved set, in bytes.
  uint64_t result_bytes = 0;

  /// Execution cost c_i of the query, in logical block reads.
  uint64_t cost = 0;

  /// Builds a descriptor from a trace event (computes the signature).
  static QueryDescriptor FromEvent(const QueryEvent& e) {
    QueryDescriptor d;
    d.query_id = e.query_id;
    d.signature = ComputeSignature(e.query_id);
    d.result_bytes = e.result_bytes;
    d.cost = e.cost_block_reads;
    return d;
  }
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_QUERY_DESCRIPTOR_H_
