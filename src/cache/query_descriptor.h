// The immutable facts the cache manager knows about a query / retrieved
// set: its key (interned query ID + precomputed signature), the
// retrieved-set size and the execution cost of the query (paper
// section 2.1).

#ifndef WATCHMAN_CACHE_QUERY_DESCRIPTOR_H_
#define WATCHMAN_CACHE_QUERY_DESCRIPTOR_H_

#include <cstdint>
#include <string_view>

#include "trace/query_event.h"
#include "util/query_key.h"

namespace watchman {

/// Descriptor of a retrieved set offered to (or held by) the cache.
struct QueryDescriptor {
  /// Cache key: compressed query ID + its 64-bit signature, computed
  /// once per request and reused by every lookup and shard route.
  QueryKey key;

  /// Size s_i of the retrieved set, in bytes.
  uint64_t result_bytes = 0;

  /// Execution cost c_i of the query, in logical block reads.
  uint64_t cost = 0;

  std::string_view query_id() const { return key.id(); }
  Signature signature() const { return key.signature(); }

  /// Builds a descriptor, computing the signature (the one hash of the
  /// request).
  static QueryDescriptor Make(std::string_view query_id,
                              uint64_t result_bytes, uint64_t cost) {
    QueryDescriptor d;
    d.key.Assign(query_id);
    d.result_bytes = result_bytes;
    d.cost = cost;
    return d;
  }

  /// Builds a descriptor from a trace event (computes the signature).
  static QueryDescriptor FromEvent(const QueryEvent& e) {
    return Make(e.query_id, e.result_bytes, e.cost_block_reads);
  }
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_QUERY_DESCRIPTOR_H_
