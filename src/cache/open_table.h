// SignatureTable: an open-addressing hash index keyed by 64-bit query
// signatures, replacing the node-based
// unordered_map<uint64_t, vector<unique_ptr<Entry>>> on the cache hot
// path.
//
//  * Power-of-two capacity: the bucket is `sig & mask` (no integer
//    division, unlike libstdc++'s prime-modulo unordered_map).
//  * Linear probing over flat {signature, node*} slots: a lookup
//    touches one cache line in the common case and never chases
//    bucket-chain nodes.
//  * Tombstone-free backward-shift deletion: erasing compacts the
//    probe cluster in place, so probe lengths never degrade over an
//    insert/erase-heavy lifetime (the miss+evict churn path).
//  * Duplicate signatures (distinct query IDs colliding at 64 bits) are
//    ordinary additional slots in the same cluster; Find() hands every
//    signature match to the caller's predicate for the exact-ID check,
//    mirroring the paper's signature-prefilter + exact-match lookup.
//
// The table stores raw Node pointers and never owns them; the cache
// allocates entries from a slab arena (entry_arena.h) and erases them
// from the table before releasing them.

#ifndef WATCHMAN_CACHE_OPEN_TABLE_H_
#define WATCHMAN_CACHE_OPEN_TABLE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace watchman {

template <typename Node>
class SignatureTable {
 public:
  SignatureTable() = default;

  SignatureTable(const SignatureTable&) = delete;
  SignatureTable& operator=(const SignatureTable&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// First node whose slot signature equals `sig` and for which
  /// `pred(node)` holds (the exact query-ID match); nullptr if none.
  template <typename Pred>
  Node* Find(uint64_t sig, Pred&& pred) const {
    if (size_ == 0) return nullptr;
    for (size_t i = sig & mask_;; i = (i + 1) & mask_) {
      const Slot& slot = slots_[i];
      if (slot.node == nullptr) return nullptr;
      if (slot.sig == sig && pred(slot.node)) return slot.node;
    }
  }

  /// Inserts a (signature, node) pair; the pair must not already be
  /// present. Grows when the load factor would exceed ~0.7.
  void Insert(uint64_t sig, Node* node) {
    assert(node != nullptr);
    if ((size_ + 1) * 10 >= capacity_ * 7) {
      Grow(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
    }
    InsertNoGrow(sig, node);
    ++size_;
  }

  /// Erases the (signature, node) pair with backward-shift compaction.
  /// Returns false when the pair is not in the table.
  bool Erase(uint64_t sig, Node* node) {
    if (size_ == 0) return false;
    size_t i = sig & mask_;
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.node == nullptr) return false;
      if (slot.sig == sig && slot.node == node) break;
      i = (i + 1) & mask_;
    }
    // Backward shift: pull every follower whose ideal position does not
    // preclude the move into the hole, until the cluster ends.
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      const Slot& next = slots_[j];
      if (next.node == nullptr) break;
      const size_t ideal = next.sig & mask_;
      // next may move back to `hole` iff hole lies within [ideal, j]
      // cyclically, i.e. next's probe distance at j covers the hole.
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = next;
        hole = j;
      }
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  /// Visits every stored (signature, node) pair in table order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (slots_[i].node != nullptr) fn(slots_[i].sig, slots_[i].node);
    }
  }

  /// Pre-sizes the table for `n` entries (bulk loads, benches).
  void Reserve(size_t n) {
    size_t want = kMinCapacity;
    while (n * 10 >= want * 7) want *= 2;
    if (want > capacity_) Grow(want);
  }

  /// Shrinks the table to the smallest power-of-two capacity that holds
  /// the current entries below the growth load factor, releasing the
  /// slot array entirely when the table is empty. Insertions grow it
  /// back on demand, so a long-lived cache whose working set shrank
  /// stops pinning its peak slot array. Returns true if the capacity
  /// changed.
  bool Compact() {
    if (size_ == 0) {
      if (capacity_ == 0) return false;
      slots_.reset();
      capacity_ = 0;
      mask_ = 0;
      return true;
    }
    size_t want = kMinCapacity;
    while ((size_ + 1) * 10 >= want * 7) want *= 2;
    if (want >= capacity_) return false;
    Grow(want);  // Grow() is a rehash into any power-of-two capacity
    return true;
  }

  /// Structural self-check: every occupied slot must be reachable from
  /// its ideal bucket without crossing an empty slot (the probe
  /// invariant backward-shift deletion maintains), and the occupied
  /// count must equal size().
  Status CheckStructure() const {
    size_t occupied = 0;
    for (size_t i = 0; i < capacity_; ++i) {
      if (slots_[i].node == nullptr) continue;
      ++occupied;
      const size_t ideal = slots_[i].sig & mask_;
      for (size_t j = ideal; j != i; j = (j + 1) & mask_) {
        if (slots_[j].node == nullptr) {
          return Status::Internal(
              "open table: slot unreachable from its ideal bucket");
        }
      }
    }
    if (occupied != size_) {
      return Status::Internal("open table: occupancy != size");
    }
    return Status::OK();
  }

 private:
  struct Slot {
    uint64_t sig = 0;
    Node* node = nullptr;
  };

  static constexpr size_t kMinCapacity = 16;

  void InsertNoGrow(uint64_t sig, Node* node) {
    size_t i = sig & mask_;
    while (slots_[i].node != nullptr) {
      assert(!(slots_[i].sig == sig && slots_[i].node == node) &&
             "duplicate (signature, node) insert");
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{sig, node};
  }

  void Grow(size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::unique_ptr<Slot[]> old = std::move(slots_);
    const size_t old_capacity = capacity_;
    slots_ = std::make_unique<Slot[]>(new_capacity);
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;
    for (size_t i = 0; i < old_capacity; ++i) {
      if (old[i].node != nullptr) InsertNoGrow(old[i].sig, old[i].node);
    }
  }

  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_CACHE_OPEN_TABLE_H_
