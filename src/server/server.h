// WatchmanServer: the watchmand network front-end over a Watchman
// facade.
//
// Architecture (event loop + worker pool): one IO thread owns the
// listen socket and every connection socket. It accepts, reads into
// per-connection buffers, extracts complete frames and pushes them onto
// a ready-queue that a fixed pool of worker threads consumes; workers
// decode, dispatch into the (thread-safe) Watchman facade, and append
// the encoded response to the connection's output buffer -- attempting
// a direct non-blocking send, with the IO thread resuming partial
// writes. Idle connections therefore cost zero threads, many
// connections multiplex over the fixed pool, and responses to one
// connection may complete out of order (the v3 request id lets clients
// re-correlate).
//
// Event backends: the IO thread runs on either epoll (default,
// universal) or io_uring (Options::backend / --backend flag). The
// io_uring loop arms multishot accept and multishot receive with a
// registered provided-buffer ring, so a pipelined burst of N frames
// costs O(1) io_uring_enter calls instead of one epoll_wait plus one
// recv per wakeup; on kernels without a feature it degrades op by op
// (one-shot accept/recv) and on kernels without usable io_uring at all
// `auto`/`io_uring` fall back to epoll with a logged warning. Workers
// are backend-agnostic: the direct-send output path is shared, and the
// io_uring loop only replaces the readiness/ingest side.
//
// Inline fast path: when a parsed frame is a cheap op (PING, GET,
// STATS), the connection has no frames in flight (response ordering)
// and the ready-queue is empty (a queued EXECUTE is never delayed), the
// IO thread dispatches it inline and appends the response to the
// out-buffer directly -- a blocking client's RTT skips the
// worker-queue hop entirely. A per-tick burst budget
// (Options::max_inline_burst) bounds how long the loop can stay in
// inline mode so a PING flood cannot starve event processing.
//
// Allocation discipline: frame bodies, connection in/out buffers and
// receive chunks are recycled through a FramePool, and the ready-queue
// is a ring (FrameQueue), so the steady-state request path performs no
// heap allocation (asserted by tests the same way allocation_test does
// for the cache).
//
// Flow control and lifetime:
//  * A connection whose decoded-frame backlog exceeds a cap stops being
//    read (reads disarmed) until workers catch up -- pipelining peers
//    cannot balloon the ready-queue.
//  * On a framing or decode error the server answers with the real
//    status -- echoing the request's opcode and id whenever the
//    prologue decoded -- then drains the peer to EOF before closing, so
//    the error response is never destroyed by a TCP reset.
//  * Options::io_timeout_ms bounds how long a connection may sit with
//    pending work (half-read frame, unflushed output, drain-to-EOF)
//    without progress; fully idle connections are never reaped.
//
// Maintenance: with Options::compact_idle_ms set, the IO thread runs
// Watchman::CompactMetadata() once per idle period (no ready work, no
// inflight frames, no traffic for that long); the COMPACT wire op
// forces the same pass remotely, and STATS reports the compaction count
// and the age of the last pass.
//
// The request handlers call straight into the facade, so hits on
// different cache shards proceed in parallel across workers and
// concurrent identical misses collapse into the facade's single-flight.
// Per-op request/error counters and latency histograms live in the
// lock-free obs registry (relaxed per-thread atomics, merged at read
// time) and surface through the STATS op, StatsSnapshot() and the
// Prometheus /metrics endpoint.
//
// Admin endpoint: with Options::admin_port >= 0 the IO thread also
// listens on a second socket speaking minimal HTTP/1.0. GET /metrics
// renders the registry in Prometheus text format; GET /healthz answers
// "ok". Requests are parsed and answered inline on the IO thread (the
// render is a few tens of microseconds) and every response closes the
// connection through the normal drain machinery.
//
// Miss-fill execution: a daemon has no warehouse of its own, so the
// EXECUTE op may carry the result the *client* computed for a miss.
// Construct the facade with MissFillExecutor() and the server routes
// that client-supplied fill through the facade's normal executor path
// (admission, single-flight, coherence epochs included). An embedder
// that does own a warehouse can instead construct the facade with a
// real executor; fills are then ignored by that executor and EXECUTE
// without a fill executes server-side.

#ifndef WATCHMAN_SERVER_SERVER_H_
#define WATCHMAN_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "server/admission.h"
#include "server/frame_pool.h"
#include "server/protocol.h"
#include "util/mutex.h"
#include "util/status.h"
#include "watchman/watchman.h"

namespace watchman {

class Uring;

/// Capability token for "owned by the server's IO thread" state: the
/// admission layer, connection registries and per-connection parse
/// buffers are GUARDED_BY(io_thread_role), so a worker-side touch is a
/// compile error under -Werror=thread-safety. The IO loop holds a
/// ThreadRoleGrant for its lifetime; Start() (before any thread is
/// spawned) and Stop() (after every thread is joined) take justified
/// transient grants. One token serves every WatchmanServer instance:
/// the analysis is per-function, and a thread only ever runs one
/// server's loop.
inline ThreadRole io_thread_role;

/// Event backend the IO thread runs on.
enum class ServerBackend {
  kEpoll,    // universal default
  kIoUring,  // batched submission; falls back to epoll when unavailable
  kAuto,     // io_uring when the kernel provides it, else epoll
};

/// Stable lower-case name ("epoll", "io_uring", "auto").
const char* ServerBackendName(ServerBackend backend);

/// Parses "epoll" / "io_uring" / "auto" (as spelled on --backend).
bool ParseServerBackend(std::string_view text, ServerBackend* out);

/// Event-loop TCP server exposing a Watchman facade.
class WatchmanServer {
 public:
  struct Options {
    /// Address to bind (default loopback only).
    std::string bind_address = "127.0.0.1";
    /// Port to bind; 0 picks an ephemeral port, read it back via
    /// port(). Tests and parallel CI runs should use 0.
    uint16_t port = 0;
    /// Worker threads draining the ready-queue of decoded frames.
    /// Connections are NOT pinned to workers: any worker serves any
    /// connection's next frame.
    size_t num_workers = 4;
    /// Per-frame body size limit; larger length prefixes answer with
    /// Corruption and close the connection.
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Event-loop tick bounding how long Stop(), timeouts and deferred
    /// closes can lag behind.
    int poll_interval_ms = 50;
    /// Closes a connection that has pending work (half-read frame,
    /// unflushed output, drain-to-EOF) but makes no progress for this
    /// long. 0 disables the reaping of stuck-but-healthy connections;
    /// fully idle connections are never reaped either way. Connections
    /// in a terminal state (protocol violation, EOF pending) are
    /// always bounded -- by this value, or a built-in 5s default when
    /// disabled -- so a misbehaving peer cannot hold its fd forever.
    int io_timeout_ms = 0;
    /// When nonzero, SO_SNDBUF for accepted connections (tests use a
    /// tiny value to force partial-write resumption).
    int sndbuf_bytes = 0;
    /// Per-connection cap on frames enqueued but not yet answered;
    /// beyond it the connection's reads pause until workers catch up.
    size_t max_inflight_frames = 4096;
    /// Event backend; kIoUring and kAuto fall back to epoll when the
    /// kernel cannot provide io_uring (kIoUring logs a warning).
    ServerBackend backend = ServerBackend::kEpoll;
    /// Dispatch cheap ops (PING/GET/STATS) inline on the IO thread when
    /// the connection has nothing in flight and the ready-queue is
    /// empty, skipping the worker hop.
    bool inline_dispatch = true;
    /// Inline dispatches allowed per event-loop tick; beyond it frames
    /// take the worker path until the next tick (starvation guard).
    uint32_t max_inline_burst = 128;
    /// When positive, run Watchman::CompactMetadata() after this many
    /// milliseconds with no ready work, no inflight frames and no
    /// traffic; at most once per idle period. 0 disables.
    int compact_idle_ms = 0;
    /// Admin HTTP listener port (GET /metrics + /healthz on the same
    /// event loop, same bind address): -1 disables, 0 binds an
    /// ephemeral port readable back via admin_port().
    int admin_port = -1;
    /// Record latency/stage histograms and facade distributions. The
    /// per-op request/error counters stay on either way (the wire STATS
    /// op needs them); disabling trades the histograms for a few
    /// nanoseconds per request (the --no-metrics bench baseline).
    bool metrics = true;
    /// When positive, a request whose worker-path total (queue wait +
    /// service + reply) reaches this many microseconds emits one
    /// structured slow-request log line (WARN; JSON when the process
    /// log format is JSON). 0 disables. Requires `metrics`.
    int64_t slow_request_us = 0;
    /// Test hook: pretend the kernel has no io_uring so the fallback
    /// path is exercised deterministically.
    bool simulate_io_uring_unavailable = false;
    /// Admission budgets (per-peer quotas, connection caps, global
    /// inflight/memory budgets). All default to unlimited; over-budget
    /// requests are answered with kShedRetryLater BEFORE dispatch, so a
    /// shed request was never executed and is always safe to retry.
    AdmissionOptions admission;
    /// Concurrent admin HTTP connections allowed (0 = unlimited).
    /// Connections over the cap are refused at accept time -- the admin
    /// plane must stay responsive even when being hammered.
    size_t max_admin_connections = 8;
    /// Closes an admin connection whose HTTP headers have not fully
    /// arrived within this long of accept (slowloris guard). 0
    /// disables.
    int admin_header_timeout_ms = 5000;
  };

  /// Snapshot of one op's throughput/latency counters, derived from the
  /// per-op metric objects at call time.
  struct OpCounters {
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t latency_count = 0;
    double latency_mean_us = 0.0;
    double latency_min_us = 0.0;
    double latency_max_us = 0.0;
  };

  /// `cache` must outlive the server.
  WatchmanServer(Watchman* cache, Options options);
  ~WatchmanServer();

  WatchmanServer(const WatchmanServer&) = delete;
  WatchmanServer& operator=(const WatchmanServer&) = delete;

  /// Binds, listens and spawns the IO thread + workers. Fails (IOError)
  /// if the address cannot be bound; at most one successful Start() per
  /// server instance.
  Status Start();

  /// Graceful shutdown: stops accepting, shuts down live connections,
  /// joins all threads. Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 after Start()).
  uint16_t port() const { return bound_port_; }

  /// The bound admin HTTP port after Start() (0 when disabled).
  uint16_t admin_port() const { return admin_bound_port_; }

  /// The metrics registry backing /metrics (embedders may render it
  /// themselves; safe to call while serving).
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }

  /// The backend actually serving after Start() resolved fallbacks.
  ServerBackend effective_backend() const { return effective_backend_; }

  /// Snapshot of cache + transport counters (the STATS op payload).
  WireStats StatsSnapshot() const;

  /// One op's counters (tests / embedders).
  OpCounters op_counters(OpCode op) const;

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Frames extracted from sockets but not yet claimed by a worker,
  /// right now (the ready-queue depth; wire-named connections_queued
  /// for v2 compatibility).
  uint64_t connections_queued() const {
    return ready_depth_.load(std::memory_order_relaxed);
  }

  /// High-water mark of the ready-queue since Start().
  uint64_t connections_queued_peak() const {
    return connections_queued_peak_.load(std::memory_order_relaxed);
  }

  /// Frames answered inline on the IO thread (fast path hits).
  uint64_t inline_dispatched() const {
    return inline_dispatched_.load(std::memory_order_relaxed);
  }

  /// Metadata compactions run (idle timer + COMPACT op).
  uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }

  /// Requests/connections shed by the admission layer, by reason.
  uint64_t sheds(ShedReason reason) const {
    return shed_counters_[static_cast<size_t>(reason)].Value();
  }

  /// Total sheds across every reason.
  uint64_t sheds_total() const {
    uint64_t total = 0;
    for (const obs::Counter& c : shed_counters_) total += c.Value();
    return total;
  }

  /// Response bytes buffered across all connections right now (the
  /// quantity max_global_output_bytes budgets).
  uint64_t output_bytes_pending() const {
    return output_bytes_.load(std::memory_order_relaxed);
  }

  /// Admin connections refused at accept (max_admin_connections).
  uint64_t admin_rejected() const {
    return admin_rejected_.load(std::memory_order_relaxed);
  }

  /// Admin connections closed by the header-read deadline (slowloris).
  uint64_t admin_timeouts() const {
    return admin_timeouts_.load(std::memory_order_relaxed);
  }

  /// The frame-body / connection-buffer recycler (tests).
  const FramePool& frame_pool() const { return body_pool_; }

  /// An executor that serves the client-supplied miss-fill attached to
  /// the EXECUTE request being handled on this thread, and fails with
  /// NotFound when the request carried none. Pass to the Watchman
  /// constructor when the daemon itself has no warehouse.
  static Watchman::Executor MissFillExecutor();

 private:
  /// Per-connection state. The IO thread owns fd registration, inbuf
  /// and the event-arming flags; workers and the IO thread share the
  /// output buffer under out_mu; the close decision is gated on the
  /// inflight frame count (release/acquire ordered), so a socket is
  /// only closed when no worker can still touch it.
  struct Connection {
    /// Written only by the IO thread (adopt / close); read by workers
    /// inside FlushLocked. Not capability-guarded: its stability for a
    /// worker is the inflight-count protocol (the IO thread never
    /// closes while inflight > 0, release/acquire ordered), which the
    /// analysis cannot express.
    int fd = -1;
    /// Accepted on the admin HTTP listener: inbuf holds an HTTP request
    /// instead of wire frames and the reply closes the connection.
    bool is_admin GUARDED_BY(io_thread_role) = false;
    /// Hash of the peer's address (port excluded): the admission
    /// layer's quota key. 0 when getpeername failed.
    uint64_t peer_key GUARDED_BY(io_thread_role) = 0;
    /// This connection holds a slot in the admission controller's
    /// per-peer connection count (balanced at final close).
    bool peer_counted GUARDED_BY(io_thread_role) = false;
    /// Admin connections: NowMs() deadline for complete HTTP headers
    /// (slowloris guard); 0 = none / already satisfied.
    int64_t admin_deadline_ms GUARDED_BY(io_thread_role) = 0;
    std::string inbuf GUARDED_BY(io_thread_role);
    Mutex out_mu;
    /// Pending output bytes / flushed prefix.
    std::string outbuf GUARDED_BY(out_mu);
    size_t out_off GUARDED_BY(out_mu) = 0;
    /// A send failed; close without flushing.
    bool send_error GUARDED_BY(out_mu) = false;
    bool want_write GUARDED_BY(io_thread_role) = false;  // EPOLLOUT armed
    bool read_paused GUARDED_BY(io_thread_role) = false;  // reads disarmed
    bool output_shutdown GUARDED_BY(io_thread_role) = false;  // SHUT_WR sent
    /// Listed in finishing_.
    bool in_finishing GUARDED_BY(io_thread_role) = false;
    // io_uring bookkeeping (IO thread only). The fd of a logically
    // closed connection moves to defunct_fd until every outstanding
    // SQE's completion has drained (uring_inflight), so a stale CQE can
    // never be misattributed to a reused fd.
    std::string chunk
        GUARDED_BY(io_thread_role);  // one-shot recv buffer (no buffer ring)
    int defunct_fd GUARDED_BY(io_thread_role) = -1;
    uint32_t uring_inflight GUARDED_BY(io_thread_role) = 0;
    bool recv_armed GUARDED_BY(io_thread_role) = false;
    bool recv_cancel_pending GUARDED_BY(io_thread_role) = false;
    bool pollout_armed GUARDED_BY(io_thread_role) = false;
    /// Read EOF/error seen (written by the IO thread; workers read it
    /// to decide whether the IO thread needs a wake-up).
    std::atomic<bool> input_closed{false};
    /// Protocol violation: stop parsing, answer, drain to EOF, close.
    std::atomic<bool> draining{false};
    /// True while an entry for this connection sits in the dirty list
    /// (suppresses duplicate wake-ups from concurrent workers).
    std::atomic<bool> dirty_pending{false};
    /// Frames handed to workers and not yet fully answered.
    std::atomic<uint32_t> inflight{0};
    /// Milliseconds-since-start of the last read/write progress,
    /// updated by both the IO thread and workers (io_timeout_ms).
    std::atomic<int64_t> last_progress_ms{0};
  };

  /// One decoded-frame work item (body copied out of the connection's
  /// read buffer -- into a pool-recycled string -- so the buffer can
  /// compact immediately).
  struct Work {
    std::shared_ptr<Connection> conn;
    std::string body;
    /// NowNs() when the frame entered the ready-queue (0 when metrics
    /// are off); feeds the queue-wait histogram.
    int64_t enqueue_ns = 0;
  };

  void IoLoop();
  void UringLoop();
  void WorkerLoop();

  // IO-thread helpers (backend-shared unless noted). REQUIRES the IO
  // role: a call from a worker path is a compile error.
  /// epoll: drain accept4 until EAGAIN on the wire or admin listener.
  void AcceptReady(bool admin) REQUIRES(io_thread_role);
  /// Registers one accepted socket (socket options, pooled buffers,
  /// read arming) on the active backend.
  void AdoptConnection(int conn_fd, bool is_admin)
      REQUIRES(io_thread_role);
  void ReadReady(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);  // epoll
  void ParseFrames(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  /// Parses + answers the HTTP request buffered on an admin connection;
  /// every response transitions to draining/close.
  void HandleAdminData(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  /// True when `body` may run inline on the IO thread right now.
  bool CanInline(const std::shared_ptr<Connection>& conn,
                 std::string_view body) const REQUIRES(io_thread_role);
  /// Decode + dispatch + append-response on the IO thread (no flush;
  /// ParseFrames flushes once per batch).
  void InlineDispatch(const std::shared_ptr<Connection>& conn,
                      std::string_view body) REQUIRES(io_thread_role);
  /// Answers one parsed-but-not-admitted frame with kShedRetryLater
  /// (echoing the frame's op and id) and records the shed; the
  /// connection stays open.
  void ShedFrame(const std::shared_ptr<Connection>& conn,
                 std::string_view body, ShedReason reason,
                 uint32_t retry_after_ms) REQUIRES(io_thread_role);
  /// Records a shed in the per-reason counter + retry-hint histogram.
  void RecordShed(ShedReason reason, uint32_t retry_after_ms);
  /// Hash of the socket's peer address, port excluded (0 on failure).
  static uint64_t PeerKeyFor(int fd);
  /// Recomputes and applies the connection's read-side interest.
  void RearmInterest(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  void UpdateWriteInterest(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  /// Close / half-close state machine for one connection.
  void FinishConnection(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  /// Adds conn to finishing_ (deduplicated) for sweep re-examination.
  void EnqueueFinishing(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  void SweepConnections() REQUIRES(io_thread_role);
  /// Flushes/finishes connections workers flagged via MarkDirty.
  void ProcessDirtyConnections() REQUIRES(io_thread_role);
  void CloseConnection(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  /// Returns the connection's pooled buffers to body_pool_ (final
  /// close only).
  void ReleaseConnectionBuffers(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  /// Runs CompactMetadata() once per idle period (compact_idle_ms).
  void MaybeCompactIdle() REQUIRES(io_thread_role);
  /// Also the COMPACT op's handler, so callable from any worker.
  void RunCompaction();

  // io_uring-loop helpers (IO thread only).
  void UringArmAccept(bool admin) REQUIRES(io_thread_role);
  void UringArmWake() REQUIRES(io_thread_role);
  void UringArmRecv(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  void UringCancelRecv(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  void UringArmPollOut(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  void UringUpdateReadInterest(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  void UringCloseConnection(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  /// Final teardown once no SQE references the connection.
  void UringFinalClose(const std::shared_ptr<Connection>& conn)
      REQUIRES(io_thread_role);
  /// Closes deferred-close connections whose completions drained.
  void ReapUringClosing() REQUIRES(io_thread_role);
  void HandleAcceptCqe(int32_t res, uint32_t flags, bool admin)
      REQUIRES(io_thread_role);
  void HandleRecvCqe(const std::shared_ptr<Connection>& conn, int32_t res,
                     uint32_t flags) REQUIRES(io_thread_role);

  /// Appends `bytes` to conn's output and attempts a direct
  /// non-blocking send; returns true when everything is on the wire
  /// (callable from workers and the IO thread).
  bool QueueOutput(const std::shared_ptr<Connection>& conn,
                   std::string_view bytes) EXCLUDES(conn->out_mu);
  /// The send loop of QueueOutput.
  bool FlushLocked(Connection* conn) REQUIRES(conn->out_mu);
  /// Asks the IO thread to re-examine `conn` (arm write interest,
  /// close, ...).
  void MarkDirty(const std::shared_ptr<Connection>& conn);

  // Worker-side request handling.
  void ProcessFrame(Work& work, WireRequest* request, WireResponse* response,
                    std::string* encoded);
  void Dispatch(const WireRequest& request, WireResponse* response);
  void RecordOp(OpCode op, StatusCode code, int64_t latency_ns);

  /// Registers every metric family (cache, facade, server) with
  /// registry_; run once from the constructor.
  void BuildMetricsRegistry();

  int64_t NowMs() const;
  /// Nanoseconds since construction (latency/stage timestamps).
  int64_t NowNs() const;

  Watchman* cache_;
  Options options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t bound_port_ = 0;
  ServerBackend effective_backend_ = ServerBackend::kEpoll;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point start_time_;

  /// Live connections, keyed by fd.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_
      GUARDED_BY(io_thread_role);
  /// Connections in a terminal state (EOF seen / draining / send
  /// error) whose close could not complete yet; re-examined each tick
  /// so the idle steady state never scans the whole map.
  std::vector<std::shared_ptr<Connection>> finishing_
      GUARDED_BY(io_thread_role);
  /// Connections whose reads are paused for backpressure.
  std::vector<std::shared_ptr<Connection>> paused_reads_
      GUARDED_BY(io_thread_role);
  /// Accepting paused after fd exhaustion; retried each tick instead
  /// of busy-spinning.
  bool accept_paused_ GUARDED_BY(io_thread_role) = false;

  /// Admission state: per-peer buckets + connection counts. Guarded by
  /// the IO role, not a mutex -- frames are admitted where they are
  /// parsed, so the layer stays lock-free by construction.
  AdmissionController admission_ GUARDED_BY(io_thread_role);
  /// NowMs() of the last idle-peer GC pass over admission_.
  int64_t last_admission_gc_ms_ GUARDED_BY(io_thread_role) = 0;

  // Admin HTTP listener state (IO thread only except the bound port;
  // the listener fd itself is set up in Start() / torn down in Stop()).
  int admin_listen_fd_ = -1;
  uint16_t admin_bound_port_ = 0;
  bool admin_accept_paused_ GUARDED_BY(io_thread_role) = false;
  /// Open admin connections (max_admin_connections).
  size_t admin_conns_active_ GUARDED_BY(io_thread_role) = 0;
  /// Admin connections still awaiting complete HTTP headers, scanned by
  /// the sweep against their deadline.
  std::vector<std::shared_ptr<Connection>> admin_pending_
      GUARDED_BY(io_thread_role);
  /// Scratch for rendering admin responses (reused across requests).
  std::string admin_body_ GUARDED_BY(io_thread_role);
  std::string admin_response_ GUARDED_BY(io_thread_role);
  /// The backend/policy info gauge registers in Start() (once the
  /// effective backend is known), at most once per server instance.
  bool info_registered_ GUARDED_BY(io_thread_role) = false;

  // io_uring backend state (IO thread only; the ring itself is created
  // in Start() and destroyed in Stop(), both outside the role's reign).
  std::unique_ptr<Uring> uring_;
  bool accept_armed_ GUARDED_BY(io_thread_role) = false;
  bool admin_accept_armed_ GUARDED_BY(io_thread_role) = false;
  bool wake_armed_ GUARDED_BY(io_thread_role) = false;
  /// Cleared when the kernel answers a multishot arm with EINVAL; the
  /// loop then degrades to one-shot re-arming for that op.
  bool uring_multishot_accept_ok_ GUARDED_BY(io_thread_role) = true;
  bool uring_multishot_recv_ok_ GUARDED_BY(io_thread_role) = true;
  /// Keeps every SQE-referenced connection alive until its completions
  /// drain; CQE user_data pointers resolve here.
  std::unordered_map<Connection*, std::shared_ptr<Connection>> uring_conns_
      GUARDED_BY(io_thread_role);
  /// Logically closed connections awaiting completion drain.
  std::vector<std::shared_ptr<Connection>> uring_closing_
      GUARDED_BY(io_thread_role);
  /// Connections touched by this CQE batch (re-arm + finish once at
  /// batch end).
  std::vector<std::shared_ptr<Connection>> uring_rearm_
      GUARDED_BY(io_thread_role);

  /// Recycled frame bodies, connection buffers and recv chunks
  /// (internally synchronized: workers release, the IO thread acquires).
  FramePool body_pool_;

  /// Decoded frames awaiting a worker.
  mutable Mutex ready_mu_;
  CondVar ready_cv_;
  FrameQueue<Work> ready_ GUARDED_BY(ready_mu_);
  /// ready_.size() mirror readable without ready_mu_ (inline-dispatch
  /// gate, stats).
  std::atomic<uint64_t> ready_depth_{0};
  /// Frames handed to workers and not yet answered, across all
  /// connections (idle detection for compaction).
  std::atomic<uint64_t> inflight_frames_{0};

  /// Connections workers want the IO thread to re-examine.
  Mutex dirty_mu_;
  std::vector<std::shared_ptr<Connection>> dirty_ GUARDED_BY(dirty_mu_);
  /// IO-thread scratch the dirty list swaps into (capacity reuse).
  std::vector<std::shared_ptr<Connection>> dirty_scratch_
      GUARDED_BY(io_thread_role);

  // Inline fast-path state (IO thread only).
  uint32_t inline_budget_used_ GUARDED_BY(io_thread_role) = 0;
  WireRequest io_request_ GUARDED_BY(io_thread_role);
  WireResponse io_response_ GUARDED_BY(io_thread_role);

  /// Response bytes appended to connection out-buffers and not yet on
  /// the wire, across all connections (max_global_output_bytes).
  std::atomic<uint64_t> output_bytes_{0};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> admin_rejected_{0};
  std::atomic<uint64_t> admin_timeouts_{0};
  /// High-water mark of the ready-queue (frames extracted but not yet
  /// claimed by a worker): worker-pool saturation visibility.
  std::atomic<uint64_t> connections_queued_peak_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> frames_rejected_{0};
  std::atomic<uint64_t> inline_dispatched_{0};
  std::atomic<uint64_t> compactions_{0};
  /// NowMs() of the last completed compaction; -1 = never.
  std::atomic<int64_t> last_compaction_ms_{-1};
  /// NowMs() of the last ingested or answered frame (idle detection).
  std::atomic<int64_t> last_activity_ms_{0};

  /// Per-op metric objects: lock-free counters and a log-bucketed
  /// latency histogram. The hot path is a handful of relaxed atomic
  /// adds into per-thread slots -- no mutex, no allocation.
  struct OpMetrics {
    obs::Counter requests;
    obs::Counter errors;
    obs::LogHistogram latency_ns;
  };
  std::array<OpMetrics, kNumOpCodes> per_op_;
  /// Worker-path stage histograms: ready-queue wait (enqueue ->
  /// worker claim) and reply append/flush time (dispatch done ->
  /// response on the wire or queued).
  obs::LogHistogram queue_wait_ns_;
  obs::LogHistogram reply_ns_;
  /// Sheds by reason (index = ShedReason; kNone slot stays 0).
  std::array<obs::Counter, kNumShedReasons> shed_counters_;
  /// Retry-after hints attached to shed responses (milliseconds).
  obs::LogHistogram shed_retry_hint_ms_;

  /// Every metric family (cache, facade, server) for /metrics.
  obs::MetricsRegistry registry_;
};

}  // namespace watchman

#endif  // WATCHMAN_SERVER_SERVER_H_
