// WatchmanServer: the watchmand network front-end over a Watchman
// facade.
//
// Architecture (connection-per-worker): one acceptor thread accepts TCP
// connections on a loopback/interface address and hands them to a fixed
// pool of worker threads; each worker owns one connection at a time and
// serves it until the peer disconnects. Workers read into a
// per-connection buffer, drain *every* complete frame in it before
// flushing the batched responses in one write (request batching -- a
// pipelining client pays one syscall round per burst, not per request),
// and poll with a short timeout so Stop() is honored promptly.
//
// The request handlers call straight into the (thread-safe) Watchman
// facade, so hits on different cache shards proceed in parallel across
// workers and concurrent identical misses collapse into the facade's
// single-flight. Per-op request/error/latency counters (util/stats
// OnlineStats) are kept under a metrics mutex and surfaced through
// both the STATS op and the StatsSnapshot() accessor.
//
// Miss-fill execution: a daemon has no warehouse of its own, so the
// EXECUTE op may carry the result the *client* computed for a miss.
// Construct the facade with MissFillExecutor() and the server routes
// that client-supplied fill through the facade's normal executor path
// (admission, single-flight, coherence epochs included). An embedder
// that does own a warehouse can instead construct the facade with a
// real executor; fills are then ignored by that executor and EXECUTE
// without a fill executes server-side.

#ifndef WATCHMAN_SERVER_SERVER_H_
#define WATCHMAN_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "server/protocol.h"
#include "util/stats.h"
#include "util/status.h"
#include "watchman/watchman.h"

namespace watchman {

/// Multi-threaded TCP server exposing a Watchman facade.
class WatchmanServer {
 public:
  struct Options {
    /// Address to bind (default loopback only).
    std::string bind_address = "127.0.0.1";
    /// Port to bind; 0 picks an ephemeral port, read it back via
    /// port(). Tests and parallel CI runs should use 0.
    uint16_t port = 0;
    /// Worker threads == connections served concurrently; additional
    /// accepted connections queue until a worker frees up.
    size_t num_workers = 4;
    /// Per-frame body size limit; larger length prefixes close the
    /// connection as corrupt.
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Poll timeout bounding how long Stop() can lag behind.
    int poll_interval_ms = 50;
  };

  /// Per-op throughput/latency counters.
  struct OpCounters {
    uint64_t requests = 0;
    uint64_t errors = 0;
    OnlineStats latency_us;
  };

  /// `cache` must outlive the server.
  WatchmanServer(Watchman* cache, Options options);
  ~WatchmanServer();

  WatchmanServer(const WatchmanServer&) = delete;
  WatchmanServer& operator=(const WatchmanServer&) = delete;

  /// Binds, listens and spawns the acceptor + workers. Fails (IOError)
  /// if the address cannot be bound; at most one successful Start() per
  /// server instance.
  Status Start();

  /// Graceful shutdown: stops accepting, shuts down live connections,
  /// joins all threads. Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 after Start()).
  uint16_t port() const { return bound_port_; }

  /// Snapshot of cache + transport counters (the STATS op payload).
  WireStats StatsSnapshot() const;

  /// One op's counters (tests / embedders).
  OpCounters op_counters(OpCode op) const;

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Connections accepted but not yet claimed by a worker, right now.
  uint64_t connections_queued() const;

  /// High-water mark of the accept queue since Start().
  uint64_t connections_queued_peak() const {
    return connections_queued_peak_.load(std::memory_order_relaxed);
  }

  /// An executor that serves the client-supplied miss-fill attached to
  /// the EXECUTE request being handled on this thread, and fails with
  /// NotFound when the request carried none. Pass to the Watchman
  /// constructor when the daemon itself has no warehouse.
  static Watchman::Executor MissFillExecutor();

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  /// Decodes one frame body into *request (per-connection scratch,
  /// string capacity reused), dispatches it into *response and appends
  /// the encoded response to *out. Returns false when the connection
  /// must close (undecodable request).
  bool HandleFrame(std::string_view body, WireRequest* request,
                   WireResponse* response, std::string* out);
  void Dispatch(const WireRequest& request, WireResponse* response);
  void RecordOp(OpCode op, StatusCode code, double latency_us);

  Watchman* cache_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  /// Accepted connections awaiting a worker.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  /// Connections currently owned by a worker (shut down on Stop()).
  std::mutex conns_mu_;
  std::unordered_set<int> active_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  /// High-water mark of `pending_` (connections accepted but not yet
  /// claimed by a worker): worker-pool saturation visibility. The
  /// instantaneous queue depth is read off pending_ under queue_mu_.
  std::atomic<uint64_t> connections_queued_peak_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> frames_rejected_{0};

  /// One padded mutex per opcode: workers recording different ops
  /// never contend, and the hot path takes exactly one uncontended
  /// lock in the common case.
  struct alignas(64) LockedOpCounters {
    mutable std::mutex mu;
    OpCounters counters;
  };
  std::array<LockedOpCounters, kNumOpCodes> per_op_;
};

}  // namespace watchman

#endif  // WATCHMAN_SERVER_SERVER_H_
