// WatchmanServer: the watchmand network front-end over a Watchman
// facade.
//
// Architecture (event loop + worker pool): one IO thread owns an epoll
// instance, the (non-blocking) listen socket and every connection
// socket. It accepts, reads into per-connection buffers, extracts
// complete frames and pushes them onto a ready-queue that a fixed pool
// of worker threads consumes; workers decode, dispatch into the
// (thread-safe) Watchman facade, and append the encoded response to the
// connection's output buffer -- attempting a direct non-blocking send,
// with the IO thread resuming partial writes via EPOLLOUT. Idle
// connections therefore cost zero threads, many connections multiplex
// over the fixed pool, and responses to one connection may complete out
// of order (the v3 request id lets clients re-correlate).
//
// Flow control and lifetime:
//  * A connection whose decoded-frame backlog exceeds a cap stops being
//    read (EPOLLIN disarmed) until workers catch up -- pipelining peers
//    cannot balloon the ready-queue.
//  * On a framing or decode error the server answers with the real
//    status -- echoing the request's opcode and id whenever the
//    prologue decoded -- then drains the peer to EOF before closing, so
//    the error response is never destroyed by a TCP reset.
//  * Options::io_timeout_ms bounds how long a connection may sit with
//    pending work (half-read frame, unflushed output, drain-to-EOF)
//    without progress; fully idle connections are never reaped.
//
// The request handlers call straight into the facade, so hits on
// different cache shards proceed in parallel across workers and
// concurrent identical misses collapse into the facade's single-flight.
// Per-op request/error/latency counters are kept under per-op mutexes
// and surfaced through both the STATS op and StatsSnapshot().
//
// Miss-fill execution: a daemon has no warehouse of its own, so the
// EXECUTE op may carry the result the *client* computed for a miss.
// Construct the facade with MissFillExecutor() and the server routes
// that client-supplied fill through the facade's normal executor path
// (admission, single-flight, coherence epochs included). An embedder
// that does own a warehouse can instead construct the facade with a
// real executor; fills are then ignored by that executor and EXECUTE
// without a fill executes server-side.

#ifndef WATCHMAN_SERVER_SERVER_H_
#define WATCHMAN_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "util/stats.h"
#include "util/status.h"
#include "watchman/watchman.h"

namespace watchman {

/// Epoll event-loop TCP server exposing a Watchman facade.
class WatchmanServer {
 public:
  struct Options {
    /// Address to bind (default loopback only).
    std::string bind_address = "127.0.0.1";
    /// Port to bind; 0 picks an ephemeral port, read it back via
    /// port(). Tests and parallel CI runs should use 0.
    uint16_t port = 0;
    /// Worker threads draining the ready-queue of decoded frames.
    /// Connections are NOT pinned to workers: any worker serves any
    /// connection's next frame.
    size_t num_workers = 4;
    /// Per-frame body size limit; larger length prefixes answer with
    /// Corruption and close the connection.
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Epoll tick bounding how long Stop(), timeouts and deferred
    /// closes can lag behind.
    int poll_interval_ms = 50;
    /// Closes a connection that has pending work (half-read frame,
    /// unflushed output, drain-to-EOF) but makes no progress for this
    /// long. 0 disables the reaping of stuck-but-healthy connections;
    /// fully idle connections are never reaped either way. Connections
    /// in a terminal state (protocol violation, EOF pending) are
    /// always bounded -- by this value, or a built-in 5s default when
    /// disabled -- so a misbehaving peer cannot hold its fd forever.
    int io_timeout_ms = 0;
    /// When nonzero, SO_SNDBUF for accepted connections (tests use a
    /// tiny value to force partial-write resumption).
    int sndbuf_bytes = 0;
    /// Per-connection cap on frames enqueued but not yet answered;
    /// beyond it the connection's reads pause until workers catch up.
    size_t max_inflight_frames = 4096;
  };

  /// Per-op throughput/latency counters.
  struct OpCounters {
    uint64_t requests = 0;
    uint64_t errors = 0;
    OnlineStats latency_us;
  };

  /// `cache` must outlive the server.
  WatchmanServer(Watchman* cache, Options options);
  ~WatchmanServer();

  WatchmanServer(const WatchmanServer&) = delete;
  WatchmanServer& operator=(const WatchmanServer&) = delete;

  /// Binds, listens and spawns the IO thread + workers. Fails (IOError)
  /// if the address cannot be bound; at most one successful Start() per
  /// server instance.
  Status Start();

  /// Graceful shutdown: stops accepting, shuts down live connections,
  /// joins all threads. Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 after Start()).
  uint16_t port() const { return bound_port_; }

  /// Snapshot of cache + transport counters (the STATS op payload).
  WireStats StatsSnapshot() const;

  /// One op's counters (tests / embedders).
  OpCounters op_counters(OpCode op) const;

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Frames extracted from sockets but not yet claimed by a worker,
  /// right now (the ready-queue depth; wire-named connections_queued
  /// for v2 compatibility).
  uint64_t connections_queued() const;

  /// High-water mark of the ready-queue since Start().
  uint64_t connections_queued_peak() const {
    return connections_queued_peak_.load(std::memory_order_relaxed);
  }

  /// An executor that serves the client-supplied miss-fill attached to
  /// the EXECUTE request being handled on this thread, and fails with
  /// NotFound when the request carried none. Pass to the Watchman
  /// constructor when the daemon itself has no warehouse.
  static Watchman::Executor MissFillExecutor();

 private:
  /// Per-connection state. The IO thread owns fd registration, inbuf
  /// and the epoll arming flags; workers and the IO thread share the
  /// output buffer under out_mu; the close decision is gated on the
  /// inflight frame count (release/acquire ordered), so a socket is
  /// only closed when no worker can still touch it.
  struct Connection {
    int fd = -1;
    std::string inbuf;  // IO thread only
    std::mutex out_mu;
    std::string outbuf;   // pending output bytes (out_mu)
    size_t out_off = 0;   // flushed prefix of outbuf (out_mu)
    bool send_error = false;  // a send failed; close without flushing
    bool want_write = false;  // EPOLLOUT armed        (IO thread only)
    bool read_paused = false;  // EPOLLIN disarmed     (IO thread only)
    bool output_shutdown = false;  // SHUT_WR sent     (IO thread only)
    bool in_finishing = false;  // listed in finishing_ (IO thread only)
    /// Read EOF/error seen (written by the IO thread; workers read it
    /// to decide whether the IO thread needs a wake-up).
    std::atomic<bool> input_closed{false};
    /// Protocol violation: stop parsing, answer, drain to EOF, close.
    std::atomic<bool> draining{false};
    /// True while an entry for this connection sits in the dirty list
    /// (suppresses duplicate wake-ups from concurrent workers).
    std::atomic<bool> dirty_pending{false};
    /// Frames handed to workers and not yet fully answered.
    std::atomic<uint32_t> inflight{0};
    /// Milliseconds-since-start of the last read/write progress,
    /// updated by both the IO thread and workers (io_timeout_ms).
    std::atomic<int64_t> last_progress_ms{0};
  };

  /// One decoded-frame work item (body copied out of the connection's
  /// read buffer so the buffer can compact immediately).
  struct Work {
    std::shared_ptr<Connection> conn;
    std::string body;
  };

  void IoLoop();
  void WorkerLoop();

  // IO-thread helpers.
  void AcceptReady();
  void ReadReady(const std::shared_ptr<Connection>& conn);
  void ParseFrames(const std::shared_ptr<Connection>& conn);
  /// Recomputes and applies the connection's epoll interest set.
  void RearmInterest(const std::shared_ptr<Connection>& conn);
  void UpdateWriteInterest(const std::shared_ptr<Connection>& conn);
  /// Close / half-close state machine for one connection.
  void FinishConnection(const std::shared_ptr<Connection>& conn);
  /// Adds conn to finishing_ (deduplicated) for sweep re-examination.
  void EnqueueFinishing(const std::shared_ptr<Connection>& conn);
  void SweepConnections();
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  /// Appends `bytes` to conn's output and attempts a direct
  /// non-blocking send; returns true when everything is on the wire
  /// (callable from workers and the IO thread).
  bool QueueOutput(const std::shared_ptr<Connection>& conn,
                   std::string_view bytes);
  /// The send loop of QueueOutput; requires conn->out_mu held.
  bool FlushLocked(Connection* conn);
  /// Asks the IO thread to re-examine `conn` (arm EPOLLOUT, close, ...).
  void MarkDirty(const std::shared_ptr<Connection>& conn);

  // Worker-side request handling.
  void ProcessFrame(Work& work, WireRequest* request, WireResponse* response,
                    std::string* encoded);
  void Dispatch(const WireRequest& request, WireResponse* response);
  void RecordOp(OpCode op, StatusCode code, double latency_us);

  int64_t NowMs() const;

  Watchman* cache_;
  Options options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point start_time_;

  /// Live connections, keyed by fd (IO thread only).
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  /// Connections in a terminal state (EOF seen / draining / send
  /// error) whose close could not complete yet; re-examined each tick
  /// so the idle steady state never scans the whole map (IO thread
  /// only).
  std::vector<std::shared_ptr<Connection>> finishing_;
  /// Connections whose reads are paused for backpressure (IO thread
  /// only).
  std::vector<std::shared_ptr<Connection>> paused_reads_;
  /// Accepting paused after fd exhaustion; retried each tick instead
  /// of busy-spinning on the level-triggered listen fd (IO thread
  /// only).
  bool accept_paused_ = false;

  /// Decoded frames awaiting a worker.
  mutable std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::deque<Work> ready_;

  /// Connections workers want the IO thread to re-examine.
  std::mutex dirty_mu_;
  std::vector<std::shared_ptr<Connection>> dirty_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  /// High-water mark of the ready-queue (frames extracted but not yet
  /// claimed by a worker): worker-pool saturation visibility.
  std::atomic<uint64_t> connections_queued_peak_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> frames_rejected_{0};

  /// One padded mutex per opcode: workers recording different ops
  /// never contend, and the hot path takes exactly one uncontended
  /// lock in the common case.
  struct alignas(64) LockedOpCounters {
    mutable std::mutex mu;
    OpCounters counters;
  };
  std::array<LockedOpCounters, kNumOpCodes> per_op_;
};

}  // namespace watchman

#endif  // WATCHMAN_SERVER_SERVER_H_
