#include "server/protocol.h"

#include <bit>
#include <cstring>

namespace watchman {
namespace {

// ------------------------------------------------------------- writer

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutStringList(std::string* out, const std::vector<std::string>& list) {
  PutU32(out, static_cast<uint32_t>(list.size()));
  for (const std::string& s : list) PutString(out, s);
}

// ------------------------------------------------------------- reader

/// Cursor over a frame body; every read fails sticky on truncation.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == data_.size(); }

  uint8_t U8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double Double() { return std::bit_cast<double>(U64()); }

  std::string String() {
    const uint32_t len = U32();
    if (!Require(len)) return {};
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  /// Reads a string into a caller-owned buffer, reusing its capacity.
  void StringInto(std::string* out) {
    const uint32_t len = U32();
    if (!Require(len)) {
      out->clear();
      return;
    }
    out->assign(data_.data() + pos_, len);
    pos_ += len;
  }

  std::vector<std::string> StringList() {
    const uint32_t count = U32();
    std::vector<std::string> out;
    for (uint32_t i = 0; i < count && ok_; ++i) out.push_back(String());
    return out;
  }

  /// Reads a string list into a caller-owned vector, reusing element
  /// string capacity where lengths allow.
  void StringListInto(std::vector<std::string>* out) {
    const uint32_t count = U32();
    if (out->size() > count) out->resize(count);
    for (uint32_t i = 0; i < count && ok_; ++i) {
      if (i < out->size()) {
        StringInto(&(*out)[i]);
      } else {
        out->emplace_back();
        StringInto(&out->back());
      }
    }
    if (!ok_) out->clear();
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Validates the shared (version, opcode, request_id) prologue. The
/// version is judged before the id bytes are required, so a frame from
/// an older protocol revision (whose body may be shorter than the v3
/// prologue) is reported as NotSupported, not Corruption.
Status ReadPrologue(Reader* r, OpCode* op, uint64_t* request_id) {
  const uint8_t version = r->U8();
  const uint8_t raw_op = r->U8();
  if (!r->ok()) return Status::Corruption("frame body shorter than prologue");
  if (version != kWireVersion) {
    return Status::NotSupported("wire version " + std::to_string(version) +
                                " (expected " + std::to_string(kWireVersion) +
                                ")");
  }
  if (!IsValidOpCode(raw_op)) {
    return Status::InvalidArgument("unknown opcode " + std::to_string(raw_op));
  }
  const uint64_t id = r->U64();
  if (!r->ok()) return Status::Corruption("frame body shorter than prologue");
  *op = static_cast<OpCode>(raw_op);
  *request_id = id;
  return Status::OK();
}

Status FinishDecode(const Reader& r, const char* what) {
  if (!r.ok()) return Status::Corruption(std::string("truncated ") + what);
  if (!r.exhausted()) {
    return Status::Corruption(std::string("trailing bytes after ") + what);
  }
  return Status::OK();
}

void PutStats(std::string* out, const WireStats& s) {
  PutU64(out, s.lookups);
  PutU64(out, s.hits);
  PutU64(out, s.insertions);
  PutU64(out, s.evictions);
  PutU64(out, s.admission_rejections);
  PutU64(out, s.too_large_rejections);
  PutU64(out, s.cost_total);
  PutU64(out, s.cost_saved);
  PutU64(out, s.bytes_inserted);
  PutU64(out, s.bytes_evicted);
  PutU64(out, s.used_bytes);
  PutU64(out, s.capacity_bytes);
  PutU64(out, s.entry_count);
  PutU64(out, s.retained_count);
  PutU64(out, s.invalidations);
  PutU64(out, s.num_shards);
  PutString(out, s.policy_name);
  PutU64(out, s.connections_accepted);
  PutU64(out, s.connections_active);
  PutU64(out, s.connections_queued);
  PutU64(out, s.connections_queued_peak);
  PutU64(out, s.requests_served);
  PutU64(out, s.frames_rejected);
  PutU64(out, s.compactions);
  PutU64(out, s.last_compaction_age_ms);
  PutString(out, s.backend);
  PutU32(out, static_cast<uint32_t>(s.per_op.size()));
  for (const WireOpMetrics& m : s.per_op) {
    PutU8(out, m.op);
    PutU64(out, m.requests);
    PutU64(out, m.errors);
    PutU64(out, m.latency_count);
    PutDouble(out, m.latency_mean_us);
    PutDouble(out, m.latency_min_us);
    PutDouble(out, m.latency_max_us);
  }
}

WireStats ReadStats(Reader* r) {
  WireStats s;
  s.lookups = r->U64();
  s.hits = r->U64();
  s.insertions = r->U64();
  s.evictions = r->U64();
  s.admission_rejections = r->U64();
  s.too_large_rejections = r->U64();
  s.cost_total = r->U64();
  s.cost_saved = r->U64();
  s.bytes_inserted = r->U64();
  s.bytes_evicted = r->U64();
  s.used_bytes = r->U64();
  s.capacity_bytes = r->U64();
  s.entry_count = r->U64();
  s.retained_count = r->U64();
  s.invalidations = r->U64();
  s.num_shards = r->U64();
  s.policy_name = r->String();
  s.connections_accepted = r->U64();
  s.connections_active = r->U64();
  s.connections_queued = r->U64();
  s.connections_queued_peak = r->U64();
  s.requests_served = r->U64();
  s.frames_rejected = r->U64();
  s.compactions = r->U64();
  s.last_compaction_age_ms = r->U64();
  s.backend = r->String();
  const uint32_t ops = r->U32();
  for (uint32_t i = 0; i < ops && r->ok(); ++i) {
    WireOpMetrics m;
    m.op = r->U8();
    m.requests = r->U64();
    m.errors = r->U64();
    m.latency_count = r->U64();
    m.latency_mean_us = r->Double();
    m.latency_min_us = r->Double();
    m.latency_max_us = r->Double();
    s.per_op.push_back(m);
  }
  return s;
}

}  // namespace

bool IsValidOpCode(uint8_t raw) {
  return raw >= 1 && raw <= kNumOpCodes;
}

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kPing:
      return "ping";
    case OpCode::kExecute:
      return "execute";
    case OpCode::kGet:
      return "get";
    case OpCode::kInvalidate:
      return "invalidate";
    case OpCode::kInvalidateRelation:
      return "invalidate_relation";
    case OpCode::kStats:
      return "stats";
    case OpCode::kCompact:
      return "compact";
  }
  return "?";
}

void AppendRequest(const WireRequest& request, std::string* out) {
  const size_t frame_at = out->size();
  PutU32(out, 0);  // length placeholder, patched below
  const size_t body_at = out->size();
  PutU8(out, kWireVersion);
  PutU8(out, static_cast<uint8_t>(request.op));
  PutU64(out, request.request_id);
  switch (request.op) {
    case OpCode::kPing:
    case OpCode::kStats:
    case OpCode::kCompact:
      break;
    case OpCode::kGet:
    case OpCode::kInvalidate:
      PutString(out, request.query_text);
      break;
    case OpCode::kInvalidateRelation:
      PutString(out, request.relation);
      break;
    case OpCode::kExecute:
      PutString(out, request.query_text);
      PutU8(out, request.has_fill ? 1 : 0);
      if (request.has_fill) {
        PutString(out, request.fill_payload);
        PutU64(out, request.fill_cost);
        PutStringList(out, request.fill_relations);
      }
      break;
  }
  const uint32_t len = static_cast<uint32_t>(out->size() - body_at);
  for (int i = 0; i < 4; ++i) {
    (*out)[frame_at + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

std::string EncodeRequest(const WireRequest& request) {
  std::string out;
  AppendRequest(request, &out);
  return out;
}

Status DecodeRequestInto(std::string_view body, WireRequest* request) {
  // Reset to defaults while keeping string capacity (scratch reuse).
  // fill_relations is NOT cleared here: StringListInto resizes it to
  // the decoded count, reusing element string buffers across frames;
  // stale entries are never read because has_fill gates every consumer.
  request->query_text.clear();
  request->relation.clear();
  request->has_fill = false;
  request->fill_payload.clear();
  request->fill_cost = 1;
  request->request_id = 0;
  Reader r(body);
  WATCHMAN_RETURN_IF_ERROR(
      ReadPrologue(&r, &request->op, &request->request_id));
  switch (request->op) {
    case OpCode::kPing:
    case OpCode::kStats:
    case OpCode::kCompact:
      break;
    case OpCode::kGet:
    case OpCode::kInvalidate:
      r.StringInto(&request->query_text);
      break;
    case OpCode::kInvalidateRelation:
      r.StringInto(&request->relation);
      break;
    case OpCode::kExecute:
      r.StringInto(&request->query_text);
      request->has_fill = r.U8() != 0;
      if (request->has_fill) {
        r.StringInto(&request->fill_payload);
        request->fill_cost = r.U64();
        r.StringListInto(&request->fill_relations);
      }
      break;
  }
  return FinishDecode(r, "request");
}

StatusOr<WireRequest> DecodeRequest(std::string_view body) {
  WireRequest request;
  WATCHMAN_RETURN_IF_ERROR(DecodeRequestInto(body, &request));
  return request;
}

void AppendResponse(const WireResponse& response, std::string* out) {
  const size_t frame_at = out->size();
  PutU32(out, 0);  // length placeholder, patched below
  const size_t body_at = out->size();
  PutU8(out, kWireVersion);
  PutU8(out, static_cast<uint8_t>(response.op));
  PutU64(out, response.request_id);
  PutU8(out, static_cast<uint8_t>(response.code));
  PutString(out, response.message);
  PutU32(out, response.retry_after_ms);
  switch (response.op) {
    case OpCode::kPing:
    case OpCode::kCompact:
      break;
    case OpCode::kExecute:
    case OpCode::kGet:
      PutU8(out, response.cache_hit ? 1 : 0);
      PutString(out, response.payload);
      break;
    case OpCode::kInvalidate:
    case OpCode::kInvalidateRelation:
      PutU64(out, response.dropped);
      break;
    case OpCode::kStats:
      PutStats(out, response.stats);
      break;
  }
  const uint32_t len = static_cast<uint32_t>(out->size() - body_at);
  for (int i = 0; i < 4; ++i) {
    (*out)[frame_at + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

std::string EncodeResponse(const WireResponse& response) {
  std::string out;
  AppendResponse(response, &out);
  return out;
}

StatusOr<WireResponse> DecodeResponse(std::string_view body) {
  Reader r(body);
  WireResponse response;
  WATCHMAN_RETURN_IF_ERROR(
      ReadPrologue(&r, &response.op, &response.request_id));
  const uint8_t raw_code = r.U8();
  if (r.ok() && raw_code > static_cast<uint8_t>(StatusCode::kShedRetryLater)) {
    return Status::Corruption("unknown status code " +
                              std::to_string(raw_code));
  }
  response.code = static_cast<StatusCode>(raw_code);
  response.message = r.String();
  response.retry_after_ms = r.U32();
  switch (response.op) {
    case OpCode::kPing:
    case OpCode::kCompact:
      break;
    case OpCode::kExecute:
    case OpCode::kGet:
      response.cache_hit = r.U8() != 0;
      response.payload = r.String();
      break;
    case OpCode::kInvalidate:
    case OpCode::kInvalidateRelation:
      response.dropped = r.U64();
      break;
    case OpCode::kStats:
      response.stats = ReadStats(&r);
      break;
  }
  WATCHMAN_RETURN_IF_ERROR(FinishDecode(r, "response"));
  return response;
}

StatusOr<bool> ExtractFrame(std::string_view buffer, size_t max_frame_bytes,
                            std::string_view* body, size_t* frame_size) {
  if (buffer.size() < 4) return false;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[i])) << (8 * i);
  }
  if (len > max_frame_bytes) {
    return Status::Corruption("frame body of " + std::to_string(len) +
                              " bytes exceeds the " +
                              std::to_string(max_frame_bytes) + " byte limit");
  }
  if (buffer.size() - 4 < len) return false;
  *body = buffer.substr(4, len);
  *frame_size = 4 + static_cast<size_t>(len);
  return true;
}

void PeekPrologue(std::string_view body, OpCode* op, uint64_t* request_id) {
  Reader r(body);
  OpCode peeked_op = OpCode::kPing;
  uint64_t peeked_id = 0;
  if (!ReadPrologue(&r, &peeked_op, &peeked_id).ok()) return;
  *op = peeked_op;
  *request_id = peeked_id;
}

Status StatusFromWire(StatusCode code, const std::string& message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kCapacityExceeded:
      return Status::CapacityExceeded(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kNotSupported:
      return Status::NotSupported(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kShedRetryLater:
      return Status::ShedRetryLater(message);
  }
  return Status::Internal("unrepresentable wire status: " + message);
}

}  // namespace watchman
