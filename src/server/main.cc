// watchmand: the WATCHMAN cache daemon.
//
// Runs a Watchman facade behind the TCP server so many warehouse
// front-ends share one retrieved-set cache. The daemon owns no
// warehouse: clients attach the result they computed to EXECUTE
// requests on a miss (see server/protocol.h), and the daemon runs the
// configured policy's admission/replacement over them.
//
// Usage:
//   watchmand [--policy=lnc-ra(k=4)] [--capacity=256m] [--shards=8]
//             [--port=9736] [--host=127.0.0.1] [--workers=N]
//             [--backend=epoll|io_uring|auto] [--no-inline]
//             [--compact-idle=SECONDS] [--io-timeout=MS] [--normalize]
//             [--admin-port=P] [--no-metrics] [--slow-request-ms=MS]
//             [--log-level=debug|info|warn|error|off] [--log-json]
//             [--stats-interval=30] [--verbose]
//
// --capacity accepts plain bytes or k/m/g suffixes. --policy accepts
// everything ParsePolicy does. --backend picks the event backend:
// `auto` (the default) serves with io_uring when the kernel provides
// it and falls back to epoll silently; `io_uring` also falls back but
// logs a warning; `epoll` never probes. --no-inline disables the
// IO-thread inline fast path for cheap ops. --compact-idle runs a
// metadata compaction pass after the daemon has been idle that many
// seconds (0 = never). --io-timeout closes connections stuck mid-frame
// / mid-flush with no progress for MS milliseconds (0 = never).
//
// Observability: --admin-port binds an HTTP endpoint (same host)
// serving GET /metrics (Prometheus text format) and /healthz; 0 picks
// an ephemeral port, omit the flag to disable. --no-metrics drops the
// latency/stage histograms (counters stay). --slow-request-ms logs one
// structured WARN line per request slower than MS milliseconds.
// --log-level caps log verbosity (--verbose = --log-level=debug);
// --log-json switches stderr logging to single-line JSON.
// SIGINT/SIGTERM shut down gracefully and print a final stats report.
//
// Overload protection (all off by default): --peer-rps caps each peer
// address's sustained request rate (--peer-burst sets the bucket
// burst), --max-conns-per-peer caps simultaneous connections per peer,
// --max-inflight caps globally admitted-but-unanswered frames, and
// --max-output-bytes caps response bytes buffered across all
// connections. Over-budget requests answer kShedRetryLater with a
// retry-after hint instead of queuing. --breaker-threshold /
// --breaker-cooldown-ms tune the payload-store circuit breaker
// (threshold 0 disables it).
//
// Fault injection (tests/chaos only): --faults=SPEC -- or the
// WATCHMAN_FAULTS environment variable; the flag wins -- installs a
// deterministic fault schedule ("seed=42,recv_short=0.1,stall_ms=5",
// see util/fault.h). Zero cost when not set.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "server/server.h"
#include "sim/policy_config.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "watchman/watchman.h"

namespace watchman {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct Flags {
  std::string policy = "lnc-ra(k=4)";
  std::string capacity = "256m";
  std::string host = "127.0.0.1";
  size_t shards = 8;
  uint16_t port = 9736;
  size_t workers = 0;  // 0 = hardware concurrency
  ServerBackend backend = ServerBackend::kAuto;
  bool inline_dispatch = true;
  uint64_t compact_idle_s = 300;
  uint64_t io_timeout_ms = 30000;
  uint64_t stats_interval_s = 0;
  bool normalize = false;
  bool verbose = false;
  /// -1 = no admin endpoint; 0 = ephemeral port.
  int admin_port = -1;
  bool metrics = true;
  uint64_t slow_request_ms = 0;
  std::string log_level;  // empty = derived from --verbose
  bool log_json = false;
  // Overload protection (0 = unlimited).
  uint64_t peer_rps = 0;
  uint64_t peer_burst = 0;
  uint64_t max_conns_per_peer = 0;
  uint64_t max_inflight = 0;
  std::string max_output_bytes;  // byte-size syntax; empty = unlimited
  // Payload-store circuit breaker (threshold 0 disables).
  uint64_t breaker_threshold = 5;
  uint64_t breaker_cooldown_ms = 2000;
  /// Deterministic fault schedule; empty = WATCHMAN_FAULTS env or off.
  std::string faults;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--policy=<name>] [--capacity=<bytes|k|m|g>] "
      "[--shards=<n>] [--port=<p>] [--host=<addr>] [--workers=<n>]\n"
      "       [--backend=epoll|io_uring|auto] [--no-inline] "
      "[--compact-idle=<seconds>]\n"
      "       [--io-timeout=<ms>] [--normalize] "
      "[--stats-interval=<seconds>] [--verbose]\n"
      "       [--admin-port=<p>] [--no-metrics] [--slow-request-ms=<ms>]\n"
      "       [--log-level=debug|info|warn|error|off] [--log-json]\n"
      "       [--peer-rps=<n>] [--peer-burst=<n>] "
      "[--max-conns-per-peer=<n>]\n"
      "       [--max-inflight=<n>] [--max-output-bytes=<bytes|k|m|g>]\n"
      "       [--breaker-threshold=<n>] [--breaker-cooldown-ms=<ms>]\n"
      "       [--faults=<spec>]\n",
      argv0);
  return 2;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

/// Strict decimal parse bounded by `max`; rejects garbage instead of
/// silently misreading it (--port=abc must not bind a random port).
bool ParseUint(const std::string& text, uint64_t max, uint64_t* out) {
  if (text.empty() || text.size() > 10) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > max) return false;
  }
  *out = value;
  return true;
}

void PrintStats(const WireStats& stats) {
  std::printf("---- watchmand stats ----\n");
  std::printf("policy %s, %llu shards, %s / %s used, %llu cached sets\n",
              stats.policy_name.c_str(),
              static_cast<unsigned long long>(stats.num_shards),
              HumanBytes(stats.used_bytes).c_str(),
              HumanBytes(stats.capacity_bytes).c_str(),
              static_cast<unsigned long long>(stats.entry_count));
  std::printf(
      "lookups %llu, hits %llu (HR %.3f), CSR %.3f, insertions %llu, "
      "evictions %llu, invalidations %llu\n",
      static_cast<unsigned long long>(stats.lookups),
      static_cast<unsigned long long>(stats.hits), stats.hit_ratio(),
      stats.cost_savings_ratio(),
      static_cast<unsigned long long>(stats.insertions),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.invalidations));
  std::printf(
      "connections %llu accepted / %llu active, ready-queue %llu "
      "(peak %llu), requests %llu, rejected frames %llu\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.connections_active),
      static_cast<unsigned long long>(stats.connections_queued),
      static_cast<unsigned long long>(stats.connections_queued_peak),
      static_cast<unsigned long long>(stats.requests_served),
      static_cast<unsigned long long>(stats.frames_rejected));
  if (stats.last_compaction_age_ms == WireStats::kNeverCompacted) {
    std::printf("backend %s, %llu compactions (none yet)\n",
                stats.backend.c_str(),
                static_cast<unsigned long long>(stats.compactions));
  } else {
    std::printf("backend %s, %llu compactions (last %.1fs ago)\n",
                stats.backend.c_str(),
                static_cast<unsigned long long>(stats.compactions),
                static_cast<double>(stats.last_compaction_age_ms) / 1000.0);
  }
  for (const WireOpMetrics& op : stats.per_op) {
    std::printf(
        "  %-20s %10llu reqs %6llu errs   latency us mean %8.1f  min %8.1f"
        "  max %8.1f\n",
        OpCodeName(static_cast<OpCode>(op.op)),
        static_cast<unsigned long long>(op.requests),
        static_cast<unsigned long long>(op.errors), op.latency_mean_us,
        op.latency_min_us, op.latency_max_us);
  }
  std::fflush(stdout);
}

int Run(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "policy", &value)) {
      flags.policy = value;
    } else if (ParseFlag(arg, "capacity", &value)) {
      flags.capacity = value;
    } else if (ParseFlag(arg, "host", &value)) {
      flags.host = value;
    } else if (ParseFlag(arg, "shards", &value)) {
      uint64_t shards = 0;
      if (!ParseUint(value, 1024, &shards) || shards == 0) {
        std::fprintf(stderr, "--shards: expected 1..1024, got '%s'\n",
                     value.c_str());
        return 2;
      }
      flags.shards = static_cast<size_t>(shards);
    } else if (ParseFlag(arg, "port", &value)) {
      uint64_t port = 0;
      if (!ParseUint(value, 65535, &port)) {
        std::fprintf(stderr, "--port: expected 0..65535, got '%s'\n",
                     value.c_str());
        return 2;
      }
      flags.port = static_cast<uint16_t>(port);
    } else if (ParseFlag(arg, "workers", &value)) {
      uint64_t workers = 0;
      if (!ParseUint(value, 4096, &workers)) {
        std::fprintf(stderr, "--workers: expected 0..4096, got '%s'\n",
                     value.c_str());
        return 2;
      }
      flags.workers = static_cast<size_t>(workers);
    } else if (ParseFlag(arg, "backend", &value)) {
      if (!ParseServerBackend(value, &flags.backend)) {
        std::fprintf(stderr,
                     "--backend: expected epoll|io_uring|auto, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "compact-idle", &value)) {
      if (!ParseUint(value, 86400, &flags.compact_idle_s)) {
        std::fprintf(stderr,
                     "--compact-idle: expected seconds 0..86400, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--no-inline") {
      flags.inline_dispatch = false;
    } else if (ParseFlag(arg, "io-timeout", &value)) {
      if (!ParseUint(value, 86400000, &flags.io_timeout_ms)) {
        std::fprintf(stderr,
                     "--io-timeout: expected ms 0..86400000, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "stats-interval", &value)) {
      if (!ParseUint(value, 86400, &flags.stats_interval_s)) {
        std::fprintf(stderr,
                     "--stats-interval: expected seconds 0..86400, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--normalize") {
      flags.normalize = true;
    } else if (arg == "--verbose") {
      flags.verbose = true;
    } else if (ParseFlag(arg, "admin-port", &value)) {
      uint64_t port = 0;
      if (!ParseUint(value, 65535, &port)) {
        std::fprintf(stderr, "--admin-port: expected 0..65535, got '%s'\n",
                     value.c_str());
        return 2;
      }
      flags.admin_port = static_cast<int>(port);
    } else if (arg == "--no-metrics") {
      flags.metrics = false;
    } else if (ParseFlag(arg, "slow-request-ms", &value)) {
      if (!ParseUint(value, 86400000, &flags.slow_request_ms)) {
        std::fprintf(stderr,
                     "--slow-request-ms: expected ms 0..86400000, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "peer-rps", &value)) {
      if (!ParseUint(value, 10000000, &flags.peer_rps)) {
        std::fprintf(stderr, "--peer-rps: expected 0..10000000, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "peer-burst", &value)) {
      if (!ParseUint(value, 10000000, &flags.peer_burst)) {
        std::fprintf(stderr, "--peer-burst: expected 0..10000000, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "max-conns-per-peer", &value)) {
      if (!ParseUint(value, 1000000, &flags.max_conns_per_peer)) {
        std::fprintf(stderr,
                     "--max-conns-per-peer: expected 0..1000000, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "max-inflight", &value)) {
      if (!ParseUint(value, 100000000, &flags.max_inflight)) {
        std::fprintf(stderr,
                     "--max-inflight: expected 0..100000000, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "max-output-bytes", &value)) {
      flags.max_output_bytes = value;
    } else if (ParseFlag(arg, "breaker-threshold", &value)) {
      if (!ParseUint(value, 1000000, &flags.breaker_threshold)) {
        std::fprintf(stderr,
                     "--breaker-threshold: expected 0..1000000, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "breaker-cooldown-ms", &value)) {
      if (!ParseUint(value, 86400000, &flags.breaker_cooldown_ms)) {
        std::fprintf(stderr,
                     "--breaker-cooldown-ms: expected ms 0..86400000, got "
                     "'%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "faults", &value)) {
      flags.faults = value;
    } else if (ParseFlag(arg, "log-level", &value)) {
      LogLevel parsed;
      if (!ParseLogLevel(value, &parsed)) {
        std::fprintf(
            stderr,
            "--log-level: expected debug|info|warn|error|off, got '%s'\n",
            value.c_str());
        return 2;
      }
      flags.log_level = value;
    } else if (arg == "--log-json") {
      flags.log_json = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (!flags.log_level.empty()) {
    LogLevel level = LogLevel::kInfo;
    ParseLogLevel(flags.log_level, &level);  // validated during parsing
    SetLogLevel(level);
  } else {
    SetLogLevel(flags.verbose ? LogLevel::kDebug : LogLevel::kInfo);
  }
  SetLogFormat(flags.log_json ? LogFormat::kJson : LogFormat::kText);

  StatusOr<PolicyConfig> policy = ParsePolicy(flags.policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "--policy: %s\n", policy.status().ToString().c_str());
    return 2;
  }
  StatusOr<uint64_t> capacity = ParseByteSize(flags.capacity);
  if (!capacity.ok()) {
    std::fprintf(stderr, "--capacity: %s\n",
                 capacity.status().ToString().c_str());
    return 2;
  }
  // Fault injection: the --faults flag wins over WATCHMAN_FAULTS.
  std::string fault_spec = flags.faults;
  if (fault_spec.empty()) {
    const char* env = std::getenv("WATCHMAN_FAULTS");
    if (env != nullptr) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    const Status configured = FaultInjector::Global().Configure(fault_spec);
    if (!configured.ok()) {
      std::fprintf(stderr, "--faults: %s\n",
                   configured.ToString().c_str());
      return 2;
    }
    WATCHMAN_LOG(Warning) << "fault injection enabled: " << fault_spec;
  }

  Watchman::Options options;
  options.capacity_bytes = *capacity;
  options.policy = *policy;
  options.num_shards = flags.shards;
  options.normalize_queries = flags.normalize;
  options.store_breaker.failure_threshold =
      static_cast<int>(flags.breaker_threshold);
  options.store_breaker.cooldown_ms =
      static_cast<int64_t>(flags.breaker_cooldown_ms);
  Watchman cache(std::move(options), WatchmanServer::MissFillExecutor());

  WatchmanServer::Options server_options;
  server_options.bind_address = flags.host;
  server_options.port = flags.port;
  server_options.num_workers =
      flags.workers != 0 ? flags.workers
                         : std::max(4u, std::thread::hardware_concurrency());
  server_options.io_timeout_ms = static_cast<int>(flags.io_timeout_ms);
  server_options.backend = flags.backend;
  server_options.inline_dispatch = flags.inline_dispatch;
  server_options.compact_idle_ms =
      static_cast<int>(flags.compact_idle_s) * 1000;
  server_options.admin_port = flags.admin_port;
  server_options.metrics = flags.metrics;
  server_options.slow_request_us =
      static_cast<int64_t>(flags.slow_request_ms) * 1000;
  server_options.admission.peer_requests_per_sec =
      static_cast<double>(flags.peer_rps);
  server_options.admission.peer_burst =
      static_cast<double>(flags.peer_burst);
  server_options.admission.max_connections_per_peer =
      static_cast<uint32_t>(flags.max_conns_per_peer);
  server_options.admission.max_global_inflight = flags.max_inflight;
  if (!flags.max_output_bytes.empty()) {
    StatusOr<uint64_t> budget = ParseByteSize(flags.max_output_bytes);
    if (!budget.ok()) {
      std::fprintf(stderr, "--max-output-bytes: %s\n",
                   budget.status().ToString().c_str());
      return 2;
    }
    server_options.admission.max_global_output_bytes = *budget;
  }
  WatchmanServer server(&cache, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("watchmand serving %s on %s:%u (%s capacity, %zu shards, "
              "%zu workers, %s backend)\n",
              cache.policy_name().c_str(), flags.host.c_str(),
              static_cast<unsigned>(server.port()),
              HumanBytes(*capacity).c_str(), cache.num_shards(),
              server_options.num_workers,
              ServerBackendName(server.effective_backend()));
  if (server.admin_port() != 0) {
    std::printf("admin endpoint: http://%s:%u/metrics\n", flags.host.c_str(),
                static_cast<unsigned>(server.admin_port()));
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  uint64_t ticks = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ++ticks;
    if (flags.stats_interval_s != 0 &&
        ticks % (flags.stats_interval_s * 5) == 0) {
      PrintStats(server.StatsSnapshot());
    }
  }
  std::printf("\nshutting down...\n");
  const WireStats final_stats = server.StatsSnapshot();
  server.Stop();
  PrintStats(final_stats);
  return 0;
}

}  // namespace
}  // namespace watchman

int main(int argc, char** argv) { return watchman::Run(argc, argv); }
