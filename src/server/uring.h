// Minimal io_uring wrapper over raw syscalls (no liburing dependency).
//
// Exposes exactly what the watchmand io_uring backend needs: ring
// setup/teardown, SQE acquisition with batched submission, a blocking
// submit-and-wait with a millisecond timeout (IORING_ENTER_EXT_ARG),
// CQE draining, and a provided-buffer group for multishot receive.
// Everything runs on the single IO thread; nothing here is
// thread-safe.
//
// Kernel capability is probed once (KernelSupported): the backend
// requires io_uring_setup to work and the features the loop depends on
// (EXT_ARG timeouts, NODROP completions). Finer-grained features --
// multishot accept/recv, provided-buffer rings -- degrade at runtime
// instead: registration failures and -EINVAL completions flip the
// server to one-shot re-arming, so one binary runs correctly from
// kernel ~5.11 through current.

#ifndef WATCHMAN_SERVER_URING_H_
#define WATCHMAN_SERVER_URING_H_

#include <linux/io_uring.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace watchman {

class Uring {
 public:
  /// One completion, copied out of the CQ ring.
  struct Completion {
    uint64_t user_data = 0;
    int32_t res = 0;
    uint32_t flags = 0;
  };

  Uring() = default;
  ~Uring();

  Uring(const Uring&) = delete;
  Uring& operator=(const Uring&) = delete;

  /// True when this kernel can run the backend at all: io_uring_setup
  /// succeeds (not compiled out / sysctl-disabled / seccomp-blocked)
  /// and EXT_ARG + NODROP are available. Probed once per process.
  static bool KernelSupported();

  /// Creates the ring (`entries` SQ slots; CQ is sized 2x by the
  /// kernel) and maps the rings and SQE array.
  Status Init(unsigned entries);
  void Close();
  bool valid() const { return ring_fd_ >= 0; }

  /// Next free SQE, zeroed. Flushes pending submissions when the SQ is
  /// full; nullptr only if even that fails (ring broken).
  io_uring_sqe* GetSqe();

  /// Submits pending SQEs without waiting. Returns 0 or -errno.
  int Submit();

  /// Submits pending SQEs and waits for at least `wait_nr` completions
  /// or `timeout_ms`. Returns 0 (possibly with CQEs ready) or -errno.
  int SubmitAndWait(unsigned wait_nr, int timeout_ms);

  /// Copies every ready CQE into *out and advances the CQ head.
  /// Returns the number drained.
  size_t DrainCompletions(std::vector<Completion>* out);

  // ---- provided buffers (multishot receive) ----
  //
  // Classic IORING_OP_PROVIDE_BUFFERS groups (kernel 5.7+) rather than
  // a registered buffer ring: recycling a buffer costs one SQE instead
  // of a shared-memory tail bump, but that SQE rides the next batched
  // submit, and the op works on every kernel that has buffer selection
  // at all (registered rings are a newer, less uniformly available
  // path -- notably absent on the pared-down VM kernels this daemon
  // deploys to).

  /// Provides `entries` buffers x `buf_size` bytes under group id
  /// `bgid` (bids 0..entries-1), all initially owned by the kernel.
  /// Submits synchronously; returns false when the kernel rejects the
  /// op -- the caller falls back to one-shot receives.
  bool SetupBuffers(uint16_t bgid, uint32_t entries, size_t buf_size);
  bool has_buffers() const { return buf_base_ != nullptr; }
  uint16_t buf_group() const { return buf_group_; }
  size_t buf_size() const { return buf_size_; }

  /// Bytes of the buffer `bid` (valid until RecycleBuffer(bid)).
  const char* BufferData(uint16_t bid) const {
    return buf_base_ + static_cast<size_t>(bid) * buf_size_;
  }

  /// Hands buffer `bid` back to the kernel (a PROVIDE_BUFFERS SQE on
  /// the next submit). Its completion is consumed internally by
  /// DrainCompletions; callers never see it.
  void RecycleBuffer(uint16_t bid);

 private:
  int ring_fd_ = -1;
  uint32_t sq_entries_ = 0;
  uint32_t cq_entries_ = 0;

  // SQ ring mapping.
  void* sq_ring_mem_ = nullptr;
  size_t sq_ring_size_ = 0;
  unsigned* sq_head_ = nullptr;   // kernel-written
  unsigned* sq_tail_ = nullptr;   // ours, store-release
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;  // separate mapping
  size_t sqes_size_ = 0;

  // CQ ring mapping (same mapping as SQ with FEAT_SINGLE_MMAP).
  void* cq_ring_mem_ = nullptr;  // nullptr when shared with sq_ring_mem_
  size_t cq_ring_size_ = 0;
  unsigned* cq_head_ = nullptr;  // ours, store-release
  unsigned* cq_tail_ = nullptr;  // kernel-written
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;

  /// SQEs appended via GetSqe but not yet submitted to the kernel.
  unsigned pending_ = 0;
  unsigned local_tail_ = 0;

  /// user_data of internal PROVIDE_BUFFERS ops; their CQEs are
  /// filtered out by DrainCompletions. Never collides with caller
  /// user_data (pointers or small tags).
  static constexpr uint64_t kInternalUserData = ~0ull;

  // Provided-buffer slab.
  char* buf_base_ = nullptr;
  size_t buf_slab_bytes_ = 0;
  uint32_t buf_entries_ = 0;
  size_t buf_size_ = 0;
  uint16_t buf_group_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_SERVER_URING_H_
