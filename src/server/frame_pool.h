// Recycled byte-buffer pool and allocation-free frame queue for the
// watchmand request path.
//
// The PR 3 cache made the per-reference path allocation-free; this
// module applies the same discipline to the server transport. Two
// pieces:
//
//  * FramePool -- a bounded free-list of std::string buffers. Frame
//    bodies handed to workers, per-connection in/out buffers and the
//    io_uring receive chunks are acquired here and released back when
//    done, so steady-state traffic reuses warm capacity instead of
//    hitting the allocator once per frame / per connection. Release
//    discards buffers whose capacity ballooned past a cap (one huge
//    EXECUTE fill must not pin megabytes in the free list) and drops
//    buffers beyond the retained-count cap.
//
//  * FrameQueue -- a growable ring of Work items replacing the ready
//    std::deque. A deque allocates and frees block nodes as items
//    cycle through; the ring reaches a high-water capacity once and
//    then push/pop allocate nothing.
//
// Thread safety: FramePool is internally synchronized (workers release
// from many threads while the IO thread acquires). FrameQueue is NOT --
// the server already serializes access under ready_mu_.

#ifndef WATCHMAN_SERVER_FRAME_POOL_H_
#define WATCHMAN_SERVER_FRAME_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace watchman {

/// A bounded, thread-safe free-list of std::string buffers.
class FramePool {
 public:
  struct Options {
    /// Buffers retained at most; releases beyond this free normally.
    size_t max_buffers = 64;
    /// A released buffer whose capacity exceeds this is freed instead
    /// of retained (keeps one giant frame from pinning the pool).
    size_t max_retained_capacity = 1u << 20;  // 1 MiB
  };

  FramePool() : FramePool(Options{}) {}
  explicit FramePool(Options options) : options_(options) {
    free_.reserve(options_.max_buffers);
  }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// Returns an empty buffer, reusing pooled capacity when available.
  std::string Acquire() {
    {
      MutexLock lock(mu_);
      if (!free_.empty()) {
        std::string out = std::move(free_.back());
        free_.pop_back();
        reuses_.fetch_add(1, std::memory_order_relaxed);
        return out;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::string();
  }

  /// Takes `buffer` back (cleared, capacity kept) unless it is over the
  /// capacity cap or the pool is full.
  void Release(std::string&& buffer) {
    if (buffer.capacity() > options_.max_retained_capacity) {
      discards_.fetch_add(1, std::memory_order_relaxed);
      std::string dropped = std::move(buffer);
      return;  // dropped frees here
    }
    buffer.clear();
    MutexLock lock(mu_);
    if (free_.size() >= options_.max_buffers) {
      discards_.fetch_add(1, std::memory_order_relaxed);
      return;  // buffer frees on scope exit (outside would be nicer,
               // but a full pool is already the cold path)
    }
    free_.push_back(std::move(buffer));
  }

  size_t free_count() const {
    MutexLock lock(mu_);
    return free_.size();
  }
  /// Acquires served from the free list.
  uint64_t reuses() const { return reuses_.load(std::memory_order_relaxed); }
  /// Acquires that had to construct a fresh buffer.
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Releases dropped by the capacity or count caps.
  uint64_t discards() const {
    return discards_.load(std::memory_order_relaxed);
  }

 private:
  const Options options_;
  mutable Mutex mu_;
  std::vector<std::string> free_ GUARDED_BY(mu_);
  std::atomic<uint64_t> reuses_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> discards_{0};
};

/// A growable FIFO ring. Reaches steady-state capacity once; after
/// that, push/pop perform no allocation. External synchronization
/// required (the server's ready_mu_).
template <typename T>
class FrameQueue {
 public:
  FrameQueue() { slots_.resize(kInitialCapacity); }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  void push_back(T&& item) {
    if (count_ == slots_.size()) Grow();
    slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(item);
    ++count_;
  }

  T& front() { return slots_[head_]; }

  void pop_front() {
    slots_[head_] = T();  // release resources eagerly
    head_ = (head_ + 1) & (slots_.size() - 1);
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
  }

 private:
  static constexpr size_t kInitialCapacity = 64;  // power of two

  void Grow() {
    std::vector<T> next(slots_.size() * 2);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_.swap(next);
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_SERVER_FRAME_POOL_H_
