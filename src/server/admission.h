// Admission control for watchmand: per-peer token-bucket request
// quotas, per-peer connection caps and global inflight/memory budgets.
//
// The daemon's existing flow control (per-connection read pause at
// max_inflight_frames) protects it from ONE fast pipelining peer, but
// an abusive or misconfigured fleet can still queue unboundedly across
// connections. The admission layer turns that into explicit load
// shedding: a request over budget is answered immediately with
// kShedRetryLater and a retry-after hint instead of being queued, and a
// peer over its connection cap gets the same status on a connection
// that then closes. Shedding happens BEFORE dispatch, so a shed request
// was never executed and is always safe to retry -- even INVALIDATE.
//
// Everything here runs on the server's IO thread only (frames are
// admitted where they are parsed), so there are no locks AND no
// atomics (memory-order audit: nothing to order -- single-threaded by
// construction). That confinement is compiler-enforced at the call
// site: Server::admission_ is GUARDED_BY(io_thread_role), so a worker
// touching the controller fails -Werror=thread-safety. TokenBucket is
// a pure function of explicit timestamps, unit-testable without a
// clock.

#ifndef WATCHMAN_SERVER_ADMISSION_H_
#define WATCHMAN_SERVER_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace watchman {

/// Budgets enforced by the admission layer. Every limit defaults to 0 =
/// unlimited, so a default-constructed server sheds nothing.
struct AdmissionOptions {
  /// Simultaneous connections allowed per peer address (0 = unlimited).
  /// A connection over the cap is answered with kShedRetryLater
  /// (request id 0) and closed after the response drains.
  uint32_t max_connections_per_peer = 0;
  /// Sustained request rate allowed per peer address, across all of its
  /// connections (0 = unlimited).
  double peer_requests_per_sec = 0;
  /// Burst allowance of the per-peer bucket; 0 derives a burst of
  /// max(peer_requests_per_sec, 1).
  double peer_burst = 0;
  /// Global cap on frames admitted but not yet answered (ready-queue +
  /// worker inflight). 0 = unlimited.
  uint64_t max_global_inflight = 0;
  /// Global cap on response bytes buffered across all connections --
  /// the memory budget for peers that send but do not read. 0 =
  /// unlimited.
  uint64_t max_global_output_bytes = 0;
  /// Retry-after hint for global-budget sheds (per-peer quota sheds
  /// hint the bucket's actual refill time instead).
  uint32_t retry_after_ms = 50;

  bool any_enabled() const {
    return max_connections_per_peer > 0 || peer_requests_per_sec > 0 ||
           max_global_inflight > 0 || max_global_output_bytes > 0;
  }
};

/// Why a request or connection was shed (kNone = admitted).
enum class ShedReason : uint8_t {
  kNone = 0,
  kPeerQuota,        // per-peer token bucket empty
  kPeerConnections,  // peer over its connection cap
  kGlobalInflight,   // server-wide inflight budget exhausted
  kGlobalBytes,      // server-wide buffered-output budget exhausted
  kNumReasons,
};

inline constexpr size_t kNumShedReasons =
    static_cast<size_t>(ShedReason::kNumReasons);

/// Stable label value ("peer_quota", ...); "none" for kNone.
const char* ShedReasonName(ShedReason reason);

/// Classic token bucket over an explicit nanosecond clock: capacity
/// `burst`, refilled at `rate` tokens/sec, one token per request.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst, int64_t now_ns)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst), last_ns_(now_ns) {}

  /// Consumes one token; on failure leaves the bucket untouched and
  /// sets *retry_after_ms to when one token will have accumulated
  /// (rounded up, >= 1).
  bool TryAcquire(int64_t now_ns, uint32_t* retry_after_ms);

  double tokens_at(int64_t now_ns) const;

 private:
  void Refill(int64_t now_ns);

  double rate_;
  double burst_;
  double tokens_;
  int64_t last_ns_;
};

/// IO-thread-only admission state: one TokenBucket + connection count
/// per peer address, plus the global budget checks.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  bool enabled() const { return options_.any_enabled(); }
  const AdmissionOptions& options() const { return options_; }

  /// Connection-level admission at accept time. kNone admits and counts
  /// the connection (balance with ConnectionClosed); kPeerConnections
  /// rejects without counting and sets the retry hint.
  ShedReason AdmitConnection(uint64_t peer_key, uint32_t* retry_after_ms);

  /// Releases one counted connection of `peer_key`.
  void ConnectionClosed(uint64_t peer_key);

  /// Frame-level admission: global budgets first (cheapest and most
  /// urgent), then the peer's bucket. Sets *retry_after_ms on any shed.
  ShedReason AdmitRequest(uint64_t peer_key, uint64_t global_inflight,
                          uint64_t global_output_bytes, int64_t now_ns,
                          uint32_t* retry_after_ms);

  /// Drops bucket state of peers with no connections and no request for
  /// `idle_ns` (bounds the map under address churn). Returns peers
  /// dropped.
  size_t GcIdlePeers(int64_t now_ns, int64_t idle_ns);

  size_t tracked_peers() const { return peers_.size(); }

 private:
  struct PeerState {
    TokenBucket bucket;
    uint32_t connections = 0;
    int64_t last_request_ns = 0;
  };

  PeerState& PeerFor(uint64_t peer_key, int64_t now_ns);

  AdmissionOptions options_;
  double effective_burst_;
  std::unordered_map<uint64_t, PeerState> peers_;
};

}  // namespace watchman

#endif  // WATCHMAN_SERVER_ADMISSION_H_
