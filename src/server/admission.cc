#include "server/admission.h"

#include <algorithm>
#include <cmath>

namespace watchman {

namespace {
constexpr double kNsPerSec = 1e9;
}  // namespace

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kPeerQuota:
      return "peer_quota";
    case ShedReason::kPeerConnections:
      return "peer_connections";
    case ShedReason::kGlobalInflight:
      return "global_inflight";
    case ShedReason::kGlobalBytes:
      return "global_bytes";
    case ShedReason::kNumReasons:
      break;
  }
  return "?";
}

void TokenBucket::Refill(int64_t now_ns) {
  if (now_ns <= last_ns_) return;
  tokens_ = std::min(
      burst_, tokens_ + rate_ * (static_cast<double>(now_ns - last_ns_) /
                                 kNsPerSec));
  last_ns_ = now_ns;
}

double TokenBucket::tokens_at(int64_t now_ns) const {
  if (now_ns <= last_ns_) return tokens_;
  return std::min(burst_,
                  tokens_ + rate_ * (static_cast<double>(now_ns - last_ns_) /
                                     kNsPerSec));
}

bool TokenBucket::TryAcquire(int64_t now_ns, uint32_t* retry_after_ms) {
  Refill(now_ns);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  // Time until the deficit refills, rounded up to a whole millisecond
  // so a client that honors the hint exactly does not race the refill.
  const double deficit = 1.0 - tokens_;
  const double ms = rate_ > 0 ? deficit * 1000.0 / rate_ : 1000.0;
  *retry_after_ms =
      static_cast<uint32_t>(std::min(std::ceil(std::max(ms, 1.0)), 60000.0));
  return false;
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options),
      effective_burst_(options.peer_burst > 0
                           ? options.peer_burst
                           : std::max(options.peer_requests_per_sec, 1.0)) {}

AdmissionController::PeerState& AdmissionController::PeerFor(
    uint64_t peer_key, int64_t now_ns) {
  auto it = peers_.find(peer_key);
  if (it == peers_.end()) {
    it = peers_
             .emplace(peer_key,
                      PeerState{TokenBucket(options_.peer_requests_per_sec,
                                            effective_burst_, now_ns),
                                0, now_ns})
             .first;
  }
  return it->second;
}

ShedReason AdmissionController::AdmitConnection(uint64_t peer_key,
                                                uint32_t* retry_after_ms) {
  if (options_.max_connections_per_peer == 0) return ShedReason::kNone;
  PeerState& peer = PeerFor(peer_key, 0);
  if (peer.connections >= options_.max_connections_per_peer) {
    *retry_after_ms = options_.retry_after_ms;
    return ShedReason::kPeerConnections;
  }
  ++peer.connections;
  return ShedReason::kNone;
}

void AdmissionController::ConnectionClosed(uint64_t peer_key) {
  if (options_.max_connections_per_peer == 0) return;
  auto it = peers_.find(peer_key);
  if (it != peers_.end() && it->second.connections > 0) {
    --it->second.connections;
  }
}

ShedReason AdmissionController::AdmitRequest(uint64_t peer_key,
                                             uint64_t global_inflight,
                                             uint64_t global_output_bytes,
                                             int64_t now_ns,
                                             uint32_t* retry_after_ms) {
  if (options_.max_global_inflight > 0 &&
      global_inflight >= options_.max_global_inflight) {
    *retry_after_ms = options_.retry_after_ms;
    return ShedReason::kGlobalInflight;
  }
  if (options_.max_global_output_bytes > 0 &&
      global_output_bytes >= options_.max_global_output_bytes) {
    *retry_after_ms = options_.retry_after_ms;
    return ShedReason::kGlobalBytes;
  }
  if (options_.peer_requests_per_sec > 0) {
    PeerState& peer = PeerFor(peer_key, now_ns);
    peer.last_request_ns = now_ns;
    if (!peer.bucket.TryAcquire(now_ns, retry_after_ms)) {
      return ShedReason::kPeerQuota;
    }
  }
  return ShedReason::kNone;
}

size_t AdmissionController::GcIdlePeers(int64_t now_ns, int64_t idle_ns) {
  size_t dropped = 0;
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (it->second.connections == 0 &&
        now_ns - it->second.last_request_ns > idle_ns) {
      it = peers_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace watchman
