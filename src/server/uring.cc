#include "server/uring.h"

#include "util/errno_string.h"

#include <errno.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <string>

namespace watchman {
namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, arg, argsz));
}

int SysIoUringRegister(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

template <typename T>
T* RingPtr(void* base, uint32_t off) {
  return reinterpret_cast<T*>(static_cast<char*>(base) + off);
}

}  // namespace

Uring::~Uring() { Close(); }

bool Uring::KernelSupported() {
  static const bool supported = [] {
    io_uring_params params;
    memset(&params, 0, sizeof(params));
    int fd = SysIoUringSetup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    // The loop blocks with millisecond timeouts (EXT_ARG) and relies on
    // completions never being dropped under CQ pressure (NODROP).
    const uint32_t need = IORING_FEAT_NODROP | IORING_FEAT_EXT_ARG;
    return (params.features & need) == need;
  }();
  return supported;
}

Status Uring::Init(unsigned entries) {
  if (ring_fd_ >= 0) return Status::InvalidArgument("ring already open");
  io_uring_params params;
  memset(&params, 0, sizeof(params));
  params.flags = IORING_SETUP_CLAMP;
  int fd = SysIoUringSetup(entries, &params);
  if (fd < 0) {
    return Status::Internal(std::string("io_uring_setup: ") +
                            ErrnoString(errno));
  }
  ring_fd_ = fd;
  sq_entries_ = params.sq_entries;
  cq_entries_ = params.cq_entries;

  sq_ring_size_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_size_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap =
      (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && cq_ring_size_ > sq_ring_size_) {
    sq_ring_size_ = cq_ring_size_;
  }
  sq_ring_mem_ =
      mmap(nullptr, sq_ring_size_, PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_mem_ == MAP_FAILED) {
    sq_ring_mem_ = nullptr;
    Close();
    return Status::Internal("io_uring: mmap sq ring failed");
  }
  void* cq_mem = sq_ring_mem_;
  if (!single_mmap) {
    cq_ring_mem_ =
        mmap(nullptr, cq_ring_size_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_mem_ == MAP_FAILED) {
      cq_ring_mem_ = nullptr;
      Close();
      return Status::Internal("io_uring: mmap cq ring failed");
    }
    cq_mem = cq_ring_mem_;
  }
  sqes_size_ = params.sq_entries * sizeof(io_uring_sqe);
  void* sqes = mmap(nullptr, sqes_size_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    Close();
    return Status::Internal("io_uring: mmap sqes failed");
  }
  sqes_ = static_cast<io_uring_sqe*>(sqes);

  sq_head_ = RingPtr<unsigned>(sq_ring_mem_, params.sq_off.head);
  sq_tail_ = RingPtr<unsigned>(sq_ring_mem_, params.sq_off.tail);
  sq_mask_ = RingPtr<unsigned>(sq_ring_mem_, params.sq_off.ring_mask);
  sq_array_ = RingPtr<unsigned>(sq_ring_mem_, params.sq_off.array);
  cq_head_ = RingPtr<unsigned>(cq_mem, params.cq_off.head);
  cq_tail_ = RingPtr<unsigned>(cq_mem, params.cq_off.tail);
  cq_mask_ = RingPtr<unsigned>(cq_mem, params.cq_off.ring_mask);
  cqes_ = RingPtr<io_uring_cqe>(cq_mem, params.cq_off.cqes);

  local_tail_ = *sq_tail_;
  pending_ = 0;
  return Status::OK();
}

void Uring::Close() {
  if (sqes_ != nullptr) {
    munmap(sqes_, sqes_size_);
    sqes_ = nullptr;
  }
  if (cq_ring_mem_ != nullptr) {
    munmap(cq_ring_mem_, cq_ring_size_);
    cq_ring_mem_ = nullptr;
  }
  if (sq_ring_mem_ != nullptr) {
    munmap(sq_ring_mem_, sq_ring_size_);
    sq_ring_mem_ = nullptr;
  }
  if (buf_base_ != nullptr) {
    // Closing the ring fd releases the kernel's buffer group; only the
    // slab is ours to unmap.
    munmap(buf_base_, buf_slab_bytes_);
    buf_base_ = nullptr;
  }
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
    ring_fd_ = -1;
  }
}

io_uring_sqe* Uring::GetSqe() {
  unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (local_tail_ - head >= sq_entries_) {
    // SQ full: push what we have to the kernel to free slots.
    if (Submit() < 0) return nullptr;
    head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    if (local_tail_ - head >= sq_entries_) return nullptr;
  }
  const unsigned idx = local_tail_ & *sq_mask_;
  io_uring_sqe* sqe = &sqes_[idx];
  memset(sqe, 0, sizeof(*sqe));
  sq_array_[idx] = idx;
  ++local_tail_;
  ++pending_;
  return sqe;
}

int Uring::Submit() {
  if (pending_ == 0) return 0;
  __atomic_store_n(sq_tail_, local_tail_, __ATOMIC_RELEASE);
  for (;;) {
    int ret = SysIoUringEnter(ring_fd_, pending_, 0, 0, nullptr, 0);
    if (ret >= 0) {
      pending_ -= static_cast<unsigned>(ret) <= pending_
                      ? static_cast<unsigned>(ret)
                      : pending_;
      return 0;
    }
    if (errno == EINTR) continue;
    if (errno == EBUSY) return 0;  // CQ backpressure; retry next tick
    return -errno;
  }
}

int Uring::SubmitAndWait(unsigned wait_nr, int timeout_ms) {
  __atomic_store_n(sq_tail_, local_tail_, __ATOMIC_RELEASE);
  // A completion may already be sitting in the CQ; don't block on more.
  unsigned ready =
      __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE) - *cq_head_;
  if (ready >= wait_nr) wait_nr = 0;

  __kernel_timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
  io_uring_getevents_arg arg;
  memset(&arg, 0, sizeof(arg));
  arg.ts = reinterpret_cast<uint64_t>(&ts);

  for (;;) {
    unsigned flags = IORING_ENTER_GETEVENTS;
    const void* argp = nullptr;
    size_t argsz = 0;
    if (wait_nr > 0 && timeout_ms >= 0) {
      flags |= IORING_ENTER_EXT_ARG;
      argp = &arg;
      argsz = sizeof(arg);
    }
    int ret =
        SysIoUringEnter(ring_fd_, pending_, wait_nr, flags, argp, argsz);
    if (ret >= 0) {
      pending_ -= static_cast<unsigned>(ret) <= pending_
                      ? static_cast<unsigned>(ret)
                      : pending_;
      return 0;
    }
    if (errno == ETIME) {
      pending_ = 0;  // ETIME still submits the SQEs first
      return 0;
    }
    if (errno == EINTR) continue;
    if (errno == EBUSY) return 0;
    return -errno;
  }
}

size_t Uring::DrainCompletions(std::vector<Completion>* out) {
  unsigned head = *cq_head_;
  const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  const unsigned mask = *cq_mask_;
  size_t drained = 0;
  while (head != tail) {
    const io_uring_cqe& cqe = cqes_[head & mask];
    // Internal buffer-recycle completions never reach the caller. A
    // failed recycle permanently loses one buffer slot (the server
    // degrades to one-shot reads when the group runs dry); nothing
    // useful can be done with the error here.
    if (cqe.user_data != kInternalUserData) {
      out->push_back(Completion{cqe.user_data, cqe.res, cqe.flags});
      ++drained;
    }
    ++head;
  }
  __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  return drained;
}

bool Uring::SetupBuffers(uint16_t bgid, uint32_t entries, size_t buf_size) {
  if (ring_fd_ < 0 || buf_base_ != nullptr || entries == 0) return false;
  buf_slab_bytes_ = static_cast<size_t>(entries) * buf_size;
  void* slab = mmap(nullptr, buf_slab_bytes_, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (slab == MAP_FAILED) {
    buf_slab_bytes_ = 0;
    return false;
  }

  // One op provides the whole group (bids 0..entries-1). Runs before
  // the IO thread exists, so waiting for its completion synchronously
  // is safe -- and necessary: the op's result is the only signal that
  // this kernel supports buffer selection at all.
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) {
    munmap(slab, buf_slab_bytes_);
    buf_slab_bytes_ = 0;
    return false;
  }
  sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
  sqe->fd = static_cast<int32_t>(entries);  // number of buffers
  sqe->addr = reinterpret_cast<uint64_t>(slab);
  sqe->len = static_cast<uint32_t>(buf_size);
  sqe->buf_group = bgid;
  sqe->off = 0;  // first bid
  sqe->user_data = kInternalUserData;
  if (SubmitAndWait(1, 1000) != 0) {
    munmap(slab, buf_slab_bytes_);
    buf_slab_bytes_ = 0;
    return false;
  }
  // Read the provide op's CQE directly (DrainCompletions would hide
  // it as internal).
  bool provided = false;
  unsigned head = *cq_head_;
  const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  while (head != tail) {
    const io_uring_cqe& cqe = cqes_[head & *cq_mask_];
    if (cqe.user_data == kInternalUserData) provided = cqe.res >= 0;
    ++head;
  }
  __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  if (!provided) {
    munmap(slab, buf_slab_bytes_);
    buf_slab_bytes_ = 0;
    return false;
  }

  buf_base_ = static_cast<char*>(slab);
  buf_entries_ = entries;
  buf_size_ = buf_size;
  buf_group_ = bgid;
  return true;
}

void Uring::RecycleBuffer(uint16_t bid) {
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) return;  // ring broken; buffer slot is lost
  sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
  sqe->fd = 1;
  sqe->addr = reinterpret_cast<uint64_t>(BufferData(bid));
  sqe->len = static_cast<uint32_t>(buf_size_);
  sqe->buf_group = buf_group_;
  sqe->off = bid;
  sqe->user_data = kInternalUserData;
}

}  // namespace watchman
