// Client libraries for watchmand.
//
// WatchmanClient owns one TCP connection and issues one request per
// round trip; Connect() retries with capped exponential backoff, and
// every socket wait (connect, send, recv) honors Options::io_timeout_ms
// via poll, so a stalled or half-dead daemon fails the call within the
// deadline instead of wedging the caller. A round trip that hits a dead
// connection redials once ONLY when it is safe: either no byte of the
// request reached the wire, or the op is a pure probe/offer (PING, GET,
// STATS, EXECUTE) whose replay the daemon absorbs idempotently.
// INVALIDATE / INVALIDATE_RELATION are NOT replay-safe -- a resend
// after a lost response would report dropped=0 for a set the daemon
// actually dropped -- so those surface IOError and let the caller
// decide. Calls are serialized on an internal mutex, so a client may be
// shared between threads, but one connection pays one round trip at a
// time.
//
// MultiplexedClient shares ONE connection between many application
// threads using the wire protocol's v3 request ids: a buffered writer
// pipelines encoded frames (flushed on Await()/Flush(), no per-request
// round trip), and a dedicated reader thread demultiplexes responses to
// per-request waiters by id, so responses may complete out of order and
// the pipe stays full. StartX()/Await() expose the pipelining directly;
// the blocking Ping()/Get()/... wrappers are Start+Await and are safe
// to call from any number of threads concurrently.
//
// RemoteWatchman layers the Watchman query API on top of a
// WatchmanClient: Execute() first probes the daemon (GET), on a miss
// runs the local executor and offers the result back (EXECUTE +
// miss-fill), so application code swaps a local Watchman for a
// RemoteWatchman without restructuring -- same Execute()/Query()
// signatures, same executor contract, and the daemon-side cache counts
// one reference per call exactly like the local facade.

#ifndef WATCHMAN_SERVER_CLIENT_H_
#define WATCHMAN_SERVER_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "util/mutex.h"
#include "util/status.h"
#include "watchman/watchman.h"

namespace watchman {

/// Backoff in milliseconds slept before dial attempt `attempt`
/// (0-based; attempt 0 never sleeps). Doubles from `base_ms`, capped at
/// `max_ms`; immune to overflow however many attempts are configured.
/// A nonzero `jitter_seed` spreads the result uniformly over
/// [backoff/2, backoff] ("equal jitter") so a fleet restarting against
/// one daemon does not redial in lockstep; the function stays pure --
/// the same (args, seed) always yields the same value. Seed 0 disables
/// jitter.
int DialBackoffMs(int base_ms, int max_ms, int attempt,
                  uint64_t jitter_seed = 0);

/// Backoff in milliseconds before retrying a request the daemon shed
/// (kShedRetryLater). Starts from the daemon's retry-after hint
/// (`hint_ms`; <=0 falls back to 10ms), doubles per attempt (0-based),
/// caps at `max_ms`, and applies the same equal-jitter spread as
/// DialBackoffMs. Pure function; seed 0 disables jitter.
int ShedBackoffMs(int hint_ms, int max_ms, int attempt,
                  uint64_t jitter_seed = 0);

/// Blocking request/response client for one watchmand connection.
class WatchmanClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Dial attempts before Connect()/redial gives up.
    int connect_attempts = 5;
    /// Backoff before the second attempt; doubles per further attempt,
    /// capped at max_backoff_ms.
    int retry_backoff_ms = 20;
    int max_backoff_ms = 2000;
    /// Deadline enforced (via poll) on every socket wait -- connect,
    /// send, recv -- counted from the start of each call. 0 disables
    /// the deadline (waits forever, pre-v3 behavior).
    int io_timeout_ms = 30000;
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Automatic retries of a request the daemon shed (kShedRetryLater),
    /// each after a capped, jittered backoff seeded by the daemon's
    /// retry-after hint. Always safe: a shed request was never
    /// executed. 0 surfaces the shed status to the caller instead.
    int shed_retries = 3;
    /// Cap on one shed-retry backoff sleep.
    int max_shed_backoff_ms = 1000;
    /// When non-empty, bind the local end of the connection to this
    /// address before connecting (port stays ephemeral). Tests use
    /// distinct loopback addresses to exercise per-peer quotas.
    std::string local_addr;
  };

  /// What a GET / EXECUTE round trip produced.
  struct FetchResult {
    std::string payload;
    /// True when the daemon served the payload from its cache.
    bool cache_hit = false;
  };

  /// Dials the daemon (with retry/backoff per `options`).
  static StatusOr<std::unique_ptr<WatchmanClient>> Connect(
      const Options& options);

  ~WatchmanClient();

  WatchmanClient(const WatchmanClient&) = delete;
  WatchmanClient& operator=(const WatchmanClient&) = delete;

  /// Liveness / framing check.
  Status Ping();

  /// Hit-only probe; NotFound on a miss.
  StatusOr<FetchResult> Get(const std::string& query_text);

  /// Full lookup executed daemon-side (requires the daemon to own an
  /// executor; against a miss-fill daemon a miss returns NotFound).
  StatusOr<FetchResult> Execute(const std::string& query_text);

  /// Full lookup carrying the result this client computed for a miss:
  /// on a daemon-side miss the fill is offered to the cache (admission,
  /// coherence and all) and echoed back; on a hit the cached set wins
  /// and the fill is discarded.
  StatusOr<FetchResult> Execute(const std::string& query_text,
                                const std::string& fill_payload,
                                uint64_t fill_cost,
                                std::vector<std::string> fill_relations = {});

  /// Returns the number of retrieved sets dropped (0 or 1).
  StatusOr<uint64_t> Invalidate(const std::string& query_text);

  /// Returns the number of dependent retrieved sets dropped.
  StatusOr<uint64_t> InvalidateRelation(const std::string& relation);

  StatusOr<WireStats> Stats();

  /// Forces a metadata compaction pass on the daemon (idempotent, so
  /// replay-safe).
  Status Compact();

 private:
  explicit WatchmanClient(Options options);

  /// (Re)connects fd_, with retry/backoff.
  Status Dial() REQUIRES(mu_);
  /// One RoundTripLocked per shed-retry attempt (Options::shed_retries),
  /// sleeping the hinted, jittered backoff between attempts.
  StatusOr<WireResponse> RoundTrip(WireRequest& request) EXCLUDES(mu_);
  /// Stamps a fresh request id, sends `request` and reads the matching
  /// response; redials once only when the replay is provably safe.
  StatusOr<WireResponse> RoundTripLocked(WireRequest& request) REQUIRES(mu_);
  StatusOr<std::string> ReadFrameBody(
      std::chrono::steady_clock::time_point deadline) REQUIRES(mu_);
  void CloseLocked() REQUIRES(mu_);

  Options options_;
  Mutex mu_;
  int fd_ GUARDED_BY(mu_) = -1;
  uint64_t next_request_id_ GUARDED_BY(mu_) = 0;
  /// Jitter seed for shed-retry backoff (fixed per client instance).
  uint64_t shed_jitter_seed_ = 0;
  /// Bytes received but not yet consumed as a frame.
  std::string inbuf_ GUARDED_BY(mu_);
};

/// One connection shared by many application threads: requests are
/// stamped with unique ids, buffered and pipelined by a writer path
/// that never waits for responses, and a dedicated reader thread routes
/// each response to its waiter by id. Any transport failure (send
/// error, recv error, undecodable response, deadline on the socket)
/// is sticky: every pending and future call fails with the same status
/// and the caller reconnects by constructing a new client.
class MultiplexedClient {
 public:
  using Options = WatchmanClient::Options;
  using FetchResult = WatchmanClient::FetchResult;
  /// Handle for an in-flight pipelined request.
  using Ticket = uint64_t;

  /// Dials the daemon (with retry/backoff per `options`) and spawns the
  /// reader thread.
  static StatusOr<std::unique_ptr<MultiplexedClient>> Connect(
      const Options& options);

  ~MultiplexedClient();

  MultiplexedClient(const MultiplexedClient&) = delete;
  MultiplexedClient& operator=(const MultiplexedClient&) = delete;

  // Pipelined API: StartX() encodes and buffers the request (no socket
  // write, no waiting); Flush()/Await() push buffered frames to the
  // wire. Await(ticket) blocks until that request's response arrives
  // (or Options::io_timeout_ms elapses -> IOError) and may be called
  // from any thread, in any order relative to other tickets.
  StatusOr<Ticket> StartPing();
  StatusOr<Ticket> StartGet(const std::string& query_text);
  StatusOr<Ticket> StartExecute(const std::string& query_text);
  StatusOr<Ticket> StartExecute(const std::string& query_text,
                                const std::string& fill_payload,
                                uint64_t fill_cost,
                                std::vector<std::string> fill_relations = {});
  StatusOr<Ticket> StartInvalidate(const std::string& query_text);
  StatusOr<Ticket> StartInvalidateRelation(const std::string& relation);
  StatusOr<Ticket> StartStats();
  StatusOr<Ticket> StartCompact();

  /// Sends every buffered frame now (Await does this implicitly).
  Status Flush();

  /// Waits for `ticket`'s response. Each ticket may be awaited once.
  StatusOr<WireResponse> Await(Ticket ticket);

  // Blocking wrappers (Start + Await), concurrency-safe: N threads
  // calling these share the one connection and their requests pipeline
  // naturally.
  Status Ping();
  StatusOr<FetchResult> Get(const std::string& query_text);
  StatusOr<FetchResult> Execute(const std::string& query_text);
  StatusOr<FetchResult> Execute(const std::string& query_text,
                                const std::string& fill_payload,
                                uint64_t fill_cost,
                                std::vector<std::string> fill_relations = {});
  StatusOr<uint64_t> Invalidate(const std::string& query_text);
  StatusOr<uint64_t> InvalidateRelation(const std::string& relation);
  StatusOr<WireStats> Stats();
  Status Compact();

 private:
  struct PendingCall {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    // Transport-level failure (response invalid).
    Status error GUARDED_BY(mu);
    // Valid when done && error.ok().
    WireResponse response GUARDED_BY(mu);
  };

  explicit MultiplexedClient(Options options);

  StatusOr<Ticket> StartRequest(WireRequest& request);
  /// Start + Await with shed-retry backoff (the blocking wrappers).
  StatusOr<WireResponse> CallBlocking(
      const std::function<StatusOr<Ticket>()>& start);
  void ReaderLoop();
  /// Marks the transport broken and fails every pending call.
  void Break(const Status& status);

  Options options_;
  /// Deliberately unguarded: written exactly once (in Connect, before
  /// the reader thread spawns and before the client pointer escapes),
  /// then only read -- by flushers, the reader's poll/recv, and the
  /// destructor's shutdown/close after the reader is joined. The
  /// thread-spawn and unique_ptr handoffs publish it.
  int fd_ = -1;
  std::thread reader_;
  std::atomic<bool> stopping_{false};

  /// Writer state: encoded frames accumulate in outbuf_ under send_mu_
  /// and are sent in one batch by Flush/Await. The socket write itself
  /// happens under flush_mu_ ONLY, so StartX() keeps buffering (and
  /// never blocks) while another thread's flush is stalled on the
  /// socket; flush_mu_ serializes senders so batches hit the wire
  /// whole. Lock order: flush_mu_ before send_mu_, never both held
  /// across a syscall (ACQUIRED_BEFORE turns a violation into a
  /// compile error under -Werror=thread-safety).
  Mutex flush_mu_ ACQUIRED_BEFORE(send_mu_);
  Mutex send_mu_;
  std::string outbuf_ GUARDED_BY(send_mu_);

  /// Waiter registry; broken_ is the sticky transport failure.
  Mutex pending_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall>> pending_
      GUARDED_BY(pending_mu_);
  Status broken_ GUARDED_BY(pending_mu_);

  std::atomic<uint64_t> next_id_{0};
  /// Jitter seed for shed-retry backoff (fixed per client instance).
  uint64_t shed_jitter_seed_ = 0;
};

/// Drop-in remote counterpart of the Watchman facade's query API.
class RemoteWatchman {
 public:
  /// `executor` materializes misses locally (same contract as the
  /// Watchman constructor's executor).
  RemoteWatchman(std::unique_ptr<WatchmanClient> client,
                 Watchman::Executor executor);

  /// Dials and wraps in one step.
  static StatusOr<std::unique_ptr<RemoteWatchman>> Connect(
      const WatchmanClient::Options& options, Watchman::Executor executor);

  /// Mirrors Watchman::Execute(): probe the daemon, on a miss run the
  /// local executor and offer the result back. Executor errors
  /// propagate unchanged; failed executions are not cached.
  StatusOr<std::string> Execute(const std::string& query_text);

  /// Alias of Execute() (the paper-era name).
  StatusOr<std::string> Query(const std::string& query_text) {
    return Execute(query_text);
  }

  StatusOr<uint64_t> Invalidate(const std::string& query_text) {
    return client_->Invalidate(query_text);
  }
  StatusOr<uint64_t> InvalidateRelation(const std::string& relation) {
    return client_->InvalidateRelation(relation);
  }

  /// Daemon-side counters.
  StatusOr<WireStats> Stats() { return client_->Stats(); }

  WatchmanClient& client() { return *client_; }

 private:
  std::unique_ptr<WatchmanClient> client_;
  Watchman::Executor executor_;
};

}  // namespace watchman

#endif  // WATCHMAN_SERVER_CLIENT_H_
