// Blocking client library for watchmand.
//
// WatchmanClient owns one TCP connection and issues one request per
// round trip; Connect() retries with exponential backoff, and a round
// trip that hits a dead connection redials once before failing (the
// ops are idempotent offers/probes, so a rare replay is safe). Calls
// are serialized on an internal mutex, so a client may be shared
// between threads, but one connection pays one round trip at a time --
// throughput-minded callers (the bench, the integration tests) open a
// client per thread.
//
// RemoteWatchman layers the Watchman query API on top: Execute() first
// probes the daemon (GET), on a miss runs the local executor and offers
// the result back (EXECUTE + miss-fill), so application code swaps a
// local Watchman for a RemoteWatchman without restructuring -- same
// Execute()/Query() signatures, same executor contract, and the
// daemon-side cache counts one reference per call exactly like the
// local facade.

#ifndef WATCHMAN_SERVER_CLIENT_H_
#define WATCHMAN_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/status.h"
#include "watchman/watchman.h"

namespace watchman {

/// Blocking request/response client for one watchmand connection.
class WatchmanClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Dial attempts before Connect()/redial gives up.
    int connect_attempts = 5;
    /// Backoff before the second attempt; doubles per further attempt.
    int retry_backoff_ms = 20;
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
  };

  /// What a GET / EXECUTE round trip produced.
  struct FetchResult {
    std::string payload;
    /// True when the daemon served the payload from its cache.
    bool cache_hit = false;
  };

  /// Dials the daemon (with retry/backoff per `options`).
  static StatusOr<std::unique_ptr<WatchmanClient>> Connect(
      const Options& options);

  ~WatchmanClient();

  WatchmanClient(const WatchmanClient&) = delete;
  WatchmanClient& operator=(const WatchmanClient&) = delete;

  /// Liveness / framing check.
  Status Ping();

  /// Hit-only probe; NotFound on a miss.
  StatusOr<FetchResult> Get(const std::string& query_text);

  /// Full lookup executed daemon-side (requires the daemon to own an
  /// executor; against a miss-fill daemon a miss returns NotFound).
  StatusOr<FetchResult> Execute(const std::string& query_text);

  /// Full lookup carrying the result this client computed for a miss:
  /// on a daemon-side miss the fill is offered to the cache (admission,
  /// coherence and all) and echoed back; on a hit the cached set wins
  /// and the fill is discarded.
  StatusOr<FetchResult> Execute(const std::string& query_text,
                                const std::string& fill_payload,
                                uint64_t fill_cost,
                                std::vector<std::string> fill_relations = {});

  /// Returns the number of retrieved sets dropped (0 or 1).
  StatusOr<uint64_t> Invalidate(const std::string& query_text);

  /// Returns the number of dependent retrieved sets dropped.
  StatusOr<uint64_t> InvalidateRelation(const std::string& relation);

  StatusOr<WireStats> Stats();

 private:
  explicit WatchmanClient(Options options);

  /// (Re)connects fd_, with retry/backoff.
  Status Dial();
  /// Sends `request` and reads the matching response; redials once if
  /// the connection turns out dead.
  StatusOr<WireResponse> RoundTrip(const WireRequest& request);
  Status SendAll(const std::string& bytes);
  StatusOr<std::string> ReadFrameBody();
  void CloseLocked();

  Options options_;
  std::mutex mu_;
  int fd_ = -1;
  /// Bytes received but not yet consumed as a frame.
  std::string inbuf_;
};

/// Drop-in remote counterpart of the Watchman facade's query API.
class RemoteWatchman {
 public:
  /// `executor` materializes misses locally (same contract as the
  /// Watchman constructor's executor).
  RemoteWatchman(std::unique_ptr<WatchmanClient> client,
                 Watchman::Executor executor);

  /// Dials and wraps in one step.
  static StatusOr<std::unique_ptr<RemoteWatchman>> Connect(
      const WatchmanClient::Options& options, Watchman::Executor executor);

  /// Mirrors Watchman::Execute(): probe the daemon, on a miss run the
  /// local executor and offer the result back. Executor errors
  /// propagate unchanged; failed executions are not cached.
  StatusOr<std::string> Execute(const std::string& query_text);

  /// Alias of Execute() (the paper-era name).
  StatusOr<std::string> Query(const std::string& query_text) {
    return Execute(query_text);
  }

  StatusOr<uint64_t> Invalidate(const std::string& query_text) {
    return client_->Invalidate(query_text);
  }
  StatusOr<uint64_t> InvalidateRelation(const std::string& relation) {
    return client_->InvalidateRelation(relation);
  }

  /// Daemon-side counters.
  StatusOr<WireStats> Stats() { return client_->Stats(); }

  WatchmanClient& client() { return *client_; }

 private:
  std::unique_ptr<WatchmanClient> client_;
  Watchman::Executor executor_;
};

}  // namespace watchman

#endif  // WATCHMAN_SERVER_CLIENT_H_
