// watchmand wire protocol: length-prefixed binary framing shared by the
// server, the client library and the CLI.
//
// A frame is a 4-byte little-endian body length followed by the body.
// Every body starts with a version byte, an opcode byte and a u64
// request id (echoed by the server, so responses on one connection may
// complete out of order); the remaining fields are opcode-specific,
// encoded with fixed-width little-endian integers and
// u32-length-prefixed strings. Doubles travel as their IEEE-754 bit
// pattern in a u64.
//
// The protocol is deliberately dumb-pipe: requests carry everything the
// daemon needs (notably EXECUTE's optional miss-fill -- the payload,
// cost and relation list the client materialized when the daemon had a
// miss), responses carry a status code + message mirroring util/status,
// and both sides treat an oversized or short frame as corruption.
// Encoding and decoding are pure functions over byte strings so the
// whole layer is unit-testable without sockets.

#ifndef WATCHMAN_SERVER_PROTOCOL_H_
#define WATCHMAN_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace watchman {

/// Protocol revision; bumped on any incompatible framing change. A
/// decoder rejects bodies whose version byte differs.
/// v2: STATS gained connections_queued / connections_queued_peak
/// (worker-pool saturation visibility).
/// v3: every request and response carries a u64 request_id right after
/// the (version, opcode) prologue. The server echoes the id verbatim,
/// which lets one connection carry many in-flight requests with
/// out-of-order responses (MultiplexedClient) and lets error responses
/// be routed to the request that caused them.
///
/// v4: adds the COMPACT opcode (force metadata compaction) and extends
/// the STATS payload with compaction counters and the serving backend
/// name.
///
/// v5: responses carry a u32 retry_after_ms hint right after the status
/// message, and the status byte may be kShedRetryLater — the server's
/// admission layer refused the request before dispatch (per-peer quota,
/// connection cap, or global budget), so retrying after the hinted
/// backoff is always safe, even for non-replay-safe ops.
inline constexpr uint8_t kWireVersion = 5;

/// Upper bound both sides place on one frame's body (guards the length
/// prefix against garbage and bounds per-connection memory).
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// Request operations.
enum class OpCode : uint8_t {
  kPing = 1,                // liveness / framing check
  kExecute = 2,             // full cache lookup, miss filled server- or
                            // client-side (see WireRequest::has_fill)
  kGet = 3,                 // hit-only probe; NotFound on a miss
  kInvalidate = 4,          // drop one query's retrieved set
  kInvalidateRelation = 5,  // drop every set that read a relation
  kStats = 6,               // cache + server counters snapshot
  kCompact = 7,             // force a metadata compaction pass
};

inline constexpr size_t kNumOpCodes = 7;

/// True if `raw` encodes a known OpCode.
bool IsValidOpCode(uint8_t raw);

/// Stable lower-case name ("ping", "execute", ...).
const char* OpCodeName(OpCode op);

/// Index of `op` in dense per-op arrays (kPing -> 0, ...).
inline size_t OpIndex(OpCode op) { return static_cast<size_t>(op) - 1; }

/// A decoded request.
struct WireRequest {
  OpCode op = OpCode::kPing;
  /// Correlates the response with this request on a multiplexed
  /// connection; echoed verbatim by the server. Clients choose ids
  /// (monotonic per connection); the server never interprets them.
  uint64_t request_id = 0;
  /// kExecute / kGet / kInvalidate: the query text (the daemon derives
  /// the query ID exactly like the local facade).
  std::string query_text;
  /// kInvalidateRelation: the updated relation.
  std::string relation;
  /// kExecute: when true, the request carries the result the client
  /// computed for a miss -- the daemon's executor serves it if (and only
  /// if) the lookup actually misses.
  bool has_fill = false;
  std::string fill_payload;
  uint64_t fill_cost = 1;
  std::vector<std::string> fill_relations;
};

/// Latency/throughput counters for one opcode (STATS payload).
struct WireOpMetrics {
  uint8_t op = 0;
  uint64_t requests = 0;
  /// Responses with a status other than OK / NotFound (a miss is not an
  /// error).
  uint64_t errors = 0;
  /// Handler latency in microseconds.
  uint64_t latency_count = 0;
  double latency_mean_us = 0.0;
  double latency_min_us = 0.0;
  double latency_max_us = 0.0;
};

/// The STATS response payload: the facade's cache counters plus the
/// server's transport counters.
struct WireStats {
  // CacheStats, verbatim.
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t admission_rejections = 0;
  uint64_t too_large_rejections = 0;
  uint64_t cost_total = 0;
  uint64_t cost_saved = 0;
  uint64_t bytes_inserted = 0;
  uint64_t bytes_evicted = 0;
  // Facade gauges.
  uint64_t used_bytes = 0;
  uint64_t capacity_bytes = 0;
  uint64_t entry_count = 0;
  uint64_t retained_count = 0;
  uint64_t invalidations = 0;
  uint64_t num_shards = 0;
  std::string policy_name;
  // Server transport counters.
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  /// Connections accepted but not yet claimed by a worker (gauge at
  /// snapshot time) and the high-water mark of that queue: sustained
  /// non-zero values mean the worker pool is saturated.
  uint64_t connections_queued = 0;
  uint64_t connections_queued_peak = 0;
  uint64_t requests_served = 0;
  uint64_t frames_rejected = 0;
  /// Metadata compactions run by the daemon (idle timer or COMPACT op).
  uint64_t compactions = 0;
  /// Milliseconds since the last compaction at snapshot time;
  /// kNeverCompacted when none has run yet.
  uint64_t last_compaction_age_ms = kNeverCompacted;
  /// Event backend actually serving ("epoll" or "io_uring") -- the
  /// requested backend may have fallen back at startup.
  std::string backend;
  std::vector<WireOpMetrics> per_op;

  static constexpr uint64_t kNeverCompacted = ~0ull;

  double hit_ratio() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  double cost_savings_ratio() const {
    return cost_total == 0 ? 0.0
                           : static_cast<double>(cost_saved) /
                                 static_cast<double>(cost_total);
  }
};

/// A decoded response. `op` echoes the request; `code`/`message` mirror
/// the handler's Status; the remaining fields are op-specific.
struct WireResponse {
  OpCode op = OpCode::kPing;
  /// Echo of the request's id (0 when the request's id could not be
  /// decoded, e.g. a framing-level error response).
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// With code == kShedRetryLater: how long the server suggests the
  /// client wait before retrying (0 = "immediately"). Zero on every
  /// other status.
  uint32_t retry_after_ms = 0;
  /// kExecute / kGet: true when the payload came from the cache rather
  /// than a fill/execution.
  bool cache_hit = false;
  std::string payload;
  /// kInvalidate / kInvalidateRelation: retrieved sets dropped.
  uint64_t dropped = 0;
  WireStats stats;

  /// Re-arms a response object for reuse: resets every field while
  /// keeping message/payload capacity (per-connection scratch).
  void Reset(OpCode new_op) {
    op = new_op;
    request_id = 0;
    code = StatusCode::kOk;
    message.clear();
    retry_after_ms = 0;
    cache_hit = false;
    payload.clear();
    dropped = 0;
    if (!stats.per_op.empty() || stats.lookups != 0) stats = WireStats{};
  }
};

/// Encodes a complete frame (length prefix + body).
std::string EncodeRequest(const WireRequest& request);
std::string EncodeResponse(const WireResponse& response);

/// Appends the encoded frame of `request` to *out in place -- the
/// pipelined client batches many requests into one output buffer
/// without a temporary string per frame.
void AppendRequest(const WireRequest& request, std::string* out);

/// Appends the encoded frame of `response` to *out in place -- the
/// server batches many responses into one per-connection output buffer
/// without a temporary string per frame.
void AppendResponse(const WireResponse& response, std::string* out);

/// Decodes a frame body (without the length prefix). Corruption on
/// truncated/overlong bodies, NotSupported on a version mismatch,
/// InvalidArgument on an unknown opcode.
StatusOr<WireRequest> DecodeRequest(std::string_view body);
StatusOr<WireResponse> DecodeResponse(std::string_view body);

/// DecodeRequest into a caller-owned request object, reusing its string
/// capacity -- the server decodes every frame of a connection into one
/// scratch WireRequest, so steady-state framing allocates nothing.
Status DecodeRequestInto(std::string_view body, WireRequest* request);

/// Streaming frame extraction: examines `buffer` (the bytes read so
/// far) and, when a complete frame is present, points *body at its body
/// bytes inside `buffer`, sets *frame_size to the total frame size
/// (prefix + body) and returns true. Returns false when more bytes are
/// needed, Corruption when the length prefix exceeds `max_frame_bytes`.
StatusOr<bool> ExtractFrame(std::string_view buffer, size_t max_frame_bytes,
                            std::string_view* body, size_t* frame_size);

/// Best-effort read of the (op, request_id) prologue of a body that
/// failed to decode, so an error response can echo which request broke
/// instead of defaulting to (ping, 0). Leaves *op / *request_id
/// untouched when the prologue itself is unreadable (wrong version,
/// unknown opcode, body shorter than the prologue).
void PeekPrologue(std::string_view body, OpCode* op, uint64_t* request_id);

/// Rebuilds a Status from a wire (code, message) pair; OK for kOk.
Status StatusFromWire(StatusCode code, const std::string& message);

}  // namespace watchman

#endif  // WATCHMAN_SERVER_PROTOCOL_H_
