#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/logging.h"

namespace watchman {
namespace {

/// The miss-fill the EXECUTE handler staged for the facade executor
/// running on this worker thread. Single-flight runs the executor on
/// the leader's thread, so the leader always sees its own fill;
/// deduplicated followers share the leader's result, exactly like
/// concurrent local callers.
struct FillContext {
  const WireRequest* request = nullptr;
  bool consumed = false;
};

thread_local FillContext* t_fill = nullptr;

/// Writes all of `data` to `fd`, riding out partial writes and EINTR.
bool WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

WatchmanServer::WatchmanServer(Watchman* cache, Options options)
    : cache_(cache), options_(std::move(options)) {}

WatchmanServer::~WatchmanServer() { Stop(); }

Watchman::Executor WatchmanServer::MissFillExecutor() {
  return [](const std::string& query_text)
             -> StatusOr<Watchman::ExecutionResult> {
    FillContext* fill = t_fill;
    if (fill == nullptr || fill->request == nullptr) {
      return Status::NotFound("cache miss and no miss-fill attached: " +
                              query_text);
    }
    fill->consumed = true;
    Watchman::ExecutionResult result;
    result.payload = fill->request->fill_payload;
    result.cost = fill->request->fill_cost;
    result.relations = fill->request->fill_relations;
    return result;
  };
}

Status WatchmanServer::Start() {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::Internal("server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        "bind " + options_.bind_address + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  acceptor_ = std::thread([this] { AcceptLoop(); });
  const size_t workers = options_.num_workers == 0 ? 1 : options_.num_workers;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  WATCHMAN_LOG(Info) << "watchmand listening on " << options_.bind_address
                     << ":" << bound_port_ << " (" << workers << " workers)";
  return Status::OK();
}

void WatchmanServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    // Set under queue_mu_: a worker that just evaluated the wait
    // predicate (and is about to block) must not miss the notify.
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_.store(true, std::memory_order_release);
  }
  queue_cv_.notify_all();
  // Wake the acceptor: shutdown() forces its poll/accept to return.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Unblock workers mid-read.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Connections accepted but never claimed by a worker.
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void WatchmanServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket shut down
    }
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(conn);
      // Queued-but-unserved high-water mark (pool saturation signal).
      const uint64_t depth = pending_.size();
      if (depth > connections_queued_peak_.load(std::memory_order_relaxed)) {
        connections_queued_peak_.store(depth, std::memory_order_relaxed);
      }
    }
    queue_cv_.notify_one();
  }
}

void WatchmanServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void WatchmanServer::ServeConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    active_.insert(fd);
  }
  connections_active_.fetch_add(1, std::memory_order_relaxed);

  std::string inbuf;
  std::string outbuf;
  // Per-connection scratch request/response: every frame decodes into
  // the same objects, so string capacity is reused across frames and
  // steady-state framing performs no allocation.
  WireRequest request;
  WireResponse response;
  char chunk[64 * 1024];
  bool keep_alive = true;
  while (keep_alive && !stop_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    inbuf.append(chunk, static_cast<size_t>(n));

    // Request batching: drain every complete frame before writing the
    // batched responses back in one flush.
    size_t consumed = 0;
    while (keep_alive) {
      std::string_view body;
      size_t frame_size = 0;
      StatusOr<bool> extracted =
          ExtractFrame(std::string_view(inbuf).substr(consumed),
                       options_.max_frame_bytes, &body, &frame_size);
      if (!extracted.ok()) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        WireResponse err;
        err.code = StatusCode::kCorruption;
        err.message = extracted.status().message();
        outbuf += EncodeResponse(err);
        keep_alive = false;  // framing is unrecoverable
        break;
      }
      if (!*extracted) break;
      keep_alive = HandleFrame(body, &request, &response, &outbuf);
      consumed += frame_size;
    }
    inbuf.erase(0, consumed);
    if (!outbuf.empty()) {
      if (!WriteAll(fd, outbuf)) break;
      outbuf.clear();
    }
  }

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    active_.erase(fd);
  }
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  ::close(fd);
}

bool WatchmanServer::HandleFrame(std::string_view body, WireRequest* request,
                                 WireResponse* response, std::string* out) {
  const Status decoded = DecodeRequestInto(body, request);
  if (!decoded.ok()) {
    frames_rejected_.fetch_add(1, std::memory_order_relaxed);
    WireResponse err;
    err.code = decoded.code();
    err.message = decoded.message();
    AppendResponse(err, out);
    // The stream decoded a frame but not a request; the peer speaks a
    // different dialect, so drop it.
    return false;
  }
  const auto begin = std::chrono::steady_clock::now();
  Dispatch(*request, response);
  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - begin)
          .count();
  RecordOp(request->op, response->code, latency_us);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  AppendResponse(*response, out);
  return true;
}

void WatchmanServer::Dispatch(const WireRequest& request,
                              WireResponse* response_out) {
  WireResponse& response = *response_out;
  response.Reset(request.op);
  switch (request.op) {
    case OpCode::kPing:
      break;
    case OpCode::kGet: {
      StatusOr<std::string> payload = cache_->GetCached(request.query_text);
      if (payload.ok()) {
        response.cache_hit = true;
        response.payload = std::move(*payload);
      } else {
        response.code = payload.status().code();
        response.message = payload.status().message();
      }
      break;
    }
    case OpCode::kExecute: {
      FillContext fill;
      if (request.has_fill) {
        fill.request = &request;
        t_fill = &fill;
      }
      // Approximate hit flag for executor-mode requests; fill-mode
      // requests overwrite it below with the exact answer.
      const bool cached_before =
          request.has_fill ? false : cache_->IsCached(request.query_text);
      StatusOr<std::string> payload = cache_->Execute(request.query_text);
      if (!payload.ok() && request.has_fill && !fill.consumed &&
          payload.status().code() == StatusCode::kNotFound) {
        // NotFound with the fill unconsumed: this request was
        // deduplicated behind a fill-less caller's flight and shared
        // its miss without our fill ever being offered. The flight has
        // closed, so one retry runs the executor with the fill staged.
        // (Gated on NotFound so a daemon with a real warehouse executor
        // never re-runs a query that failed for other reasons.)
        payload = cache_->Execute(request.query_text);
      }
      t_fill = nullptr;
      if (payload.ok()) {
        response.cache_hit = request.has_fill ? !fill.consumed : cached_before;
        response.payload = std::move(*payload);
      } else {
        response.code = payload.status().code();
        response.message = payload.status().message();
      }
      break;
    }
    case OpCode::kInvalidate:
      response.dropped = cache_->Invalidate(request.query_text) ? 1 : 0;
      break;
    case OpCode::kInvalidateRelation:
      response.dropped = cache_->InvalidateRelation(request.relation);
      break;
    case OpCode::kStats:
      response.stats = StatsSnapshot();
      break;
  }
}

void WatchmanServer::RecordOp(OpCode op, StatusCode code, double latency_us) {
  // A miss (NotFound) is an answered question, not a failure.
  const bool is_error = code != StatusCode::kOk && code != StatusCode::kNotFound;
  LockedOpCounters& slot = per_op_[OpIndex(op)];
  std::lock_guard<std::mutex> lock(slot.mu);
  ++slot.counters.requests;
  if (is_error) ++slot.counters.errors;
  slot.counters.latency_us.Add(latency_us);
}

uint64_t WatchmanServer::connections_queued() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return pending_.size();
}

WatchmanServer::OpCounters WatchmanServer::op_counters(OpCode op) const {
  const LockedOpCounters& slot = per_op_[OpIndex(op)];
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.counters;
}

WireStats WatchmanServer::StatsSnapshot() const {
  WireStats out;
  const CacheStats cache = cache_->stats();
  out.lookups = cache.lookups;
  out.hits = cache.hits;
  out.insertions = cache.insertions;
  out.evictions = cache.evictions;
  out.admission_rejections = cache.admission_rejections;
  out.too_large_rejections = cache.too_large_rejections;
  out.cost_total = cache.cost_total;
  out.cost_saved = cache.cost_saved;
  out.bytes_inserted = cache.bytes_inserted;
  out.bytes_evicted = cache.bytes_evicted;
  out.used_bytes = cache_->used_bytes();
  out.capacity_bytes = cache_->capacity_bytes();
  out.entry_count = cache_->cached_set_count();
  out.retained_count = cache_->retained_info_count();
  out.invalidations = cache_->invalidations();
  out.num_shards = cache_->num_shards();
  out.policy_name = cache_->policy_name();
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_active = connections_active_.load(std::memory_order_relaxed);
  out.connections_queued = connections_queued();
  out.connections_queued_peak =
      connections_queued_peak_.load(std::memory_order_relaxed);
  out.requests_served = requests_served_.load(std::memory_order_relaxed);
  out.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumOpCodes; ++i) {
    const LockedOpCounters& slot = per_op_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    const OpCounters& counters = slot.counters;
    if (counters.requests == 0) continue;
    WireOpMetrics metrics;
    metrics.op = static_cast<uint8_t>(i + 1);
    metrics.requests = counters.requests;
    metrics.errors = counters.errors;
    metrics.latency_count = counters.latency_us.count();
    metrics.latency_mean_us = counters.latency_us.mean();
    metrics.latency_min_us = counters.latency_us.min();
    metrics.latency_max_us = counters.latency_us.max();
    out.per_op.push_back(metrics);
  }
  return out;
}

}  // namespace watchman
