#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/admin_http.h"
#include "server/uring.h"
#include "util/errno_string.h"
#include "util/fault.h"
#include "util/logging.h"

namespace watchman {
namespace {

/// The miss-fill the EXECUTE handler staged for the facade executor
/// running on this worker thread. Single-flight runs the executor on
/// the leader's thread, so the leader always sees its own fill;
/// deduplicated followers share the leader's result, exactly like
/// concurrent local callers.
struct FillContext {
  const WireRequest* request = nullptr;
  bool consumed = false;
};

thread_local FillContext* t_fill = nullptr;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// io_uring CQE routing: user_data is a Connection* (8-byte aligned)
// with a low-bit operation tag, or a pointer-free constant for the
// listen socket / wake eventfd. Conn-tagged values never collide with
// the constants because conn tags start at 3.
constexpr uint64_t kUdTagMask = 7;
constexpr uint64_t kUdAccept = 1;
constexpr uint64_t kUdWake = 2;
constexpr uint64_t kUdRecv = 3;
constexpr uint64_t kUdPollOut = 4;
constexpr uint64_t kUdCancel = 5;
constexpr uint64_t kUdAdminAccept = 6;

/// Cap on a buffered admin HTTP request; anything larger answers 431
/// and closes (a /metrics GET is a few dozen bytes).
constexpr size_t kMaxAdminRequestBytes = 16 * 1024;

uint64_t ConnUserData(const void* conn, uint64_t tag) {
  return reinterpret_cast<uint64_t>(conn) | tag;
}

/// One-shot receive chunk (kernels without provided-buffer rings);
/// matches the epoll read chunk.
constexpr size_t kUringChunkBytes = 64 * 1024;
/// Provided-buffer group geometry for multishot receive.
constexpr uint32_t kUringBufCount = 128;
constexpr size_t kUringBufBytes = 16 * 1024;
constexpr unsigned kUringSqDepth = 512;

}  // namespace

const char* ServerBackendName(ServerBackend backend) {
  switch (backend) {
    case ServerBackend::kEpoll:
      return "epoll";
    case ServerBackend::kIoUring:
      return "io_uring";
    case ServerBackend::kAuto:
      return "auto";
  }
  return "?";
}

bool ParseServerBackend(std::string_view text, ServerBackend* out) {
  if (text == "epoll") {
    *out = ServerBackend::kEpoll;
  } else if (text == "io_uring" || text == "uring") {
    *out = ServerBackend::kIoUring;
  } else if (text == "auto") {
    *out = ServerBackend::kAuto;
  } else {
    return false;
  }
  return true;
}

WatchmanServer::WatchmanServer(Watchman* cache, Options options)
    : cache_(cache),
      options_(std::move(options)),
      admission_(options_.admission) {
  BuildMetricsRegistry();
}

WatchmanServer::~WatchmanServer() { Stop(); }

Watchman::Executor WatchmanServer::MissFillExecutor() {
  return [](const std::string& query_text)
             -> StatusOr<Watchman::ExecutionResult> {
    FillContext* fill = t_fill;
    if (fill == nullptr || fill->request == nullptr) {
      return Status::NotFound("cache miss and no miss-fill attached: " +
                              query_text);
    }
    fill->consumed = true;
    Watchman::ExecutionResult result;
    result.payload = fill->request->fill_payload;
    result.cost = fill->request->fill_cost;
    result.relations = fill->request->fill_relations;
    return result;
  };
}

int64_t WatchmanServer::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

int64_t WatchmanServer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

Status WatchmanServer::Start() {
  // Role grant justification: the IO thread is spawned at the very end
  // of this function, and after the spawn Start() touches no
  // role-guarded state -- so the setup writes below (accept flags,
  // info gauge registration) cannot race the loop.
  ThreadRoleGrant io_role(io_thread_role);
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::Internal("server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + ErrnoString(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        "bind " + options_.bind_address + ":" +
        std::to_string(options_.port) + ": " + ErrnoString(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 512) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + ErrnoString(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + ErrnoString(errno));
    ::close(fd);
    return status;
  }
  if (!SetNonBlocking(fd)) {
    const Status status =
        Status::IOError(std::string("fcntl: ") + ErrnoString(errno));
    ::close(fd);
    return status;
  }

  // Resolve the serving backend before spawning any thread: kAuto
  // silently takes whatever the kernel offers, kIoUring logs its
  // fallback so operators notice the capability gap.
  effective_backend_ = ServerBackend::kEpoll;
  if (options_.backend != ServerBackend::kEpoll) {
    std::unique_ptr<Uring> ring;
    if (!options_.simulate_io_uring_unavailable && Uring::KernelSupported()) {
      ring = std::make_unique<Uring>();  // alloc-ok: Start()-time backend probe
      const Status ring_status = ring->Init(kUringSqDepth);
      if (!ring_status.ok()) ring.reset();
    }
    if (ring != nullptr) {
      ring->SetupBuffers(0, kUringBufCount, kUringBufBytes);
      uring_ = std::move(ring);
      effective_backend_ = ServerBackend::kIoUring;
    } else if (options_.backend == ServerBackend::kIoUring) {
      WATCHMAN_LOG(Warning)
          << "io_uring backend requested but this kernel cannot provide "
             "io_uring; falling back to epoll";
    }
  }

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const Status status =
        Status::IOError(std::string("eventfd: ") + ErrnoString(errno));
    uring_.reset();
    ::close(fd);
    return status;
  }
  if (effective_backend_ == ServerBackend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      const Status status =
          Status::IOError(std::string("epoll: ") + ErrnoString(errno));
      ::close(wake_fd_);
      wake_fd_ = -1;
      ::close(fd);
      return status;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    const int add_listen = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    ev.data.fd = wake_fd_;
    const int add_wake =
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
    if (add_listen != 0 || add_wake != 0) {
      const Status status =
          Status::IOError(std::string("epoll_ctl: ") + ErrnoString(errno));
      ::close(epoll_fd_);
      ::close(wake_fd_);
      epoll_fd_ = wake_fd_ = -1;
      ::close(fd);
      return status;
    }
  }

  // Admin HTTP listener (same event loop, same bind address).
  if (options_.admin_port >= 0) {
    const auto fail = [&](const std::string& what) {
      const Status status = Status::IOError(what + ": " +
                                            ErrnoString(errno));
      if (admin_listen_fd_ >= 0) {
        ::close(admin_listen_fd_);
        admin_listen_fd_ = -1;
      }
      if (epoll_fd_ >= 0) {
        ::close(epoll_fd_);
        epoll_fd_ = -1;
      }
      ::close(wake_fd_);
      wake_fd_ = -1;
      uring_.reset();
      ::close(fd);
      return status;
    };
    const int afd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (afd < 0) return fail("admin socket");
    admin_listen_fd_ = afd;
    ::setsockopt(afd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in aaddr{};
    aaddr.sin_family = AF_INET;
    aaddr.sin_port = htons(static_cast<uint16_t>(options_.admin_port));
    aaddr.sin_addr = addr.sin_addr;  // validated above
    if (::bind(afd, reinterpret_cast<const sockaddr*>(&aaddr),
               sizeof(aaddr)) != 0) {
      return fail("admin bind " + options_.bind_address + ":" +
                  std::to_string(options_.admin_port));
    }
    if (::listen(afd, 64) != 0) return fail("admin listen");
    sockaddr_in abound{};
    socklen_t abound_len = sizeof(abound);
    if (::getsockname(afd, reinterpret_cast<sockaddr*>(&abound),
                      &abound_len) != 0) {
      return fail("admin getsockname");
    }
    if (!SetNonBlocking(afd)) return fail("admin fcntl");
    if (effective_backend_ == ServerBackend::kEpoll) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = afd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, afd, &ev) != 0) {
        return fail("admin epoll_ctl");
      }
    }
    admin_bound_port_ = ntohs(abound.sin_port);
  }

  bound_port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  start_time_ = std::chrono::steady_clock::now();
  accept_paused_ = false;
  accept_armed_ = false;
  admin_accept_paused_ = false;
  admin_accept_armed_ = false;
  wake_armed_ = false;
  if (!info_registered_) {
    info_registered_ = true;
    registry_.AddGaugeFn(
        "watchman_server_info",
        "Constant 1; labels carry the serving backend and cache policy.",
        {{"backend", ServerBackendName(effective_backend_)},
         {"policy", cache_->policy_name()}},
        [] { return 1.0; });
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  io_thread_ = std::thread([this] {
    if (effective_backend_ == ServerBackend::kIoUring) {
      UringLoop();
    } else {
      IoLoop();
    }
  });
  const size_t workers = options_.num_workers == 0 ? 1 : options_.num_workers;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  WATCHMAN_LOG(Info) << "watchmand listening on " << options_.bind_address
                     << ":" << bound_port_ << " ("
                     << ServerBackendName(effective_backend_)
                     << " event loop, " << workers << " workers)";
  if (admin_listen_fd_ >= 0) {
    WATCHMAN_LOG(Info) << "admin endpoint on " << options_.bind_address << ":"
                       << admin_bound_port_ << " (GET /metrics, /healthz)";
  }
  return Status::OK();
}

void WatchmanServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    // Set under ready_mu_: a worker that just evaluated the wait
    // predicate (and is about to block) must not miss the notify.
    MutexLock lock(ready_mu_);
    stop_.store(true, std::memory_order_release);
  }
  ready_cv_.NotifyAll();
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Role grant justification: the IO thread and every worker are
  // joined above, so no other thread can hold the role (or touch any
  // guarded state) during teardown.
  ThreadRoleGrant io_role(io_thread_role);
  // All threads are gone: tear down every remaining socket. Closing the
  // ring cancels whatever SQEs still reference these fds.
  for (auto& [fd, conn] : conns_) {
    ::close(fd);
    conn->fd = -1;
  }
  conns_.clear();
  for (auto& conn : uring_closing_) {
    if (conn->defunct_fd >= 0) {
      ::close(conn->defunct_fd);
      conn->defunct_fd = -1;
    }
  }
  uring_closing_.clear();
  uring_conns_.clear();
  uring_rearm_.clear();
  uring_.reset();
  finishing_.clear();
  paused_reads_.clear();
  {
    MutexLock lock(ready_mu_);
    ready_.clear();
    ready_depth_.store(0, std::memory_order_relaxed);
  }
  {
    MutexLock lock(dirty_mu_);
    dirty_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (admin_listen_fd_ >= 0) {
    ::close(admin_listen_fd_);
    admin_listen_fd_ = -1;
    admin_bound_port_ = 0;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

// ------------------------------------------------------------ IO thread

void WatchmanServer::IoLoop() {
  // This thread IS the IO thread: it holds the role for the loop's
  // lifetime, which is what lets it call every REQUIRES(io_thread_role)
  // helper and touch the guarded connection state.
  ThreadRoleGrant io_role(io_thread_role);
  std::vector<epoll_event> events(128);
  while (!stop_.load(std::memory_order_acquire)) {
    inline_budget_used_ = 0;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               options_.poll_interval_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptReady(/*admin=*/false);
        continue;
      }
      if (fd == admin_listen_fd_) {
        AcceptReady(/*admin=*/true);
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t junk = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &junk, sizeof(junk));
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      // Copy: close below erases the map entry.
      std::shared_ptr<Connection> conn = it->second;
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0 && (ev & EPOLLIN) == 0) {
        // Hard error with nothing left to read.
        conn->input_closed.store(true, std::memory_order_release);
        RearmInterest(conn);
        {
          MutexLock lock(conn->out_mu);
          conn->send_error = true;
        }
      }
      if ((ev & EPOLLIN) != 0) ReadReady(conn);
      if ((ev & EPOLLOUT) != 0 && conn->fd >= 0) {
        MutexLock lock(conn->out_mu);
        FlushLocked(conn.get());
      }
      if (conn->fd >= 0) {
        UpdateWriteInterest(conn);
        FinishConnection(conn);
      }
    }
    ProcessDirtyConnections();
    SweepConnections();
  }
}

void WatchmanServer::AcceptReady(bool admin) {
  const int lfd = admin ? admin_listen_fd_ : listen_fd_;
  while (true) {
    const int conn_fd = FaultAccept4(lfd, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (conn_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Fd/memory exhaustion: the pending connection stays in the
        // backlog and the level-triggered listen fd would re-fire
        // immediately, spinning the IO thread. Pause accepting; the
        // sweep retries next tick.
        (admin ? admin_accept_paused_ : accept_paused_) = true;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, lfd, nullptr);
      }
      return;  // EAGAIN or listen socket going away
    }
    AdoptConnection(conn_fd, admin);
  }
}

void WatchmanServer::AdoptConnection(int conn_fd, bool is_admin) {
  if (is_admin && options_.max_admin_connections > 0 &&
      admin_conns_active_ >= options_.max_admin_connections) {
    // The admin plane must stay scrapeable while being hammered: refuse
    // at accept instead of buffering another (possibly slowloris)
    // request.
    admin_rejected_.fetch_add(1, std::memory_order_relaxed);
    ::close(conn_fd);
    return;
  }
  const int one = 1;
  ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.sndbuf_bytes > 0) {
    ::setsockopt(conn_fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                 sizeof(options_.sndbuf_bytes));
  }
  auto conn = std::make_shared<Connection>();  // alloc-ok: per accepted connection, not per frame
  conn->fd = conn_fd;
  conn->is_admin = is_admin;
  uint32_t shed_hint = 0;
  ShedReason conn_shed = ShedReason::kNone;
  if (!is_admin && admission_.enabled()) {
    conn->peer_key = PeerKeyFor(conn_fd);
    conn_shed = admission_.AdmitConnection(conn->peer_key, &shed_hint);
    conn->peer_counted = conn_shed == ShedReason::kNone;
  }
  conn->inbuf = body_pool_.Acquire();
  {
    // Uncontended by construction (the connection is not shared yet);
    // taken so the guarded-outbuf proof holds here too.
    MutexLock lock(conn->out_mu);
    conn->outbuf = body_pool_.Acquire();
  }
  conn->last_progress_ms.store(NowMs(), std::memory_order_relaxed);
  if (effective_backend_ == ServerBackend::kIoUring) {
    uring_conns_.emplace(conn.get(), conn);
    UringArmRecv(conn);
  } else {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn_fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn_fd, &ev) != 0) {
      // ENOMEM / watch-limit exhaustion: a connection that can never be
      // polled would hang its peer and leak; refuse it instead.
      conn->fd = -1;
      ::close(conn_fd);
      return;
    }
  }
  conns_.emplace(conn_fd, conn);
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  connections_active_.fetch_add(1, std::memory_order_relaxed);
  if (is_admin) {
    ++admin_conns_active_;
    if (options_.admin_header_timeout_ms > 0) {
      conn->admin_deadline_ms = NowMs() + options_.admin_header_timeout_ms;
      admin_pending_.push_back(conn);
    }
  }
  if (conn_shed != ShedReason::kNone) {
    // Peer over its connection cap: tell it so on the wire (request id
    // 0 = attributed to the connection, not a request), then close
    // through the normal drain machinery so the response survives.
    RecordShed(conn_shed, shed_hint);
    WireResponse err;
    err.code = StatusCode::kShedRetryLater;
    err.message = "per-peer connection cap reached";
    err.retry_after_ms = shed_hint;
    std::string encoded;
    AppendResponse(err, &encoded);
    conn->draining.store(true, std::memory_order_release);
    QueueOutput(conn, encoded);
    FinishConnection(conn);
  }
}

uint64_t WatchmanServer::PeerKeyFor(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return 0;
  }
  // Key on the address only (never the port): every connection of a
  // host shares one quota, however many ephemeral ports it burns.
  const unsigned char* bytes = nullptr;
  size_t n = 0;
  if (ss.ss_family == AF_INET) {
    bytes = reinterpret_cast<const unsigned char*>(
        &reinterpret_cast<const sockaddr_in*>(&ss)->sin_addr);
    n = sizeof(in_addr);
  } else if (ss.ss_family == AF_INET6) {
    bytes = reinterpret_cast<const unsigned char*>(
        &reinterpret_cast<const sockaddr_in6*>(&ss)->sin6_addr);
    n = sizeof(in6_addr);
  } else {
    return 1;  // non-IP peers share one bucket
  }
  uint64_t hash = 1469598103934665603ull;  // FNV-1a
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash != 0 ? hash : 1;
}

void WatchmanServer::ReadReady(const std::shared_ptr<Connection>& conn) {
  char chunk[64 * 1024];
  // Per-event read budget: a firehose peer (or a draining connection
  // being discarded) must not pin the IO thread -- level-triggered
  // epoll re-delivers the remainder next round, interleaved with every
  // other connection, the dirty sweep and Stop().
  int budget = 8;
  while (conn->fd >= 0 && budget-- > 0) {
    const ssize_t n = FaultRecv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      conn->input_closed.store(true, std::memory_order_release);
      RearmInterest(conn);  // EOF is permanently readable: disarm reads
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        ++budget;
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn->input_closed.store(true, std::memory_order_release);
      RearmInterest(conn);
      MutexLock lock(conn->out_mu);
      conn->send_error = true;
      break;
    }
    if (conn->draining.load(std::memory_order_acquire)) {
      // Discard: flushing an error response, awaiting EOF. Deliberately
      // NOT progress -- the drain state is bounded by the sweep's drain
      // timeout however much the doomed peer keeps sending.
      continue;
    }
    conn->last_progress_ms.store(NowMs(), std::memory_order_relaxed);
    conn->inbuf.append(chunk, static_cast<size_t>(n));
    ParseFrames(conn);
    // Honor a pause immediately: keep already-received bytes buffered
    // but stop pulling more, so the ready-queue bound holds even
    // against data the kernel had already accepted.
    if (conn->read_paused) break;
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }
}

bool WatchmanServer::CanInline(const std::shared_ptr<Connection>& conn,
                               std::string_view body) const {
  // Peek the claimed opcode (prologue byte 1); a frame too short to
  // carry one takes the worker path and errors there.
  if (body.size() < 2) return false;
  const uint8_t raw_op = static_cast<uint8_t>(body[1]);
  if (raw_op != static_cast<uint8_t>(OpCode::kPing) &&
      raw_op != static_cast<uint8_t>(OpCode::kGet) &&
      raw_op != static_cast<uint8_t>(OpCode::kStats)) {
    return false;
  }
  // Starvation guards: a bounded burst per tick, never ahead of this
  // connection's queued frames (response order), never while any
  // connection has queued work (a waiting EXECUTE is served first --
  // subsequent cheap frames queue FIFO behind it).
  if (inline_budget_used_ >= options_.max_inline_burst) return false;
  if (conn->inflight.load(std::memory_order_acquire) != 0) return false;
  return ready_depth_.load(std::memory_order_acquire) == 0;
}

void WatchmanServer::InlineDispatch(const std::shared_ptr<Connection>& conn,
                                    std::string_view body) {
  const Status decoded = DecodeRequestInto(body, &io_request_);
  if (!decoded.ok()) {
    frames_rejected_.fetch_add(1, std::memory_order_relaxed);
    WireResponse err;
    err.code = decoded.code();
    err.message = decoded.message();
    PeekPrologue(body, &err.op, &err.request_id);
    conn->draining.store(true, std::memory_order_release);
    MutexLock lock(conn->out_mu);
    if (!conn->send_error) {
      const size_t before = conn->outbuf.size();
      AppendResponse(err, &conn->outbuf);
      output_bytes_.fetch_add(conn->outbuf.size() - before,
                              std::memory_order_relaxed);
    }
    return;
  }
  const int64_t begin_ns = NowNs();
  Dispatch(io_request_, &io_response_);
  const int64_t latency_ns = NowNs() - begin_ns;
  RecordOp(io_request_.op, io_response_.code, latency_ns);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (options_.slow_request_us > 0 &&
      latency_ns / 1000 >= options_.slow_request_us) {
    WATCHMAN_LOG(Warning) << "slow_request op=" << OpCodeName(io_request_.op)
                          << " status=" << StatusCodeName(io_response_.code)
                          << " total_us=" << latency_ns / 1000
                          << " queue_us=0 service_us=" << latency_ns / 1000
                          << " reply_us=0 path=inline";
  }
  // Encode straight into the out-buffer: no worker can be appending
  // (inflight == 0 gated) so the lock is uncontended, and the response
  // never exists as a separate copy.
  MutexLock lock(conn->out_mu);
  if (!conn->send_error) {
    const size_t before = conn->outbuf.size();
    AppendResponse(io_response_, &conn->outbuf);
    output_bytes_.fetch_add(conn->outbuf.size() - before,
                            std::memory_order_relaxed);
  }
}

void WatchmanServer::RecordShed(ShedReason reason, uint32_t retry_after_ms) {
  shed_counters_[static_cast<size_t>(reason)].Inc();
  if (options_.metrics) shed_retry_hint_ms_.Record(retry_after_ms);
}

// IO thread only. Like InlineDispatch's error path, but the connection
// stays open: a shed is an answer, not a protocol violation.
void WatchmanServer::ShedFrame(const std::shared_ptr<Connection>& conn,
                               std::string_view body, ShedReason reason,
                               uint32_t retry_after_ms) {
  RecordShed(reason, retry_after_ms);
  WireResponse err;
  err.code = StatusCode::kShedRetryLater;
  err.message = std::string("shed: ") + ShedReasonName(reason);
  err.retry_after_ms = retry_after_ms;
  PeekPrologue(body, &err.op, &err.request_id);
  MutexLock lock(conn->out_mu);
  if (conn->send_error) return;
  const size_t before = conn->outbuf.size();
  AppendResponse(err, &conn->outbuf);
  output_bytes_.fetch_add(conn->outbuf.size() - before,
                          std::memory_order_relaxed);
}

void WatchmanServer::ParseFrames(const std::shared_ptr<Connection>& conn) {
  if (conn->is_admin) {
    HandleAdminData(conn);
    return;
  }
  size_t consumed = 0;
  size_t enqueued = 0;
  bool inlined = false;
  while (!conn->draining.load(std::memory_order_acquire)) {
    std::string_view body;
    size_t frame_size = 0;
    StatusOr<bool> extracted =
        ExtractFrame(std::string_view(conn->inbuf).substr(consumed),
                     options_.max_frame_bytes, &body, &frame_size);
    if (!extracted.ok()) {
      // Unrecoverable framing (oversized/garbage length prefix): answer
      // with the real status -- echoing (op, id) if the bytes after the
      // prefix happen to hold a readable prologue -- then drain to EOF.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      WireResponse err;
      err.code = extracted.status().code();
      err.message = extracted.status().message();
      const std::string_view rest =
          std::string_view(conn->inbuf).substr(consumed);
      if (rest.size() > 4) {
        PeekPrologue(rest.substr(4), &err.op, &err.request_id);
      }
      std::string encoded;
      AppendResponse(err, &encoded);
      conn->draining.store(true, std::memory_order_release);
      QueueOutput(conn, encoded);
      conn->inbuf.clear();
      consumed = 0;
      break;
    }
    if (!*extracted) break;
    if (admission_.enabled()) {
      uint32_t hint = 0;
      const ShedReason reason = admission_.AdmitRequest(
          conn->peer_key, inflight_frames_.load(std::memory_order_relaxed),
          output_bytes_.load(std::memory_order_relaxed), NowNs(), &hint);
      if (reason != ShedReason::kNone) {
        // Over budget: answer now (never queue), keep the connection.
        // Shedding precedes dispatch, so the request never executed and
        // a retry is always safe -- even for INVALIDATE.
        ShedFrame(conn, body, reason, hint);
        inlined = true;  // batch-flush the shed responses below
        consumed += frame_size;
        continue;
      }
    }
    if (options_.inline_dispatch && CanInline(conn, body)) {
      ++inline_budget_used_;
      inline_dispatched_.fetch_add(1, std::memory_order_relaxed);
      InlineDispatch(conn, body);
      inlined = true;
      consumed += frame_size;
      continue;
    }
    Work work;
    work.conn = conn;
    work.body = body_pool_.Acquire();
    work.body.assign(body.data(), body.size());
    work.enqueue_ns = options_.metrics ? NowNs() : 0;
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    inflight_frames_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(ready_mu_);
      ready_.push_back(std::move(work));
      const uint64_t depth = ready_.size();
      ready_depth_.store(depth, std::memory_order_relaxed);
      if (depth > connections_queued_peak_.load(std::memory_order_relaxed)) {
        connections_queued_peak_.store(depth, std::memory_order_relaxed);
      }
    }
    ++enqueued;
    consumed += frame_size;
  }
  if (consumed > 0) conn->inbuf.erase(0, consumed);
  if (enqueued == 1) {
    ready_cv_.NotifyOne();
  } else if (enqueued > 1) {
    ready_cv_.NotifyAll();
  }
  if (inlined) {
    // One flush per batch: every inline response of a pipelined burst
    // leaves in a single send.
    bool flushed;
    {
      MutexLock lock(conn->out_mu);
      flushed = FlushLocked(conn.get());
    }
    if (!flushed) UpdateWriteInterest(conn);
  }
  if (enqueued > 0 || inlined) {
    last_activity_ms_.store(NowMs(), std::memory_order_relaxed);
  }
  // Backpressure: a peer that pipelines faster than workers drain gets
  // its reads paused instead of ballooning the ready-queue.
  if (!conn->read_paused &&
      conn->inflight.load(std::memory_order_relaxed) >
          options_.max_inflight_frames) {
    conn->read_paused = true;
    paused_reads_.push_back(conn);
    RearmInterest(conn);
  }
}

// IO thread only. Admin connections speak one-request HTTP/1.0: parse
// the buffered request, render the response inline (the /metrics render
// is tens of microseconds), then close through the normal
// draining/half-close machinery -- the drain timeout bounds a peer that
// never reads its response.
void WatchmanServer::HandleAdminData(const std::shared_ptr<Connection>& conn) {
  if (conn->draining.load(std::memory_order_acquire)) {
    conn->inbuf.clear();  // response already queued; discard extra bytes
    return;
  }
  obs::HttpRequest request;
  bool malformed = false;
  const bool complete =
      obs::ParseHttpRequest(conn->inbuf, &request, &malformed);
  if (!complete && !malformed) {
    if (conn->inbuf.size() <= kMaxAdminRequestBytes) return;  // need more
    malformed = true;  // oversized header block
  }
  int status = 200;
  std::string_view content_type = "text/plain; charset=utf-8";
  admin_body_.clear();
  if (malformed) {
    status = conn->inbuf.size() > kMaxAdminRequestBytes ? 431 : 400;
    admin_body_ = "bad request\n";
  } else if (request.method != "GET") {
    status = 405;
    admin_body_ = "method not allowed\n";
  } else if (request.path == "/metrics") {
    registry_.RenderPrometheusText(&admin_body_);
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (request.path == "/healthz") {
    admin_body_ = "ok\n";
  } else {
    status = 404;
    admin_body_ = "not found\n";
  }
  conn->inbuf.clear();
  admin_response_.clear();
  obs::AppendHttpResponse(status, content_type, admin_body_,
                          &admin_response_);
  conn->draining.store(true, std::memory_order_release);
  // Deliberately not last_activity_ms_: a periodic scraper must not
  // postpone idle-time compaction forever.
  QueueOutput(conn, admin_response_);
}

/// Re-applies the connection's read-side interest from its current
/// state: reads are off while paused for backpressure or after EOF (a
/// socket at EOF is permanently readable and would spin a
/// level-triggered loop), epoll writes are on while output is pending.
void WatchmanServer::RearmInterest(const std::shared_ptr<Connection>& conn) {
  if (effective_backend_ == ServerBackend::kIoUring) {
    UringUpdateReadInterest(conn);
    return;
  }
  if (conn->fd < 0) return;
  const bool read_off =
      conn->read_paused || conn->input_closed.load(std::memory_order_acquire);
  epoll_event ev{};
  ev.events = (read_off ? 0u : EPOLLIN) | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void WatchmanServer::UpdateWriteInterest(
    const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  bool pending;
  {
    MutexLock lock(conn->out_mu);
    pending = !conn->send_error && conn->out_off < conn->outbuf.size();
  }
  if (effective_backend_ == ServerBackend::kIoUring) {
    // One-shot POLLOUT: armed while output is pending; an arm that
    // fires with nothing left to write is harmless, so no disarm.
    if (pending && !conn->pollout_armed) UringArmPollOut(conn);
    return;
  }
  if (pending == conn->want_write) return;
  conn->want_write = pending;
  RearmInterest(conn);
}

/// Bounds the drain-to-EOF / deferred-close states when io_timeout_ms
/// is disabled: a peer that provoked an error response but never
/// acknowledges with EOF must not hold its fd forever.
constexpr int64_t kDefaultDrainTimeoutMs = 5000;

void WatchmanServer::EnqueueFinishing(
    const std::shared_ptr<Connection>& conn) {
  if (conn->in_finishing || conn->fd < 0) return;
  conn->in_finishing = true;
  finishing_.push_back(conn);
}

// IO thread only.
void WatchmanServer::FinishConnection(
    const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  bool flushed;
  bool send_error;
  {
    MutexLock lock(conn->out_mu);
    flushed = conn->out_off >= conn->outbuf.size();
    send_error = conn->send_error;
  }
  if (send_error) {
    // The peer is unreachable; flushing is moot. Close as soon as no
    // worker can still touch the socket.
    if (conn->inflight.load(std::memory_order_acquire) == 0) {
      CloseConnection(conn);
    } else {
      EnqueueFinishing(conn);
    }
    return;
  }
  const bool input_closed =
      conn->input_closed.load(std::memory_order_acquire);
  const bool no_more_requests =
      input_closed || conn->draining.load(std::memory_order_acquire);
  if (!no_more_requests) return;
  // Terminal state reached but the close cannot complete yet: keep the
  // connection on the finishing list so the sweep retries (and bounds
  // the state with the drain timeout).
  if (conn->inflight.load(std::memory_order_acquire) != 0) {
    EnqueueFinishing(conn);
    return;
  }
  if (!flushed) {
    EnqueueFinishing(conn);  // write readiness will finish the job
    return;
  }
  if (input_closed) {
    CloseConnection(conn);
    return;
  }
  // Protocol violation with the peer still sending: half-close our side
  // so the error response survives (no reset), then discard input until
  // the peer acknowledges with EOF (drain timeout bounded).
  if (!conn->output_shutdown) {
    conn->output_shutdown = true;
    ::shutdown(conn->fd, SHUT_WR);
  }
  EnqueueFinishing(conn);
}

void WatchmanServer::SweepConnections() {
  // Retry accepting after fd exhaustion (one tick duty cycle, not a
  // spin).
  if (accept_paused_ && listen_fd_ >= 0) {
    if (effective_backend_ == ServerBackend::kIoUring) {
      accept_paused_ = false;
      UringArmAccept(/*admin=*/false);
    } else {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
        accept_paused_ = false;
        AcceptReady(/*admin=*/false);
      }
    }
  }
  if (admin_accept_paused_ && admin_listen_fd_ >= 0) {
    if (effective_backend_ == ServerBackend::kIoUring) {
      admin_accept_paused_ = false;
      UringArmAccept(/*admin=*/true);
    } else {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = admin_listen_fd_;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, admin_listen_fd_, &ev) == 0) {
        admin_accept_paused_ = false;
        AcceptReady(/*admin=*/true);
      }
    }
  }
  // Resume paused reads once workers drained half the backlog.
  for (size_t i = 0; i < paused_reads_.size();) {
    const std::shared_ptr<Connection>& conn = paused_reads_[i];
    if (conn->fd < 0) {
      paused_reads_[i] = paused_reads_.back();
      paused_reads_.pop_back();
      continue;
    }
    if (conn->inflight.load(std::memory_order_relaxed) <=
        options_.max_inflight_frames / 2) {
      conn->read_paused = false;
      RearmInterest(conn);
      paused_reads_[i] = paused_reads_.back();
      paused_reads_.pop_back();
      continue;
    }
    ++i;
  }
  // Terminal connections whose close is pending: re-evaluate, and force
  // the close once the drain timeout passes without progress. Only
  // these are scanned -- an idle steady state costs the sweep nothing.
  if (!finishing_.empty()) {
    const int64_t now_ms = NowMs();
    const int64_t drain_timeout_ms = options_.io_timeout_ms > 0
                                         ? options_.io_timeout_ms
                                         : kDefaultDrainTimeoutMs;
    std::vector<std::shared_ptr<Connection>> retry;
    retry.swap(finishing_);
    for (const auto& conn : retry) {
      conn->in_finishing = false;
      if (conn->fd < 0) continue;
      FinishConnection(conn);  // closes or re-enqueues
      if (conn->fd < 0) continue;
      if (now_ms -
                  conn->last_progress_ms.load(std::memory_order_relaxed) >
              drain_timeout_ms &&
          conn->inflight.load(std::memory_order_acquire) == 0) {
        CloseConnection(conn);
      }
    }
  }
  // Opt-in reaping of NON-terminal connections stuck mid-frame or
  // mid-flush with no progress (a full scan, only when configured).
  if (options_.io_timeout_ms > 0) {
    const int64_t now_ms = NowMs();
    std::vector<std::shared_ptr<Connection>> to_close;
    for (auto& [fd, conn] : conns_) {
      bool output_pending;
      {
        MutexLock lock(conn->out_mu);
        output_pending = conn->out_off < conn->outbuf.size();
      }
      const bool work_pending = output_pending || !conn->inbuf.empty();
      if (work_pending &&
          now_ms - conn->last_progress_ms.load(std::memory_order_relaxed) >
              options_.io_timeout_ms &&
          conn->inflight.load(std::memory_order_acquire) == 0) {
        to_close.push_back(conn);
      }
    }
    for (const auto& conn : to_close) CloseConnection(conn);
  }
  // Slowloris guard: an admin connection that still has not delivered
  // complete HTTP headers by its deadline is dropped. Entries leave the
  // list as soon as a response is queued (draining) or the fd closed,
  // so the scan only ever covers truly pending admin connections.
  if (!admin_pending_.empty()) {
    const int64_t now_ms = NowMs();
    for (size_t i = 0; i < admin_pending_.size();) {
      const std::shared_ptr<Connection> conn = admin_pending_[i];
      if (conn->fd < 0 || conn->draining.load(std::memory_order_acquire)) {
        admin_pending_[i] = admin_pending_.back();
        admin_pending_.pop_back();
        continue;
      }
      if (now_ms > conn->admin_deadline_ms) {
        admin_timeouts_.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(conn);
        admin_pending_[i] = admin_pending_.back();
        admin_pending_.pop_back();
        continue;
      }
      ++i;
    }
  }
  // Bound the admission controller's per-peer map under address churn:
  // peers with no connection and no request for 60s lose their bucket.
  if (admission_.enabled()) {
    const int64_t now_ms = NowMs();
    if (now_ms - last_admission_gc_ms_ >= 1000) {
      last_admission_gc_ms_ = now_ms;
      admission_.GcIdlePeers(NowNs(), int64_t{60} * 1000 * 1000 * 1000);
    }
  }
  MaybeCompactIdle();
}

void WatchmanServer::ProcessDirtyConnections() {
  // Connections workers flagged (leftover output, last in-flight frame
  // done, protocol violation).
  dirty_scratch_.clear();
  {
    MutexLock lock(dirty_mu_);
    dirty_scratch_.swap(dirty_);
  }
  for (const auto& conn : dirty_scratch_) {
    conn->dirty_pending.store(false, std::memory_order_release);
    if (conn->fd < 0) continue;
    {
      // Batched flush: whatever workers appended since the wake.
      MutexLock lock(conn->out_mu);
      FlushLocked(conn.get());
    }
    UpdateWriteInterest(conn);
    FinishConnection(conn);
  }
  dirty_scratch_.clear();
}

void WatchmanServer::CloseConnection(
    const std::shared_ptr<Connection>& conn) {
  if (effective_backend_ == ServerBackend::kIoUring) {
    UringCloseConnection(conn);
    return;
  }
  if (conn->fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  conn->fd = -1;
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  ReleaseConnectionBuffers(conn);
}

void WatchmanServer::ReleaseConnectionBuffers(
    const std::shared_ptr<Connection>& conn) {
  // Single final-close hook shared by both backends: release the
  // admission slot and the never-flushed output bytes here so every
  // close path balances the books exactly once.
  if (conn->peer_counted) {
    conn->peer_counted = false;
    admission_.ConnectionClosed(conn->peer_key);
  }
  if (conn->is_admin && admin_conns_active_ > 0) --admin_conns_active_;
  body_pool_.Release(std::move(conn->inbuf));
  conn->inbuf = std::string();
  std::string out;
  {
    MutexLock lock(conn->out_mu);
    out.swap(conn->outbuf);
    if (out.size() > conn->out_off) {
      output_bytes_.fetch_sub(out.size() - conn->out_off,
                              std::memory_order_relaxed);
    }
    conn->out_off = 0;
  }
  body_pool_.Release(std::move(out));
  if (conn->chunk.capacity() > 0) {
    body_pool_.Release(std::move(conn->chunk));
    conn->chunk = std::string();
  }
}

void WatchmanServer::MaybeCompactIdle() {
  if (options_.compact_idle_ms <= 0) return;
  if (ready_depth_.load(std::memory_order_relaxed) != 0) return;
  if (inflight_frames_.load(std::memory_order_acquire) != 0) return;
  const int64_t now = NowMs();
  const int64_t last_activity =
      last_activity_ms_.load(std::memory_order_relaxed);
  if (now - last_activity < options_.compact_idle_ms) return;
  // At most one pass per idle period: traffic must arrive before the
  // next timer-driven compaction fires.
  if (last_compaction_ms_.load(std::memory_order_relaxed) >= last_activity) {
    return;
  }
  RunCompaction();
}

void WatchmanServer::RunCompaction() {
  cache_->CompactMetadata();
  compactions_.fetch_add(1, std::memory_order_relaxed);
  last_compaction_ms_.store(NowMs(), std::memory_order_relaxed);
}

// --------------------------------------------------- io_uring IO thread

void WatchmanServer::UringLoop() {
  // This thread IS the IO thread (io_uring flavour); see IoLoop().
  ThreadRoleGrant io_role(io_thread_role);
  UringArmAccept(/*admin=*/false);
  UringArmAccept(/*admin=*/true);
  UringArmWake();
  std::vector<Uring::Completion> cqes;
  cqes.reserve(kUringSqDepth);
  while (!stop_.load(std::memory_order_acquire)) {
    inline_budget_used_ = 0;
    // One syscall submits everything armed since the last tick AND
    // waits for the next batch of completions.
    uring_->SubmitAndWait(1, options_.poll_interval_ms);
    cqes.clear();
    uring_->DrainCompletions(&cqes);
    uring_rearm_.clear();
    for (const Uring::Completion& c : cqes) {
      if (c.user_data == kUdAccept) {
        HandleAcceptCqe(c.res, c.flags, /*admin=*/false);
        continue;
      }
      if (c.user_data == kUdAdminAccept) {
        HandleAcceptCqe(c.res, c.flags, /*admin=*/true);
        continue;
      }
      if (c.user_data == kUdWake) {
        wake_armed_ = false;  // one-shot poll; re-armed below
        uint64_t junk = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &junk, sizeof(junk));
        continue;
      }
      Connection* raw =
          reinterpret_cast<Connection*>(c.user_data & ~kUdTagMask);
      auto it = uring_conns_.find(raw);
      if (it == uring_conns_.end()) continue;  // defensively: unknown op
      std::shared_ptr<Connection> conn = it->second;
      switch (c.user_data & kUdTagMask) {
        case kUdRecv:
          HandleRecvCqe(conn, c.res, c.flags);
          break;
        case kUdPollOut:
          if (conn->uring_inflight > 0) --conn->uring_inflight;
          conn->pollout_armed = false;
          if (conn->fd >= 0 && c.res >= 0) {
            MutexLock lock(conn->out_mu);
            FlushLocked(conn.get());
          }
          if (conn->fd >= 0) uring_rearm_.push_back(conn);
          break;
        case kUdCancel:
          if (conn->uring_inflight > 0) --conn->uring_inflight;
          break;
        default:
          break;
      }
    }
    // Re-arm and run the close state machine once per touched
    // connection, after the whole batch (buffers recycled, flags
    // settled).
    for (const auto& conn : uring_rearm_) {
      if (conn->fd < 0) continue;
      UringUpdateReadInterest(conn);
      UpdateWriteInterest(conn);
      FinishConnection(conn);
    }
    if (!accept_armed_ && !accept_paused_ && listen_fd_ >= 0) {
      UringArmAccept(/*admin=*/false);
    }
    if (!admin_accept_armed_ && !admin_accept_paused_ &&
        admin_listen_fd_ >= 0) {
      UringArmAccept(/*admin=*/true);
    }
    if (!wake_armed_) UringArmWake();
    ProcessDirtyConnections();
    SweepConnections();
    ReapUringClosing();
  }
}

void WatchmanServer::UringArmAccept(bool admin) {
  bool& armed = admin ? admin_accept_armed_ : accept_armed_;
  const int lfd = admin ? admin_listen_fd_ : listen_fd_;
  if (armed || lfd < 0) return;
  io_uring_sqe* sqe = uring_->GetSqe();
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = lfd;
  // Accepted sockets stay non-blocking: the shared output path still
  // uses direct send().
  sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
  if (uring_multishot_accept_ok_) sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->user_data = admin ? kUdAdminAccept : kUdAccept;
  armed = true;
}

void WatchmanServer::UringArmWake() {
  if (wake_armed_ || wake_fd_ < 0) return;
  io_uring_sqe* sqe = uring_->GetSqe();
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = wake_fd_;
  sqe->poll32_events = POLLIN;
  sqe->user_data = kUdWake;
  wake_armed_ = true;
}

void WatchmanServer::UringArmRecv(const std::shared_ptr<Connection>& conn) {
  if (conn->recv_armed || conn->fd < 0) return;
  io_uring_sqe* sqe = uring_->GetSqe();
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = conn->fd;
  if (uring_->has_buffers() && uring_multishot_recv_ok_) {
    // Multishot: one SQE keeps delivering completions, each carrying a
    // kernel-picked buffer from the registered ring.
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = uring_->buf_group();
    sqe->ioprio = IORING_RECV_MULTISHOT;
  } else {
    if (conn->chunk.size() != kUringChunkBytes) {
      conn->chunk = body_pool_.Acquire();
      conn->chunk.resize(kUringChunkBytes);
    }
    sqe->addr = reinterpret_cast<uint64_t>(conn->chunk.data());
    sqe->len = static_cast<uint32_t>(conn->chunk.size());
  }
  sqe->user_data = ConnUserData(conn.get(), kUdRecv);
  conn->recv_armed = true;
  ++conn->uring_inflight;
}

void WatchmanServer::UringCancelRecv(
    const std::shared_ptr<Connection>& conn) {
  if (!conn->recv_armed || conn->recv_cancel_pending) return;
  io_uring_sqe* sqe = uring_->GetSqe();
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->addr = ConnUserData(conn.get(), kUdRecv);
  sqe->user_data = ConnUserData(conn.get(), kUdCancel);
  conn->recv_cancel_pending = true;
  ++conn->uring_inflight;
}

void WatchmanServer::UringArmPollOut(
    const std::shared_ptr<Connection>& conn) {
  if (conn->pollout_armed || conn->fd < 0) return;
  io_uring_sqe* sqe = uring_->GetSqe();
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = conn->fd;
  sqe->poll32_events = POLLOUT | POLLERR | POLLHUP;
  sqe->user_data = ConnUserData(conn.get(), kUdPollOut);
  conn->pollout_armed = true;
  ++conn->uring_inflight;
}

void WatchmanServer::UringUpdateReadInterest(
    const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  const bool desired = !conn->read_paused &&
                       !conn->input_closed.load(std::memory_order_acquire);
  if (desired) {
    UringArmRecv(conn);  // no-op while armed
  } else if (conn->recv_armed) {
    UringCancelRecv(conn);  // no-op while a cancel is pending
  }
}

void WatchmanServer::HandleAcceptCqe(int32_t res, uint32_t flags,
                                     bool admin) {
  if ((flags & IORING_CQE_F_MORE) == 0) {
    (admin ? admin_accept_armed_ : accept_armed_) = false;
  }
  if (res >= 0) {
    AdoptConnection(res, admin);
    return;
  }
  if (res == -EINVAL && uring_multishot_accept_ok_) {
    // Kernel without multishot accept: degrade to one-shot re-arming.
    uring_multishot_accept_ok_ = false;
    return;
  }
  if (res == -EMFILE || res == -ENFILE || res == -ENOBUFS ||
      res == -ENOMEM) {
    (admin ? admin_accept_paused_ : accept_paused_) =
        true;  // the sweep retries next tick
  }
}

void WatchmanServer::HandleRecvCqe(const std::shared_ptr<Connection>& conn,
                                   int32_t res, uint32_t flags) {
  if ((flags & IORING_CQE_F_MORE) == 0) {
    // The receive op terminated (one-shot done, multishot ended, error,
    // or cancel landed): account the SQE and allow re-arming.
    conn->recv_armed = false;
    conn->recv_cancel_pending = false;
    if (conn->uring_inflight > 0) --conn->uring_inflight;
  }
  const bool has_buf = (flags & IORING_CQE_F_BUFFER) != 0;
  const uint16_t bid =
      has_buf ? static_cast<uint16_t>(flags >> IORING_CQE_BUFFER_SHIFT) : 0;
  if (res > 0) {
    const char* data = has_buf ? uring_->BufferData(bid) : conn->chunk.data();
    // Logically closed or draining: discard, but always recycle the
    // kernel buffer. Draining is deliberately NOT progress (bounded by
    // the sweep's drain timeout).
    const bool discard =
        conn->fd < 0 || conn->draining.load(std::memory_order_acquire);
    if (!discard) {
      conn->last_progress_ms.store(NowMs(), std::memory_order_relaxed);
      conn->inbuf.append(data, static_cast<size_t>(res));
    }
    if (has_buf) uring_->RecycleBuffer(bid);
    if (!discard) ParseFrames(conn);
  } else {
    if (has_buf) uring_->RecycleBuffer(bid);
    if (res == 0) {
      conn->input_closed.store(true, std::memory_order_release);
    } else if (res == -ENOBUFS || res == -ECANCELED || res == -EAGAIN ||
               res == -EINTR) {
      // ENOBUFS: every provided buffer was in flight; this batch
      // recycles them and the end-of-batch pass re-arms.
    } else if (res == -EINVAL && uring_multishot_recv_ok_) {
      // Kernel without multishot recv: degrade to one-shot reads.
      uring_multishot_recv_ok_ = false;
    } else {
      conn->input_closed.store(true, std::memory_order_release);
      MutexLock lock(conn->out_mu);
      conn->send_error = true;
    }
  }
  if (conn->fd >= 0) uring_rearm_.push_back(conn);
}

void WatchmanServer::UringCloseConnection(
    const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;  // already logically or fully closed
  conns_.erase(conn->fd);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  // Cancel outstanding ops so their completions drain promptly; every
  // cancel is itself a counted completion.
  if (conn->recv_armed) UringCancelRecv(conn);
  if (conn->pollout_armed) {
    io_uring_sqe* sqe = uring_->GetSqe();
    if (sqe != nullptr) {
      sqe->opcode = IORING_OP_ASYNC_CANCEL;
      sqe->addr = ConnUserData(conn.get(), kUdPollOut);
      sqe->user_data = ConnUserData(conn.get(), kUdCancel);
      ++conn->uring_inflight;
    }
  }
  if (conn->uring_inflight == 0) {
    ::close(conn->fd);
    conn->fd = -1;
    UringFinalClose(conn);
    return;
  }
  // Deferred close: the fd stays open (but unreachable through conns_)
  // until every SQE referencing this connection has completed, so a
  // stale CQE can never act on a recycled fd.
  conn->defunct_fd = conn->fd;
  conn->fd = -1;
  uring_closing_.push_back(conn);
}

void WatchmanServer::UringFinalClose(
    const std::shared_ptr<Connection>& conn) {
  if (conn->defunct_fd >= 0) {
    ::close(conn->defunct_fd);
    conn->defunct_fd = -1;
  }
  ReleaseConnectionBuffers(conn);
  uring_conns_.erase(conn.get());
}

void WatchmanServer::ReapUringClosing() {
  for (size_t i = 0; i < uring_closing_.size();) {
    if (uring_closing_[i]->uring_inflight == 0) {
      UringFinalClose(uring_closing_[i]);
      uring_closing_[i] = uring_closing_.back();
      uring_closing_.pop_back();
    } else {
      ++i;
    }
  }
}

// ----------------------------------------------------- output (shared)

bool WatchmanServer::QueueOutput(const std::shared_ptr<Connection>& conn,
                                 std::string_view bytes) {
  MutexLock lock(conn->out_mu);
  if (conn->send_error) return true;  // dropping; close is imminent
  conn->outbuf.append(bytes);
  output_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return FlushLocked(conn.get());
}

bool WatchmanServer::FlushLocked(Connection* conn) {
  if (conn->send_error) return true;
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t n =
        FaultSend(conn->fd, conn->outbuf.data() + conn->out_off,
                  conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      conn->send_error = true;
      return false;
    }
    conn->out_off += static_cast<size_t>(n);
    output_bytes_.fetch_sub(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
    conn->last_progress_ms.store(NowMs(), std::memory_order_relaxed);
  }
  conn->outbuf.clear();
  conn->out_off = 0;
  return true;
}

void WatchmanServer::MarkDirty(const std::shared_ptr<Connection>& conn) {
  if (conn->dirty_pending.exchange(true, std::memory_order_acq_rel)) {
    return;  // already queued; one IO-thread pass covers both causes
  }
  {
    MutexLock lock(dirty_mu_);
    dirty_.push_back(conn);
  }
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

// -------------------------------------------------------------- workers

void WatchmanServer::WorkerLoop() {
  // Per-worker scratch: frames decode into the same objects, so string
  // capacity is reused and steady-state framing performs no allocation.
  WireRequest request;
  WireResponse response;
  std::string encoded;
  while (true) {
    Work work;
    {
      MutexLock lock(ready_mu_);
      // Explicit predicate loop: a wait-with-lambda would be analyzed
      // as a separate function not holding ready_mu_, hiding the
      // guarded ready_ access from the thread-safety proof.
      while (!stop_.load(std::memory_order_acquire) && ready_.empty()) {
        ready_cv_.Wait(ready_mu_);
      }
      if (stop_.load(std::memory_order_acquire)) return;
      work = std::move(ready_.front());
      ready_.pop_front();
      ready_depth_.store(ready_.size(), std::memory_order_relaxed);
    }
    ProcessFrame(work, &request, &response, &encoded);
  }
}

void WatchmanServer::ProcessFrame(Work& work, WireRequest* request,
                                  WireResponse* response,
                                  std::string* encoded) {
  const std::shared_ptr<Connection>& conn = work.conn;
  encoded->clear();
  // Stage timestamps (metrics on): enqueue -> dispatch -> done -> reply
  // feed the queue-wait / service / reply histograms and the
  // slow-request log.
  const int64_t t_dispatch = NowNs();
  if (work.enqueue_ns > 0 && t_dispatch >= work.enqueue_ns) {
    queue_wait_ns_.Record(static_cast<uint64_t>(t_dispatch - work.enqueue_ns));
  }
  int64_t t_done = t_dispatch;
  OpCode timed_op = OpCode::kPing;
  StatusCode timed_code = StatusCode::kOk;
  bool timed = false;
  const Status decoded = DecodeRequestInto(work.body, request);
  if (!decoded.ok()) {
    frames_rejected_.fetch_add(1, std::memory_order_relaxed);
    // Echo the request's opcode and id when the prologue decoded, so
    // the client sees the daemon's real status (Corruption,
    // NotSupported, ...) attributed to ITS request instead of an
    // op-mismatch Internal error against a default ping frame.
    WireResponse err;
    err.code = decoded.code();
    err.message = decoded.message();
    PeekPrologue(work.body, &err.op, &err.request_id);
    AppendResponse(err, encoded);
    // The stream decoded a frame but not a request; the peer speaks a
    // different dialect, so stop reading from it.
    conn->draining.store(true, std::memory_order_release);
  } else {
    Dispatch(*request, response);
    t_done = NowNs();
    RecordOp(request->op, response->code, t_done - t_dispatch);
    timed_op = request->op;
    timed_code = response->code;
    timed = true;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    AppendResponse(*response, encoded);
  }
  // Write coalescing: when this frame is the only one in flight the
  // response is sent directly (lowest latency for blocking clients);
  // when more frames of this connection are being worked on, append
  // only -- the last completer or the IO thread flushes the whole batch
  // in one write, so a pipelining client costs ~1 syscall per burst.
  const bool sole_inflight =
      conn->inflight.load(std::memory_order_acquire) == 1;
  bool flushed;
  {
    MutexLock lock(conn->out_mu);
    if (!conn->send_error) {
      conn->outbuf.append(*encoded);
      output_bytes_.fetch_add(encoded->size(), std::memory_order_relaxed);
    }
    flushed = sole_inflight ? FlushLocked(conn.get()) : false;
  }
  if (timed && options_.metrics) {
    const int64_t t_reply = NowNs();
    if (t_reply >= t_done) {
      reply_ns_.Record(static_cast<uint64_t>(t_reply - t_done));
    }
    if (options_.slow_request_us > 0) {
      const int64_t start_ns =
          work.enqueue_ns > 0 ? work.enqueue_ns : t_dispatch;
      const int64_t total_us = (t_reply - start_ns) / 1000;
      if (total_us >= options_.slow_request_us) {
        WATCHMAN_LOG(Warning)
            << "slow_request op=" << OpCodeName(timed_op)
            << " status=" << StatusCodeName(timed_code)
            << " total_us=" << total_us
            << " queue_us=" << (t_dispatch - start_ns) / 1000
            << " service_us=" << (t_done - t_dispatch) / 1000
            << " reply_us=" << (t_reply - t_done) / 1000 << " path=worker";
      }
    }
  }
  const bool input_closed_hint =
      conn->input_closed.load(std::memory_order_acquire);
  const uint32_t prev = conn->inflight.fetch_sub(1, std::memory_order_release);
  inflight_frames_.fetch_sub(1, std::memory_order_relaxed);
  last_activity_ms_.store(NowMs(), std::memory_order_relaxed);
  // Poke the IO thread when it has something to do for this connection:
  // flush / resume a partial write, or run the close path now that the
  // last in-flight frame is answered.
  if (!flushed || conn->draining.load(std::memory_order_acquire) ||
      (prev == 1 && input_closed_hint)) {
    MarkDirty(conn);
  }
  body_pool_.Release(std::move(work.body));
}

void WatchmanServer::Dispatch(const WireRequest& request,
                              WireResponse* response_out) {
  WireResponse& response = *response_out;
  response.Reset(request.op);
  response.request_id = request.request_id;
  switch (request.op) {
    case OpCode::kPing:
      break;
    case OpCode::kGet: {
      // Fills response.payload in place (pooled capacity, no copy).
      const Status status =
          cache_->GetCachedInto(request.query_text, &response.payload);
      if (status.ok()) {
        response.cache_hit = true;
      } else {
        response.code = status.code();
        response.message = status.message();
      }
      break;
    }
    case OpCode::kExecute: {
      FillContext fill;
      if (request.has_fill) {
        fill.request = &request;
        t_fill = &fill;
      }
      // Approximate hit flag for executor-mode requests; fill-mode
      // requests overwrite it below with the exact answer.
      const bool cached_before =
          request.has_fill ? false : cache_->IsCached(request.query_text);
      StatusOr<std::string> payload = cache_->Execute(request.query_text);
      if (!payload.ok() && request.has_fill && !fill.consumed &&
          payload.status().code() == StatusCode::kNotFound) {
        // NotFound with the fill unconsumed: this request was
        // deduplicated behind a fill-less caller's flight and shared
        // its miss without our fill ever being offered. The flight has
        // closed, so one retry runs the executor with the fill staged.
        // (Gated on NotFound so a daemon with a real warehouse executor
        // never re-runs a query that failed for other reasons.)
        payload = cache_->Execute(request.query_text);
      }
      t_fill = nullptr;
      if (payload.ok()) {
        response.cache_hit = request.has_fill ? !fill.consumed : cached_before;
        response.payload = std::move(*payload);
      } else {
        response.code = payload.status().code();
        response.message = payload.status().message();
      }
      break;
    }
    case OpCode::kInvalidate:
      response.dropped = cache_->Invalidate(request.query_text) ? 1 : 0;
      break;
    case OpCode::kInvalidateRelation:
      response.dropped = cache_->InvalidateRelation(request.relation);
      break;
    case OpCode::kStats:
      response.stats = StatsSnapshot();
      break;
    case OpCode::kCompact:
      RunCompaction();
      break;
  }
}

void WatchmanServer::RecordOp(OpCode op, StatusCode code,
                              int64_t latency_ns) {
  // A miss (NotFound) is an answered question, not a failure.
  const bool is_error =
      code != StatusCode::kOk && code != StatusCode::kNotFound;
  OpMetrics& m = per_op_[OpIndex(op)];
  m.requests.Inc();
  if (is_error) m.errors.Inc();
  if (options_.metrics) {
    m.latency_ns.Record(latency_ns > 0 ? static_cast<uint64_t>(latency_ns)
                                       : 0);
  }
}

WatchmanServer::OpCounters WatchmanServer::op_counters(OpCode op) const {
  const OpMetrics& m = per_op_[OpIndex(op)];
  OpCounters out;
  out.requests = m.requests.Value();
  out.errors = m.errors.Value();
  out.latency_count = m.latency_ns.Count();
  if (out.latency_count > 0) {
    out.latency_mean_us = static_cast<double>(m.latency_ns.Sum()) /
                          static_cast<double>(out.latency_count) / 1000.0;
    out.latency_min_us = static_cast<double>(m.latency_ns.Min()) / 1000.0;
    out.latency_max_us = static_cast<double>(m.latency_ns.Max()) / 1000.0;
  }
  return out;
}

// Registration happens once, in the constructor, before any thread can
// scrape: cache families are per-shard labeled snapshot callbacks (each
// takes that shard's lock at scrape time), facade and server families
// point at the live lock-free metric objects.
void WatchmanServer::BuildMetricsRegistry() {
  using Labels = obs::MetricsRegistry::Labels;
  const ShardedQueryCache* cache = &cache_->cache();
  const size_t shards = cache->num_shards();

  struct CacheCounterDef {
    const char* name;
    const char* help;
    uint64_t CacheStats::*field;
  };
  static constexpr CacheCounterDef kCacheCounters[] = {
      {"watchman_cache_lookups_total", "Cache lookups (hits + misses).",
       &CacheStats::lookups},
      {"watchman_cache_hits_total", "Cache hits.", &CacheStats::hits},
      {"watchman_cache_insertions_total", "Retrieved sets admitted.",
       &CacheStats::insertions},
      {"watchman_cache_evictions_total", "Retrieved sets evicted.",
       &CacheStats::evictions},
      {"watchman_cache_admission_rejects_total",
       "Misses the admission policy declined to cache.",
       &CacheStats::admission_rejections},
      {"watchman_cache_too_large_rejects_total",
       "Misses whose retrieved set exceeds the whole cache capacity.",
       &CacheStats::too_large_rejections},
      {"watchman_cache_cost_units_total",
       "Execution cost units of all references.", &CacheStats::cost_total},
      {"watchman_cache_cost_saved_units_total",
       "Execution cost units saved by hits.", &CacheStats::cost_saved},
      {"watchman_cache_bytes_inserted_total",
       "Payload bytes of admitted retrieved sets.",
       &CacheStats::bytes_inserted},
      {"watchman_cache_bytes_evicted_total",
       "Payload bytes of evicted retrieved sets.",
       &CacheStats::bytes_evicted},
  };
  for (size_t i = 0; i < shards; ++i) {
    const Labels labels = {{"shard", std::to_string(i)}};
    for (const CacheCounterDef& def : kCacheCounters) {
      auto field = def.field;
      registry_.AddCounterFn(def.name, def.help, labels,
                             [cache, i, field]() -> uint64_t {
                               return cache->shard_stats(i).*field;
                             });
    }
    registry_.AddCounterFn(
        "watchman_cache_lock_acquisitions_total",
        "Shard-lock acquisitions (uncontended fast path included).", labels,
        [cache, i] { return cache->lock_stats(i).acquisitions; });
    registry_.AddCounterFn(
        "watchman_cache_lock_contended_total",
        "Shard-lock acquisitions that had to block.", labels,
        [cache, i] { return cache->lock_stats(i).contended; });
  }
  Watchman* facade = cache_;
  registry_.AddGaugeFn("watchman_cache_used_bytes",
                       "Payload bytes currently cached.", {}, [facade] {
                         return static_cast<double>(facade->used_bytes());
                       });
  registry_.AddGaugeFn("watchman_cache_capacity_bytes",
                       "Configured cache capacity.", {}, [facade] {
                         return static_cast<double>(facade->capacity_bytes());
                       });
  registry_.AddGaugeFn(
      "watchman_cache_entries", "Retrieved sets currently cached.", {},
      [facade] { return static_cast<double>(facade->cached_set_count()); });
  registry_.AddGaugeFn(
      "watchman_cache_retained_entries",
      "Evicted entries whose reference history is retained.", {}, [facade] {
        return static_cast<double>(facade->retained_info_count());
      });
  registry_.AddGaugeFn("watchman_cache_shards", "Cache shard count.", {},
                       [shards] { return static_cast<double>(shards); });

  const Watchman::FacadeMetrics& fm = cache_->facade_metrics();
  registry_.AddCounter("watchman_facade_executions_total",
                       "Warehouse executions run (single-flight leaders).",
                       {}, &fm.executions);
  registry_.AddCounter(
      "watchman_facade_dedup_total",
      "Callers served by another caller's in-flight execution.", {},
      &fm.dedup_hits);
  registry_.AddCounterFn(
      "watchman_facade_invalidations_total",
      "Cached sets dropped by coherence invalidations.", {},
      [facade] { return facade->invalidations(); });
  registry_.AddHistogram("watchman_facade_execution_cost",
                         "Execution cost of admitted misses (cost units).",
                         {{"outcome", "admitted"}}, &fm.admitted_cost);
  registry_.AddHistogram("watchman_facade_execution_cost",
                         "Execution cost of rejected misses (cost units).",
                         {{"outcome", "rejected"}}, &fm.rejected_cost);
  registry_.AddHistogram(
      "watchman_facade_execution_profit_ppm",
      "Profit (cost * 1e6 / result_bytes) of admitted vs rejected misses.",
      {{"outcome", "admitted"}}, &fm.admitted_profit_ppm);
  registry_.AddHistogram(
      "watchman_facade_execution_profit_ppm",
      "Profit (cost * 1e6 / result_bytes) of admitted vs rejected misses.",
      {{"outcome", "rejected"}}, &fm.rejected_profit_ppm);

  for (size_t i = 0; i < kNumOpCodes; ++i) {
    const Labels labels = {
        {"op", OpCodeName(static_cast<OpCode>(i + 1))}};
    registry_.AddCounter("watchman_server_requests_total",
                         "Requests dispatched, by wire op.", labels,
                         &per_op_[i].requests);
    registry_.AddCounter(
        "watchman_server_errors_total",
        "Requests answered with an error status (NotFound excluded).",
        labels, &per_op_[i].errors);
    registry_.AddHistogram("watchman_server_request_seconds",
                           "Dispatch (service) latency, by wire op.", labels,
                           &per_op_[i].latency_ns, 1e-9);
  }
  registry_.AddHistogram(
      "watchman_server_queue_wait_seconds",
      "Ready-queue wait between frame enqueue and worker claim.", {},
      &queue_wait_ns_, 1e-9);
  registry_.AddHistogram(
      "watchman_server_reply_seconds",
      "Response append/flush time after dispatch completes.", {}, &reply_ns_,
      1e-9);

  registry_.AddCounterFn(
      "watchman_server_connections_accepted_total", "Connections accepted.",
      {}, [this] {
        return connections_accepted_.load(std::memory_order_relaxed);
      });
  registry_.AddCounterFn(
      "watchman_server_requests_served_total",
      "Requests answered (all ops, inline + worker paths).", {},
      [this] { return requests_served_.load(std::memory_order_relaxed); });
  registry_.AddCounterFn(
      "watchman_server_frames_rejected_total",
      "Frames rejected before dispatch (framing/decode errors).", {},
      [this] { return frames_rejected_.load(std::memory_order_relaxed); });
  registry_.AddCounterFn(
      "watchman_server_inline_dispatched_total",
      "Frames answered inline on the IO thread (fast path).", {},
      [this] { return inline_dispatched_.load(std::memory_order_relaxed); });
  registry_.AddCounterFn(
      "watchman_server_compactions_total",
      "Metadata compaction passes (idle timer + COMPACT op).", {},
      [this] { return compactions_.load(std::memory_order_relaxed); });
  registry_.AddGaugeFn(
      "watchman_server_connections_active", "Open connections.", {},
      [this]() -> double {
        return static_cast<double>(
            connections_active_.load(std::memory_order_relaxed));
      });
  registry_.AddGaugeFn("watchman_server_ready_queue_depth",
                       "Frames awaiting a worker right now.", {},
                       [this]() -> double {
                         return static_cast<double>(
                             ready_depth_.load(std::memory_order_relaxed));
                       });
  registry_.AddGaugeFn(
      "watchman_server_ready_queue_peak",
      "High-water mark of the ready-queue since Start().", {},
      [this]() -> double {
        return static_cast<double>(
            connections_queued_peak_.load(std::memory_order_relaxed));
      });
  registry_.AddGaugeFn("watchman_server_uptime_seconds",
                       "Seconds since Start().", {}, [this]() -> double {
                         return running() ? static_cast<double>(NowMs()) /
                                                1000.0
                                          : 0.0;
                       });

  // Overload-protection families: sheds by reason, the retry hints
  // attached to them, and the buffered-output gauge the byte budget
  // watches.
  for (size_t i = 1; i < kNumShedReasons; ++i) {
    registry_.AddCounter(
        "watchman_server_shed_total",
        "Requests and connections shed by the admission layer, by reason.",
        {{"reason", ShedReasonName(static_cast<ShedReason>(i))}},
        &shed_counters_[i]);
  }
  registry_.AddHistogram(
      "watchman_server_shed_retry_hint_ms",
      "Retry-after hints attached to shed responses (milliseconds).", {},
      &shed_retry_hint_ms_);
  registry_.AddGaugeFn(
      "watchman_server_output_buffered_bytes",
      "Response bytes buffered across all connections (the "
      "max_global_output_bytes budget watches this).",
      {}, [this]() -> double {
        return static_cast<double>(
            output_bytes_.load(std::memory_order_relaxed));
      });
  registry_.AddCounterFn(
      "watchman_server_admin_rejected_total",
      "Admin connections refused at accept (connection cap).", {},
      [this] { return admin_rejected_.load(std::memory_order_relaxed); });
  registry_.AddCounterFn(
      "watchman_server_admin_timeouts_total",
      "Admin connections closed by the header-read deadline.", {},
      [this] { return admin_timeouts_.load(std::memory_order_relaxed); });

  // Degradation families: executor/store failures the facade absorbed
  // and the payload-store circuit breaker's live state.
  registry_.AddCounter(
      "watchman_facade_executor_failures_total",
      "Warehouse executions that failed or threw (absorbed as errors).",
      {}, &fm.executor_failures);
  registry_.AddCounter(
      "watchman_facade_store_failures_total",
      "Payload-store operations that failed (NotFound excluded).", {},
      &fm.store_failures);
  registry_.AddCounter(
      "watchman_facade_degraded_passthrough_total",
      "Misses served uncached because storing the result failed.", {},
      &fm.degraded_passthrough);
  registry_.AddGaugeFn(
      "watchman_store_breaker_state",
      "Payload-store circuit breaker state (0=closed, 1=open, "
      "2=half-open).",
      {}, [facade]() -> double {
        return static_cast<double>(facade->store_breaker_state());
      });
  registry_.AddCounterFn(
      "watchman_store_breaker_trips_total",
      "Times the payload-store breaker tripped open.", {},
      [facade] { return facade->store_breaker().trips(); });
  registry_.AddCounterFn(
      "watchman_store_breaker_rejected_total",
      "Payload-store calls short-circuited while the breaker was open.",
      {}, [facade] { return facade->store_breaker().rejected(); });
}

WireStats WatchmanServer::StatsSnapshot() const {
  WireStats out;
  const CacheStats cache = cache_->stats();
  out.lookups = cache.lookups;
  out.hits = cache.hits;
  out.insertions = cache.insertions;
  out.evictions = cache.evictions;
  out.admission_rejections = cache.admission_rejections;
  out.too_large_rejections = cache.too_large_rejections;
  out.cost_total = cache.cost_total;
  out.cost_saved = cache.cost_saved;
  out.bytes_inserted = cache.bytes_inserted;
  out.bytes_evicted = cache.bytes_evicted;
  out.used_bytes = cache_->used_bytes();
  out.capacity_bytes = cache_->capacity_bytes();
  out.entry_count = cache_->cached_set_count();
  out.retained_count = cache_->retained_info_count();
  out.invalidations = cache_->invalidations();
  out.num_shards = cache_->num_shards();
  out.policy_name = cache_->policy_name();
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_active = connections_active_.load(std::memory_order_relaxed);
  out.connections_queued = connections_queued();
  out.connections_queued_peak =
      connections_queued_peak_.load(std::memory_order_relaxed);
  out.requests_served = requests_served_.load(std::memory_order_relaxed);
  out.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  out.compactions = compactions_.load(std::memory_order_relaxed);
  const int64_t last_compaction =
      last_compaction_ms_.load(std::memory_order_relaxed);
  if (last_compaction >= 0) {
    const int64_t age = NowMs() - last_compaction;
    out.last_compaction_age_ms =
        age > 0 ? static_cast<uint64_t>(age) : 0;
  }
  out.backend = ServerBackendName(effective_backend_);
  for (size_t i = 0; i < kNumOpCodes; ++i) {
    const OpCounters counters =
        op_counters(static_cast<OpCode>(i + 1));
    if (counters.requests == 0) continue;
    WireOpMetrics metrics;
    metrics.op = static_cast<uint8_t>(i + 1);
    metrics.requests = counters.requests;
    metrics.errors = counters.errors;
    metrics.latency_count = counters.latency_count;
    metrics.latency_mean_us = counters.latency_mean_us;
    metrics.latency_min_us = counters.latency_min_us;
    metrics.latency_max_us = counters.latency_max_us;
    out.per_op.push_back(metrics);
  }
  return out;
}

}  // namespace watchman
