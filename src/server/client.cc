#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace watchman {

WatchmanClient::WatchmanClient(Options options)
    : options_(std::move(options)) {}

WatchmanClient::~WatchmanClient() {
  std::lock_guard<std::mutex> lock(mu_);
  CloseLocked();
}

StatusOr<std::unique_ptr<WatchmanClient>> WatchmanClient::Connect(
    const Options& options) {
  std::unique_ptr<WatchmanClient> client(new WatchmanClient(options));
  std::lock_guard<std::mutex> lock(client->mu_);
  WATCHMAN_RETURN_IF_ERROR(client->Dial());
  return client;
}

void WatchmanClient::CloseLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status WatchmanClient::Dial() {
  CloseLocked();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + options_.host);
  }
  const int attempts = options_.connect_attempts < 1
                           ? 1
                           : options_.connect_attempts;
  int backoff_ms = options_.retry_backoff_ms;
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      last_error = std::string("connect: ") + std::strerror(errno);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
    return Status::OK();
  }
  return Status::IOError("cannot reach " + options_.host + ":" +
                         std::to_string(options_.port) + " after " +
                         std::to_string(attempts) + " attempts (" +
                         last_error + ")");
}

Status WatchmanClient::SendAll(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<std::string> WatchmanClient::ReadFrameBody() {
  char chunk[64 * 1024];
  while (true) {
    std::string_view body;
    size_t frame_size = 0;
    StatusOr<bool> extracted = ExtractFrame(inbuf_, options_.max_frame_bytes,
                                            &body, &frame_size);
    if (!extracted.ok()) return extracted.status();
    if (*extracted) {
      std::string out(body);
      inbuf_.erase(0, frame_size);
      return out;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IOError("connection closed by the daemon");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<WireResponse> WatchmanClient::RoundTrip(const WireRequest& request) {
  const std::string frame = EncodeRequest(request);
  std::lock_guard<std::mutex> lock(mu_);
  // One redial: a pooled connection may have died since the last call.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) {
      WATCHMAN_RETURN_IF_ERROR(Dial());
    }
    Status sent = SendAll(frame);
    StatusOr<std::string> body =
        sent.ok() ? ReadFrameBody() : StatusOr<std::string>(sent);
    if (!body.ok()) {
      CloseLocked();
      if (attempt == 0) continue;
      return body.status();
    }
    StatusOr<WireResponse> response = DecodeResponse(*body);
    if (!response.ok()) {
      // The stream is desynchronized; don't trust the connection.
      CloseLocked();
      return response.status();
    }
    if (response->op != request.op) {
      CloseLocked();
      return Status::Internal(
          std::string("response op mismatch: sent ") +
          OpCodeName(request.op) + ", got " + OpCodeName(response->op) +
          (response->message.empty() ? "" : " (" + response->message + ")"));
    }
    return response;
  }
  return Status::Internal("unreachable");
}

Status WatchmanClient::Ping() {
  WireRequest request;
  request.op = OpCode::kPing;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return StatusFromWire(response->code, response->message);
}

StatusOr<WatchmanClient::FetchResult> WatchmanClient::Get(
    const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kGet;
  request.query_text = query_text;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->code != StatusCode::kOk) {
    return StatusFromWire(response->code, response->message);
  }
  return FetchResult{std::move(response->payload), response->cache_hit};
}

StatusOr<WatchmanClient::FetchResult> WatchmanClient::Execute(
    const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kExecute;
  request.query_text = query_text;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->code != StatusCode::kOk) {
    return StatusFromWire(response->code, response->message);
  }
  return FetchResult{std::move(response->payload), response->cache_hit};
}

StatusOr<WatchmanClient::FetchResult> WatchmanClient::Execute(
    const std::string& query_text, const std::string& fill_payload,
    uint64_t fill_cost, std::vector<std::string> fill_relations) {
  WireRequest request;
  request.op = OpCode::kExecute;
  request.query_text = query_text;
  request.has_fill = true;
  request.fill_payload = fill_payload;
  request.fill_cost = fill_cost;
  request.fill_relations = std::move(fill_relations);
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->code != StatusCode::kOk) {
    return StatusFromWire(response->code, response->message);
  }
  return FetchResult{std::move(response->payload), response->cache_hit};
}

StatusOr<uint64_t> WatchmanClient::Invalidate(const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kInvalidate;
  request.query_text = query_text;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->code != StatusCode::kOk) {
    return StatusFromWire(response->code, response->message);
  }
  return response->dropped;
}

StatusOr<uint64_t> WatchmanClient::InvalidateRelation(
    const std::string& relation) {
  WireRequest request;
  request.op = OpCode::kInvalidateRelation;
  request.relation = relation;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->code != StatusCode::kOk) {
    return StatusFromWire(response->code, response->message);
  }
  return response->dropped;
}

StatusOr<WireStats> WatchmanClient::Stats() {
  WireRequest request;
  request.op = OpCode::kStats;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->code != StatusCode::kOk) {
    return StatusFromWire(response->code, response->message);
  }
  return std::move(response->stats);
}

// ------------------------------------------------------ RemoteWatchman

RemoteWatchman::RemoteWatchman(std::unique_ptr<WatchmanClient> client,
                               Watchman::Executor executor)
    : client_(std::move(client)), executor_(std::move(executor)) {}

StatusOr<std::unique_ptr<RemoteWatchman>> RemoteWatchman::Connect(
    const WatchmanClient::Options& options, Watchman::Executor executor) {
  StatusOr<std::unique_ptr<WatchmanClient>> client =
      WatchmanClient::Connect(options);
  if (!client.ok()) return client.status();
  return std::make_unique<RemoteWatchman>(std::move(*client),
                                          std::move(executor));
}

StatusOr<std::string> RemoteWatchman::Execute(const std::string& query_text) {
  StatusOr<WatchmanClient::FetchResult> probe = client_->Get(query_text);
  if (probe.ok()) return std::move(probe->payload);
  if (probe.status().code() != StatusCode::kNotFound) return probe.status();

  // Miss: materialize locally, then offer the result to the daemon. The
  // daemon may answer with another client's concurrently filled set --
  // same contract as the facade's single-flight.
  StatusOr<Watchman::ExecutionResult> executed = executor_(query_text);
  if (!executed.ok()) return executed.status();
  StatusOr<WatchmanClient::FetchResult> filled =
      client_->Execute(query_text, executed->payload, executed->cost,
                       executed->relations);
  if (!filled.ok()) {
    // The offer failed (daemon restarted, connection dropped, ...), but
    // the execution succeeded: serve the fresh result anyway, exactly
    // like the local facade does when a cache offer cannot land.
    return std::move(executed->payload);
  }
  return std::move(filled->payload);
}

}  // namespace watchman
