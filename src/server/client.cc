#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/errno_string.h"
#include "util/fault.h"

namespace watchman {
namespace {

using Clock = std::chrono::steady_clock;

/// SplitMix64: backoff jitter hashing (pure, no global state).
uint64_t JitterMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Equal jitter: spread `backoff` uniformly over [backoff/2, backoff],
/// deterministically from (seed, attempt). Seed 0 = no jitter.
int ApplyJitter(int backoff, int attempt, uint64_t jitter_seed) {
  if (jitter_seed == 0 || backoff <= 1) return backoff;
  const int half = backoff / 2;
  const uint64_t h =
      JitterMix(jitter_seed ^ (static_cast<uint64_t>(attempt) + 1) *
                                  0x9e3779b97f4a7c15ull);
  return half + static_cast<int>(
                    h % (static_cast<uint64_t>(backoff - half) + 1));
}

/// A per-process-instance jitter seed (never 0).
uint64_t FreshJitterSeed() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t tick = static_cast<uint64_t>(
      Clock::now().time_since_epoch().count());
  return JitterMix(tick ^ counter.fetch_add(1, std::memory_order_relaxed))
         | 1;
}

/// A time_point far enough out to mean "no deadline".
constexpr Clock::duration kForever = std::chrono::hours(24 * 365);

Clock::time_point DeadlineIn(int timeout_ms) {
  return Clock::now() + (timeout_ms > 0 ? std::chrono::milliseconds(timeout_ms)
                                        : kForever);
}

/// Waits for `events` on `fd` until `deadline`. OK when ready, IOError
/// on timeout or poll failure; POLLERR/POLLHUP count as ready (the
/// following recv/send/getsockopt reports the real error).
Status PollFd(int fd, short events, Clock::time_point deadline,
              const char* what) {
  while (true) {
    const auto remaining = deadline - Clock::now();
    if (remaining <= Clock::duration::zero()) {
      return Status::IOError(std::string("deadline exceeded waiting to ") +
                             what);
    }
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count();
    pollfd pfd{fd, events, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(ms > 60000 ? 60000 : ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + ErrnoString(errno));
    }
    if (ready > 0) return Status::OK();
  }
}

/// Sends all of `bytes` on the non-blocking `fd`, polling for
/// writability up to `deadline`. *sent reports how many bytes reached
/// the wire even on failure -- the redial logic must know whether the
/// daemon may have seen the request.
Status SendAllFd(int fd, std::string_view bytes, Clock::time_point deadline,
                 size_t* sent) {
  *sent = 0;
  while (*sent < bytes.size()) {
    const ssize_t n = FaultSend(fd, bytes.data() + *sent,
                                bytes.size() - *sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        WATCHMAN_RETURN_IF_ERROR(PollFd(fd, POLLOUT, deadline, "send"));
        continue;
      }
      return Status::IOError(std::string("send: ") + ErrnoString(errno));
    }
    *sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// One recv on the non-blocking `fd`, polling for readability up to
/// `deadline`. *n is 0 on orderly EOF.
Status RecvSomeFd(int fd, char* buf, size_t cap, Clock::time_point deadline,
                  size_t* n) {
  while (true) {
    const ssize_t got = FaultRecv(fd, buf, cap, 0);
    if (got >= 0) {
      *n = static_cast<size_t>(got);
      return Status::OK();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      WATCHMAN_RETURN_IF_ERROR(PollFd(fd, POLLIN, deadline, "recv"));
      continue;
    }
    return Status::IOError(std::string("recv: ") + ErrnoString(errno));
  }
}

/// One non-blocking connect attempt with a poll-enforced deadline.
/// Returns the connected fd (left non-blocking) or an error.
StatusOr<int> ConnectOnce(const sockaddr_in& addr,
                          const std::string& local_addr, int io_timeout_ms) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + ErrnoString(errno));
  }
  if (!local_addr.empty()) {
    sockaddr_in local{};
    local.sin_family = AF_INET;
    local.sin_port = 0;  // ephemeral; only the address matters
    if (::inet_pton(AF_INET, local_addr.c_str(), &local.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument("bad local address: " + local_addr);
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&local),
               sizeof(local)) != 0) {
      const Status status = Status::IOError(
          "bind " + local_addr + ": " + ErrnoString(errno));
      ::close(fd);
      return status;
    }
  }
  const auto deadline = DeadlineIn(io_timeout_ms);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const Status status =
        Status::IOError(std::string("connect: ") + ErrnoString(errno));
    ::close(fd);
    return status;
  }
  // EINPROGRESS (or instant success): wait for writability, then read
  // the final verdict off SO_ERROR.
  Status ready = PollFd(fd, POLLOUT, deadline, "connect");
  if (ready.ok()) {
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      so_error = errno;
    }
    if (so_error != 0) {
      ready = Status::IOError(std::string("connect: ") +
                              ErrnoString(so_error));
    }
  }
  if (!ready.ok()) {
    ::close(fd);
    return ready;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Dials with retry and capped backoff per `options`.
StatusOr<int> DialFd(const WatchmanClient::Options& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + options.host);
  }
  const int attempts =
      options.connect_attempts < 1 ? 1 : options.connect_attempts;
  std::string last_error = "no attempt made";
  const uint64_t jitter_seed = FreshJitterSeed();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const int backoff =
        DialBackoffMs(options.retry_backoff_ms, options.max_backoff_ms,
                      attempt, jitter_seed);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    StatusOr<int> fd =
        ConnectOnce(addr, options.local_addr, options.io_timeout_ms);
    if (fd.ok()) return fd;
    last_error = fd.status().message();
  }
  return Status::IOError("cannot reach " + options.host + ":" +
                         std::to_string(options.port) + " after " +
                         std::to_string(attempts) + " attempts (" +
                         last_error + ")");
}

/// True when resending the op after an ambiguous failure (the daemon
/// may or may not have processed the first copy) cannot corrupt caller
/// state: probes and offers are absorbed idempotently, invalidations
/// are not (a replay reports dropped=0 for a set that WAS dropped).
bool ReplaySafe(OpCode op) {
  switch (op) {
    case OpCode::kPing:
    case OpCode::kGet:
    case OpCode::kStats:
    case OpCode::kExecute:
    case OpCode::kCompact:
      return true;
    case OpCode::kInvalidate:
    case OpCode::kInvalidateRelation:
      return false;
  }
  return false;
}

// Shared response -> typed-result converters (both client flavours).

StatusOr<WatchmanClient::FetchResult> ToFetchResult(WireResponse&& response) {
  if (response.code != StatusCode::kOk) {
    return StatusFromWire(response.code, response.message);
  }
  return WatchmanClient::FetchResult{std::move(response.payload),
                                     response.cache_hit};
}

StatusOr<uint64_t> ToDropped(WireResponse&& response) {
  if (response.code != StatusCode::kOk) {
    return StatusFromWire(response.code, response.message);
  }
  return response.dropped;
}

StatusOr<WireStats> ToStats(WireResponse&& response) {
  if (response.code != StatusCode::kOk) {
    return StatusFromWire(response.code, response.message);
  }
  return std::move(response.stats);
}

}  // namespace

int DialBackoffMs(int base_ms, int max_ms, int attempt,
                  uint64_t jitter_seed) {
  if (attempt <= 0 || base_ms <= 0) return 0;
  if (max_ms < base_ms) max_ms = base_ms;
  long long backoff = base_ms;
  for (int i = 1; i < attempt; ++i) {
    backoff *= 2;
    if (backoff >= max_ms) {
      backoff = max_ms;
      break;
    }
  }
  const int capped = backoff >= max_ms ? max_ms : static_cast<int>(backoff);
  return ApplyJitter(capped, attempt, jitter_seed);
}

int ShedBackoffMs(int hint_ms, int max_ms, int attempt,
                  uint64_t jitter_seed) {
  if (max_ms < 1) max_ms = 1;
  long long backoff = hint_ms > 0 ? hint_ms : 10;
  for (int i = 0; i < attempt; ++i) {
    backoff *= 2;
    if (backoff >= max_ms) break;
  }
  const int capped = backoff >= max_ms ? max_ms : static_cast<int>(backoff);
  return ApplyJitter(capped, attempt, jitter_seed);
}

WatchmanClient::WatchmanClient(Options options)
    : options_(std::move(options)), shed_jitter_seed_(FreshJitterSeed()) {}

WatchmanClient::~WatchmanClient() {
  MutexLock lock(mu_);
  CloseLocked();
}

StatusOr<std::unique_ptr<WatchmanClient>> WatchmanClient::Connect(
    const Options& options) {
  // alloc-ok: one client object per Connect() (setup, not per request)
  std::unique_ptr<WatchmanClient> client(new WatchmanClient(options));
  MutexLock lock(client->mu_);
  WATCHMAN_RETURN_IF_ERROR(client->Dial());
  return client;
}

void WatchmanClient::CloseLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status WatchmanClient::Dial() {
  CloseLocked();
  StatusOr<int> fd = DialFd(options_);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return Status::OK();
}

StatusOr<std::string> WatchmanClient::ReadFrameBody(
    Clock::time_point deadline) {
  char chunk[64 * 1024];
  while (true) {
    std::string_view body;
    size_t frame_size = 0;
    StatusOr<bool> extracted = ExtractFrame(inbuf_, options_.max_frame_bytes,
                                            &body, &frame_size);
    if (!extracted.ok()) return extracted.status();
    if (*extracted) {
      std::string out(body);
      inbuf_.erase(0, frame_size);
      return out;
    }
    size_t n = 0;
    WATCHMAN_RETURN_IF_ERROR(
        RecvSomeFd(fd_, chunk, sizeof(chunk), deadline, &n));
    if (n == 0) {
      return Status::IOError("connection closed by the daemon");
    }
    inbuf_.append(chunk, n);
  }
}

StatusOr<WireResponse> WatchmanClient::RoundTrip(WireRequest& request) {
  MutexLock lock(mu_);
  // Shed-retry loop: a kShedRetryLater answer means the daemon refused
  // the request BEFORE executing it, so retrying (with a fresh id)
  // after the hinted backoff is always safe -- even for INVALIDATE.
  for (int attempt = 0;; ++attempt) {
    StatusOr<WireResponse> response = RoundTripLocked(request);
    if (!response.ok() ||
        response->code != StatusCode::kShedRetryLater ||
        attempt >= options_.shed_retries) {
      return response;
    }
    const int backoff =
        ShedBackoffMs(static_cast<int>(response->retry_after_ms),
                      options_.max_shed_backoff_ms, attempt,
                      shed_jitter_seed_);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
}

StatusOr<WireResponse> WatchmanClient::RoundTripLocked(WireRequest& request) {
  request.request_id = ++next_request_id_;
  const std::string frame = EncodeRequest(request);
  // One redial: a pooled connection may have died since the last call.
  // Redial is allowed only when the failure provably preceded any byte
  // reaching the wire, or the op's replay is harmless (see ReplaySafe).
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) {
      WATCHMAN_RETURN_IF_ERROR(Dial());
    }
    const auto deadline = DeadlineIn(options_.io_timeout_ms);
    size_t sent = 0;
    Status sent_status = SendAllFd(fd_, frame, deadline, &sent);
    StatusOr<std::string> body = sent_status.ok()
                                     ? ReadFrameBody(deadline)
                                     : StatusOr<std::string>(sent_status);
    if (!body.ok()) {
      CloseLocked();
      if (attempt == 0 && (sent == 0 || ReplaySafe(request.op))) continue;
      if (sent != 0 && !ReplaySafe(request.op)) {
        return Status::IOError(
            std::string("connection failed after '") +
            OpCodeName(request.op) +
            "' may have reached the daemon; not retried because the op "
            "is not replay-safe (" +
            body.status().message() + ")");
      }
      return body.status();
    }
    StatusOr<WireResponse> response = DecodeResponse(*body);
    if (!response.ok()) {
      // The stream is desynchronized; don't trust the connection.
      CloseLocked();
      return response.status();
    }
    const bool matches = response->op == request.op &&
                         response->request_id == request.request_id;
    if (!matches) {
      // A mismatched frame means the stream state is unknown either
      // way. But when the daemon is reporting an error it could not
      // attribute (framing-level failures echo ping/0), surface ITS
      // status instead of masking it behind an op-mismatch Internal.
      CloseLocked();
      if (response->code != StatusCode::kOk) return response;
      return Status::Internal(
          std::string("response mismatch: sent ") + OpCodeName(request.op) +
          " id " + std::to_string(request.request_id) + ", got " +
          OpCodeName(response->op) + " id " +
          std::to_string(response->request_id));
    }
    return response;
  }
  return Status::Internal("unreachable");
}

Status WatchmanClient::Ping() {
  WireRequest request;
  request.op = OpCode::kPing;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return StatusFromWire(response->code, response->message);
}

StatusOr<WatchmanClient::FetchResult> WatchmanClient::Get(
    const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kGet;
  request.query_text = query_text;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return ToFetchResult(std::move(*response));
}

StatusOr<WatchmanClient::FetchResult> WatchmanClient::Execute(
    const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kExecute;
  request.query_text = query_text;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return ToFetchResult(std::move(*response));
}

StatusOr<WatchmanClient::FetchResult> WatchmanClient::Execute(
    const std::string& query_text, const std::string& fill_payload,
    uint64_t fill_cost, std::vector<std::string> fill_relations) {
  WireRequest request;
  request.op = OpCode::kExecute;
  request.query_text = query_text;
  request.has_fill = true;
  request.fill_payload = fill_payload;
  request.fill_cost = fill_cost;
  request.fill_relations = std::move(fill_relations);
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return ToFetchResult(std::move(*response));
}

StatusOr<uint64_t> WatchmanClient::Invalidate(const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kInvalidate;
  request.query_text = query_text;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return ToDropped(std::move(*response));
}

StatusOr<uint64_t> WatchmanClient::InvalidateRelation(
    const std::string& relation) {
  WireRequest request;
  request.op = OpCode::kInvalidateRelation;
  request.relation = relation;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return ToDropped(std::move(*response));
}

StatusOr<WireStats> WatchmanClient::Stats() {
  WireRequest request;
  request.op = OpCode::kStats;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return ToStats(std::move(*response));
}

Status WatchmanClient::Compact() {
  WireRequest request;
  request.op = OpCode::kCompact;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return StatusFromWire(response->code, response->message);
}

// --------------------------------------------------- MultiplexedClient

MultiplexedClient::MultiplexedClient(Options options)
    : options_(std::move(options)), shed_jitter_seed_(FreshJitterSeed()) {}

StatusOr<std::unique_ptr<MultiplexedClient>> MultiplexedClient::Connect(
    const Options& options) {
  StatusOr<int> fd = DialFd(options);
  if (!fd.ok()) return fd.status();
  // alloc-ok: one client object per Connect() (setup, not per request)
  std::unique_ptr<MultiplexedClient> client(new MultiplexedClient(options));
  client->fd_ = *fd;
  client->reader_ = std::thread([raw = client.get()] { raw->ReaderLoop(); });
  return client;
}

MultiplexedClient::~MultiplexedClient() {
  stopping_.store(true, std::memory_order_release);
  ::shutdown(fd_, SHUT_RDWR);  // unblocks the reader's poll
  if (reader_.joinable()) reader_.join();
  Break(Status::IOError("client destroyed"));
  ::close(fd_);
}

void MultiplexedClient::Break(const Status& status) {
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall>> orphans;
  {
    MutexLock lock(pending_mu_);
    if (broken_.ok()) broken_ = status;
    orphans.swap(pending_);
  }
  for (auto& [id, call] : orphans) {
    MutexLock lock(call->mu);
    if (call->done) continue;
    call->error = status;
    call->done = true;
    call->cv.NotifyAll();
  }
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartRequest(
    WireRequest& request) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  request.request_id = id;
  // One waiter record per pipelined request -- client-side only; the
  // daemon's steady-state request path stays allocation-free.
  // alloc-ok: client-side per-request waiter record
  auto call = std::make_shared<PendingCall>();
  {
    MutexLock lock(pending_mu_);
    if (!broken_.ok()) return broken_;
    pending_.emplace(id, call);
  }
  {
    MutexLock lock(send_mu_);
    AppendRequest(request, &outbuf_);
  }
  return id;
}

Status MultiplexedClient::Flush() {
  // flush_mu_ serializes socket writers; send_mu_ is held only for the
  // batch swap, so StartX() on other threads keeps buffering while this
  // thread is (possibly slowly) driving the socket.
  MutexLock io_lock(flush_mu_);
  {
    // Sticky-failure fast path: flushes queued behind the send that
    // broke the transport must not each burn another io_timeout_ms on
    // the dead socket.
    MutexLock lock(pending_mu_);
    if (!broken_.ok()) return broken_;
  }
  std::string batch;
  {
    MutexLock lock(send_mu_);
    batch.swap(outbuf_);
  }
  if (batch.empty()) return Status::OK();
  const auto deadline = DeadlineIn(options_.io_timeout_ms);
  size_t sent = 0;
  const Status status = SendAllFd(fd_, batch, deadline, &sent);
  if (!status.ok()) {
    Break(status);
    return status;
  }
  return Status::OK();
}

StatusOr<WireResponse> MultiplexedClient::Await(Ticket ticket) {
  WATCHMAN_RETURN_IF_ERROR(Flush());
  std::shared_ptr<PendingCall> call;
  {
    MutexLock lock(pending_mu_);
    auto it = pending_.find(ticket);
    if (it == pending_.end()) {
      if (!broken_.ok()) return broken_;
      return Status::InvalidArgument("unknown or already-awaited ticket " +
                                     std::to_string(ticket));
    }
    call = it->second;
  }
  const auto deadline = DeadlineIn(options_.io_timeout_ms);
  bool completed;
  {
    // Explicit deadline loop instead of wait_until-with-predicate: the
    // predicate lambda would be analyzed as a separate function not
    // holding call->mu, punching a hole in the thread-safety proof.
    MutexLock lock(call->mu);
    while (!call->done) {
      if (call->cv.WaitUntil(call->mu, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    completed = call->done;
  }
  {
    MutexLock lock(pending_mu_);
    pending_.erase(ticket);
  }
  if (!completed) {
    // Re-check: the response may have landed between the timed wait and
    // the erase above.
    MutexLock lock(call->mu);
    if (!call->done) {
      return Status::IOError("deadline exceeded awaiting response " +
                             std::to_string(ticket));
    }
  }
  MutexLock lock(call->mu);
  if (!call->error.ok()) return call->error;
  return std::move(call->response);
}

void MultiplexedClient::ReaderLoop() {
  std::string inbuf;
  char chunk[64 * 1024];
  while (!stopping_.load(std::memory_order_acquire)) {
    // Drain every complete frame before reading more; the consumed
    // prefix is erased once per batch (a per-frame erase would memmove
    // the whole buffer once per response on pipelined bursts).
    size_t consumed = 0;
    bool desynchronized = false;
    Status break_status;
    while (true) {
      std::string_view body;
      size_t frame_size = 0;
      StatusOr<bool> extracted =
          ExtractFrame(std::string_view(inbuf).substr(consumed),
                       options_.max_frame_bytes, &body, &frame_size);
      if (!extracted.ok()) {
        desynchronized = true;
        break_status = extracted.status();
        break;
      }
      if (!*extracted) break;
      StatusOr<WireResponse> response = DecodeResponse(body);
      consumed += frame_size;
      if (!response.ok()) {
        // Undecodable frame: the stream is desynchronized beyond
        // repair.
        desynchronized = true;
        break_status = response.status();
        break;
      }
      std::shared_ptr<PendingCall> call;
      {
        MutexLock lock(pending_mu_);
        auto it = pending_.find(response->request_id);
        if (it != pending_.end()) call = it->second;
      }
      if (call != nullptr) {
        MutexLock lock(call->mu);
        call->response = std::move(*response);
        call->done = true;
        call->cv.NotifyAll();
      } else if (response->code != StatusCode::kOk &&
                 response->request_id == 0) {
        // A framing-level error the daemon could not attribute to one
        // request (id 0): the connection is going away, fail everyone
        // with the daemon's own message.
        desynchronized = true;
        break_status = StatusFromWire(response->code, response->message);
        break;
      }
      // A stray OK response (e.g. the waiter timed out and left) is
      // dropped on the floor.
    }
    if (desynchronized) {
      Break(break_status);
      return;
    }
    if (consumed > 0) inbuf.erase(0, consumed);
    // Need more bytes. Short poll intervals keep shutdown prompt.
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      Break(Status::IOError(std::string("poll: ") + ErrnoString(errno)));
      return;
    }
    if (ready == 0) continue;
    const ssize_t n = FaultRecv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      Break(Status::IOError("connection closed by the daemon"));
      return;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      Break(Status::IOError(std::string("recv: ") + ErrnoString(errno)));
      return;
    }
    inbuf.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartPing() {
  WireRequest request;
  request.op = OpCode::kPing;
  return StartRequest(request);
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartGet(
    const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kGet;
  request.query_text = query_text;
  return StartRequest(request);
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartExecute(
    const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kExecute;
  request.query_text = query_text;
  return StartRequest(request);
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartExecute(
    const std::string& query_text, const std::string& fill_payload,
    uint64_t fill_cost, std::vector<std::string> fill_relations) {
  WireRequest request;
  request.op = OpCode::kExecute;
  request.query_text = query_text;
  request.has_fill = true;
  request.fill_payload = fill_payload;
  request.fill_cost = fill_cost;
  request.fill_relations = std::move(fill_relations);
  return StartRequest(request);
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartInvalidate(
    const std::string& query_text) {
  WireRequest request;
  request.op = OpCode::kInvalidate;
  request.query_text = query_text;
  return StartRequest(request);
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartInvalidateRelation(
    const std::string& relation) {
  WireRequest request;
  request.op = OpCode::kInvalidateRelation;
  request.relation = relation;
  return StartRequest(request);
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartStats() {
  WireRequest request;
  request.op = OpCode::kStats;
  return StartRequest(request);
}

StatusOr<MultiplexedClient::Ticket> MultiplexedClient::StartCompact() {
  WireRequest request;
  request.op = OpCode::kCompact;
  return StartRequest(request);
}

// Start + Await with the same shed-retry semantics as the blocking
// client: each retry re-encodes under a fresh id after the hinted,
// jittered backoff. Callers driving StartX()/Await() directly see the
// shed response verbatim and schedule their own retries.
StatusOr<WireResponse> MultiplexedClient::CallBlocking(
    const std::function<StatusOr<Ticket>()>& start) {
  for (int attempt = 0;; ++attempt) {
    StatusOr<Ticket> ticket = start();
    if (!ticket.ok()) return ticket.status();
    StatusOr<WireResponse> response = Await(*ticket);
    if (!response.ok() ||
        response->code != StatusCode::kShedRetryLater ||
        attempt >= options_.shed_retries) {
      return response;
    }
    const int backoff =
        ShedBackoffMs(static_cast<int>(response->retry_after_ms),
                      options_.max_shed_backoff_ms, attempt,
                      shed_jitter_seed_);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
}

Status MultiplexedClient::Ping() {
  StatusOr<WireResponse> response =
      CallBlocking([this] { return StartPing(); });
  if (!response.ok()) return response.status();
  return StatusFromWire(response->code, response->message);
}

StatusOr<MultiplexedClient::FetchResult> MultiplexedClient::Get(
    const std::string& query_text) {
  StatusOr<WireResponse> response =
      CallBlocking([&] { return StartGet(query_text); });
  if (!response.ok()) return response.status();
  return ToFetchResult(std::move(*response));
}

StatusOr<MultiplexedClient::FetchResult> MultiplexedClient::Execute(
    const std::string& query_text) {
  StatusOr<WireResponse> response =
      CallBlocking([&] { return StartExecute(query_text); });
  if (!response.ok()) return response.status();
  return ToFetchResult(std::move(*response));
}

StatusOr<MultiplexedClient::FetchResult> MultiplexedClient::Execute(
    const std::string& query_text, const std::string& fill_payload,
    uint64_t fill_cost, std::vector<std::string> fill_relations) {
  StatusOr<WireResponse> response = CallBlocking([&] {
    return StartExecute(query_text, fill_payload, fill_cost, fill_relations);
  });
  if (!response.ok()) return response.status();
  return ToFetchResult(std::move(*response));
}

StatusOr<uint64_t> MultiplexedClient::Invalidate(
    const std::string& query_text) {
  StatusOr<WireResponse> response =
      CallBlocking([&] { return StartInvalidate(query_text); });
  if (!response.ok()) return response.status();
  return ToDropped(std::move(*response));
}

StatusOr<uint64_t> MultiplexedClient::InvalidateRelation(
    const std::string& relation) {
  StatusOr<WireResponse> response =
      CallBlocking([&] { return StartInvalidateRelation(relation); });
  if (!response.ok()) return response.status();
  return ToDropped(std::move(*response));
}

StatusOr<WireStats> MultiplexedClient::Stats() {
  StatusOr<WireResponse> response =
      CallBlocking([this] { return StartStats(); });
  if (!response.ok()) return response.status();
  return ToStats(std::move(*response));
}

Status MultiplexedClient::Compact() {
  StatusOr<WireResponse> response =
      CallBlocking([this] { return StartCompact(); });
  if (!response.ok()) return response.status();
  return StatusFromWire(response->code, response->message);
}

// ------------------------------------------------------ RemoteWatchman

RemoteWatchman::RemoteWatchman(std::unique_ptr<WatchmanClient> client,
                               Watchman::Executor executor)
    : client_(std::move(client)), executor_(std::move(executor)) {}

StatusOr<std::unique_ptr<RemoteWatchman>> RemoteWatchman::Connect(
    const WatchmanClient::Options& options, Watchman::Executor executor) {
  StatusOr<std::unique_ptr<WatchmanClient>> client =
      WatchmanClient::Connect(options);
  if (!client.ok()) return client.status();
  // alloc-ok: one wrapper per Connect() (setup, not per request)
  return std::make_unique<RemoteWatchman>(std::move(*client),
                                          std::move(executor));
}

StatusOr<std::string> RemoteWatchman::Execute(const std::string& query_text) {
  StatusOr<WatchmanClient::FetchResult> probe = client_->Get(query_text);
  if (probe.ok()) return std::move(probe->payload);
  if (probe.status().code() != StatusCode::kNotFound) return probe.status();

  // Miss: materialize locally, then offer the result to the daemon. The
  // daemon may answer with another client's concurrently filled set --
  // same contract as the facade's single-flight.
  StatusOr<Watchman::ExecutionResult> executed = executor_(query_text);
  if (!executed.ok()) return executed.status();
  StatusOr<WatchmanClient::FetchResult> filled =
      client_->Execute(query_text, executed->payload, executed->cost,
                       executed->relations);
  if (!filled.ok()) {
    // The offer failed (daemon restarted, connection dropped, ...), but
    // the execution succeeded: serve the fresh result anyway, exactly
    // like the local facade does when a cache offer cannot land.
    return std::move(executed->payload);
  }
  return std::move(filled->payload);
}

}  // namespace watchman
