// Clang thread-safety-analysis macros (no-ops on other compilers).
//
// These expand to Clang's `capability` attribute family so the locking
// discipline documented in comments becomes machine-checked: a member
// declared GUARDED_BY(mu) cannot be touched without holding mu, a
// function annotated REQUIRES(mu) cannot be called without it, and the
// dedicated CI configuration (-Werror=thread-safety, clang) turns any
// violation into a build failure. See src/util/mutex.h for the
// annotated synchronization primitives, and
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
// analysis semantics.
//
// On GCC (the default local toolchain) every macro expands to nothing,
// so the annotations cost zero at runtime and zero on non-Clang builds.

#ifndef WATCHMAN_UTIL_THREAD_ANNOTATIONS_H_
#define WATCHMAN_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define WATCHMAN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WATCHMAN_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a class as a synchronization capability (a mutex, or a pure
/// compile-time token such as ThreadRole).
#define CAPABILITY(x) WATCHMAN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock and friends).
#define SCOPED_CAPABILITY WATCHMAN_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GUARDED_BY(x) WATCHMAN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer
/// itself may be read freely).
#define PT_GUARDED_BY(x) WATCHMAN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares a required lock-acquisition order between capabilities.
#define ACQUIRED_BEFORE(...) \
  WATCHMAN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  WATCHMAN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively / shared) on entry; it
/// is still held on exit.
#define REQUIRES(...) \
  WATCHMAN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  WATCHMAN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  WATCHMAN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  WATCHMAN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define RELEASE(...) \
  WATCHMAN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  WATCHMAN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  WATCHMAN_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(...) \
  WATCHMAN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  WATCHMAN_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for functions
/// that acquire it themselves).
#define EXCLUDES(...) WATCHMAN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis to
/// trust the caller past this point).
#define ASSERT_CAPABILITY(x) \
  WATCHMAN_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  WATCHMAN_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) WATCHMAN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking pattern is correct but not
/// expressible (every use carries a comment saying why).
#define NO_THREAD_SAFETY_ANALYSIS \
  WATCHMAN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // WATCHMAN_UTIL_THREAD_ANNOTATIONS_H_
