// Shard routing for signature-partitioned structures.
//
// A sharded cache partitions entries by their 64-bit query signature so
// that independent shards can be locked independently. The signature is
// already a hash, but its low bits also pick the bucket inside each
// shard's hash index; routing therefore re-mixes the signature and uses
// the high bits, so shard choice and bucket choice stay uncorrelated.

#ifndef WATCHMAN_UTIL_SHARDING_H_
#define WATCHMAN_UTIL_SHARDING_H_

#include <cstddef>
#include <cstdint>

#include "util/hash.h"

namespace watchman {

/// Clamps a requested shard count into [1, kMaxShards] and rounds it up
/// to a power of two, so routing is a mask instead of a modulo.
size_t NormalizeShardCount(size_t requested);

constexpr size_t kMaxShards = 1024;

/// Maps a query signature to a shard in [0, num_shards).
/// `num_shards` must be a power of two (see NormalizeShardCount).
size_t ShardOfSignature(Signature signature, size_t num_shards);

/// Splits `total` bytes across `num_shards` shards: every shard gets at
/// least total / num_shards, the remainder goes to the first shards, so
/// the per-shard capacities sum exactly to `total`.
uint64_t ShardCapacity(uint64_t total, size_t num_shards, size_t shard);

}  // namespace watchman

#endif  // WATCHMAN_UTIL_SHARDING_H_
