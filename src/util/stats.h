// Lightweight statistics helpers used by the metrics and experiment code.

#ifndef WATCHMAN_UTIL_STATS_H_
#define WATCHMAN_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace watchman {

/// Single-pass mean / variance / min / max accumulator (Welford).
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const {
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    return count_ == 0 ? 0.0 : max_;
  }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const OnlineStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi) with out-of-range clamping.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t total() const { return total_; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bucket.
  double Quantile(double q) const;

  std::string ToString(size_t max_rows = 16) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_UTIL_STATS_H_
