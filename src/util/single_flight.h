// Single-flight execution: concurrent callers that ask for the same key
// share one execution of the underlying work (golang's
// singleflight.Group). Watchman uses it to ensure a burst of identical
// missed queries executes against the warehouse once, with every caller
// receiving the retrieved set.

#ifndef WATCHMAN_UTIL_SINGLE_FLIGHT_H_
#define WATCHMAN_UTIL_SINGLE_FLIGHT_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "util/mutex.h"

namespace watchman {

/// Deduplicates concurrent calls by key. `Value` must be copyable (use a
/// shared_ptr for heavy results); `fn` must not throw.
template <typename Key, typename Value>
class SingleFlight {
 public:
  /// Runs `fn` (or joins an in-flight call with the same key) and
  /// returns its result. `*leader` (optional) is set to true for the
  /// caller whose `fn` actually ran. `fn` executes outside all internal
  /// locks, so callers on distinct keys never serialize each other.
  Value Do(const Key& key, const std::function<Value()>& fn,
           bool* leader = nullptr) {
    std::shared_ptr<Call> call;
    bool is_leader = false;
    {
      MutexLock lock(mu_);
      auto it = calls_.find(key);
      if (it == calls_.end()) {
        call = std::make_shared<Call>();
        calls_.emplace(key, call);
        is_leader = true;
      } else {
        call = it->second;
      }
    }
    if (leader != nullptr) *leader = is_leader;
    if (is_leader) {
      Value value{};
      try {
        value = fn();
      } catch (...) {
        // Release the waiters with a default-constructed Value and
        // retire the flight, then let the exception reach the leader's
        // caller; otherwise every present and future caller for this
        // key would block forever.
        Finish(key, call, value);
        throw;
      }
      Finish(key, call, value);
      return value;
    }
    MutexLock lock(call->mu);
    while (!call->done) call->cv.Wait(call->mu);
    return call->value;
  }

  /// In-flight calls right now (for tests).
  size_t pending() const {
    MutexLock lock(mu_);
    return calls_.size();
  }

 private:
  struct Call {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    Value value GUARDED_BY(mu) = Value{};
  };

  void Finish(const Key& key, const std::shared_ptr<Call>& call,
              const Value& value) {
    {
      MutexLock lock(call->mu);
      call->value = value;
      call->done = true;
    }
    call->cv.NotifyAll();
    MutexLock lock(mu_);
    calls_.erase(key);
  }

  mutable Mutex mu_;
  std::unordered_map<Key, std::shared_ptr<Call>> calls_ GUARDED_BY(mu_);
};

}  // namespace watchman

#endif  // WATCHMAN_UTIL_SINGLE_FLIGHT_H_
