// QueryKey: the cache key of one request, computed once per request.
//
// A key bundles the (compressed) query ID with its 64-bit signature so
// the hot path hashes the ID exactly once -- every later lookup, shard
// route and index probe reuses the precomputed signature, and equality
// is a signature compare followed by a byte compare.
//
// The ID is stored in an inline small-string buffer (kInlineCapacity
// bytes, sized for typical compressed query IDs) with a heap fallback
// for longer IDs. The heap block is retained across Assign() calls, so
// a scratch QueryKey reused per request/connection stops allocating
// once it has seen the longest ID in the workload -- the building block
// of the allocation-free hit path.

#ifndef WATCHMAN_UTIL_QUERY_KEY_H_
#define WATCHMAN_UTIL_QUERY_KEY_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>

#include "util/hash.h"

namespace watchman {

class QueryKey {
 public:
  /// IDs up to this length live inline (no heap allocation anywhere).
  static constexpr size_t kInlineCapacity = 47;

  QueryKey() = default;

  /// Builds a key from an ID, computing the signature (the one hash of
  /// this request).
  explicit QueryKey(std::string_view id) { Assign(id); }

  /// Builds a key with an explicit signature. For trusted callers that
  /// already computed it, and for tests that inject signature
  /// collisions.
  QueryKey(std::string_view id, Signature sig) { Assign(id, sig); }

  QueryKey(const QueryKey& other) { Assign(other.id(), other.sig_); }
  QueryKey& operator=(const QueryKey& other) {
    if (this != &other) Assign(other.id(), other.sig_);
    return *this;
  }

  QueryKey(QueryKey&& other) noexcept { MoveFrom(std::move(other)); }
  QueryKey& operator=(QueryKey&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Replaces the ID, recomputing the signature. Reuses the heap block
  /// when one is already large enough (scratch-key reuse).
  void Assign(std::string_view id) { Assign(id, ComputeSignature(id)); }

  void Assign(std::string_view id, Signature sig) {
    sig_ = sig;
    size_ = static_cast<uint32_t>(id.size());
    char* dst;
    if (id.size() <= kInlineCapacity) {
      dst = inline_;
    } else {
      if (heap_cap_ < id.size()) {
        heap_ = std::make_unique<char[]>(id.size());
        heap_cap_ = static_cast<uint32_t>(id.size());
      }
      dst = heap_.get();
    }
    std::memcpy(dst, id.data(), id.size());
  }

  std::string_view id() const {
    return {size_ <= kInlineCapacity ? inline_ : heap_.get(), size_};
  }
  Signature signature() const { return sig_; }
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Signature prefilter, then exact byte match (paper section 3).
  bool operator==(const QueryKey& other) const {
    return sig_ == other.sig_ && id() == other.id();
  }
  bool operator!=(const QueryKey& other) const { return !(*this == other); }

  /// True when this key's ID matches `entry_id` under an already-equal
  /// signature (the index probe's second step).
  bool MatchesId(std::string_view other_id) const { return id() == other_id; }

 private:
  void MoveFrom(QueryKey&& other) noexcept {
    sig_ = other.sig_;
    size_ = other.size_;
    if (other.size_ <= kInlineCapacity) {
      std::memcpy(inline_, other.inline_, other.size_);
    } else {
      heap_ = std::move(other.heap_);
      heap_cap_ = other.heap_cap_;
      other.heap_cap_ = 0;
    }
    other.size_ = 0;
    other.sig_ = Signature{};
  }

  Signature sig_;
  uint32_t size_ = 0;
  uint32_t heap_cap_ = 0;
  std::unique_ptr<char[]> heap_;
  char inline_[kInlineCapacity + 1] = {};
};

}  // namespace watchman

template <>
struct std::hash<watchman::QueryKey> {
  size_t operator()(const watchman::QueryKey& k) const noexcept {
    return static_cast<size_t>(k.signature().value);
  }
};

#endif  // WATCHMAN_UTIL_QUERY_KEY_H_
