// Minimal leveled logging to stderr. The library is quiet by default;
// benches and examples raise the level when narrating progress.

#ifndef WATCHMAN_UTIL_LOGGING_H_
#define WATCHMAN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace watchman {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style one-shot log line; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define WATCHMAN_LOG(level)                                            \
  if (static_cast<int>(::watchman::LogLevel::k##level) <               \
      static_cast<int>(::watchman::GetLogLevel()))                     \
    ::watchman::internal::NullStream();                                \
  else                                                                 \
    ::watchman::internal::LogMessage(::watchman::LogLevel::k##level,   \
                                     __FILE__, __LINE__)               \
        .stream()

}  // namespace watchman

#endif  // WATCHMAN_UTIL_LOGGING_H_
