// Minimal leveled logging to stderr. The library is quiet by default;
// benches and examples raise the level when narrating progress.
//
// Two output formats (process-global, SetLogFormat):
//  * kText (default): `[LEVEL file:line] message`
//  * kJson: one JSON object per line --
//    {"ts_ms":...,"level":"warn","src":"file:line","msg":"..."}
//    for machine-ingested daemon logs (the server's slow-request log
//    rides this mode; watchmand enables it with --log-json).

#ifndef WATCHMAN_UTIL_LOGGING_H_
#define WATCHMAN_UTIL_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace watchman {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error" / "off"
/// (as spelled on --log-level). Returns false on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Stable lower-case level name ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

enum class LogFormat {
  kText,
  kJson,
};

void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// Appends `text` to *out with JSON string escaping (quote, backslash,
/// control characters). Exposed for tests and structured-log builders.
void AppendJsonEscaped(std::string_view text, std::string* out);

namespace internal {

/// Builds the final emitted line (without trailing newline) for the
/// given format -- split out of LogMessage so the formatting is
/// testable without capturing stderr.
std::string FormatLogLine(LogFormat format, LogLevel level,
                          const char* base_file, int line, int64_t ts_ms,
                          std::string_view message);

/// Stream-style one-shot log line; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* base_file_;
  int line_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define WATCHMAN_LOG(level)                                            \
  if (static_cast<int>(::watchman::LogLevel::k##level) <               \
      static_cast<int>(::watchman::GetLogLevel()))                     \
    ::watchman::internal::NullStream();                                \
  else                                                                 \
    ::watchman::internal::LogMessage(::watchman::LogLevel::k##level,   \
                                     __FILE__, __LINE__)               \
        .stream()

}  // namespace watchman

#endif  // WATCHMAN_UTIL_LOGGING_H_
