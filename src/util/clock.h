// Simulated time.
//
// All timestamps in the library are integer microseconds on a simulated
// clock. Reference-rate estimates (paper eq. 3) divide a reference count
// by an elapsed time, so the unit only has to be consistent.

#ifndef WATCHMAN_UTIL_CLOCK_H_
#define WATCHMAN_UTIL_CLOCK_H_

#include <cstdint>

namespace watchman {

/// A point in simulated time, in microseconds since the simulation epoch.
using Timestamp = uint64_t;

/// A span of simulated time, in microseconds.
using Duration = uint64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;

/// A monotonically advancing simulated clock.
class SimClock {
 public:
  SimClock() = default;

  Timestamp now() const { return now_; }

  /// Advances the clock by `d` and returns the new time.
  Timestamp Advance(Duration d) {
    now_ += d;
    return now_;
  }

  /// Moves the clock to `t`; `t` must not be in the past.
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }

 private:
  Timestamp now_ = 0;
};

}  // namespace watchman

#endif  // WATCHMAN_UTIL_CLOCK_H_
