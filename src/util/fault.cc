#include "util/fault.h"

#include <errno.h>
#include <sys/socket.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

namespace watchman {
namespace {

/// SplitMix64 finalizer: the decision hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t ProbabilityToThreshold(double p) {
  if (p <= 0) return 0;
  if (p >= 1) return 1ull << 32;
  return static_cast<uint64_t>(p * 4294967296.0);
}

}  // namespace

const char* FaultName(Fault f) {
  switch (f) {
    case Fault::kSendShort:
      return "send_short";
    case Fault::kSendEagain:
      return "send_eagain";
    case Fault::kSendReset:
      return "send_reset";
    case Fault::kSendStall:
      return "send_stall";
    case Fault::kRecvShort:
      return "recv_short";
    case Fault::kRecvEagain:
      return "recv_eagain";
    case Fault::kRecvReset:
      return "recv_reset";
    case Fault::kRecvStall:
      return "recv_stall";
    case Fault::kAcceptFail:
      return "accept_fail";
    case Fault::kStorePutFail:
      return "store_put_fail";
    case Fault::kStoreGetFail:
      return "store_get_fail";
    case Fault::kExecFail:
      return "exec_fail";
    case Fault::kExecThrow:
      return "exec_throw";
    case Fault::kAllocFail:
      return "alloc_fail";
    case Fault::kNumFaults:
      break;
  }
  return "?";
}

Status ParseFaultSpec(std::string_view spec, FaultConfig* out) {
  *out = FaultConfig{};
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view item = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                item.front()))) {
      item.remove_prefix(1);
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.remove_suffix(1);
    }
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault spec item without '=': \"" +
                                     std::string(item) + "\"");
    }
    const std::string key(item.substr(0, eq));
    const std::string value(item.substr(eq + 1));
    if (value.empty()) {
      return Status::InvalidArgument("fault spec key \"" + key +
                                     "\" has empty value");
    }
    char* value_end = nullptr;
    if (key == "seed") {
      const unsigned long long v = std::strtoull(value.c_str(), &value_end, 10);
      if (*value_end != '\0') {
        return Status::InvalidArgument("malformed seed \"" + value + "\"");
      }
      out->seed = v;
      continue;
    }
    if (key == "stall_ms") {
      const long v = std::strtol(value.c_str(), &value_end, 10);
      if (*value_end != '\0' || v < 0 || v > 60000) {
        return Status::InvalidArgument("stall_ms out of [0,60000]: \"" +
                                       value + "\"");
      }
      out->stall_ms = static_cast<int>(v);
      continue;
    }
    bool matched = false;
    for (size_t i = 0; i < kNumFaults; ++i) {
      if (key != FaultName(static_cast<Fault>(i))) continue;
      const double p = std::strtod(value.c_str(), &value_end);
      if (*value_end != '\0' || !std::isfinite(p) || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("probability for \"" + key +
                                       "\" not in [0,1]: \"" + value + "\"");
      }
      out->probability[i] = p;
      matched = true;
      break;
    }
    if (!matched) {
      return Status::InvalidArgument("unknown fault spec key \"" + key + "\"");
    }
  }
  return Status::OK();
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

Status FaultInjector::Configure(std::string_view spec) {
  FaultConfig config;
  WATCHMAN_RETURN_IF_ERROR(ParseFaultSpec(spec, &config));
  Install(config);
  return Status::OK();
}

void FaultInjector::Install(const FaultConfig& config) {
  // Disable first so concurrent Trip calls short-circuit while the
  // table is being swapped.
  enabled_.store(false, std::memory_order_relaxed);
  seed_.store(config.seed, std::memory_order_relaxed);
  stall_ms_.store(config.stall_ms, std::memory_order_relaxed);
  for (size_t i = 0; i < kNumFaults; ++i) {
    threshold_[i].store(ProbabilityToThreshold(config.probability[i]),
                        std::memory_order_relaxed);
    calls_[i].store(0, std::memory_order_relaxed);
    injected_[i].store(0, std::memory_order_relaxed);
  }
  enabled_.store(config.any_enabled(), std::memory_order_release);
}

void FaultInjector::Reset() { Install(FaultConfig{}); }

bool FaultInjector::Trip(Fault f) {
  if (!enabled()) return false;
  const size_t i = static_cast<size_t>(f);
  const uint64_t threshold = threshold_[i].load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  const uint64_t n = calls_[i].fetch_add(1, std::memory_order_relaxed);
  const uint64_t seed = seed_.load(std::memory_order_relaxed);
  const uint64_t h = Mix(seed ^ Mix((i + 1) * 0x9e3779b97f4a7c15ull + n));
  const bool hit = (h >> 32) < threshold;
  if (hit) injected_[i].fetch_add(1, std::memory_order_relaxed);
  return hit;
}

uint64_t FaultInjector::injected_total() const {
  uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

namespace {

void Stall(FaultInjector& fi) {
  std::this_thread::sleep_for(std::chrono::milliseconds(fi.stall_ms()));
}

}  // namespace

ssize_t FaultSend(int fd, const void* buf, size_t len, int flags) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.enabled()) {
    if (fi.Trip(Fault::kSendStall)) Stall(fi);
    if (fi.Trip(Fault::kSendReset)) {
      errno = ECONNRESET;
      return -1;
    }
    if (fi.Trip(Fault::kSendEagain)) {
      errno = EAGAIN;
      return -1;
    }
    if (len > 1 && fi.Trip(Fault::kSendShort)) len = 1;
  }
  return ::send(fd, buf, len, flags);
}

ssize_t FaultRecv(int fd, void* buf, size_t len, int flags) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.enabled()) {
    if (fi.Trip(Fault::kRecvStall)) Stall(fi);
    if (fi.Trip(Fault::kRecvReset)) {
      errno = ECONNRESET;
      return -1;
    }
    if (fi.Trip(Fault::kRecvEagain)) {
      errno = EAGAIN;
      return -1;
    }
    if (len > 1 && fi.Trip(Fault::kRecvShort)) len = 1;
  }
  return ::recv(fd, buf, len, flags);
}

int FaultAccept4(int fd, int flags) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.enabled() && fi.Trip(Fault::kAcceptFail)) {
    errno = ECONNABORTED;
    return -1;
  }
  return ::accept4(fd, nullptr, nullptr, flags);
}

Status FaultPoint(Fault f, const char* what) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.enabled() || !fi.Trip(f)) return Status::OK();
  std::string msg = std::string("injected fault at ") + what;
  switch (f) {
    case Fault::kExecFail:
      return Status::Internal(std::move(msg));
    case Fault::kAllocFail:
      return Status::CapacityExceeded(std::move(msg));
    default:
      return Status::IOError(std::move(msg));
  }
}

}  // namespace watchman
