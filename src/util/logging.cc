#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace watchman {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warning" || text == "warn") {
    *out = LogLevel::kWarning;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else if (text == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

void SetLogFormat(LogFormat format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

namespace internal {

std::string FormatLogLine(LogFormat format, LogLevel level,
                          const char* base_file, int line, int64_t ts_ms,
                          std::string_view message) {
  std::string out;
  if (format == LogFormat::kJson) {
    out.reserve(message.size() + 80);
    out.append("{\"ts_ms\":");
    out.append(std::to_string(ts_ms));
    out.append(",\"level\":\"");
    out.append(LogLevelName(level));
    out.append("\",\"src\":\"");
    AppendJsonEscaped(base_file, &out);
    out.push_back(':');
    out.append(std::to_string(line));
    out.append("\",\"msg\":\"");
    AppendJsonEscaped(message, &out);
    out.append("\"}");
  } else {
    out.reserve(message.size() + 48);
    out.push_back('[');
    out.append(LevelTag(level));
    out.push_back(' ');
    out.append(base_file);
    out.push_back(':');
    out.append(std::to_string(line));
    out.append("] ");
    out.append(message);
  }
  return out;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), base_file_(file), line_(line) {
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base_file_ = p + 1;
  }
}

LogMessage::~LogMessage() {
  const std::string line = FormatLogLine(GetLogFormat(), level_, base_file_,
                                         line_, WallMs(), stream_.str());
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal

}  // namespace watchman
