#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace watchman {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal

}  // namespace watchman
