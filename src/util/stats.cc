#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace watchman {

void OnlineStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::Add(double x) {
  size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  // Skip empty buckets so extreme quantiles land in populated buckets:
  // q=0 must return the first occupied bucket's lower edge, not lo_,
  // when the leading buckets hold nothing.
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = std::clamp(
          (target - cum) / static_cast<double>(counts_[i]), 0.0, 1.0);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString(size_t max_rows) const {
  if (total_ == 0) return "(empty histogram)\n";
  std::string out;
  const size_t step =
      max_rows == 0 ? counts_.size()
                    : std::max<size_t>(1, counts_.size() / max_rows);
  char line[128];
  for (size_t i = 0; i < counts_.size(); i += step) {
    uint64_t c = 0;
    for (size_t j = i; j < std::min(i + step, counts_.size()); ++j) {
      c += counts_[j];
    }
    std::snprintf(line, sizeof(line), "[%11.3f, %11.3f) %10llu\n",
                  bucket_lo(i), bucket_hi(std::min(i + step, counts_.size()) - 1),
                  static_cast<unsigned long long>(c));
    out += line;
  }
  return out;
}

}  // namespace watchman
