#include "util/sharding.h"

#include <cassert>

#include "util/hash.h"

namespace watchman {

size_t NormalizeShardCount(size_t requested) {
  if (requested <= 1) return 1;
  if (requested > kMaxShards) requested = kMaxShards;
  size_t n = 1;
  while (n < requested) n <<= 1;
  return n;
}

size_t ShardOfSignature(Signature signature, size_t num_shards) {
  assert(num_shards > 0 && (num_shards & (num_shards - 1)) == 0);
  // The signature is already a mixed hash; the per-shard open table
  // indexes by its low bits, so routing takes the high bits -- shard
  // choice and bucket choice stay uncorrelated with no second hash.
  return static_cast<size_t>(signature.value >> 48) & (num_shards - 1);
}

uint64_t ShardCapacity(uint64_t total, size_t num_shards, size_t shard) {
  assert(shard < num_shards);
  const uint64_t base = total / num_shards;
  const uint64_t remainder = total % num_shards;
  return base + (shard < remainder ? 1 : 0);
}

}  // namespace watchman
