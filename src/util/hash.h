// Hashing utilities: FNV-1a and a 64-bit mix hash used for query
// signatures (paper section 3: a signature per cache entry is computed as
// a hash over the query ID so that only entries with a matching signature
// need a full comparison).

#ifndef WATCHMAN_UTIL_HASH_H_
#define WATCHMAN_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace watchman {

/// 64-bit FNV-1a over an arbitrary byte string.
uint64_t Fnv1a64(std::string_view data);

/// 32-bit FNV-1a over an arbitrary byte string.
uint32_t Fnv1a32(std::string_view data);

/// Stafford/SplitMix-style 64-bit finalizer; good avalanche behaviour.
uint64_t Mix64(uint64_t x);

/// Combines two 64-bit hashes (boost::hash_combine-style, 64-bit).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// A query signature: 64-bit prefilter for exact query-ID matching. The
/// value is already a mixed hash (ComputeSignature finalizes with
/// Mix64), so hash containers may use it directly and sharded/indexed
/// structures derive their buckets from disjoint bit ranges.
struct Signature {
  uint64_t value = 0;

  bool operator==(const Signature& other) const {
    return value == other.value;
  }
  bool operator!=(const Signature& other) const {
    return value != other.value;
  }
};

/// Computes the signature of a (compressed) query ID.
Signature ComputeSignature(std::string_view query_id);

}  // namespace watchman

/// Signatures key hash containers everywhere a raw uint64_t was passed
/// before; the value is pre-mixed, so the identity hash is correct.
template <>
struct std::hash<watchman::Signature> {
  size_t operator()(const watchman::Signature& s) const noexcept {
    return static_cast<size_t>(s.value);
  }
};

#endif  // WATCHMAN_UTIL_HASH_H_
