// Hashing utilities: FNV-1a and a 64-bit mix hash used for query
// signatures (paper section 3: a signature per cache entry is computed as
// a hash over the query ID so that only entries with a matching signature
// need a full comparison).

#ifndef WATCHMAN_UTIL_HASH_H_
#define WATCHMAN_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace watchman {

/// 64-bit FNV-1a over an arbitrary byte string.
uint64_t Fnv1a64(std::string_view data);

/// 32-bit FNV-1a over an arbitrary byte string.
uint32_t Fnv1a32(std::string_view data);

/// Stafford/SplitMix-style 64-bit finalizer; good avalanche behaviour.
uint64_t Mix64(uint64_t x);

/// Combines two 64-bit hashes (boost::hash_combine-style, 64-bit).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// A query signature: 64-bit prefilter for exact query-ID matching.
struct Signature {
  uint64_t value = 0;

  bool operator==(const Signature& other) const {
    return value == other.value;
  }
};

/// Computes the signature of a (compressed) query ID.
Signature ComputeSignature(std::string_view query_id);

}  // namespace watchman

#endif  // WATCHMAN_UTIL_HASH_H_
