#include "util/hash.h"

namespace watchman {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint32_t Fnv1a32(std::string_view data) {
  uint32_t hash = 0x811c9dc5U;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x01000193U;
  }
  return hash;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

Signature ComputeSignature(std::string_view query_id) {
  return Signature{Mix64(Fnv1a64(query_id))};
}

}  // namespace watchman
