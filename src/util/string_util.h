// String helpers, including the query-ID compression described in the
// paper (section 3): a query ID is the query string with every delimiter
// run substituted by a single special character.

#ifndef WATCHMAN_UTIL_STRING_UTIL_H_
#define WATCHMAN_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace watchman {

/// Compresses a query string into a query ID: runs of SQL delimiters
/// (whitespace, commas, parentheses, semicolons) collapse into a single
/// US (0x1f) separator; letters are lower-cased. Two queries differing
/// only in formatting map to the same ID.
std::string CompressQueryId(std::string_view query_text);

/// CompressQueryId into a caller-owned buffer: `out` is cleared and
/// refilled, reusing its capacity. The hot request path compresses into
/// a per-thread scratch string, so steady state allocates nothing.
void CompressQueryIdInto(std::string_view query_text, std::string* out);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins parts with a delimiter string.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Formats a byte count with a binary-unit suffix ("16.1 MiB").
std::string HumanBytes(uint64_t bytes);

/// Parses a byte count from CLI text: plain digits or a binary-unit
/// suffix -- "262144", "256k", "64m", "64mb", "64mib", "2g" (suffixes
/// case-insensitive). InvalidArgument on malformed input, zero, or
/// overflow. The inverse direction of HumanBytes.
StatusOr<uint64_t> ParseByteSize(const std::string& text);

/// Formats a double with fixed precision (printf "%.*f").
std::string FormatDouble(double value, int precision);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace watchman

#endif  // WATCHMAN_UTIL_STRING_UTIL_H_
