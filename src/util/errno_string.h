// ErrnoString: thread-safe replacement for std::strerror.
//
// ::strerror may format into a shared static buffer (it is on the
// clang-tidy concurrency-mt-unsafe list), and the daemon builds error
// messages from worker threads, the IO thread and client reader
// threads concurrently. strerror_r writes into a caller-owned buffer
// instead; the overload dance below absorbs the GNU (returns char*,
// possibly a static immutable string) vs XSI (returns int) signature
// difference without a feature-macro #if.

#ifndef WATCHMAN_UTIL_ERRNO_STRING_H_
#define WATCHMAN_UTIL_ERRNO_STRING_H_

#include <string.h>

#include <string>

namespace watchman {

namespace internal {

// GNU strerror_r: the returned pointer is the message (it may or may
// not be `buf`).
inline const char* StrerrorResult(const char* r, const char* /*buf*/) {
  return r;
}
// XSI strerror_r: 0 means the message was written into `buf`.
inline const char* StrerrorResult(int r, const char* buf) {
  return r == 0 ? buf : "unknown error";
}

}  // namespace internal

/// The message for `err` (an errno value), as a thread-safe std::string.
inline std::string ErrnoString(int err) {
  char buf[256];
  buf[0] = '\0';
  return internal::StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
}

}  // namespace watchman

#endif  // WATCHMAN_UTIL_ERRNO_STRING_H_
