#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace watchman {

namespace {

bool IsDelimiter(char c) {
  switch (c) {
    case ' ':
    case '\t':
    case '\n':
    case '\r':
    case ',':
    case '(':
    case ')':
    case ';':
      return true;
    default:
      return false;
  }
}

constexpr char kSeparator = '\x1f';

}  // namespace

void CompressQueryIdInto(std::string_view query_text, std::string* out) {
  out->clear();
  out->reserve(query_text.size());
  bool in_delim_run = false;
  for (char c : query_text) {
    if (IsDelimiter(c)) {
      in_delim_run = true;
      continue;
    }
    if (in_delim_run && !out->empty()) out->push_back(kSeparator);
    in_delim_run = false;
    out->push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
}

std::string CompressQueryId(std::string_view query_text) {
  std::string out;
  CompressQueryIdInto(query_text, &out);
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

StatusOr<uint64_t> ParseByteSize(const std::string& text) {
  size_t pos = 0;
  uint64_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    const uint64_t digit = static_cast<uint64_t>(text[pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("byte size overflows: " + text);
    }
    value = value * 10 + digit;
    ++pos;
  }
  if (pos == 0) {
    return Status::InvalidArgument("bad byte size: " + text);
  }
  std::string suffix = text.substr(pos);
  for (char& c : suffix) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  int shift = 0;
  if (suffix.empty() || suffix == "b") {
    shift = 0;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    shift = 10;
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    shift = 20;
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    shift = 30;
  } else {
    return Status::InvalidArgument("bad byte size suffix: " + text);
  }
  if (shift != 0 && value > (UINT64_MAX >> shift)) {
    return Status::InvalidArgument("byte size overflows: " + text);
  }
  value <<= shift;
  if (value == 0) {
    return Status::InvalidArgument("byte size must be positive: " + text);
  }
  return value;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace watchman
