// Conjunct-order query normalization.
//
// The paper's cache lookup uses an exact query-ID match and notes
// (sections 3 and 6) that the hit ratio could be improved by testing
// special cases of query equivalence, but that full equivalence testing
// is NP-hard and the known rewrite-based methods are too expensive; it
// calls for "a simpler method for WATCHMAN". This module implements
// such a method: a syntactic canonical form that is
//
//   * cheap -- one tokenization pass plus a sort of the WHERE conjuncts,
//   * sound -- two queries mapping to the same canonical form are
//     equivalent (only commutative constructs are reordered),
//   * usefully complete -- it identifies queries that differ in
//     formatting, letter case, or the order of top-level AND-ed
//     predicates and of IN-list members, which covers the common way
//     drill-down tools permute generated SQL.
//
// It deliberately does not attempt containment, arithmetic rewriting or
// OR-normalization: those are where the NP-hardness lives.

#ifndef WATCHMAN_UTIL_QUERY_NORMALIZER_H_
#define WATCHMAN_UTIL_QUERY_NORMALIZER_H_

#include <string>
#include <string_view>

namespace watchman {

/// Canonicalizes `query_text` into a normalized query ID:
/// 1. compresses delimiters and folds case (CompressQueryId),
/// 2. sorts the top-level AND conjuncts of each WHERE clause,
/// 3. sorts the members of IN (...) lists.
/// Queries equivalent under those commutativity rules map to the same
/// string; everything else is preserved verbatim.
std::string NormalizeQuery(std::string_view query_text);

}  // namespace watchman

#endif  // WATCHMAN_UTIL_QUERY_NORMALIZER_H_
