// CircuitBreaker: stop re-attempting a failing dependency for a
// cooldown instead of paying its failure latency on every call.
//
// Classic three-state breaker, lock-free:
//  - closed: every call allowed; consecutive failures are counted.
//  - open: after `failure_threshold` consecutive failures, every call
//    is rejected until `cooldown_ms` elapses.
//  - half-open: after the cooldown exactly one probe call is admitted;
//    its success closes the breaker, its failure re-opens it for
//    another cooldown.
//
// Callers supply the clock as milliseconds (any monotonic origin), so
// tests drive time explicitly. A failure_threshold of 0 disables the
// breaker entirely (Allow always true, failures never trip).

#ifndef WATCHMAN_UTIL_CIRCUIT_BREAKER_H_
#define WATCHMAN_UTIL_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>

namespace watchman {

class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures that trip the breaker; 0 disables it.
    int failure_threshold = 5;
    /// How long the breaker stays open before admitting a probe.
    int64_t cooldown_ms = 2000;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  bool enabled() const { return options_.failure_threshold > 0; }

  /// True when the protected call may proceed. In the half-open state
  /// only one caller wins the probe slot; the rest are rejected until
  /// the probe reports back.
  bool Allow(int64_t now_ms) {
    if (!enabled()) return true;
    const int64_t until = open_until_ms_.load(std::memory_order_acquire);
    if (until == 0) return true;
    if (now_ms < until) {
      // relaxed: stats counter only; no reader pairs it with other data.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    bool expected = false;
    if (probe_inflight_.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      return true;
    }
    // relaxed: stats counter only.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void RecordSuccess() {
    // relaxed: the probe flag gates concurrency but publishes no data;
    // a racer that sees the release late merely stays rejected for one
    // more Allow(), which the half-open design already tolerates.
    probe_inflight_.store(false, std::memory_order_relaxed);
    // relaxed: heuristic tally; the open/closed decision other threads
    // act on is published solely through open_until_ms_ below.
    consecutive_failures_.store(0, std::memory_order_relaxed);
    open_until_ms_.store(0, std::memory_order_release);
  }

  void RecordFailure(int64_t now_ms) {
    // relaxed: same probe-flag rationale as RecordSuccess.
    probe_inflight_.store(false, std::memory_order_relaxed);
    // relaxed: consecutive-failure counting is a heuristic; interleaved
    // counts can only trip the breaker a call early or late.
    const int failures =
        consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!enabled() || failures < options_.failure_threshold) return;
    const int64_t until = now_ms + options_.cooldown_ms;
    const int64_t prev =
        open_until_ms_.exchange(until, std::memory_order_acq_rel);
    // Count a trip only on the closed/half-open -> open transition, not
    // when concurrent failures extend an already-open window.
    if (prev == 0 || prev <= now_ms) {
      // relaxed: stats counter only.
      trips_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  State state(int64_t now_ms) const {
    const int64_t until = open_until_ms_.load(std::memory_order_acquire);
    if (until == 0) return State::kClosed;
    return now_ms < until ? State::kOpen : State::kHalfOpen;
  }

  /// Times the breaker transitioned into the open state.
  /// (relaxed loads here and below: scrape-time stats reads.)
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  /// Calls rejected while open (or while a half-open probe was out).
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::atomic<int> consecutive_failures_{0};
  /// 0 = closed; otherwise the end of the current open window.
  std::atomic<int64_t> open_until_ms_{0};
  std::atomic<bool> probe_inflight_{false};
  std::atomic<uint64_t> trips_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace watchman

#endif  // WATCHMAN_UTIL_CIRCUIT_BREAKER_H_
