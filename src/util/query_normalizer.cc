#include "util/query_normalizer.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace watchman {

namespace {

constexpr char kSep = '\x1f';

// Tokenizes lower-cased SQL-ish text. Parentheses become their own
// tokens so IN-lists can be re-bracketed; other delimiter runs separate
// tokens.
std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    const char c =
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    switch (c) {
      case ' ':
      case '\t':
      case '\n':
      case '\r':
      case ',':
      case ';':
        flush();
        break;
      case '(':
      case ')':
        flush();
        tokens.push_back(std::string(1, c));
        break;
      default:
        current.push_back(c);
    }
  }
  flush();
  return tokens;
}

// Keywords that terminate a WHERE clause at nesting depth 0.
bool EndsWhere(const std::string& token) {
  return token == "group" || token == "order" || token == "having" ||
         token == "limit" || token == "union" || token == "intersect" ||
         token == "except";
}

// Renders a token sequence with kSep separators. Unlike
// CompressQueryId, parentheses survive as tokens: the canonical form is
// its own namespace and only needs to be deterministic.
std::string Render(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out.push_back(kSep);
    out += t;
  }
  return out;
}

// Sorts the members of "in ( a b c )" sequences inside `tokens`.
void SortInLists(std::vector<std::string>* tokens) {
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    if ((*tokens)[i] != "in" || (*tokens)[i + 1] != "(") continue;
    size_t depth = 1;
    size_t j = i + 2;
    while (j < tokens->size() && depth > 0) {
      if ((*tokens)[j] == "(") ++depth;
      if ((*tokens)[j] == ")") --depth;
      ++j;
    }
    if (depth != 0) return;  // unbalanced: leave untouched
    // Members are the tokens in (i+2, j-1); only sort flat lists.
    bool flat = true;
    for (size_t m = i + 2; m + 1 < j; ++m) {
      if ((*tokens)[m] == "(" || (*tokens)[m] == ")") flat = false;
    }
    if (flat) {
      std::sort(tokens->begin() + static_cast<ptrdiff_t>(i + 2),
                tokens->begin() + static_cast<ptrdiff_t>(j - 1));
    }
    i = j - 1;
  }
}

// Splits the token range [begin, end) into top-level AND conjuncts
// (depth-0 "and" tokens), sorts the conjuncts by their rendered form
// and re-emits them joined with "and".
std::vector<std::string> SortConjuncts(
    const std::vector<std::string>& tokens, size_t begin, size_t end) {
  std::vector<std::vector<std::string>> conjuncts(1);
  size_t depth = 0;
  for (size_t i = begin; i < end; ++i) {
    const std::string& t = tokens[i];
    if (t == "(") ++depth;
    if (t == ")" && depth > 0) --depth;
    if (depth == 0 && t == "and") {
      conjuncts.emplace_back();
      continue;
    }
    conjuncts.back().push_back(t);
  }
  // A top-level OR makes reordering unsound unless it is confined to a
  // single conjunct (parenthesized); conjuncts containing a depth-0
  // "or" keep their position by sorting on their original index.
  std::vector<std::pair<std::string, size_t>> keyed;
  keyed.reserve(conjuncts.size());
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    keyed.emplace_back(Render(conjuncts[i]), i);
  }
  bool any_toplevel_or = false;
  for (const auto& c : conjuncts) {
    size_t d = 0;
    for (const std::string& t : c) {
      if (t == "(") ++d;
      if (t == ")" && d > 0) --d;
      if (d == 0 && t == "or") any_toplevel_or = true;
    }
  }
  if (!any_toplevel_or) {
    std::sort(keyed.begin(), keyed.end());
  }
  std::vector<std::string> out;
  for (size_t i = 0; i < keyed.size(); ++i) {
    if (i > 0) out.push_back("and");
    const auto& c = conjuncts[keyed[i].second];
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

}  // namespace

std::string NormalizeQuery(std::string_view query_text) {
  std::vector<std::string> tokens = Tokenize(query_text);
  SortInLists(&tokens);

  std::vector<std::string> out;
  out.reserve(tokens.size());
  size_t i = 0;
  while (i < tokens.size()) {
    if (tokens[i] != "where") {
      out.push_back(tokens[i]);
      ++i;
      continue;
    }
    // Find the end of this WHERE clause at depth 0.
    out.push_back(tokens[i]);
    ++i;
    size_t depth = 0;
    size_t end = i;
    while (end < tokens.size()) {
      const std::string& t = tokens[end];
      if (t == "(") ++depth;
      if (t == ")" && depth > 0) --depth;
      if (depth == 0 && EndsWhere(t)) break;
      ++end;
    }
    const std::vector<std::string> sorted = SortConjuncts(tokens, i, end);
    out.insert(out.end(), sorted.begin(), sorted.end());
    i = end;
  }
  return Render(out);
}

}  // namespace watchman
